//! Negated-atom semantics at instance boundaries.
//!
//! `¬t` admits every record whose activity is not `t` — *including* the
//! `START` and `END` boundary markers (Definition 4 quantifies over all
//! records of the instance). These tests pin that behaviour down at the
//! boundaries and check every evaluation strategy agrees on it.

use wlq::{
    evaluate_parallel, Evaluator, IncidentSet, Log, Pattern, Strategy, StreamingEvaluator,
    END_ACTIVITY, START_ACTIVITY,
};

fn figure3() -> Log {
    wlq::paper::figure3_log()
}

/// Evaluates `src` under every strategy and asserts they agree; returns
/// the common result.
fn all_strategies(log: &Log, src: &str) -> IncidentSet {
    let p: Pattern = src.parse().unwrap();
    let reference = Evaluator::with_strategy(log, Strategy::NaivePaper).evaluate(&p);
    for strategy in [Strategy::Optimized, Strategy::Batch] {
        assert_eq!(
            Evaluator::with_strategy(log, strategy).evaluate(&p),
            reference,
            "{strategy:?} diverged on {src}"
        );
    }
    for threads in [1, 4] {
        assert_eq!(
            evaluate_parallel(log, &p, threads, Strategy::Optimized).unwrap(),
            reference,
            "parallel({threads}) diverged on {src}"
        );
    }
    let mut stream = StreamingEvaluator::new(p);
    for record in log.iter() {
        stream.append(record).unwrap();
    }
    assert_eq!(stream.incidents(), reference, "streaming diverged on {src}");
    reference
}

#[test]
fn negated_start_matches_every_non_start_record() {
    let log = figure3();
    // 20 records, 3 instances, hence 3 STARTs: ¬START has 17 incidents.
    assert_eq!(all_strategies(&log, "!START").len(), 17);
    // And the identity holds structurally, not just numerically.
    let starts = log.iter().filter(|r| r.is_start()).count();
    assert_eq!(all_strategies(&log, "!START").len(), log.len() - starts);
}

#[test]
fn negated_end_matches_every_non_end_record() {
    let log = figure3();
    let ends = log.iter().filter(|r| r.is_end()).count();
    assert_eq!(all_strategies(&log, "!END").len(), log.len() - ends);
}

#[test]
fn negated_atoms_admit_the_boundary_markers_themselves() {
    let log = figure3();
    // ¬SeeDoctor includes the START and END records of every instance.
    let see_doctor = log
        .iter()
        .filter(|r| r.activity().as_str() == "SeeDoctor")
        .count();
    assert_eq!(see_doctor, 4);
    assert_eq!(
        all_strategies(&log, "!SeeDoctor").len(),
        log.len() - see_doctor
    );
}

#[test]
fn negation_consecutive_to_start_sees_the_second_record() {
    let log = figure3();
    // `START ~> ¬t`: one incident per instance whose second record (the
    // record at instance position 2) is not a `t` record.
    for t in ["GetRefer", "SeeDoctor", "Zmissing"] {
        let expected = log
            .wids()
            .filter(|&w| {
                log.record(w, wlq::IsLsn(2))
                    .is_some_and(|r| r.activity().as_str() != t)
            })
            .count();
        let got = all_strategies(&log, &format!("START ~> !{t}"));
        assert_eq!(got.len(), expected, "START ~> !{t}");
    }
}

#[test]
fn negation_consecutive_to_end_sees_the_penultimate_record() {
    let log = figure3();
    // `¬t ~> END`: for each *completed* instance, one incident when the
    // record right before END is not a `t` record.
    for t in ["CompleteRefer", "GetReimburse", "Zmissing"] {
        let expected = log
            .wids()
            .filter(|&w| log.is_completed(w))
            .filter(|&w| {
                let end_pos = log.instance_len(w) as u32;
                log.record(w, wlq::IsLsn(end_pos - 1))
                    .is_some_and(|r| r.activity().as_str() != t)
            })
            .count();
        let got = all_strategies(&log, &format!("!{t} ~> END"));
        assert_eq!(got.len(), expected, "!{t} ~> END");
    }
}

#[test]
fn double_negation_chains_at_both_boundaries_agree_across_strategies() {
    let log = figure3();
    // No numeric anchor here — the point is cross-strategy agreement on
    // patterns where negation touches both boundaries at once.
    for src in [
        "START ~> !START",
        "!END ~> END",
        "!START ~> !END",
        "START -> !SeeDoctor -> END",
        "(!GetRefer ~> END) | (START ~> !GetRefer)",
        "!Zmissing",
    ] {
        let _ = all_strategies(&log, src);
    }
}

#[test]
fn negation_boundaries_agree_on_a_log_with_open_instances() {
    // An instance without END is still running; `¬t ~> END` must only
    // fire for the completed one, and `¬END` must cover every record of
    // the open one.
    let mut b = wlq::LogBuilder::new();
    let done = b.start_instance();
    let open = b.start_instance();
    b.append(done, "GetRefer", wlq::AttrMap::new(), wlq::AttrMap::new())
        .unwrap();
    b.append(open, "GetRefer", wlq::AttrMap::new(), wlq::AttrMap::new())
        .unwrap();
    b.append(open, "SeeDoctor", wlq::AttrMap::new(), wlq::AttrMap::new())
        .unwrap();
    b.end_instance(done).unwrap();
    let log = b.build().unwrap();

    assert!(log.is_completed(done));
    assert!(!log.is_completed(open));

    // ¬GetRefer ~> END: only the completed instance has an END, and its
    // predecessor is GetRefer, so nothing matches.
    assert_eq!(all_strategies(&log, "!GetRefer ~> END").len(), 0);
    // ¬SeeDoctor ~> END: the completed instance's END follows GetRefer.
    assert_eq!(all_strategies(&log, "!SeeDoctor ~> END").len(), 1);
    // ¬END covers every record of the open instance and all but END of
    // the completed one.
    assert_eq!(all_strategies(&log, "!END").len(), log.len() - 1);
    // START ~> ¬START fires once per instance, open or not.
    assert_eq!(all_strategies(&log, "START ~> !START").len(), 2);
}

const _: () = {
    // The boundary marker names the tests rely on.
    assert!(!START_ACTIVITY.is_empty());
    assert!(!END_ACTIVITY.is_empty());
};
