//! Cross-crate integration: the paper's worked examples end to end.

use wlq::{
    io, paper, Evaluator, IncidentTree, IsLsn, LogIndex, LogStats, Pattern, Query, Strategy, Wid,
};

fn lsns_of(log: &wlq::Log, incident: &wlq::Incident) -> Vec<u64> {
    incident
        .positions()
        .iter()
        .map(|&p| log.record(incident.wid(), p).unwrap().lsn().get())
        .collect()
}

/// E1 — Figure 3 and Example 1: the log's structure and record `l4`.
#[test]
fn e1_figure3_structure_and_example1() {
    let log = paper::figure3_log();
    assert_eq!(log.len(), 20);
    assert_eq!(log.num_instances(), 3);

    let l4 = log.get(wlq::Lsn(4)).unwrap();
    assert_eq!(l4.wid(), Wid(1));
    assert_eq!(l4.is_lsn(), IsLsn(3));
    assert_eq!(l4.activity().as_str(), "CheckIn");
    assert_eq!(
        l4.input().get_or_undefined("balance"),
        wlq::Value::Int(1000)
    );
    assert_eq!(
        l4.output().get_or_undefined("referState"),
        wlq::Value::from("active")
    );

    // The rendered table matches the paper's layout.
    let table = io::text::write_text(&log);
    assert!(table.contains("4 | 1 | 3 | CheckIn"));
}

/// E2 — Figure 4 / Examples 3 & 5: the incident tree and its evaluation.
#[test]
fn e2_incident_tree_and_examples_3_5() {
    let log = paper::figure3_log();
    let index = LogIndex::build(&log);

    // Example 3a: incL(UpdateRefer → GetReimburse) = {{l14, l20}}.
    let p: Pattern = "UpdateRefer -> GetReimburse".parse().unwrap();
    let set = Evaluator::new(&log).evaluate(&p);
    assert_eq!(set.len(), 1);
    assert_eq!(lsns_of(&log, set.iter().next().unwrap()), vec![14, 20]);

    // Example 5: the Figure 4 tree, evaluated post-order.
    let p: Pattern = "SeeDoctor -> (UpdateRefer -> GetReimburse)"
        .parse()
        .unwrap();
    let tree = IncidentTree::from_pattern(&p);
    let (set, trace) = tree.evaluate_traced(&log, &index, Strategy::Optimized);

    // Leaf: incL(SeeDoctor) = {l9, l11, l13, l17}.
    let see_doctor = &trace.nodes[0];
    let leaf_lsns: Vec<u64> = see_doctor
        .incidents
        .iter()
        .flat_map(|o| lsns_of(&log, o))
        .collect();
    assert_eq!(leaf_lsns, vec![9, 11, 13, 17]);

    // Inner node: {l14, l20}. Root: {l13, l14, l20} (Example 3's printed
    // {l13, l14, l19} is an erratum — l19 is TakeTreatment).
    assert_eq!(
        lsns_of(&log, trace.nodes[3].incidents.iter().next().unwrap()),
        vec![14, 20]
    );
    assert_eq!(set.len(), 1);
    assert_eq!(lsns_of(&log, set.iter().next().unwrap()), vec![13, 14, 20]);
}

/// The same query through every evaluation path gives identical results.
#[test]
fn all_evaluation_paths_agree() {
    let log = paper::figure3_log();
    let index = LogIndex::build(&log);
    let battery = [
        "GetRefer ~> CheckIn",
        "SeeDoctor -> (UpdateRefer -> GetReimburse)",
        "(SeeDoctor & PayTreatment) | UpdateRefer",
        "!START ~> GetRefer",
        "START -> END",
    ];
    for src in battery {
        let p: Pattern = src.parse().unwrap();
        let a = Evaluator::with_strategy(&log, Strategy::NaivePaper).evaluate(&p);
        let b = Evaluator::with_strategy(&log, Strategy::Optimized).evaluate(&p);
        let c = IncidentTree::from_pattern(&p).evaluate(&log, &index, Strategy::Optimized);
        let d = wlq::evaluate_parallel(&log, &p, 3, Strategy::Optimized).unwrap();
        let e = Query::new(p.clone()).find(&log).unwrap();
        let f = IncidentTree::from_postfix(wlq::to_postfix(&p))
            .unwrap()
            .evaluate(&log, &index, Strategy::NaivePaper);
        assert_eq!(a, b, "{src}");
        assert_eq!(b, c, "{src}");
        assert_eq!(c, d, "{src}");
        assert_eq!(d, e, "{src}");
        assert_eq!(e, f, "{src}");
    }
}

/// Serialization round-trips compose with evaluation.
#[test]
fn serialization_round_trips_preserve_query_results() {
    let log = paper::figure3_log();
    let p: Pattern = "UpdateRefer -> GetReimburse".parse().unwrap();
    let expected = Evaluator::new(&log).evaluate(&p);

    let text = io::text::write_text(&log);
    let from_text = io::text::read_text(&text).unwrap();
    assert_eq!(Evaluator::new(&from_text).evaluate(&p), expected);

    let csv = io::csv::write_csv(&log);
    let from_csv = io::csv::read_csv(&csv).unwrap();
    assert_eq!(Evaluator::new(&from_csv).evaluate(&p), expected);

    let bin = io::binary::write_binary(&log);
    let from_bin = io::binary::read_binary(bin).unwrap();
    assert_eq!(Evaluator::new(&from_bin).evaluate(&p), expected);
}

/// Lemma 1 output-size bounds hold on the worst-case generator.
#[test]
fn lemma1_output_size_bounds() {
    use wlq::generator::pair_log;
    let log = pair_log("A", 12, "B", 9, false);
    let eval = Evaluator::new(&log);
    let n1 = eval.count(&"A".parse().unwrap());
    let n2 = eval.count(&"B".parse().unwrap());
    assert_eq!((n1, n2), (12, 9));

    // |incL(p1 → p2)| ≤ n1·n2, with equality on the block layout.
    assert_eq!(eval.count(&"A -> B".parse().unwrap()), n1 * n2);
    // |incL(p1 ⊙ p2)| ≤ n1·n2 — here exactly one adjacency.
    assert_eq!(eval.count(&"A ~> B".parse().unwrap()), 1);
    // |incL(p1 ⊗ p2)| ≤ n1 + n2 ≤ n1·n2 (paper states n1·n2).
    assert_eq!(eval.count(&"A | B".parse().unwrap()), n1 + n2);
    // |incL(p1 ⊕ p2)| ≤ n1·n2: disjoint singletons, all pairs qualify.
    assert_eq!(eval.count(&"A & B".parse().unwrap()), n1 * n2);
}

/// Theorem 1's worst-case family grows explosively with k.
#[test]
fn theorem1_worst_case_growth() {
    use wlq::generator::worst_case_log;
    let m = 10;
    let log = worst_case_log("t", m);
    let eval = Evaluator::new(&log);
    let mut previous = 0;
    for k in 0..4 {
        let p = wlq::theorem1_worst_case("t", k);
        let count = eval.count(&p);
        assert!(
            count > previous,
            "k={k}: expected growth, got {count} after {previous}"
        );
        previous = count;
    }
    // k = 1: pairs of distinct records: C(m, 2).
    let pairs = eval.count(&wlq::theorem1_worst_case("t", 1));
    assert_eq!(pairs, m * (m - 1) / 2);
}

/// Query grouping projections work across crates.
#[test]
fn query_projections() {
    let log = paper::figure3_log();
    let q = Query::parse("GetRefer").unwrap();
    let by_instance = q.count_by_instance(&log).unwrap();
    assert_eq!(by_instance.len(), 3);
    let by_hospital = q.count_instances_by_attr(&log, "hospital").unwrap();
    assert_eq!(by_hospital[&wlq::Value::from("Public Hospital")], 2);

    let stats = LogStats::compute(&log);
    assert_eq!(stats.activity_count("GetRefer"), 3);
}

/// The prelude provides a workable surface.
#[test]
fn prelude_compiles_and_works() {
    use wlq::prelude::*;
    let log = wlq::paper::figure3_log();
    let q = Query::parse("SeeDoctor").unwrap();
    assert_eq!(q.count(&log).unwrap(), 4);
    let p: Pattern = "A | B".parse().unwrap();
    assert_eq!(p.op(), Some(Op::Choice));
}

/// The counting DP (`fast_count`) agrees with every other evaluation
/// path on chains over the example log and a simulated one.
#[test]
fn fast_count_agrees_with_all_paths() {
    let fig3 = paper::figure3_log();
    let clinic = wlq::simulate(
        &wlq::scenarios::clinic::model(),
        &wlq::SimulationConfig::new(120, 31),
    );
    for log in [&fig3, &clinic] {
        for src in [
            "GetRefer ~> CheckIn",
            "SeeDoctor -> PayTreatment",
            "SeeDoctor -> PayTreatment -> GetReimburse",
            "!SeeDoctor ~> PayTreatment",
            "START -> UpdateRefer -> GetReimburse -> END",
        ] {
            let p: Pattern = src.parse().unwrap();
            let by_dp = wlq::fast_count(log, &p).expect("chain");
            let by_eval = Evaluator::new(log).count(&p);
            let by_query = Query::new(p.clone()).count(log).unwrap();
            assert_eq!(by_dp, by_eval, "{src}");
            assert_eq!(by_dp, by_query, "{src}");
        }
    }
}

/// Variable bindings resolve to the same incidents as plain evaluation
/// on a simulated log, and every binding points into its incident.
#[test]
fn labelled_patterns_bind_into_their_incidents() {
    let log = wlq::simulate(
        &wlq::scenarios::clinic::model(),
        &wlq::SimulationConfig::new(60, 77),
    );
    let lp = wlq::LabelledPattern::parse("u:UpdateRefer -> r:GetReimburse").unwrap();
    let bound = lp.evaluate(&log);
    let plain = Evaluator::new(&log).evaluate(lp.pattern());
    assert_eq!(bound.len(), plain.len());
    for b in &bound {
        assert!(plain.contains(&b.incident));
        for position in b.bindings.values() {
            assert!(b.incident.contains(*position));
        }
        // The bound records carry the right activities.
        let u = *b.bindings.get("u").unwrap();
        let r = *b.bindings.get("r").unwrap();
        assert!(u < r, "update must precede reimbursement");
    }
}

/// Bounded equivalence agrees with the optimizer: every optimized plan
/// is bounded-equivalent to its input (small patterns).
#[test]
fn optimizer_outputs_are_bounded_equivalent() {
    let log = paper::figure3_log();
    let optimizer = wlq::Optimizer::new(LogStats::compute(&log));
    for src in [
        "SeeDoctor -> UpdateRefer -> GetReimburse",
        "(GetRefer -> CheckIn) | (GetRefer -> SeeDoctor)",
        "SeeDoctor & UpdateRefer",
    ] {
        let p: Pattern = src.parse().unwrap();
        let q = optimizer.optimize(&p);
        assert!(
            wlq::equivalent_up_to(&p, &q, 4).holds(),
            "{src} => {q} distinguished within bound"
        );
    }
}

/// Mining, explain, and find_first compose on a non-clinic scenario.
#[test]
fn mining_and_projections_on_order_scenario() {
    let log = wlq::simulate(
        &wlq::scenarios::order::model(),
        &wlq::SimulationConfig::new(50, 12),
    );
    // Every mined relation with full support must match all 50 instances.
    for relation in wlq::mine_relations(&log, 50) {
        let matched = Evaluator::new(&log)
            .matching_instances(&relation.pattern)
            .len();
        assert_eq!(matched, 50, "{}", relation.pattern);
    }
    // Explain agrees with plain evaluation under both strategies.
    let p: Pattern = "PlaceOrder -> (Ship & CollectPayment)".parse().unwrap();
    for strategy in [Strategy::NaivePaper, Strategy::Optimized] {
        let explain = wlq::Explain::run(&log, &p, true, strategy);
        assert_eq!(explain.incidents, Evaluator::new(&log).evaluate(&p));
    }
    // find_first returns a bounded subset even with optimization on.
    let q = Query::new(p.clone());
    let some = q.find_first(&log, 7);
    assert_eq!(some.len(), 7);
    let all = q.find(&log).unwrap();
    for o in some.iter() {
        assert!(all.contains(o));
    }
}

/// Timeline samples on a simulated log always match prefix evaluation.
#[test]
fn timeline_cross_checks_prefix_evaluation_on_helpdesk() {
    let log = wlq::simulate(
        &wlq::scenarios::helpdesk::model(),
        &wlq::SimulationConfig::new(40, 5),
    );
    let p: Pattern = "Escalate -> Fix -> Close".parse().unwrap();
    for point in wlq::timeline(&log, &p, 97).unwrap() {
        let prefix = log.prefix(point.lsn).unwrap();
        assert_eq!(point.incidents, Evaluator::new(&prefix).count(&p));
    }
}
