//! End-to-end tests of the `wlq` command-line binary.

use std::path::PathBuf;
use std::process::{Command, Output};

fn wlq(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wlq"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn temp_path(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("wlq-cli-test-{}-{name}", std::process::id()));
    path
}

#[test]
fn help_lists_all_commands() {
    let out = wlq(&["help"]);
    assert!(out.status.success());
    let text = stdout(&out);
    for cmd in [
        "simulate", "stats", "validate", "query", "explain", "mine", "check", "conform", "convert",
        "dot",
    ] {
        assert!(text.contains(cmd), "help is missing {cmd}");
    }
}

#[test]
fn example_prints_figure3() {
    let out = wlq(&["example"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("4 | 1 | 3 | CheckIn"));
    assert_eq!(text.lines().count(), 21); // header + 20 records
}

#[test]
fn unknown_command_fails_with_message() {
    let out = wlq(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));
}

#[test]
fn simulate_stats_query_round_trip() {
    let path = temp_path("clinic.csv");
    let path_str = path.to_str().unwrap();

    let out = wlq(&["simulate", "clinic", "25", "7", path_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("25 instances"));

    let out = wlq(&["stats", path_str]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("instances: 25"));

    let out = wlq(&["validate", path_str]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("valid log"));

    let out = wlq(&["query", path_str, "GetRefer ~> CheckIn", "--count"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).trim(), "25");

    let out = wlq(&["query", path_str, "GetRefer ~> CheckIn", "--exists"]);
    assert_eq!(stdout(&out).trim(), "true");

    let out = wlq(&["query", path_str, "CompleteRefer -> GetRefer", "--exists"]);
    assert_eq!(stdout(&out).trim(), "false");

    std::fs::remove_file(&path).ok();
}

#[test]
fn query_flags_and_modes() {
    let path = temp_path("loan.bin");
    let path_str = path.to_str().unwrap();
    let out = wlq(&["simulate", "loan", "10", "3", path_str]);
    assert!(out.status.success(), "{}", stderr(&out));

    // All strategy/optimize/thread combinations agree on the count.
    let baseline = stdout(&wlq(&[
        "query",
        path_str,
        "Submit -> CheckCredit",
        "--count",
    ]));
    for flags in [
        vec!["--count", "--naive"],
        vec!["--count", "--no-optimize"],
        vec!["--count", "--threads", "3"],
    ] {
        let mut args = vec!["query", path_str, "Submit -> CheckCredit"];
        args.extend(flags);
        let out = wlq(&args);
        assert!(out.status.success());
        assert_eq!(stdout(&out), baseline);
    }

    let out = wlq(&["query", path_str, "Submit", "--by-instance"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).lines().count(), 10);

    let out = wlq(&["query", path_str, "Submit ->", "--count"]);
    assert!(!out.status.success());
    // Parse errors point a caret at the offending position.
    assert!(stderr(&out).contains("Submit ->"), "{}", stderr(&out));
    assert!(stderr(&out).contains('^'), "{}", stderr(&out));

    std::fs::remove_file(&path).ok();
}

#[test]
fn explain_and_mine_render_reports() {
    let path = temp_path("order.txt");
    let path_str = path.to_str().unwrap();
    assert!(wlq(&["simulate", "order", "12", "9", path_str])
        .status
        .success());

    let out = wlq(&["explain", path_str, "PlaceOrder -> (Ship & CollectPayment)"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("plan :"));
    assert!(text.contains("total:"));
    // Without --plan, no physical plan section.
    assert!(!text.contains("physical plan:"), "{text}");

    let out = wlq(&[
        "explain",
        path_str,
        "PlaceOrder -> (Ship & CollectPayment)",
        "--plan",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let planned = stdout(&out);
    assert!(planned.contains("physical plan:"), "{planned}");
    assert!(planned.contains("chosen:"), "{planned}");
    assert!(planned.contains("scan PlaceOrder"), "{planned}");

    let out = wlq(&["explain", path_str, "PlaceOrder", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown flag"));

    let out = wlq(&["mine", path_str, "12"]);
    assert!(out.status.success());
    let text = stdout(&out);
    // Every instance places then closes an order.
    assert!(text.contains("PlaceOrder"), "{text}");

    std::fs::remove_file(&path).ok();
}

#[test]
fn conform_detects_conforming_and_violating_logs() {
    let path = temp_path("conform.csv");
    let path_str = path.to_str().unwrap();
    assert!(wlq(&["simulate", "order", "6", "2", path_str])
        .status
        .success());

    let out = wlq(&["conform", "order", path_str]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("log conforms"));

    // The clinic model does not accept order-fulfillment traces.
    let out = wlq(&["conform", "clinic", path_str]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("violate"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn convert_round_trips_across_formats() {
    let text_path = temp_path("conv.txt");
    let csv_path = temp_path("conv.csv");
    let bin_path = temp_path("conv.bin");
    let xes_path = temp_path("conv.xes");
    let (t, c, b, x) = (
        text_path.to_str().unwrap(),
        csv_path.to_str().unwrap(),
        bin_path.to_str().unwrap(),
        xes_path.to_str().unwrap(),
    );
    assert!(wlq(&["simulate", "clinic", "8", "4", t]).status.success());
    assert!(wlq(&["convert", t, c]).status.success());
    assert!(wlq(&["convert", c, b]).status.success());
    assert!(wlq(&["convert", b, x]).status.success());

    // Round-tripped stats agree across all four formats.
    let s1 = stdout(&wlq(&["stats", t]));
    let s3 = stdout(&wlq(&["stats", b]));
    let s4 = stdout(&wlq(&["stats", x]));
    assert_eq!(s1, s3);
    assert_eq!(s1, s4);
    assert!(std::fs::read_to_string(&xes_path)
        .unwrap()
        .contains("<trace>"));

    for path in [text_path, csv_path, bin_path, xes_path] {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn dot_outputs_graphviz() {
    let out = wlq(&["dot", "loan"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("digraph"));
    assert!(text.contains("ManualReview"));

    let out = wlq(&["dot", "nope"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown scenario"));
}

#[test]
fn audit_runs_builtin_and_custom_rule_files() {
    let log_path = temp_path("audit.csv");
    let rules_path = temp_path("audit.rules");
    let (l, r) = (log_path.to_str().unwrap(), rules_path.to_str().unwrap());
    assert!(wlq(&["simulate", "clinic", "60", "11", l]).status.success());

    // Built-in battery.
    let out = wlq(&["audit", l]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("update-before-reimburse"));
    assert!(text.contains("flagged instances:"));

    // Custom rules file.
    std::fs::write(
        &rules_path,
        "visits := SeeDoctor # any visit\nupdated-twice := UpdateRefer -> UpdateRefer\n",
    )
    .unwrap();
    let out = wlq(&["audit", l, r]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("visits"));

    // Broken rules file is rejected with a line number.
    std::fs::write(&rules_path, "oops\n").unwrap();
    let out = wlq(&["audit", l, r]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("line 1"));

    std::fs::remove_file(&log_path).ok();
    std::fs::remove_file(&rules_path).ok();
}

#[test]
fn exit_codes_distinguish_usage_io_and_malformed_logs() {
    // 2 — usage errors: unknown command, unknown scenario, missing args.
    assert_eq!(wlq(&["frobnicate"]).status.code(), Some(2));
    assert_eq!(wlq(&["dot", "nope"]).status.code(), Some(2));
    assert_eq!(wlq(&["query"]).status.code(), Some(2));

    // 4 — file I/O: a path that does not exist.
    let out = wlq(&["stats", "/no/such/dir/wlq-missing.txt"]);
    assert_eq!(out.status.code(), Some(4));
    assert!(stderr(&out).contains("cannot read"));

    // 4 — file I/O: non-UTF-8 bytes where a text format is expected.
    let bad = temp_path("not-utf8.txt");
    std::fs::write(&bad, [0xFFu8, 0xFE, 0x00, 0x9F]).unwrap();
    let out = wlq(&["stats", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(4), "{}", stderr(&out));
    std::fs::remove_file(&bad).ok();

    // 5 — malformed log: an empty file has no records (Definition 2).
    let empty = temp_path("empty.txt");
    std::fs::write(&empty, "").unwrap();
    let out = wlq(&["validate", empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(5), "{}", stderr(&out));
    assert!(stderr(&out).contains("at least one record"));
    std::fs::remove_file(&empty).ok();

    // 5 — malformed log: garbage content names the line.
    let garbage = temp_path("garbage.txt");
    std::fs::write(&garbage, "this is not a log\n").unwrap();
    let out = wlq(&["stats", garbage.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(5));
    assert!(stderr(&out).contains("line 1"), "{}", stderr(&out));
    std::fs::remove_file(&garbage).ok();
}

#[test]
fn exit_codes_distinguish_pattern_rule_and_domain_failures() {
    let path = temp_path("codes.csv");
    let p = path.to_str().unwrap();
    assert!(wlq(&["simulate", "clinic", "5", "1", p]).status.success());

    // 3 — pattern parse failure.
    let out = wlq(&["query", p, "GetRefer ~>", "--count"]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));

    // 3 — rules-file parse failure.
    let rules = temp_path("codes.rules");
    std::fs::write(&rules, "not a rule\n").unwrap();
    let out = wlq(&["audit", p, rules.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    std::fs::remove_file(&rules).ok();

    // 1 — domain failure: the log violates the checked model.
    let out = wlq(&["conform", "order", p]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    assert!(stderr(&out).contains("violate"));

    // 0 — and the same log conforms to its own model.
    assert_eq!(wlq(&["conform", "clinic", p]).status.code(), Some(0));

    std::fs::remove_file(&path).ok();
}

#[test]
fn check_reports_lints_with_carets_and_exit_codes() {
    // A clean pattern exits 0 and reports zero findings.
    let out = wlq(&["check", "SeeDoctor -> PayTreatment"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("0 error(s), 0 warning(s), 0 hint(s)"));

    // An unsatisfiable pattern exits 1 with a span-anchored error.
    let out = wlq(&["check", "CheckIn -> START"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("error[WLQ001]"), "{text}");
    assert!(text.contains("CheckIn -> START"), "{text}");
    assert!(text.contains("^^^^^"), "{text}");
    assert!(text.contains("pattern is unsatisfiable"), "{text}");

    // Warnings pass by default but fail under --deny-warnings.
    let out = wlq(&["check", "A | A"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("warning[WLQ102]"));
    let out = wlq(&["check", "A | A", "--deny-warnings"]);
    assert_eq!(out.status.code(), Some(1), "{}", stderr(&out));

    // Hints never fail, even under --deny-warnings.
    let out = wlq(&["check", "A & A", "--deny-warnings"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("hint[WLQ103]"));

    // A parse error exits 3 with a caret.
    let out = wlq(&["check", "A -> "]);
    assert_eq!(out.status.code(), Some(3), "{}", stderr(&out));
    assert!(stderr(&out).contains('^'), "{}", stderr(&out));

    // Unknown flags are usage errors.
    assert_eq!(wlq(&["check", "A", "--bogus"]).status.code(), Some(2));
    assert_eq!(wlq(&["check"]).status.code(), Some(2));
}

#[test]
fn check_with_log_and_json_output() {
    let path = temp_path("check.csv");
    let p = path.to_str().unwrap();
    assert!(wlq(&["simulate", "clinic", "10", "5", p]).status.success());

    // Log-aware lint: an activity the log never records.
    let out = wlq(&["check", "NoSuchStep ~> SeeDoctor", "--log", p]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("warning[WLQ101]"), "{}", stdout(&out));

    // JSON output is a single line with the stable envelope.
    let out = wlq(&[
        "check",
        "NoSuchStep ~> SeeDoctor",
        "--log",
        p,
        "--format",
        "json",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    let json = stdout(&out);
    assert_eq!(json.trim().lines().count(), 1);
    assert!(json.starts_with("{\"version\":1,"), "{json}");
    assert!(json.contains("\"code\":\"WLQ101\""), "{json}");
    assert!(json.contains("\"unsatisfiable\":false"), "{json}");

    // A tiny cost budget triggers WLQ105 with a rewrite suggestion.
    let out = wlq(&[
        "check",
        "SeeDoctor -> PayTreatment",
        "--log",
        p,
        "--cost-budget",
        "1",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr(&out));
    assert!(stdout(&out).contains("warning[WLQ105]"), "{}", stdout(&out));

    std::fs::remove_file(&path).ok();
}

#[test]
fn timeline_and_spans_commands() {
    let path = temp_path("timeline.csv");
    let p = path.to_str().unwrap();
    assert!(wlq(&["simulate", "clinic", "30", "6", p]).status.success());

    let out = wlq(&["timeline", p, "UpdateRefer -> GetReimburse", "50"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("up to lsn"));
    assert!(text.lines().count() >= 3);

    // Default step (a tenth of the log) also works.
    let out = wlq(&["timeline", p, "SeeDoctor"]);
    assert!(out.status.success());

    let out = wlq(&["spans", p, "GetRefer -> GetReimburse"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("span min"));

    let out = wlq(&["spans", p, "NoSuchActivity"]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).trim(), "no incidents");

    std::fs::remove_file(&path).ok();
}

#[test]
fn explain_analyze_prints_per_node_actuals() {
    let path = temp_path("analyze.csv");
    let p = path.to_str().unwrap();
    assert!(wlq(&["simulate", "clinic", "15", "4", p]).status.success());

    // Positional form.
    let out = wlq(&["explain", p, "UpdateRefer -> GetReimburse", "--analyze"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    for needle in [
        "query    :",
        "strategy : planned",
        "q-err  node",
        "scan UpdateRefer",
        "scan GetReimburse",
        "workers:",
        "total    :",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in {text}");
    }

    // Flag form (`--analyze <pattern> --log <file>`), parallel, with a
    // trace written next to the table.
    let trace_path = temp_path("analyze.jsonl");
    let t = trace_path.to_str().unwrap();
    let out = wlq(&[
        "explain",
        "--analyze",
        "GetRefer ~> CheckIn",
        "--log",
        p,
        "--threads",
        "2",
        "--trace-out",
        t,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("wrote trace"));

    // The written trace passes trace-check.
    let out = wlq(&["trace-check", t]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stdout(&out).contains("valid trace: version 1"));

    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&trace_path).ok();
}

#[test]
fn explain_flag_conflicts_are_usage_errors() {
    let path = temp_path("analyze-err.csv");
    let p = path.to_str().unwrap();
    assert!(wlq(&["simulate", "clinic", "5", "1", p]).status.success());

    let out = wlq(&["explain", p, "SeeDoctor", "--plan", "--analyze"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("mutually exclusive"));

    let out = wlq(&["explain", p, "SeeDoctor", "--trace-out", "/tmp/x.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--trace-out requires --analyze"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn query_profile_answers_then_profiles() {
    let path = temp_path("profile.csv");
    let p = path.to_str().unwrap();
    assert!(wlq(&["simulate", "clinic", "20", "9", p]).status.success());

    // The mode answer must match the unprofiled run exactly.
    let plain = wlq(&["query", p, "GetRefer ~> CheckIn", "--count"]);
    let profiled = wlq(&["query", p, "GetRefer ~> CheckIn", "--count", "--profile"]);
    assert!(profiled.status.success(), "{}", stderr(&profiled));
    let text = stdout(&profiled);
    assert_eq!(
        text.lines().next().unwrap(),
        stdout(&plain).trim(),
        "profiled count diverged"
    );
    assert!(text.contains("strategy : planned"));
    assert!(text.contains("q-err  node"));

    // --naive routes the profiled run through the paper's operators.
    let out = wlq(&["query", p, "SeeDoctor", "--profile", "--naive", "--exists"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("strategy : naive-paper"));

    std::fs::remove_file(&path).ok();
}

#[test]
fn trace_check_rejects_invalid_traces() {
    let path = temp_path("bad.jsonl");
    let p = path.to_str().unwrap();
    std::fs::write(&path, "{\"event\":\"trace_begin\",\"version\":99}\n").unwrap();
    let out = wlq(&["trace-check", p]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr(&out).contains("invalid trace"));

    let out = wlq(&["trace-check", "/nonexistent/trace.jsonl"]);
    assert_eq!(out.status.code(), Some(4));

    std::fs::remove_file(&path).ok();
}
