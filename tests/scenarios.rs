//! Scenario-level acceptance tests: each shipped workflow model, enacted
//! at scale, answers its domain's questions correctly through the query
//! language alone (no peeking at the simulator's internals).

use wlq::prelude::*;
use wlq::{analyses, scenarios};

#[test]
fn clinic_referral_protocol_is_visible_through_queries() {
    let log = simulate(
        &scenarios::clinic::model(),
        &SimulationConfig::new(300, 101),
    );
    let eval = Evaluator::new(&log);

    // Protocol: every instance begins START ~> GetRefer ~> CheckIn.
    let opening: Pattern = "START ~> GetRefer ~> CheckIn".parse().unwrap();
    assert_eq!(eval.matching_instances(&opening).len(), 300);

    // Payments imply a visit: SeeDoctor ~> PayTreatment covers every
    // payment.
    let pays = eval.count(&"PayTreatment".parse().unwrap());
    let visits_then_pay = eval.count(&"SeeDoctor ~> PayTreatment".parse().unwrap());
    assert_eq!(pays, visits_then_pay);

    // Completion follows reimbursement consecutively in this model.
    let complete = eval.count(&"CompleteRefer".parse().unwrap());
    let reimburse_then_complete = eval.count(&"GetReimburse ~> CompleteRefer".parse().unwrap());
    assert_eq!(complete, reimburse_then_complete);
}

#[test]
fn clinic_anomaly_rates_are_plausible() {
    let log = simulate(
        &scenarios::clinic::model(),
        &SimulationConfig::new(500, 202),
    );
    // Updates before reimbursement occur in a meaningful minority of
    // instances (the loop enters UpdateRefer with weight 0.15).
    let anomalous = analyses::update_before_reimburse(&log).unwrap();
    assert!(
        anomalous.len() > 25 && anomalous.len() < 475,
        "implausible anomaly count {}",
        anomalous.len()
    );
    // Updating *after* reimbursement is impossible in this model: the
    // loop is left for good once GetReimburse runs.
    assert!(analyses::update_after_reimburse(&log).unwrap().is_empty());
}

#[test]
fn clinic_high_balance_analysis_matches_threshold_semantics() {
    let log = simulate(
        &scenarios::clinic::model(),
        &SimulationConfig::new(200, 303),
    );
    // Balances are drawn from 500..=8000, updates add 3000 each.
    let over_zero = analyses::high_balance_referrals(&log, 0).unwrap();
    assert_eq!(over_zero.len(), 200, "every referral has positive balance");
    let over_max = analyses::high_balance_referrals(&log, 1_000_000).unwrap();
    assert!(over_max.is_empty());
    // Monotonicity in the threshold.
    let t1 = analyses::high_balance_referrals(&log, 2000).unwrap().len();
    let t2 = analyses::high_balance_referrals(&log, 6000).unwrap().len();
    assert!(t1 >= t2);
}

#[test]
fn order_join_semantics_are_queryable() {
    let log = simulate(&scenarios::order::model(), &SimulationConfig::new(150, 404));
    let eval = Evaluator::new(&log);
    // CloseOrder strictly after both Ship and CollectPayment:
    let both_then_close: Pattern = "(Ship & CollectPayment) -> CloseOrder".parse().unwrap();
    assert_eq!(eval.matching_instances(&both_then_close).len(), 150);
    // An order is never shipped twice.
    assert_eq!(eval.count(&"Ship -> Ship".parse().unwrap()), 0);
}

#[test]
fn loan_every_instance_reaches_a_terminal_decision() {
    let log = simulate(&scenarios::loan::model(), &SimulationConfig::new(300, 505));
    let eval = Evaluator::new(&log);
    let disbursed: std::collections::BTreeSet<Wid> = eval
        .matching_instances(&"Disburse ~> END".parse().unwrap())
        .into_iter()
        .collect();
    let rejected_final: std::collections::BTreeSet<Wid> = eval
        .matching_instances(&"Reject -> END".parse().unwrap())
        .into_iter()
        .collect();
    // Every instance ends disbursed or rejected; none both ways at END.
    let union: Vec<_> = disbursed.union(&rejected_final).collect();
    assert_eq!(union.len(), 300);
    // A loan that disbursed was never rejected *after* signing.
    assert_eq!(eval.count(&"SignContract -> Reject".parse().unwrap()), 0);
}

#[test]
fn loan_appeals_reenter_review() {
    let log = simulate(&scenarios::loan::model(), &SimulationConfig::new(400, 606));
    let eval = Evaluator::new(&log);
    let appeals = eval.count(&"Appeal".parse().unwrap());
    let appeal_then_review = eval.count(&"Appeal ~> ManualReview".parse().unwrap());
    assert_eq!(appeals, appeal_then_review, "every appeal goes to review");
    assert!(appeals > 0, "seed produced no appeals; pick another seed");
}

#[test]
fn scenario_logs_are_deterministic_and_distinct() {
    for model in [
        scenarios::clinic::model(),
        scenarios::order::model(),
        scenarios::loan::model(),
    ] {
        let a = simulate(&model, &SimulationConfig::new(25, 1));
        let b = simulate(&model, &SimulationConfig::new(25, 1));
        assert_eq!(a, b, "{} not deterministic", model.name());
        let c = simulate(&model, &SimulationConfig::new(25, 2));
        assert_ne!(a, c, "{} ignores its seed", model.name());
    }
}

#[test]
fn injected_drift_is_caught_by_conformance() {
    use wlq::generator::inject_reorder_anomalies;
    let model = scenarios::clinic::model();
    let clean = simulate(&model, &SimulationConfig::new(80, 42));
    assert!(model.check_log(&clean).is_conforming());

    let (drifted, tampered) = inject_reorder_anomalies(&clean, 0.5, 13);
    let report = model.check_log(&drifted);
    let violations = report.violations();
    // Soundness: only tampered instances may violate.
    for wid in &violations {
        assert!(tampered.contains(wid));
    }
    // Sensitivity: a decent share of the tampering is detectable (some
    // reorders are behaviour-preserving, so 100% recall is impossible).
    assert!(
        violations.len() * 2 >= tampered.len() / 2,
        "only {} of {} tampered instances detected",
        violations.len(),
        tampered.len()
    );
}
