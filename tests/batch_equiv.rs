//! Equivalence suite for the flat arena-backed evaluation path.
//!
//! Random logs × random patterns (depth ≤ 4): [`Strategy::NaivePaper`],
//! [`Strategy::Optimized`], and [`Strategy::Batch`] must produce identical
//! incident sets, and the batch evaluator's ref-based `count`/`exists`
//! (which never materialise an incident) must agree with the materialised
//! answers. Deeper trees than `laws.rs` samples, because the batch path
//! recycles operator batches through its arena at every internal node —
//! depth is exactly what stresses the recycling.

use proptest::prelude::*;

use wlq::{attrs, Evaluator, Log, LogBuilder, Op, Pattern, Strategy as EvalStrategy};

const ALPHABET: [&str; 4] = ["A", "B", "C", "D"];

/// Random patterns over the alphabet, depth ≤ 4 (up to 16 leaves).
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    let leaf = prop_oneof![
        4 => (0..ALPHABET.len()).prop_map(|i| Pattern::atom(ALPHABET[i])),
        1 => (0..ALPHABET.len()).prop_map(|i| Pattern::not_atom(ALPHABET[i])),
    ];
    leaf.prop_recursive(4, 16, 2, |inner| {
        (0..4u8, inner.clone(), inner).prop_map(|(op, l, r)| {
            let op = match op {
                0 => Op::Consecutive,
                1 => Op::Sequential,
                2 => Op::Choice,
                _ => Op::Parallel,
            };
            Pattern::binary(op, l, r)
        })
    })
}

/// Random logs: 1–4 instances, each 0–10 task records, interleaved.
fn arb_log() -> impl Strategy<Value = Log> {
    prop::collection::vec(prop::collection::vec(0..ALPHABET.len(), 0..10), 1..5).prop_map(
        |instances| {
            let mut b = LogBuilder::new();
            let wids: Vec<_> = instances.iter().map(|_| b.start_instance()).collect();
            let longest = instances.iter().map(Vec::len).max().unwrap_or(0);
            for step in 0..longest {
                for (i, acts) in instances.iter().enumerate() {
                    if let Some(&a) = acts.get(step) {
                        b.append(wids[i], ALPHABET[a], attrs! {}, attrs! {})
                            .unwrap();
                    }
                }
            }
            b.build().unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// All three strategies compute the same `incL(p)`.
    #[test]
    fn batch_equals_naive_and_optimized(log in arb_log(), p in arb_pattern()) {
        let naive = Evaluator::with_strategy(&log, EvalStrategy::NaivePaper).evaluate(&p);
        let optimized = Evaluator::with_strategy(&log, EvalStrategy::Optimized).evaluate(&p);
        let batch = Evaluator::with_strategy(&log, EvalStrategy::Batch).evaluate(&p);
        prop_assert_eq!(&naive, &optimized, "optimized diverged on {}", &p);
        prop_assert_eq!(&naive, &batch, "batch diverged on {}", &p);
    }

    /// Ref-based counting and existence agree with materialised results.
    #[test]
    fn batch_count_and_exists_need_no_materialisation(log in arb_log(), p in arb_pattern()) {
        let reference = Evaluator::with_strategy(&log, EvalStrategy::Optimized);
        let batch = Evaluator::with_strategy(&log, EvalStrategy::Batch);
        prop_assert_eq!(reference.count(&p), batch.count(&p), "count diverged on {}", &p);
        prop_assert_eq!(reference.exists(&p), batch.exists(&p), "exists diverged on {}", &p);
        prop_assert_eq!(
            reference.matching_instances(&p),
            batch.matching_instances(&p),
            "matching_instances diverged on {}",
            &p
        );
    }

    /// Per-instance batch evaluation round-trips through the flat layout:
    /// the converted incidents equal the classic per-instance evaluation,
    /// already sorted and deduplicated.
    #[test]
    fn instance_batches_are_finished(log in arb_log(), p in arb_pattern()) {
        let reference = Evaluator::with_strategy(&log, EvalStrategy::Optimized);
        let batch = Evaluator::with_strategy(&log, EvalStrategy::Batch);
        for wid in log.wids() {
            let flat = batch.evaluate_instance_batch(&p, wid);
            flat.debug_check_invariants();
            let incidents = flat.into_incidents();
            prop_assert!(incidents.windows(2).all(|w| w[0] < w[1]), "unfinished batch for {}", &p);
            prop_assert_eq!(&incidents, &reference.evaluate_instance(&p, wid));
        }
    }

    /// Parallel batch evaluation (per-worker arenas) equals sequential.
    #[test]
    fn parallel_batch_workers_agree(log in arb_log(), p in arb_pattern()) {
        let sequential = Evaluator::with_strategy(&log, EvalStrategy::Batch).evaluate(&p);
        let parallel = wlq::evaluate_parallel(&log, &p, 3, EvalStrategy::Batch).unwrap();
        prop_assert_eq!(sequential, parallel, "parallel batch diverged on {}", &p);
    }
}
