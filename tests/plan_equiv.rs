//! Plan-equivalence suite for the cost-based query planner.
//!
//! Random logs × random patterns (depth ≤ 4): every rewrite candidate the
//! planner enumerates (Theorems 2–5) must evaluate to exactly the same
//! `incL(p)` as the original pattern, and the chosen physical plan — with
//! its per-node operator selection and `count`/`exists` routing — must
//! agree with the paper-faithful naive evaluation.

use proptest::prelude::*;

use wlq::{attrs, Evaluator, Log, LogBuilder, Op, Pattern, Planner, Strategy as EvalStrategy};

const ALPHABET: [&str; 4] = ["A", "B", "C", "D"];

/// Random patterns over the alphabet, depth ≤ 4 (up to 16 leaves).
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    let leaf = prop_oneof![
        4 => (0..ALPHABET.len()).prop_map(|i| Pattern::atom(ALPHABET[i])),
        1 => (0..ALPHABET.len()).prop_map(|i| Pattern::not_atom(ALPHABET[i])),
    ];
    leaf.prop_recursive(4, 16, 2, |inner| {
        (0..4u8, inner.clone(), inner).prop_map(|(op, l, r)| {
            let op = match op {
                0 => Op::Consecutive,
                1 => Op::Sequential,
                2 => Op::Choice,
                _ => Op::Parallel,
            };
            Pattern::binary(op, l, r)
        })
    })
}

/// Random logs: 1–4 instances, each 0–10 task records, interleaved.
fn arb_log() -> impl Strategy<Value = Log> {
    prop::collection::vec(prop::collection::vec(0..ALPHABET.len(), 0..10), 1..5).prop_map(
        |instances| {
            let mut b = LogBuilder::new();
            let wids: Vec<_> = instances.iter().map(|_| b.start_instance()).collect();
            let longest = instances.iter().map(Vec::len).max().unwrap_or(0);
            for step in 0..longest {
                for (i, acts) in instances.iter().enumerate() {
                    if let Some(&a) = acts.get(step) {
                        b.append(wids[i], ALPHABET[a], attrs! {}, attrs! {})
                            .unwrap();
                    }
                }
            }
            b.build().unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Theorem 2–5 rewrites are semantics-preserving: every candidate tree
    /// the planner enumerates has the same incident set as the original.
    #[test]
    fn every_rewrite_candidate_preserves_incidents(log in arb_log(), p in arb_pattern()) {
        let reference = Evaluator::with_strategy(&log, EvalStrategy::NaivePaper);
        let expected = reference.evaluate(&p);
        let planner = Planner::from_log(&log);
        for candidate in planner.candidates(&p) {
            let got = reference.evaluate(&candidate.pattern);
            prop_assert_eq!(
                &expected,
                &got,
                "rewrite {} ({}) of {} changed incL(p)",
                &candidate.pattern,
                candidate.rule,
                &p
            );
        }
    }

    /// The chosen physical plan — rewrite plus per-node operators — still
    /// computes exactly `incL(p)`, whichever candidate won.
    #[test]
    fn planned_execution_matches_naive(log in arb_log(), p in arb_pattern()) {
        let naive = Evaluator::with_strategy(&log, EvalStrategy::NaivePaper);
        let planned = Evaluator::with_strategy(&log, EvalStrategy::Planned);
        let expected = naive.evaluate(&p);
        let got = planned.evaluate(&p);
        prop_assert_eq!(&expected, &got, "planned evaluation diverged on {}", &p);
        // count/exists go through their own routing (counting DP for
        // chains, ref counting otherwise) — check them independently.
        prop_assert_eq!(expected.len(), planned.count(&p), "planned count diverged on {}", &p);
        prop_assert_eq!(
            !expected.is_empty(),
            planned.exists(&p),
            "planned exists diverged on {}",
            &p
        );
    }
}
