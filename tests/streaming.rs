//! Streaming (incremental) evaluation equals batch evaluation —
//! property-tested over random logs and patterns, plus scenario replays.

use proptest::prelude::{
    prop, prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, Strategy,
};

use wlq::prelude::*;
use wlq::{attrs, scenarios, LogBuilder, Strategy as EvalStrategy};

const ALPHABET: [&str; 3] = ["A", "B", "C"];

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    let leaf = prop_oneof![
        4 => (0..ALPHABET.len()).prop_map(|i| Pattern::atom(ALPHABET[i])),
        1 => (0..ALPHABET.len()).prop_map(|i| Pattern::not_atom(ALPHABET[i])),
    ];
    leaf.prop_recursive(3, 8, 2, |inner| {
        (0..4u8, inner.clone(), inner).prop_map(|(op, l, r)| {
            let op = match op {
                0 => Op::Consecutive,
                1 => Op::Sequential,
                2 => Op::Choice,
                _ => Op::Parallel,
            };
            Pattern::binary(op, l, r)
        })
    })
}

fn arb_log() -> impl Strategy<Value = Log> {
    prop::collection::vec(prop::collection::vec(0..ALPHABET.len(), 0..7), 1..4).prop_map(
        |instances| {
            let mut b = LogBuilder::new();
            let wids: Vec<_> = instances.iter().map(|_| b.start_instance()).collect();
            let longest = instances.iter().map(Vec::len).max().unwrap_or(0);
            for step in 0..longest {
                for (i, acts) in instances.iter().enumerate() {
                    if let Some(&a) = acts.get(step) {
                        b.append(wids[i], ALPHABET[a], attrs! {}, attrs! {})
                            .unwrap();
                    }
                }
            }
            b.build().unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Replaying a log record-by-record accumulates exactly the batch
    /// incident set, and the per-append deltas partition it.
    #[test]
    fn streaming_equals_batch(log in arb_log(), p in arb_pattern()) {
        let mut stream = StreamingEvaluator::new(p.clone());
        let mut delta_union = IncidentSet::new();
        for record in log.iter() {
            for incident in stream.append(record).unwrap() {
                // Deltas are disjoint: nothing is reported twice.
                prop_assert!(delta_union.insert(incident));
            }
        }
        let batch = Evaluator::new(&log).evaluate(&p);
        prop_assert_eq!(stream.incidents(), batch.clone());
        prop_assert_eq!(delta_union, batch);
    }

    /// Both strategies drive the streaming evaluator identically.
    #[test]
    fn streaming_strategies_agree(log in arb_log(), p in arb_pattern()) {
        let mut a = StreamingEvaluator::with_strategy(p.clone(), EvalStrategy::NaivePaper);
        let mut b = StreamingEvaluator::with_strategy(p, EvalStrategy::Optimized);
        for record in log.iter() {
            let da = a.append(record).unwrap();
            let db = b.append(record).unwrap();
            prop_assert_eq!(da, db);
        }
        prop_assert_eq!(a.incidents(), b.incidents());
    }
}

#[test]
fn streaming_matches_batch_on_scenarios() {
    for (model, seed) in [
        (scenarios::clinic::model(), 31),
        (scenarios::order::model(), 32),
        (scenarios::loan::model(), 33),
    ] {
        let log = simulate(&model, &SimulationConfig::new(40, seed));
        let patterns = ["START -> END", "!START ~> !END", "START ~> !END"];
        for src in patterns {
            let p: Pattern = src.parse().unwrap();
            let mut stream = StreamingEvaluator::new(p.clone());
            for record in log.iter() {
                stream.append(record).unwrap();
            }
            let batch = Evaluator::new(&log).evaluate(&p);
            assert_eq!(stream.incidents(), batch, "{} on {}", src, model.name());
        }
    }
}

#[test]
fn monitors_fire_exactly_once_per_incident() {
    let log = simulate(&scenarios::clinic::model(), &SimulationConfig::new(100, 55));
    let p: Pattern = "UpdateRefer -> GetReimburse".parse().unwrap();
    let mut stream = StreamingEvaluator::new(p.clone());
    let mut fired = 0usize;
    for record in log.iter() {
        fired += stream.append(record).unwrap().len();
    }
    assert_eq!(fired, Evaluator::new(&log).evaluate(&p).len());
}

#[test]
fn shared_evaluator_supports_concurrent_instances() {
    let log = simulate(&scenarios::order::model(), &SimulationConfig::new(24, 8));
    let shared = wlq::SharedStreamingEvaluator::new("Ship & CollectPayment".parse().unwrap());
    crossbeam_scope(&log, &shared);
    let batch = Evaluator::new(&log).evaluate(&"Ship & CollectPayment".parse().unwrap());
    assert_eq!(shared.incidents(), batch);
}

/// Appends each instance's records from its own thread (per-instance order
/// is all the streaming evaluator requires).
fn crossbeam_scope(log: &Log, shared: &wlq::SharedStreamingEvaluator) {
    std::thread::scope(|scope| {
        for wid in log.wids() {
            let records: Vec<_> = log.instance(wid).cloned().collect();
            scope.spawn(move || {
                for r in records {
                    shared.append(&r).unwrap();
                }
            });
        }
    });
}
