//! Exhaustive small-scope verification (bounded model checking).
//!
//! Property tests sample; these tests *enumerate*. Over every
//! single-instance log up to length 5 on the alphabet `{A, B}` (and every
//! two-instance split of those), and every pattern in a bounded family,
//! we verify:
//!
//! * the Theorems 2–5 laws hold exactly,
//! * the naive, optimized, and flat-batch strategies agree,
//! * the streaming evaluator agrees with batch.
//!
//! Within these bounds the theorems are *proved* for this implementation,
//! not just sampled.

use wlq::{attrs, Evaluator, Log, LogBuilder, Op, Pattern, Strategy, StreamingEvaluator};

const ALPHABET: [&str; 2] = ["A", "B"];
const MAX_LEN: usize = 5;

/// Every single-instance log with 0..=MAX_LEN task records over {A, B}.
fn all_single_instance_logs() -> Vec<Log> {
    let mut logs = Vec::new();
    for len in 0..=MAX_LEN {
        for mask in 0..(1usize << len) {
            let mut b = LogBuilder::new();
            let w = b.start_instance();
            for bit in 0..len {
                let act = ALPHABET[(mask >> bit) & 1];
                b.append(w, act, attrs! {}, attrs! {}).unwrap();
            }
            logs.push(b.build().unwrap());
        }
    }
    logs
}

/// All atomic patterns over the alphabet (positive and negated).
fn atoms() -> Vec<Pattern> {
    let mut out = Vec::new();
    for a in ALPHABET {
        out.push(Pattern::atom(a));
        out.push(Pattern::not_atom(a));
    }
    out
}

/// All patterns with exactly one operator over atomic operands.
fn depth2() -> Vec<Pattern> {
    let mut out = Vec::new();
    for op in Op::ALL {
        for l in atoms() {
            for r in atoms() {
                out.push(Pattern::binary(op, l.clone(), r));
            }
        }
    }
    out
}

#[test]
fn exhaustive_theorem2_associativity_on_atoms() {
    let logs = all_single_instance_logs();
    let atoms = atoms();
    for op in Op::ALL {
        for p1 in &atoms {
            for p2 in &atoms {
                for p3 in &atoms {
                    let left = Pattern::binary(
                        op,
                        Pattern::binary(op, p1.clone(), p2.clone()),
                        p3.clone(),
                    );
                    let right = Pattern::binary(
                        op,
                        p1.clone(),
                        Pattern::binary(op, p2.clone(), p3.clone()),
                    );
                    for log in &logs {
                        let eval = Evaluator::new(log);
                        assert_eq!(
                            eval.evaluate(&left),
                            eval.evaluate(&right),
                            "T2 failed: {left} vs {right} on {log}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn exhaustive_theorem4_mixed_associativity_on_atoms() {
    let logs = all_single_instance_logs();
    let atoms = atoms();
    for (t1, t2) in [
        (Op::Consecutive, Op::Sequential),
        (Op::Sequential, Op::Consecutive),
    ] {
        for p1 in &atoms {
            for p2 in &atoms {
                for p3 in &atoms {
                    let a = Pattern::binary(
                        t1,
                        p1.clone(),
                        Pattern::binary(t2, p2.clone(), p3.clone()),
                    );
                    let b = Pattern::binary(
                        t2,
                        Pattern::binary(t1, p1.clone(), p2.clone()),
                        p3.clone(),
                    );
                    for log in &logs {
                        let eval = Evaluator::new(log);
                        assert_eq!(
                            eval.evaluate(&a),
                            eval.evaluate(&b),
                            "T4 failed: {a} vs {b} on {log}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn exhaustive_theorem3_commutativity_on_depth2() {
    let logs = all_single_instance_logs();
    for p in depth2() {
        let Pattern::Binary {
            op,
            ref left,
            ref right,
        } = p
        else {
            unreachable!()
        };
        if !op.is_commutative() {
            continue;
        }
        let swapped = Pattern::binary(op, right.as_ref().clone(), left.as_ref().clone());
        for log in &logs {
            let eval = Evaluator::new(log);
            assert_eq!(eval.evaluate(&p), eval.evaluate(&swapped), "T3 failed: {p}");
        }
    }
}

#[test]
fn exhaustive_theorem5_distributivity_on_atoms() {
    let logs = all_single_instance_logs();
    let atoms = atoms();
    for op in Op::ALL {
        for p1 in &atoms {
            for p2 in &atoms {
                for p3 in &atoms {
                    // Left distributivity.
                    let lhs = Pattern::binary(op, p1.clone(), p2.clone().alt(p3.clone()));
                    let rhs = Pattern::binary(op, p1.clone(), p2.clone()).alt(Pattern::binary(
                        op,
                        p1.clone(),
                        p3.clone(),
                    ));
                    // Right distributivity.
                    let lhs2 = Pattern::binary(op, p1.clone().alt(p2.clone()), p3.clone());
                    let rhs2 = Pattern::binary(op, p1.clone(), p3.clone()).alt(Pattern::binary(
                        op,
                        p2.clone(),
                        p3.clone(),
                    ));
                    for log in &logs {
                        let eval = Evaluator::new(log);
                        assert_eq!(eval.evaluate(&lhs), eval.evaluate(&rhs), "T5L: {lhs}");
                        assert_eq!(eval.evaluate(&lhs2), eval.evaluate(&rhs2), "T5R: {lhs2}");
                    }
                }
            }
        }
    }
}

#[test]
fn exhaustive_strategies_agree_on_depth2() {
    let logs = all_single_instance_logs();
    for p in depth2() {
        for log in &logs {
            let naive = Evaluator::with_strategy(log, Strategy::NaivePaper).evaluate(&p);
            let optimized = Evaluator::with_strategy(log, Strategy::Optimized).evaluate(&p);
            let batch = Evaluator::with_strategy(log, Strategy::Batch).evaluate(&p);
            assert_eq!(naive, optimized, "strategy mismatch: {p} on {log}");
            assert_eq!(naive, batch, "batch strategy mismatch: {p} on {log}");
        }
    }
}

#[test]
fn exhaustive_streaming_agrees_on_depth2() {
    let logs = all_single_instance_logs();
    for p in depth2() {
        for log in &logs {
            let mut stream = StreamingEvaluator::new(p.clone());
            for record in log.iter() {
                stream.append(record).unwrap();
            }
            let batch = Evaluator::new(log).evaluate(&p);
            assert_eq!(
                stream.incidents(),
                batch,
                "streaming mismatch: {p} on {log}"
            );
        }
    }
}

#[test]
fn exhaustive_two_instance_splits_behave_like_projections() {
    // Splitting a trace over two instances: incidents never cross
    // instances, so evaluating on the interleaved two-instance log equals
    // the union of evaluating each instance's projection.
    let atoms = atoms();
    for len in 0..=4usize {
        for mask in 0..(1usize << len) {
            for split in 0..(1usize << len) {
                let mut b = LogBuilder::new();
                let w1 = b.start_instance();
                let w2 = b.start_instance();
                for bit in 0..len {
                    let act = ALPHABET[(mask >> bit) & 1];
                    let w = if (split >> bit) & 1 == 0 { w1 } else { w2 };
                    b.append(w, act, attrs! {}, attrs! {}).unwrap();
                }
                let log = b.build().unwrap();
                for a in &atoms {
                    for bpat in &atoms {
                        let p = a.clone().seq(bpat.clone());
                        let eval = Evaluator::new(&log);
                        let whole = eval.evaluate(&p);
                        let mut by_parts = 0usize;
                        for wid in log.wids() {
                            by_parts += eval.evaluate_instance(&p, wid).len();
                        }
                        assert_eq!(whole.len(), by_parts, "{p} on {log}");
                    }
                }
            }
        }
    }
}
