//! Malformed-input coverage at the facade level: parser errors carry
//! line positions, `Log::merge` handles wid collisions and renumbers
//! lsns, and the structural validators surface typed errors (never
//! panics) for every Definition 2 violation reachable through parsing.

use wlq::{attrs, io::text::read_text, IsLsn, Log, LogBuilder, LogError, Lsn, ParseLogError, Wid};

fn two_instance_log(first: &str, second: &str) -> Log {
    let mut b = LogBuilder::new();
    let w1 = b.start_instance();
    let w2 = b.start_instance();
    b.append(w1, first, attrs! {}, attrs! {}).unwrap();
    b.append(w2, second, attrs! {}, attrs! {}).unwrap();
    b.end_instance(w1).unwrap();
    b.end_instance(w2).unwrap();
    b.build().unwrap()
}

// ---------------------------------------------------------------- parser

#[test]
fn parse_errors_carry_the_offending_line_number() {
    // Line 1 is the header, line 2 is fine, line 3 is short a field.
    let text = "\
lsn | wid | is-lsn | t | in | out
1 | 1 | 1 | START | - | -
2 | 1 | 2 | A | -
";
    let err = read_text(text).unwrap_err();
    match err {
        ParseLogError::BadShape { line, ref message } => {
            assert_eq!(line, 3);
            assert!(
                message.contains("6"),
                "message explains the shape: {message}"
            );
        }
        other => panic!("expected BadShape, got {other:?}"),
    }
    assert!(err.to_string().starts_with("line 3:"), "{err}");
}

#[test]
fn blank_and_comment_lines_still_count_for_positions() {
    let text = "\
# comment on line 1

3 | 1 | 1 | START | - | -
";
    // Line 3 holds the bad record (lsn 3 in a 1-record log).
    let err = read_text(text).unwrap_err();
    assert!(matches!(
        err,
        ParseLogError::Invalid(LogError::LsnGap { .. })
    ));
}

#[test]
fn bad_numbers_report_line_field_and_text() {
    let text = "1 | 1 | 1 | START | - | -\n2 | one | 2 | A | - | -";
    match read_text(text).unwrap_err() {
        ParseLogError::BadNumber { line, field, text } => {
            assert_eq!(line, 2);
            assert_eq!(field, "wid");
            assert_eq!(text, "one");
        }
        other => panic!("expected BadNumber, got {other:?}"),
    }
}

#[test]
fn every_definition2_violation_surfaces_as_a_typed_parse_error() {
    type Expect = fn(&LogError) -> bool;
    let cases: [(&str, Expect); 5] = [
        // Two records claim lsn 1.
        (
            "1 | 1 | 1 | START | - | -\n1 | 2 | 1 | START | - | -",
            |e| matches!(e, LogError::DuplicateLsn(Lsn(1))),
        ),
        // lsns {1, 3} are not 1..=2.
        ("1 | 1 | 1 | START | - | -\n3 | 1 | 2 | A | - | -", |e| {
            matches!(e, LogError::LsnGap { .. })
        }),
        // is-lsn 1 without START.
        ("1 | 1 | 1 | A | - | -", |e| {
            matches!(e, LogError::StartMismatch { .. })
        }),
        // Instance skips is-lsn 2.
        ("1 | 1 | 1 | START | - | -\n2 | 1 | 3 | A | - | -", |e| {
            matches!(e, LogError::NonConsecutiveIsLsn { .. })
        }),
        // A record after the instance's END.
        (
            "1 | 1 | 1 | START | - | -\n2 | 1 | 2 | END | - | -\n3 | 1 | 3 | A | - | -",
            |e| matches!(e, LogError::RecordAfterEnd { .. }),
        ),
    ];
    for (text, expected) in cases {
        match read_text(text).unwrap_err() {
            ParseLogError::Invalid(ref e) => {
                assert!(expected(e), "wrong LogError for {text:?}: {e:?}");
            }
            other => panic!("expected Invalid(_) for {text:?}, got {other:?}"),
        }
    }
}

#[test]
fn empty_input_is_an_empty_log_error_not_a_panic() {
    assert!(matches!(
        read_text("").unwrap_err(),
        ParseLogError::Invalid(LogError::Empty)
    ));
    assert!(matches!(
        read_text("# only comments\n\n").unwrap_err(),
        ParseLogError::Invalid(LogError::Empty)
    ));
}

// ----------------------------------------------------------------- merge

#[test]
fn merge_remaps_colliding_wids_to_fresh_ones() {
    // Both sources use wids 1 and 2 internally.
    let a = two_instance_log("A1", "A2");
    let b = two_instance_log("B1", "B2");
    let merged = Log::merge([a, b]).unwrap();

    assert_eq!(merged.num_instances(), 4);
    let wids: Vec<Wid> = merged.wids().collect();
    assert_eq!(wids, vec![Wid(1), Wid(2), Wid(3), Wid(4)]);

    // Each original instance survives intact under its new wid: one
    // task record between START and END, with its activity preserved.
    let mut activities: Vec<String> = merged
        .wids()
        .map(|w| {
            assert_eq!(merged.instance_len(w), 3);
            merged
                .record(w, IsLsn(2))
                .unwrap()
                .activity()
                .as_str()
                .to_string()
        })
        .collect();
    activities.sort();
    assert_eq!(activities, ["A1", "A2", "B1", "B2"]);
}

#[test]
fn merge_renumbers_lsns_to_a_single_sequence() {
    let a = two_instance_log("A1", "A2");
    let b = two_instance_log("B1", "B2");
    let total = a.len() + b.len();
    let merged = Log::merge([a, b]).unwrap();

    assert_eq!(merged.len(), total);
    for (i, r) in merged.iter().enumerate() {
        assert_eq!(r.lsn(), Lsn(i as u64 + 1), "lsns are exactly 1..=|L|");
    }
    // The merge result is itself a valid log under the public validator.
    assert!(Log::new(merged.records().to_vec()).is_ok());
}

#[test]
fn merge_interleaves_sources_round_robin() {
    let a = two_instance_log("A1", "A2");
    let b = two_instance_log("B1", "B2");
    let merged = Log::merge([a.clone(), b]).unwrap();
    // Records alternate a, b, a, b while both sources have records left.
    let first_two: Vec<&str> = merged
        .iter()
        .take(2)
        .map(|r| r.activity().as_str())
        .collect();
    assert_eq!(first_two, ["START", "START"]);
    let a_len = a.len();
    let from_a = merged
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .count();
    assert_eq!(from_a, a_len, "even slots come from the first source");
}

#[test]
fn merge_of_no_logs_is_an_empty_error() {
    assert_eq!(Log::merge([]).unwrap_err(), LogError::Empty);
}

#[test]
fn merge_of_one_log_reproduces_its_shape() {
    let a = two_instance_log("A1", "A2");
    let merged = Log::merge([a.clone()]).unwrap();
    assert_eq!(merged.len(), a.len());
    assert_eq!(merged.num_instances(), a.num_instances());
    let acts: Vec<&str> = merged.iter().map(|r| r.activity().as_str()).collect();
    let orig: Vec<&str> = a.iter().map(|r| r.activity().as_str()).collect();
    assert_eq!(acts, orig);
}

// ---------------------------------------------------------- other ops

#[test]
fn prefix_of_length_zero_is_rejected_not_panicking() {
    let log = two_instance_log("A1", "A2");
    assert_eq!(log.prefix(Lsn(0)).unwrap_err(), LogError::Empty);
    // And an over-long prefix clamps to the whole log.
    assert_eq!(log.prefix(Lsn(10_000)).unwrap().len(), log.len());
}

#[test]
fn filtering_out_every_instance_is_rejected_not_panicking() {
    let log = two_instance_log("A1", "A2");
    assert_eq!(
        log.filter_instances(|_| false).unwrap_err(),
        LogError::Empty
    );
}
