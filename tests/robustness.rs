//! Failure injection and fuzz-style robustness.
//!
//! Corrupt valid artifacts in every structured way and assert the library
//! (a) detects the corruption with a typed error and (b) never panics on
//! arbitrary junk input.

use proptest::prelude::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig};

use wlq::{
    io, paper, Evaluator, Log, LogError, LogRecord, Lsn, ParseLogError, Pattern, Verdict, Wid,
};
use wlq_workflow::{scenarios, simulate, SimulationConfig};

// ───────────────────────── log-structure corruption ─────────────────────

fn records() -> Vec<LogRecord> {
    paper::figure3_log().into_records()
}

#[test]
fn dropping_any_interior_record_is_detected() {
    // Removing any non-final record breaks the lsn bijection, so
    // validation must fail. (Dropping the *last* record produces a valid
    // shorter log — a prefix — which is undetectable by design: logs are
    // append-only and every prefix of a valid log is valid.)
    let base = records();
    for i in 0..base.len() - 1 {
        let mut rs = base.clone();
        rs.remove(i);
        assert!(
            Log::new(rs).is_err(),
            "deletion of record {i} went undetected"
        );
    }
    // The final record's deletion yields exactly the length-19 prefix.
    let mut rs = base.clone();
    rs.pop();
    assert_eq!(
        Log::new(rs).unwrap(),
        paper::figure3_log().prefix(Lsn(19)).unwrap()
    );
}

#[test]
fn duplicating_any_record_is_detected() {
    let base = records();
    for i in 0..base.len() {
        let mut rs = base.clone();
        rs.push(base[i].clone());
        assert!(
            Log::new(rs).is_err(),
            "duplication of record {i} went undetected"
        );
    }
}

#[test]
fn swapping_same_instance_records_is_detected() {
    // Swapping the *positions* (lsns stay with the slots) of two records
    // of the same instance reverses their is-lsn order.
    let log = paper::figure3_log();
    let base = records();
    let mut candidates = 0;
    for i in 0..base.len() {
        for j in i + 1..base.len() {
            if base[i].wid() != base[j].wid() {
                continue;
            }
            candidates += 1;
            let mut rs = base.clone();
            let (li, lj) = (rs[i].lsn(), rs[j].lsn());
            let (mut a, mut b) = (rs[j].clone(), rs[i].clone());
            // Re-stamp lsns so condition 1 still holds; only order breaks.
            a = LogRecord::new(
                li,
                a.wid(),
                a.is_lsn(),
                a.activity().clone(),
                a.input().clone(),
                a.output().clone(),
            );
            b = LogRecord::new(
                lj,
                b.wid(),
                b.is_lsn(),
                b.activity().clone(),
                b.input().clone(),
                b.output().clone(),
            );
            rs[i] = a;
            rs[j] = b;
            assert!(
                matches!(Log::new(rs), Err(LogError::NonConsecutiveIsLsn { .. })),
                "swap {i}<->{j} went undetected"
            );
        }
    }
    assert!(candidates > 10, "test should exercise many swaps");
    let _ = log;
}

#[test]
fn relabeling_a_record_to_another_instance_is_detected() {
    let base = records();
    let mut detected = 0;
    let mut total = 0;
    for i in 1..base.len() {
        let r = &base[i];
        let other = if r.wid() == Wid(1) { Wid(2) } else { Wid(1) };
        let mut rs = base.clone();
        rs[i] = LogRecord::new(
            r.lsn(),
            other,
            r.is_lsn(),
            r.activity().clone(),
            r.input().clone(),
            r.output().clone(),
        );
        total += 1;
        if Log::new(rs).is_err() {
            detected += 1;
        }
    }
    // Moving a record between instances breaks is-lsn continuity in both
    // instances; every such corruption must be caught.
    assert_eq!(detected, total);
}

// ───────────────────────── serialized-form corruption ───────────────────

#[test]
fn truncated_binary_never_panics_and_always_errors() {
    let log = paper::figure3_log();
    let bytes = io::binary::write_binary(&log);
    for cut in 0..bytes.len().min(200) {
        let result = io::binary::read_binary(bytes.slice(0..cut));
        assert!(result.is_err(), "truncation at {cut} produced a log");
    }
}

#[test]
fn bitflipped_binary_never_panics() {
    let log = paper::figure3_log();
    let bytes = io::binary::write_binary(&log).to_vec();
    // Flip one byte at a spread of positions; decoding must either fail
    // cleanly or produce a (possibly different) valid log — never panic.
    for pos in (0..bytes.len()).step_by(7) {
        let mut corrupted = bytes.clone();
        corrupted[pos] ^= 0xFF;
        let _ = io::binary::read_binary(corrupted.into());
    }
}

#[test]
fn mangled_text_lines_error_with_line_numbers() {
    let log = paper::figure3_log();
    let text = io::text::write_text(&log);
    let lines: Vec<&str> = text.lines().collect();
    // Drop each data line except the last (dropping the final line yields
    // a valid prefix): lsn gap detected.
    for skip in 1..lines.len() - 1 {
        let mangled: String = lines
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        assert!(matches!(
            io::text::read_text(&mangled),
            Err(ParseLogError::Invalid(_))
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The pattern parser never panics on arbitrary input.
    #[test]
    fn pattern_parser_never_panics(input in "\\PC*") {
        let _ = Pattern::parse(&input);
    }

    /// The pattern parser accepts everything the printer emits, even for
    /// arbitrary activity-name-shaped fragments combined randomly.
    #[test]
    fn parser_accepts_operator_soup_or_rejects_cleanly(
        parts in prop::collection::vec(
            prop::sample::select(vec!["A", "B", "->", "~>", "|", "&", "(", ")", "!", "[x>1]"]),
            0..12,
        )
    ) {
        let joined = parts.join(" ");
        match Pattern::parse(&joined) {
            Ok(p) => {
                // Anything accepted must round-trip.
                let reparsed = Pattern::parse(&p.to_string()).unwrap();
                prop_assert_eq!(reparsed, p);
            }
            Err(e) => prop_assert!(e.position <= joined.len()),
        }
    }

    /// The text log reader never panics on arbitrary input.
    #[test]
    fn text_reader_never_panics(input in "\\PC*") {
        let _ = io::text::read_text(&input);
    }

    /// The CSV log reader never panics on arbitrary input.
    #[test]
    fn csv_reader_never_panics(input in "\\PC*") {
        let _ = io::csv::read_csv(&input);
    }

    /// The XES reader never panics on arbitrary input.
    #[test]
    fn xes_reader_never_panics(input in "\\PC*") {
        let _ = io::xes::read_xes(&input);
    }

    /// The binary reader never panics on arbitrary bytes.
    #[test]
    fn binary_reader_never_panics(input in prop::collection::vec(prop::num::u8::ANY, 0..256)) {
        let _ = io::binary::read_binary(input.into());
    }
}

// ───────────────────────── semantic fault injection ─────────────────────

#[test]
fn conformance_catches_injected_reorderings() {
    // Take a conforming clinic log and move one UpdateRefer record after
    // the instance's GetReimburse — the clinic model cannot produce that.
    let model = scenarios::clinic::model();
    let log = simulate(&model, &SimulationConfig::new(60, 99));
    let victim = log
        .wids()
        .find(|&w| {
            let acts: Vec<&str> = log.instance(w).map(|r| r.activity().as_str()).collect();
            acts.contains(&"UpdateRefer")
        })
        .expect("some instance updates its referral");

    // Rebuild the victim instance with UpdateRefer moved to the end
    // (before END), re-numbering is-lsns.
    let mut b = wlq::LogBuilder::new();
    let w = b.start_instance();
    let mut update = None;
    let tasks: Vec<_> = log
        .instance(victim)
        .filter(|r| !r.is_start() && !r.is_end())
        .cloned()
        .collect();
    for r in &tasks {
        if r.activity().as_str() == "UpdateRefer" && update.is_none() {
            update = Some(r.clone());
            continue;
        }
        b.append(
            w,
            r.activity().clone(),
            r.input().clone(),
            r.output().clone(),
        )
        .unwrap();
    }
    let moved = update.expect("victim has an update");
    b.append(
        w,
        moved.activity().clone(),
        moved.input().clone(),
        moved.output().clone(),
    )
    .unwrap();
    b.end_instance(w).unwrap();
    let corrupted = b.build().unwrap();

    let report = model.check_log(&corrupted);
    assert_eq!(report.verdicts[&w], Verdict::Violating);

    // And the paper's anomaly query sees the reordering too: the update
    // now happens after reimbursement.
    let eval = Evaluator::new(&corrupted);
    assert!(eval.exists(&"GetReimburse -> UpdateRefer".parse().unwrap()));
}

#[test]
fn prefix_of_conforming_log_stays_conforming() {
    let model = scenarios::order::model();
    let log = simulate(&model, &SimulationConfig::new(15, 4));
    for upto in [5u64, 20, 50, log.len() as u64] {
        let prefix = log.prefix(Lsn(upto.min(log.len() as u64))).unwrap();
        let report = model.check_log(&prefix);
        assert!(
            report.is_conforming(),
            "prefix at {upto} violates: {:?}",
            report.violations()
        );
    }
}

#[test]
fn merged_logs_answer_queries_like_their_parts() {
    let clinic = simulate(&scenarios::clinic::model(), &SimulationConfig::new(20, 1));
    let loans = simulate(&scenarios::loan::model(), &SimulationConfig::new(20, 2));
    let merged = Log::merge([clinic.clone(), loans.clone()]).unwrap();
    for src in [
        "UpdateRefer -> GetReimburse",
        "Submit -> Reject",
        "GetRefer | Submit",
    ] {
        let p: Pattern = src.parse().unwrap();
        let merged_count = Evaluator::new(&merged).count(&p);
        let split_count = Evaluator::new(&clinic).count(&p) + Evaluator::new(&loans).count(&p);
        assert_eq!(merged_count, split_count, "{src}");
    }
}
