//! Property-based verification of the paper's Section 4 theorems.
//!
//! Every law is checked semantically: two patterns are equivalent
//! (Definition 5) iff they produce the same incident set on *all* logs, so
//! each property samples random logs and random sub-patterns and compares
//! `incL` on both sides. Sampling cannot prove the theorems, but a
//! violation would disprove the implementation — and none is found across
//! thousands of cases.

use proptest::prelude::*;

use wlq::{attrs, Evaluator, IncidentSet, Log, LogBuilder, Op, Pattern, Strategy as EvalStrategy};

const ALPHABET: [&str; 4] = ["A", "B", "C", "D"];

/// Random patterns over a small alphabet, depth ≤ 3 (up to 4 leaves).
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    let leaf = prop_oneof![
        4 => (0..ALPHABET.len()).prop_map(|i| Pattern::atom(ALPHABET[i])),
        1 => (0..ALPHABET.len()).prop_map(|i| Pattern::not_atom(ALPHABET[i])),
    ];
    leaf.prop_recursive(3, 8, 2, |inner| {
        (0..4u8, inner.clone(), inner).prop_map(|(op, l, r)| {
            let op = match op {
                0 => Op::Consecutive,
                1 => Op::Sequential,
                2 => Op::Choice,
                _ => Op::Parallel,
            };
            Pattern::binary(op, l, r)
        })
    })
}

/// Random logs: 1–3 instances, each 0–8 task records over the alphabet,
/// interleaved round-robin.
fn arb_log() -> impl Strategy<Value = Log> {
    prop::collection::vec(prop::collection::vec(0..ALPHABET.len(), 0..8), 1..4).prop_map(
        |instances| {
            let mut b = LogBuilder::new();
            let wids: Vec<_> = instances.iter().map(|_| b.start_instance()).collect();
            let longest = instances.iter().map(Vec::len).max().unwrap_or(0);
            for step in 0..longest {
                for (i, acts) in instances.iter().enumerate() {
                    if let Some(&a) = acts.get(step) {
                        b.append(wids[i], ALPHABET[a], attrs! {}, attrs! {})
                            .unwrap();
                    }
                }
            }
            b.build().unwrap()
        },
    )
}

fn inc(log: &Log, p: &Pattern) -> IncidentSet {
    Evaluator::new(log).evaluate(p)
}

fn assert_equiv(log: &Log, p: &Pattern, q: &Pattern) -> Result<(), TestCaseError> {
    prop_assert_eq!(inc(log, p), inc(log, q), "patterns {} vs {}", p, q);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Theorem 2: (p1 θ p2) θ p3 ≡ p1 θ (p2 θ p3) for every operator.
    #[test]
    fn theorem2_associativity(
        log in arb_log(),
        p1 in arb_pattern(),
        p2 in arb_pattern(),
        p3 in arb_pattern(),
        op_idx in 0..4usize,
    ) {
        let op = Op::ALL[op_idx];
        let left = Pattern::binary(op, Pattern::binary(op, p1.clone(), p2.clone()), p3.clone());
        let right = Pattern::binary(op, p1, Pattern::binary(op, p2, p3));
        assert_equiv(&log, &left, &right)?;
    }

    /// Theorem 3: ⊗ and ⊕ are commutative.
    #[test]
    fn theorem3_commutativity(
        log in arb_log(),
        p1 in arb_pattern(),
        p2 in arb_pattern(),
        commutative in prop::bool::ANY,
    ) {
        let op = if commutative { Op::Choice } else { Op::Parallel };
        let a = Pattern::binary(op, p1.clone(), p2.clone());
        let b = Pattern::binary(op, p2, p1);
        assert_equiv(&log, &a, &b)?;
    }

    /// Non-commutativity sanity: → and ⊙ are NOT commutative (there exist
    /// logs distinguishing them) — checked as "equivalence may fail", by
    /// verifying the canonical counterexample.
    #[test]
    fn sequential_is_not_commutative_on_ordered_logs(_x in 0..1u8) {
        let mut b = LogBuilder::new();
        let w = b.start_instance();
        b.append(w, "A", attrs! {}, attrs! {}).unwrap();
        b.append(w, "B", attrs! {}, attrs! {}).unwrap();
        let log = b.build().unwrap();
        let ab: Pattern = "A -> B".parse().unwrap();
        let ba: Pattern = "B -> A".parse().unwrap();
        prop_assert_ne!(inc(&log, &ab), inc(&log, &ba));
    }

    /// Theorem 4: ⊙ and → associate with each other in both arrangements.
    #[test]
    fn theorem4_mixed_associativity(
        log in arb_log(),
        p1 in arb_pattern(),
        p2 in arb_pattern(),
        p3 in arb_pattern(),
        cons_first in prop::bool::ANY,
    ) {
        let (t1, t2) = if cons_first {
            (Op::Consecutive, Op::Sequential)
        } else {
            (Op::Sequential, Op::Consecutive)
        };
        // p1 θ1 (p2 θ2 p3) ≡ (p1 θ1 p2) θ2 p3
        let a = Pattern::binary(t1, p1.clone(), Pattern::binary(t2, p2.clone(), p3.clone()));
        let b = Pattern::binary(t2, Pattern::binary(t1, p1, p2), p3);
        assert_equiv(&log, &a, &b)?;
    }

    /// Theorem 5 part 1: left distributivity of every θ over ⊗.
    #[test]
    fn theorem5_left_distributivity(
        log in arb_log(),
        p1 in arb_pattern(),
        p2 in arb_pattern(),
        p3 in arb_pattern(),
        op_idx in 0..4usize,
    ) {
        let op = Op::ALL[op_idx];
        let lhs = Pattern::binary(op, p1.clone(), p2.clone().alt(p3.clone()));
        let rhs = Pattern::binary(op, p1.clone(), p2).alt(Pattern::binary(op, p1, p3));
        assert_equiv(&log, &lhs, &rhs)?;
    }

    /// Theorem 5 part 2: right distributivity of every θ over ⊗.
    #[test]
    fn theorem5_right_distributivity(
        log in arb_log(),
        p1 in arb_pattern(),
        p2 in arb_pattern(),
        p3 in arb_pattern(),
        op_idx in 0..4usize,
    ) {
        let op = Op::ALL[op_idx];
        let lhs = Pattern::binary(op, p1.clone().alt(p2.clone()), p3.clone());
        let rhs = Pattern::binary(op, p1, p3.clone()).alt(Pattern::binary(op, p2, p3));
        assert_equiv(&log, &lhs, &rhs)?;
    }

    /// The naive (Algorithm 1), optimized, and flat-batch operator
    /// implementations are semantically identical.
    #[test]
    fn naive_equals_optimized(log in arb_log(), p in arb_pattern()) {
        let naive = Evaluator::with_strategy(&log, EvalStrategy::NaivePaper).evaluate(&p);
        let optimized = Evaluator::with_strategy(&log, EvalStrategy::Optimized).evaluate(&p);
        let batch = Evaluator::with_strategy(&log, EvalStrategy::Batch).evaluate(&p);
        prop_assert_eq!(&naive, &optimized);
        prop_assert_eq!(&naive, &batch);
    }

    /// AC-canonicalization (associativity + commutativity) preserves
    /// semantics.
    #[test]
    fn canonicalization_preserves_semantics(log in arb_log(), p in arb_pattern()) {
        let c = wlq::canonicalize(&p);
        assert_equiv(&log, &p, &c)?;
    }

    /// Every single-step law rewrite anywhere in the tree preserves
    /// semantics.
    #[test]
    fn all_law_rewrites_preserve_semantics(log in arb_log(), p in arb_pattern()) {
        for (law, q) in wlq::algebra::all_rewrites(&p) {
            prop_assert_eq!(
                inc(&log, &p),
                inc(&log, &q),
                "law {} broke {} => {}",
                law, &p, &q
            );
        }
    }

    /// The cost-based optimizer's output is equivalent to its input.
    #[test]
    fn optimizer_preserves_semantics(log in arb_log(), p in arb_pattern()) {
        let optimizer = wlq::Optimizer::new(wlq::LogStats::compute(&log));
        let q = optimizer.optimize(&p);
        assert_equiv(&log, &p, &q)?;
    }

    /// Choice normal form is a sound decomposition: the union of the
    /// alternatives' incident sets equals the original's.
    #[test]
    fn choice_normal_form_is_sound(log in arb_log(), p in arb_pattern()) {
        let mut union = IncidentSet::new();
        for alt in wlq::choice_normal_form(&p) {
            union.merge(inc(&log, &alt));
        }
        prop_assert_eq!(union, inc(&log, &p));
    }

    /// Parse/display round-trip on random patterns.
    #[test]
    fn display_parse_round_trip(p in arb_pattern()) {
        let printed = p.to_string();
        let reparsed: Pattern = printed.parse().unwrap();
        prop_assert_eq!(reparsed, p);
    }

    /// Postfix (shunting-yard) round-trip on random patterns.
    #[test]
    fn postfix_round_trip(p in arb_pattern()) {
        let rpn = wlq::to_postfix(&p);
        let back = wlq::from_postfix(rpn).unwrap();
        prop_assert_eq!(back, p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Labelled (binding-aware) evaluation projects exactly onto plain
    /// evaluation: same incident sets, with each binding inside its
    /// incident.
    #[test]
    fn bindings_project_onto_plain_incidents(
        log in arb_log(),
        chain in prop::collection::vec((0..ALPHABET.len(), 0..4u8), 1..4),
    ) {
        // Build a labelled chain v0:X op v1:Y op …
        let mut src = String::new();
        for (i, &(name, op)) in chain.iter().enumerate() {
            if i > 0 {
                src.push_str(match op % 4 {
                    0 => " ~> ",
                    1 => " -> ",
                    2 => " | ",
                    _ => " & ",
                });
            }
            src.push_str(&format!("v{i}:{}", ALPHABET[name]));
        }
        let lp = wlq::LabelledPattern::parse(&src).unwrap();
        let bound = lp.evaluate(&log);
        let plain = Evaluator::new(&log).evaluate(lp.pattern());
        // Every bound incident is a plain incident and each binding is a
        // member record of it.
        for b in &bound {
            prop_assert!(plain.contains(&b.incident), "{src}");
            for pos in b.bindings.values() {
                prop_assert!(b.incident.contains(*pos));
            }
        }
        // Every plain incident is realised by at least one assignment.
        for o in plain.iter() {
            prop_assert!(
                bound.iter().any(|b| &b.incident == o),
                "{src}: incident {o} has no assignment"
            );
        }
    }
}
