//! End-to-end pipelines at moderate scale: simulate → serialize → reload
//! → optimize → evaluate (sequential, parallel, both strategies).

use wlq::prelude::*;
use wlq::{io, scenarios, Optimizer};

fn battery() -> Vec<Pattern> {
    [
        "GetRefer ~> CheckIn",
        "UpdateRefer -> GetReimburse",
        "SeeDoctor -> PayTreatment -> GetReimburse",
        "UpdateRefer | (SeeDoctor & PayTreatment)",
        "CheckIn -> (UpdateRefer | GetReimburse)",
        "!SeeDoctor ~> PayTreatment",
    ]
    .iter()
    .map(|s| s.parse().unwrap())
    .collect()
}

#[test]
fn clinic_pipeline_all_paths_agree() {
    let log = simulate(&scenarios::clinic::model(), &SimulationConfig::new(150, 5));
    let naive = Evaluator::with_strategy(&log, Strategy::NaivePaper);
    let optimized = Evaluator::with_strategy(&log, Strategy::Optimized);
    let optimizer = Optimizer::new(LogStats::compute(&log));
    for p in battery() {
        let reference = optimized.evaluate(&p);
        assert_eq!(naive.evaluate(&p), reference, "naive vs optimized on {p}");
        let rewritten = optimizer.optimize(&p);
        assert_eq!(
            optimized.evaluate(&rewritten),
            reference,
            "optimizer broke {p} => {rewritten}"
        );
        let parallel = wlq::evaluate_parallel(&log, &p, 4, Strategy::Optimized).unwrap();
        assert_eq!(parallel, reference, "parallel eval on {p}");
    }
}

#[test]
fn simulated_logs_survive_serialization() {
    let log = simulate(&scenarios::loan::model(), &SimulationConfig::new(60, 11));
    let from_csv = io::csv::read_csv(&io::csv::write_csv(&log)).unwrap();
    assert_eq!(from_csv, log);
    let from_bin = io::binary::read_binary(io::binary::write_binary(&log)).unwrap();
    assert_eq!(from_bin, log);
    let from_text = io::text::read_text(&io::text::write_text(&log)).unwrap();
    assert_eq!(from_text, log);
}

#[test]
fn clinic_invariants_hold_as_queries() {
    let log = simulate(&scenarios::clinic::model(), &SimulationConfig::new(200, 21));
    let eval = Evaluator::new(&log);
    // Model invariant: PayTreatment is always immediately preceded by
    // SeeDoctor, so the negated-consecutive pattern finds nothing.
    assert_eq!(
        eval.count(&"!SeeDoctor ~> PayTreatment".parse().unwrap()),
        0
    );
    // Every instance starts GetRefer ~> CheckIn.
    assert_eq!(
        eval.matching_instances(&"GetRefer ~> CheckIn".parse().unwrap())
            .len(),
        200
    );
    // Reimbursement requires an active referral: CompleteRefer never
    // precedes GetReimburse.
    assert_eq!(
        eval.count(&"CompleteRefer -> GetReimburse".parse().unwrap()),
        0
    );
}

#[test]
fn order_parallel_block_queries() {
    let log = simulate(&scenarios::order::model(), &SimulationConfig::new(120, 33));
    let eval = Evaluator::new(&log);
    // The ⊕ pattern matches every instance regardless of interleaving.
    let par: Pattern = "(PickItems -> Ship) & (CreateInvoice -> CollectPayment)"
        .parse()
        .unwrap();
    assert_eq!(eval.matching_instances(&par).len(), 120);
    // A strict sequencing misses instances where invoicing finished first.
    let seq: Pattern = "(PickItems -> Ship) -> (CreateInvoice -> CollectPayment)"
        .parse()
        .unwrap();
    assert!(eval.matching_instances(&seq).len() < 120);
    // Every order eventually closes: CloseOrder → END consecutively.
    assert_eq!(
        eval.matching_instances(&"CloseOrder ~> END".parse().unwrap())
            .len(),
        120
    );
}

#[test]
fn loan_choice_queries_partition_outcomes() {
    let log = simulate(&scenarios::loan::model(), &SimulationConfig::new(250, 77));
    let eval = Evaluator::new(&log);
    let disbursed = eval.matching_instances(&"Disburse".parse().unwrap());
    let approved = eval.matching_instances(&"(AutoApprove | Approve) -> Disburse".parse().unwrap());
    // Disbursement happens only after an approval of either kind.
    assert_eq!(disbursed, approved);
    // No instance is both auto-approved and manually approved.
    assert_eq!(eval.count(&"AutoApprove -> Approve".parse().unwrap()), 0);
    assert_eq!(eval.count(&"Approve -> AutoApprove".parse().unwrap()), 0);
}

#[test]
fn query_builder_threads_and_strategies_compose() {
    let log = simulate(&scenarios::clinic::model(), &SimulationConfig::new(80, 9));
    let q = Query::parse("SeeDoctor -> (UpdateRefer -> GetReimburse)").unwrap();
    let base = q.clone().find(&log).unwrap();
    for threads in [1, 2, 8] {
        for strategy in [Strategy::NaivePaper, Strategy::Optimized] {
            for optimize in [true, false] {
                let got = q
                    .clone()
                    .threads(threads)
                    .strategy(strategy)
                    .optimize(optimize)
                    .find(&log)
                    .unwrap();
                assert_eq!(
                    got, base,
                    "threads={threads} strategy={strategy:?} optimize={optimize}"
                );
            }
        }
    }
}

#[test]
fn profile_reports_are_consistent() {
    let log = simulate(&scenarios::clinic::model(), &SimulationConfig::new(50, 3));
    let q = Query::parse("(GetRefer -> GetReimburse) | (GetRefer -> CompleteRefer)").unwrap();
    let profile = q.profile(&log).unwrap();
    assert_eq!(profile.incidents, q.find(&log).unwrap());
    // The optimizer factors the shared prefix.
    assert!(profile.plan.contains("GetRefer"));
}
