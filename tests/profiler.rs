//! Execution profiler suite: the golden `--analyze` table, the pinned
//! JSON profile/trace schema, and the decomposition property — the root
//! node's `incidents_emitted` is exactly `|incL(p)|` — across random
//! logs, patterns, and every strategy. Profiled evaluation must be
//! observationally identical to unprofiled evaluation throughout.

use proptest::prelude::*;
use proptest::strategy::Strategy as PropStrategy;

use wlq::{
    attrs, profile_evaluation, render_trace, validate_trace, Evaluator, Log, LogBuilder, Op,
    Pattern, Strategy, TRACE_SCHEMA_VERSION,
};

fn figure3() -> Log {
    wlq::paper::figure3_log()
}

fn parse(src: &str) -> Pattern {
    src.parse().unwrap()
}

const ALL_STRATEGIES: [Strategy; 4] = [
    Strategy::NaivePaper,
    Strategy::Optimized,
    Strategy::Batch,
    Strategy::Planned,
];

// ---------------------------------------------------------------------
// Golden human-readable profile (`wlq explain --analyze`)
// ---------------------------------------------------------------------

/// The rendered profile's shape is pinned column-by-column; only the
/// wall-time column (token 4 of each node row) is allowed to vary run
/// to run.
#[test]
fn golden_analyze_table_for_figure3() {
    let log = figure3();
    let p = parse("UpdateRefer -> GetReimburse");
    let (set, profile) = profile_evaluation(&log, &p, Strategy::Planned, 1).unwrap();
    assert_eq!(set.len(), 1);

    let rendered = profile.to_string();
    let lines: Vec<&str> = rendered.lines().collect();
    assert_eq!(lines[0], "query    : UpdateRefer -> GetReimburse");
    assert_eq!(
        lines[1],
        "plan     : UpdateRefer -> GetReimburse  [original]"
    );
    assert_eq!(lines[2], "strategy : planned, 1 thread(s)");
    assert_eq!(
        lines[3],
        "    actual    scanned        pairs      bytes         time        est    q-err  node"
    );

    // Node rows: [actual, scanned, pairs, bytes, time, est, q-err, label…]
    // with the time token skipped. Deterministic on the fixed Figure 3
    // log: 1 incident through a batch-kernel sequential join over
    // single-posting scans.
    let stable = |line: &str| -> (Vec<String>, String) {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let cols = [0, 1, 2, 3, 5, 6]
            .iter()
            .map(|&i| tokens[i].to_string())
            .collect();
        (cols, tokens[7..].join(" "))
    };
    let (cols, label) = stable(lines[4]);
    assert_eq!(cols, ["1", "0", "2", "24", "0.3", "1.00"]);
    assert_eq!(label, "sequential [batch-kernel]");
    let (cols, label) = stable(lines[5]);
    assert_eq!(cols, ["1", "1", "0", "20", "1.0", "1.00"]);
    assert_eq!(label, "scan UpdateRefer");
    let (cols, label) = stable(lines[6]);
    assert_eq!(cols, ["1", "1", "0", "20", "2.0", "2.00"]);
    assert_eq!(label, "scan GetReimburse");

    assert_eq!(lines[7], "workers:");
    assert!(lines[8].starts_with("  worker 0: 3 instance(s), 1 incident(s)"));
    assert!(lines[9].starts_with("total    : 1 incident(s) in"));
}

/// Non-planned strategies still get a cost-model estimate per node (so
/// the Q-error column is populated) but no cost — and no plan rule.
#[test]
fn analyze_works_for_every_strategy() {
    let log = figure3();
    let p = parse("GetRefer ~> (CheckIn | SeeDoctor)");
    for strategy in ALL_STRATEGIES {
        let (set, profile) = profile_evaluation(&log, &p, strategy, 1).unwrap();
        assert_eq!(set, Evaluator::with_strategy(&log, strategy).evaluate(&p));
        assert_eq!(profile.nodes.len(), 5, "{strategy:?}");
        assert!(profile.nodes.iter().all(|n| n.shape.estimate.is_some()));
        if strategy == Strategy::Planned {
            assert!(profile.rule.is_some());
            assert!(profile.nodes.iter().all(|n| n.shape.cost.is_some()));
        } else {
            assert!(profile.rule.is_none());
            assert!(profile.nodes.iter().all(|n| n.shape.cost.is_none()));
        }
    }
}

// ---------------------------------------------------------------------
// Pinned JSON schema (profile and trace)
// ---------------------------------------------------------------------

/// The single-line JSON profile schema is pinned: top-level key order,
/// per-node key order, per-worker key order, and the version field.
#[test]
fn profile_json_schema_is_pinned() {
    let log = figure3();
    let p = parse("SeeDoctor -> PayTreatment");
    let (_, profile) = profile_evaluation(&log, &p, Strategy::Planned, 1).unwrap();
    let json = profile.render_json();
    assert!(!json.contains('\n'));
    assert!(
        json.starts_with("{\"version\":1,\"query\":\"SeeDoctor -> PayTreatment\",\"plan\":"),
        "{json}"
    );
    for ordered_keys in [
        // Top-level header, in order.
        vec![
            "\"version\":",
            "\"query\":",
            "\"plan\":",
            "\"strategy\":",
            "\"rule\":",
            "\"threads\":",
            "\"total_wall_ns\":",
            "\"total_incidents\":",
            "\"nodes\":[",
            "\"workers\":[",
        ],
        // One node object, in order.
        vec![
            "\"label\":",
            "\"pattern\":",
            "\"depth\":",
            "\"estimate\":",
            "\"cost\":",
            "\"wall_ns\":",
            "\"records_scanned\":",
            "\"pairs_compared\":",
            "\"incidents_emitted\":",
            "\"output_bytes\":",
            "\"q_error\":",
        ],
        // One worker object, in order.
        vec![
            "\"worker\":",
            "\"instances\":",
            "\"incidents\":",
            "\"wall_ns\":",
        ],
    ] {
        let mut pos = 0;
        for key in ordered_keys {
            let at = json[pos..]
                .find(key)
                .unwrap_or_else(|| panic!("key {key} missing (or out of order) in {json}"));
            pos += at + key.len();
        }
    }
}

/// The JSON Lines trace round-trips through its own validator and keeps
/// the span-nesting invariant, for sequential and parallel runs alike.
#[test]
fn trace_schema_is_pinned_and_validates() {
    let log = figure3();
    let p = parse("GetRefer -> CheckIn -> SeeDoctor");
    for threads in [1, 3] {
        let (_, profile) = profile_evaluation(&log, &p, Strategy::Planned, threads).unwrap();
        let trace = render_trace(&profile);
        let first = trace.lines().next().unwrap();
        assert!(
            first.starts_with("{\"event\":\"trace_begin\",\"version\":1,\"query\":"),
            "{first}"
        );
        let summary = validate_trace(&trace).unwrap();
        assert_eq!(summary.version, TRACE_SCHEMA_VERSION);
        assert_eq!(summary.nodes, profile.nodes.len());
        assert_eq!(summary.workers, profile.workers.len());
        assert_eq!(summary.total_incidents, profile.total_incidents);
        // trace_begin + begin/end per node + workers + trace_end.
        assert_eq!(
            summary.events,
            1 + 2 * profile.nodes.len() + profile.workers.len() + 1
        );
    }
}

// ---------------------------------------------------------------------
// Decomposition property + profiled ≡ unprofiled (proptest)
// ---------------------------------------------------------------------

const ALPHABET: [&str; 4] = ["A", "B", "C", "D"];

fn arb_pattern() -> impl PropStrategy<Value = Pattern> {
    let leaf = prop_oneof![
        4 => (0..ALPHABET.len()).prop_map(|i| Pattern::atom(ALPHABET[i])),
        1 => (0..ALPHABET.len()).prop_map(|i| Pattern::not_atom(ALPHABET[i])),
    ];
    leaf.prop_recursive(4, 16, 2, |inner| {
        (0..4u8, inner.clone(), inner).prop_map(|(op, l, r)| {
            let op = match op {
                0 => Op::Consecutive,
                1 => Op::Sequential,
                2 => Op::Choice,
                _ => Op::Parallel,
            };
            Pattern::binary(op, l, r)
        })
    })
}

fn arb_log() -> impl PropStrategy<Value = Log> {
    prop::collection::vec(prop::collection::vec(0..ALPHABET.len(), 0..10), 1..5).prop_map(
        |instances| {
            let mut b = LogBuilder::new();
            let wids: Vec<_> = instances.iter().map(|_| b.start_instance()).collect();
            let longest = instances.iter().map(Vec::len).max().unwrap_or(0);
            for step in 0..longest {
                for (i, acts) in instances.iter().enumerate() {
                    if let Some(&a) = acts.get(step) {
                        b.append(wids[i], ALPHABET[a], attrs! {}, attrs! {})
                            .unwrap();
                    }
                }
            }
            b.build().unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// For every strategy: profiling changes nothing about the answer,
    /// and the root node's `incidents_emitted` equals `|incL(p)|` — the
    /// per-instance root outputs decompose the query answer exactly
    /// (inner nodes may legitimately record zero when short-circuited).
    #[test]
    fn root_emission_decomposes_incl(log in arb_log(), p in arb_pattern()) {
        for strategy in ALL_STRATEGIES {
            let eval = Evaluator::with_strategy(&log, strategy);
            let expected = eval.evaluate(&p);
            for threads in [1, 3] {
                let (set, profile) = profile_evaluation(&log, &p, strategy, threads).unwrap();
                prop_assert_eq!(
                    &set, &expected,
                    "profiled evaluation diverged under {:?}x{}", strategy, threads
                );
                prop_assert_eq!(profile.total_incidents, expected.len() as u64);
                prop_assert_eq!(
                    profile.nodes[0].metrics.incidents_emitted,
                    expected.len() as u64,
                    "root emission != |incL(p)| under {:?}x{}", strategy, threads
                );
                // Worker accounting is total: every instance is swept
                // exactly once and all incidents are attributed.
                let swept: u64 = profile.workers.iter().map(|w| w.instances).sum();
                prop_assert_eq!(swept as usize, log.num_instances());
                let attributed: u64 = profile.workers.iter().map(|w| w.incidents).sum();
                prop_assert_eq!(attributed, expected.len() as u64);
                // And the trace of any profile validates.
                prop_assert!(validate_trace(&render_trace(&profile)).is_ok());
            }
        }
    }
}
