//! Offline stand-in for the `parking_lot` crate.
//!
//! Provides [`Mutex`] with parking_lot's panic-free `lock()` signature,
//! backed by `std::sync::Mutex`. Poisoning is translated to a panic —
//! parking_lot has no poisoning, and a poisoned lock here means a worker
//! already panicked, so propagating is the faithful behaviour.

use std::sync::MutexGuard;

/// A mutual-exclusion primitive (mirrors `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    ///
    /// # Panics
    ///
    /// Panics if a previous holder panicked (std poisoning).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .expect("mutex poisoned by a panicked thread")
    }

    /// Consumes the mutex, returning the value.
    ///
    /// # Panics
    ///
    /// Panics if the mutex was poisoned.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .expect("mutex poisoned by a panicked thread")
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_guards_mutation() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn shared_across_threads() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| *m.lock() += 1);
            }
        });
        assert_eq!(*m.lock(), 8);
    }
}
