//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset used by the binary log codec: [`BytesMut`] as a
//! growable write buffer with the little-endian `put_*` family, and
//! [`Bytes`] as a read cursor with the `get_*`/`copy_to_*` family. The
//! real crate's zero-copy reference counting is not reproduced — `slice`
//! and `copy_to_bytes` copy — but the API shapes match `bytes` 1.x so the
//! real crate can be swapped back in without touching call sites.

/// Read access to a byte cursor (mirrors `bytes::Buf`).
pub trait Buf {
    /// Bytes left between the cursor and the end.
    fn remaining(&self) -> usize;

    /// Borrows the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Moves the cursor forward by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// `true` while any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Copies the next `len` bytes into an owned [`Bytes`], advancing.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `len` bytes remain.
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the cursor is exhausted.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }
}

/// Write access to a growable buffer (mirrors `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// An immutable byte buffer with a read cursor (mirrors `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice (copied here, borrowed in the real crate).
    #[must_use]
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Unread length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// `true` if no bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-range of the unread bytes as a new buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds [`Bytes::len`].
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes::from(self.data[self.pos..][range].to_vec())
    }

    /// The unread bytes as an owned vector.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

/// A growable write buffer (mirrors `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer with `capacity` bytes pre-allocated.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Written length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn round_trip_all_widths() {
        let mut w = BytesMut::with_capacity(32);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_i64_le(-42);
        w.put_slice(b"tail");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.copy_to_bytes(4).to_vec(), b"tail");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_and_len_track_the_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(b.slice(1..4).to_vec(), vec![2, 3, 4]);
        b.advance(2);
        assert_eq!(b.len(), 3);
        assert_eq!(b.slice(0..2).to_vec(), vec![3, 4]);
        assert_eq!(b.chunk(), &[3, 4, 5]);
    }

    #[test]
    fn copy_to_slice_advances() {
        let mut b = Bytes::from_static(b"abcdef");
        let mut dst = [0u8; 3];
        b.copy_to_slice(&mut dst);
        assert_eq!(&dst, b"abc");
        assert_eq!(b.remaining(), 3);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::new();
        let _ = b.get_u32_le();
    }
}
