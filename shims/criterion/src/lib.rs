//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — groups,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!`/
//! `criterion_main!` macros — over a small wall-clock harness: each
//! benchmark is warmed up, an iteration count is calibrated to a fixed
//! per-sample budget, and `sample_size` samples are collected. The
//! printed line reports min/median/mean per iteration. No statistical
//! analysis, plotting, or baseline comparison is performed.

use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Whether the harness runs in `--test` fast mode: each benchmark routine
/// executes exactly once, untimed — mirroring real criterion's
/// `cargo bench -- --test` smoke mode for CI (compile + run, no timing).
fn test_mode() -> bool {
    static MODE: OnceLock<bool> = OnceLock::new();
    *MODE.get_or_init(|| std::env::args().any(|arg| arg == "--test"))
}

/// Harness entry point (mirrors `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 50,
        }
    }

    /// Benchmarks a single routine outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.run_one(&name, f);
        group.finish();
        self
    }
}

/// A benchmark's identifier within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` with `input`, under `id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.id.clone();
        self.run_one(&id, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a plain string id.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(&id, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            stats: None,
            ran_untimed: false,
        };
        f(&mut bencher);
        if bencher.ran_untimed {
            println!("{}/{id}  (--test mode: ran once, untimed)", self.name);
            return;
        }
        match bencher.stats {
            Some(stats) => println!(
                "{}/{id}  time: [{} {} {}]  ({} samples)",
                self.name,
                format_ns(stats.min_ns),
                format_ns(stats.median_ns),
                format_ns(stats.mean_ns),
                stats.samples,
            ),
            None => println!(
                "{}/{id}  (no measurement: Bencher::iter never called)",
                self.name
            ),
        }
    }

    /// Ends the group (kept for API compatibility; reports print eagerly).
    pub fn finish(self) {}
}

/// Per-iteration timing statistics, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// Mean over all samples.
    pub mean_ns: f64,
    /// Number of samples collected.
    pub samples: usize,
}

/// Times a routine (mirrors `criterion::Bencher`).
pub struct Bencher {
    sample_size: usize,
    stats: Option<Stats>,
    ran_untimed: bool,
}

/// Time budget per collected sample.
const SAMPLE_BUDGET: Duration = Duration::from_millis(8);
/// Warm-up budget before calibration.
const WARMUP_BUDGET: Duration = Duration::from_millis(40);

impl Bencher {
    /// Measures `routine`, storing per-iteration statistics.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if test_mode() {
            black_box(routine());
            self.ran_untimed = true;
            return;
        }
        // Warm-up: run until the budget elapses, estimating cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u32 = 0;
        while warmup_start.elapsed() < WARMUP_BUDGET || warmup_iters == 0 {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let est_iter = warmup_start.elapsed() / warmup_iters;

        // Calibrate iterations per sample to the sample budget, and trim
        // the sample count when a single iteration blows that budget.
        let iters_per_sample = if est_iter.is_zero() {
            10_000
        } else {
            (SAMPLE_BUDGET.as_nanos() / est_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u32
        };
        let samples = if est_iter > 16 * SAMPLE_BUDGET {
            self.sample_size.min(10)
        } else {
            self.sample_size
        };

        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter_ns.push(start.elapsed().as_nanos() as f64 / f64::from(iters_per_sample));
        }
        per_iter_ns.sort_unstable_by(f64::total_cmp);
        self.stats = Some(Stats {
            min_ns: per_iter_ns[0],
            median_ns: per_iter_ns[per_iter_ns.len() / 2],
            mean_ns: per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64,
            samples,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups. The only harness flag honoured
/// is `--test` (run each benchmark once, untimed — the CI smoke mode);
/// everything else `cargo bench` passes (e.g. `--bench`) is ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_ordered_stats() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(5);
        let mut captured = None;
        group.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
            captured = b.stats;
        });
        group.finish();
        let stats = captured.expect("stats recorded");
        assert!(stats.min_ns > 0.0);
        assert!(stats.min_ns <= stats.median_ns);
        assert!(stats.samples == 5);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("naive", 32).id, "naive/32");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }
}
