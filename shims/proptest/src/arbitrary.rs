//! The `any::<T>()` entry point and the types it covers.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(pub(crate) PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix uniform bits with boundary values so edge cases
                // show up far more often than uniform sampling would allow.
                match rng.below(8) {
                    0 => <$t>::MIN,
                    1 => <$t>::MAX,
                    2 => 0,
                    3 => 1,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        const SPECIALS: [f64; 12] = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0.0,
            -0.0,
            1.0,
            -1.0,
            f64::MIN,
            f64::MAX,
            f64::MIN_POSITIVE,
            f64::EPSILON,
            1e-300,
        ];
        if rng.below(8) == 0 {
            let special = SPECIALS[rng.below(SPECIALS.len() as u64) as usize];
            // Half the NaNs drawn are negative, as with real bit patterns.
            if special.is_nan() && rng.next_u64() & 1 == 1 {
                return -special;
            }
            special
        } else {
            // Uniform bit patterns: covers subnormals, huge exponents, and
            // the occasional NaN payload.
            f64::from_bits(rng.next_u64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_cover_the_special_values() {
        let mut rng = TestRng::seed_from_u64(5);
        let (mut nan, mut inf, mut finite) = (false, false, false);
        for _ in 0..2000 {
            let x = f64::arbitrary(&mut rng);
            nan |= x.is_nan();
            inf |= x.is_infinite();
            finite |= x.is_finite();
        }
        assert!(nan && inf && finite);
    }

    #[test]
    fn ints_hit_extremes() {
        let mut rng = TestRng::seed_from_u64(6);
        let values: Vec<i64> = (0..200).map(|_| i64::arbitrary(&mut rng)).collect();
        assert!(values.contains(&i64::MIN));
        assert!(values.contains(&i64::MAX));
    }
}
