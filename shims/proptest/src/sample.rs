//! Sampling from explicit value lists (mirrors `proptest::sample`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A uniform choice from `options`.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.options[rng.usize_in(0, self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_covers_every_option() {
        let strat = select(vec!["a", "b", "c"]);
        let mut rng = TestRng::seed_from_u64(10);
        let mut seen = [false; 3];
        for _ in 0..100 {
            match strat.sample(&mut rng) {
                "a" => seen[0] = true,
                "b" => seen[1] = true,
                _ => seen[2] = true,
            }
        }
        assert_eq!(seen, [true; 3]);
    }
}
