//! String generation from a small regex subset.
//!
//! Real proptest interprets `&str` strategies as full regexes via the
//! `regex-syntax` crate. This stand-in supports exactly the constructs the
//! workspace's tests use: literal characters, character classes with
//! ranges (`[a-z]`, `[ -~]`), the `\PC` "no control characters" escape,
//! and the quantifiers `*`, `+`, `{m}`, `{m,n}`. Anything else panics
//! loudly so an unsupported pattern is caught at test time, not silently
//! mis-sampled.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum CharClass {
    /// Inclusive ranges; sampling is weighted by range width.
    Ranges(Vec<(char, char)>),
    /// Any character except the Unicode control category (`\PC`).
    NonControl,
}

#[derive(Debug, Clone)]
struct Element {
    class: CharClass,
    min: usize,
    max: usize, // inclusive
}

/// Characters beyond ASCII sampled for `\PC`, to exercise multi-byte
/// UTF-8 handling without dragging in Unicode tables.
const NON_ASCII: [char; 10] = [
    'é', 'ß', 'Ω', 'λ', 'з', '中', '→', '\u{00A0}', '\u{2028}', '🦀',
];

fn parse(pattern: &str) -> Vec<Element> {
    let mut chars = pattern.chars().peekable();
    let mut elements = Vec::new();
    while let Some(c) = chars.next() {
        let class = match c {
            '\\' => match chars.next() {
                Some('P') => {
                    let category = chars.next();
                    assert!(
                        category == Some('C'),
                        "unsupported escape \\P{category:?} in regex strategy {pattern:?}"
                    );
                    CharClass::NonControl
                }
                Some(escaped) => CharClass::Ranges(vec![(escaped, escaped)]),
                None => panic!("dangling backslash in regex strategy {pattern:?}"),
            },
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = match chars.next() {
                        Some(']') => break,
                        Some('\\') => chars
                            .next()
                            .unwrap_or_else(|| panic!("dangling backslash in {pattern:?}")),
                        Some(ch) => ch,
                        None => panic!("unterminated class in regex strategy {pattern:?}"),
                    };
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        match chars.next() {
                            Some(']') => {
                                // Trailing '-' is a literal, as in regex.
                                ranges.push((lo, lo));
                                ranges.push(('-', '-'));
                                break;
                            }
                            Some(hi) => {
                                assert!(lo <= hi, "inverted range in {pattern:?}");
                                ranges.push((lo, hi));
                            }
                            None => panic!("unterminated class in regex strategy {pattern:?}"),
                        }
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(
                    !ranges.is_empty(),
                    "empty class in regex strategy {pattern:?}"
                );
                CharClass::Ranges(ranges)
            }
            '.' => CharClass::NonControl,
            c if "()|?^$".contains(c) => {
                panic!("unsupported regex construct {c:?} in strategy {pattern:?}")
            }
            c => CharClass::Ranges(vec![(c, c)]),
        };
        let (min, max) = match chars.peek() {
            Some('*') => {
                chars.next();
                (0, 16)
            }
            Some('+') => {
                chars.next();
                (1, 16)
            }
            Some('{') => {
                chars.next();
                let mut digits = String::new();
                let mut lo = None;
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(',') => {
                            lo = Some(digits.parse::<usize>().expect("bad repeat count"));
                            digits.clear();
                        }
                        Some(d) if d.is_ascii_digit() => digits.push(d),
                        other => panic!("bad quantifier near {other:?} in {pattern:?}"),
                    }
                }
                let last = digits.parse::<usize>().expect("bad repeat count");
                match lo {
                    Some(lo) => (lo, last),
                    None => (last, last),
                }
            }
            _ => (1, 1),
        };
        assert!(
            min <= max,
            "inverted quantifier in regex strategy {pattern:?}"
        );
        elements.push(Element { class, min, max });
    }
    elements
}

fn sample_char(class: &CharClass, rng: &mut TestRng) -> char {
    match class {
        CharClass::Ranges(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| u64::from(*hi) - u64::from(*lo) + 1)
                .sum();
            let mut ticket = rng.below(total);
            for (lo, hi) in ranges {
                let width = u64::from(*hi) - u64::from(*lo) + 1;
                if ticket < width {
                    // Classes used here never straddle the surrogate gap.
                    return char::from_u32(*lo as u32 + ticket as u32)
                        .expect("range straddles a non-character gap");
                }
                ticket -= width;
            }
            unreachable!("ticket exceeded class width")
        }
        CharClass::NonControl => {
            // Mostly printable ASCII, sometimes multi-byte codepoints.
            if rng.below(5) == 0 {
                NON_ASCII[rng.usize_in(0, NON_ASCII.len())]
            } else {
                char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ASCII")
            }
        }
    }
}

/// Draws one string matching `pattern` (within the supported subset).
pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for element in parse(pattern) {
        let count = rng.usize_in(element.min, element.max + 1);
        for _ in 0..count {
            out.push(sample_char(&element.class, rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::sample_regex;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_repeat_respects_alphabet_and_length() {
        let mut rng = TestRng::seed_from_u64(11);
        for _ in 0..200 {
            let s = sample_regex("[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_ascii_class_spans_space_to_tilde() {
        let mut rng = TestRng::seed_from_u64(12);
        let mut space = false;
        let mut tilde_side = false;
        for _ in 0..500 {
            let s = sample_regex("[ -~]{0,12}", &mut rng);
            assert!(s.chars().count() <= 12);
            for c in s.chars() {
                assert!((' '..='~').contains(&c));
                space |= c == ' ';
                tilde_side |= c > 'z';
            }
        }
        assert!(space && tilde_side, "edges of the class never sampled");
    }

    #[test]
    fn non_control_star_emits_no_control_chars() {
        let mut rng = TestRng::seed_from_u64(13);
        let mut non_ascii = false;
        for _ in 0..500 {
            let s = sample_regex("\\PC*", &mut rng);
            assert!(!s.chars().any(char::is_control), "control char in {s:?}");
            non_ascii |= !s.is_ascii();
        }
        assert!(non_ascii, "multi-byte codepoints never sampled");
    }

    #[test]
    fn single_class_defaults_to_one_char() {
        let mut rng = TestRng::seed_from_u64(14);
        for _ in 0..50 {
            let s = sample_regex("[A-E]", &mut rng);
            assert_eq!(s.chars().count(), 1);
            assert!(('A'..='E').contains(&s.chars().next().unwrap()));
        }
    }
}
