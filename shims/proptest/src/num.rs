//! Numeric strategies (mirrors `proptest::num`).

macro_rules! num_module {
    ($($t:ident),*) => {$(
        pub mod $t {
            //! Strategies for this primitive.

            use std::marker::PhantomData;

            use crate::arbitrary::Any;

            /// Any value of the type, with boundary values over-weighted.
            pub const ANY: Any<$t> = Any(PhantomData);
        }
    )*};
}

num_module!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);
