//! The case runner: deterministic RNG, config, and error type.

use std::fmt;

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case found a counterexample.
    Fail(String),
    /// The case asked to be discarded (e.g. `prop_assume`).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A rejection (discard) with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The outcome of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The deterministic generator handed to strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds via SplitMix64 expansion of `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits (xoshiro256**, Blackman & Vigna).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is an empty range");
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(data: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in data.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Runs `case` up to `config.cases` times with a deterministic per-test
/// seed, panicking on the first failure (no shrinking is attempted).
///
/// # Panics
///
/// Panics when a case fails, or when too many cases are rejected.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut rng = TestRng::seed_from_u64(fnv1a(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected < config.cases.saturating_mul(16).max(1024),
                    "{name}: too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("{name}: case {passed} failed (no shrinking attempted)\n{message}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let mut a = TestRng::seed_from_u64(3);
        let mut b = TestRng::seed_from_u64(3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn runner_counts_cases() {
        let mut runs = 0;
        run_proptest(&ProptestConfig::with_cases(17), "counting", |_| {
            runs += 1;
            Ok(())
        });
        assert_eq!(runs, 17);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn runner_panics_on_failure() {
        run_proptest(&ProptestConfig::default(), "failing", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn rejects_are_skipped() {
        let mut attempts = 0;
        run_proptest(&ProptestConfig::with_cases(4), "rejecting", |rng| {
            attempts += 1;
            if rng.below(2) == 0 {
                Err(TestCaseError::reject("coin"))
            } else {
                Ok(())
            }
        });
        assert!(attempts >= 4);
    }
}
