//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the slice of proptest's API that the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map`/`prop_recursive`,
//! weighted unions, collection/sample/string strategies, and the
//! `proptest!`/`prop_assert*` macros. Test cases are drawn by
//! deterministic random sampling (seeded per test name, so runs are
//! reproducible); there is **no shrinking** — a failure reports the first
//! counterexample as sampled.
//!
//! API shapes mirror proptest 1.x so the real crate can be restored by
//! editing only the workspace manifest.

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod num;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    // `prop::collection::vec(..)` etc. resolve through this alias, exactly
    // as in the real crate's prelude.
    pub use crate as prop;
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__wlq_l, __wlq_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__wlq_l == *__wlq_r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __wlq_l,
            __wlq_r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__wlq_l, __wlq_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__wlq_l == *__wlq_r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __wlq_l,
            __wlq_r,
            format!($($fmt)*)
        );
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__wlq_l, __wlq_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__wlq_l != *__wlq_r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __wlq_l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__wlq_l, __wlq_r) = (&$left, &$right);
        $crate::prop_assert!(
            *__wlq_l != *__wlq_r,
            "assertion failed: `left != right`\n  both: `{:?}`\n{}",
            __wlq_l,
            format!($($fmt)*)
        );
    }};
}

/// A union of strategies, optionally weighted: `prop_oneof![a, b]` or
/// `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that samples inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __wlq_config = $config;
            $crate::test_runner::run_proptest(&__wlq_config, stringify!($name), |__wlq_rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __wlq_rng);)*
                let __wlq_case = || -> $crate::test_runner::TestCaseResult {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                };
                __wlq_case()
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}
