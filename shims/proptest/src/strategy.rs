//! The [`Strategy`] trait and core combinators.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type (mirrors
/// `proptest::strategy::Strategy`, minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Builds recursive values: `recurse` receives a strategy for smaller
    /// instances and returns one for composites. `depth` bounds nesting;
    /// the size/branch hints are accepted for API compatibility but this
    /// sampler controls size through its leaf/recurse split alone.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // At each level: 1/3 stop at a leaf, 2/3 recurse one deeper.
            let deeper = recurse(current).boxed();
            current = Union::new(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Type-erases the strategy behind a cheaply-clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.sample(rng))
    }
}

/// A weighted choice between strategies (built by `prop_oneof!`).
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// A union of `(weight, strategy)` alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    #[must_use]
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { options, total }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
            total: self.total,
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let mut ticket = rng.below(self.total);
        for (weight, option) in &self.options {
            let weight = u64::from(*weight);
            if ticket < weight {
                return option.sample(rng);
            }
            ticket -= weight;
        }
        unreachable!("ticket exceeded total weight")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (u128::from(rng.next_u64()) % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo + (u128::from(rng.next_u64()) % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = (0..5usize).prop_map(|i| i * 2);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v % 2 == 0 && v < 10);
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = Union::new(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let trues = (0..1000).filter(|_| strat.sample(&mut rng)).count();
        assert!((800..1000).contains(&trues), "got {trues}");
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = TestRng::seed_from_u64(3);
        let mut max_seen = 0;
        for _ in 0..300 {
            max_seen = max_seen.max(depth(&strat.sample(&mut rng)));
        }
        assert!(max_seen > 0, "recursion never fired");
        assert!(max_seen <= 3, "depth cap violated: {max_seen}");
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut rng = TestRng::seed_from_u64(4);
        let (a, b, c) = (0..3u8, 10..13u8, Just(7u8)).sample(&mut rng);
        assert!(a < 3 && (10..13).contains(&b) && c == 7);
    }
}
