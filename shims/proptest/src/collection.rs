//! Collection strategies (mirrors `proptest::collection`).

use std::collections::BTreeSet;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Vectors of `size.start..size.end` elements (end exclusive).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.start, self.size.end);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Sets of `size.start..size.end` distinct elements (end exclusive).
/// If the element domain is too small to reach a drawn size, the set is
/// returned at whatever size repeated draws achieved.
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    assert!(size.start < size.end, "empty set size range");
    BTreeSetStrategy { element, size }
}

/// The strategy returned by [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.usize_in(self.size.start, self.size.end);
        let mut set = BTreeSet::new();
        // Collisions don't count toward the target, but bound the number
        // of attempts in case the element domain is smaller than `target`.
        let mut attempts = 0;
        while set.len() < target && attempts < 64 * (target + 1) {
            set.insert(self.element.sample(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_lengths_stay_in_range() {
        let strat = vec(0..10u8, 2..5);
        let mut rng = TestRng::seed_from_u64(7);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn sets_reach_their_target_size() {
        let strat = btree_set(1u32..13, 1..5);
        let mut rng = TestRng::seed_from_u64(8);
        for _ in 0..200 {
            let s = strat.sample(&mut rng);
            assert!((1..5).contains(&s.len()), "len {}", s.len());
        }
    }

    #[test]
    fn small_domains_saturate_instead_of_hanging() {
        let strat = btree_set(0..2u8, 1..5);
        let mut rng = TestRng::seed_from_u64(9);
        for _ in 0..50 {
            assert!(!strat.sample(&mut rng).is_empty());
        }
    }
}
