//! Boolean strategies (mirrors `proptest::bool`).

use std::marker::PhantomData;

use crate::arbitrary::Any;

/// Either boolean with equal probability.
pub const ANY: Any<bool> = Any(PhantomData);
