//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of `rand` 0.8's API that it actually uses:
//! [`Rng::gen_range`] over integer/float ranges, [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::choose`]. The generator is xoshiro256** seeded via
//! SplitMix64 — statistically strong enough for simulation and test-input
//! generation, which is all this workspace asks of it.
//!
//! The API shapes (trait names, module paths, method signatures) mirror
//! `rand` 0.8 exactly so that swapping the real crate back in is a
//! one-line change in the workspace manifest.

use std::ops::{Range, RangeInclusive};

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The object-safe core of a generator: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching `rand`'s contract.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The user-facing generator trait (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::draw(self) < p
    }

    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::Rng;

    /// Random selection from slices (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// The slice element type.
        type Item;

        /// A uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..9usize);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(42);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..16 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(1);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        assert!(Vec::<u8>::new().choose(&mut rng).is_none());
    }
}
