//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`thread::scope`] is provided — the one crossbeam API this
//! workspace uses — implemented on top of `std::thread::scope` (stable
//! since Rust 1.63, after crossbeam pioneered the pattern). Signatures
//! mirror crossbeam 0.8: the scope closure and every spawned closure
//! receive a [`thread::Scope`] argument, and `scope` returns a `Result`
//! even though the std implementation propagates panics directly.

pub mod thread {
    //! Scoped threads (mirrors `crossbeam::thread`).

    /// A scope for spawning borrowing threads; wraps [`std::thread::Scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// A handle to a scoped thread; joins to the closure's return value.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, yielding its result.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope again so it can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope whose threads may borrow from the caller's stack.
    ///
    /// # Errors
    ///
    /// Crossbeam reports child-thread panics as `Err`; `std::thread::scope`
    /// resumes the panic on the parent instead, so this adaptor only ever
    /// returns `Ok` — matching call sites that `.expect(..)` the result.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let outputs: Vec<usize> = super::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let counter = &counter;
                    scope.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        i * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 4);
        assert_eq!(outputs, vec![0, 10, 20, 30]);
    }

    #[test]
    fn nested_spawn_through_the_scope_argument() {
        let hits = AtomicUsize::new(0);
        super::thread::scope(|scope| {
            scope.spawn(|inner| {
                hits.fetch_add(1, Ordering::Relaxed);
                inner.spawn(|_| hits.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }
}
