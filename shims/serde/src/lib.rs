//! Offline placeholder for the `serde` crate.
//!
//! The workspace only references serde behind the optional, off-by-default
//! `serde` cargo feature of `wlq-log`/`wlq-pattern`. This placeholder exists
//! so dependency resolution succeeds without network access; it does NOT
//! implement serialization. Enabling the workspace `serde` features requires
//! restoring the real crate in the workspace manifest.
