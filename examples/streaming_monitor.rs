//! Runtime monitoring with the streaming evaluator.
//!
//! The paper frames log querying as analysis of "past and current"
//! executions. This example wires a [`StreamingEvaluator`] behind a live
//! workflow engine: records are appended one at a time and the monitor
//! raises an alert the moment an anomalous pattern *completes* — no
//! re-evaluation of the whole log per event.
//!
//! ```sh
//! cargo run -p wlq-core --example streaming_monitor
//! ```

use wlq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = wlq::scenarios::clinic::model();
    let log = simulate(&model, &SimulationConfig::new(300, 2024));

    // Monitors: one per rule, fed record-by-record as if live.
    let mut monitors = vec![
        (
            "update-before-reimburse",
            StreamingEvaluator::new("UpdateRefer -> GetReimburse".parse()?),
        ),
        (
            "triple-doctor-visit",
            StreamingEvaluator::new("SeeDoctor -> SeeDoctor -> SeeDoctor".parse()?),
        ),
        (
            "instant-reimburse",
            StreamingEvaluator::new("CheckIn ~> GetReimburse".parse()?),
        ),
    ];

    let mut alerts = 0usize;
    for record in log.iter() {
        for (name, monitor) in &mut monitors {
            let fresh = monitor.append(record)?;
            for incident in fresh {
                alerts += 1;
                if alerts <= 10 {
                    println!(
                        "ALERT [{name}] at lsn {}: instance {} completed {incident}",
                        record.lsn(),
                        incident.wid(),
                    );
                }
            }
        }
    }
    if alerts > 10 {
        println!("… {} more alerts suppressed", alerts - 10);
    }

    // The streaming results coincide with batch evaluation of the final log.
    println!("\nconsistency check (streaming ≡ batch):");
    for (name, monitor) in &monitors {
        let batch = Query::new(monitor.pattern().clone())
            .optimize(false)
            .find(&log)?;
        let ok = batch == monitor.incidents();
        println!(
            "  {name:<26} {} incidents, matches batch: {ok}",
            monitor.incidents().len()
        );
        assert!(ok);
    }
    Ok(())
}
