//! Quickstart: build a log, query it, print the results.
//!
//! ```sh
//! cargo run -p wlq-core --example quickstart
//! ```

use wlq::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── 1. The paper's Figure 3 log ships with the library. ───────────
    let log = wlq::paper::figure3_log();
    println!("The clinic referral log (Figure 3 of the paper):\n{log}");
    println!("{}", LogStats::compute(&log));

    // ── 2. Ask the paper's motivating question. ───────────────────────
    // "Are there any students who update their referral before they
    //  receive a reimbursement?"
    let q = Query::parse("UpdateRefer -> GetReimburse")?;
    let incidents = q.find(&log)?;
    println!("UpdateRefer -> GetReimburse: {incidents}");
    for wid in incidents.wids() {
        println!("  → instance {wid} updated its referral before reimbursement");
    }

    // ── 3. All four operators in one query. ───────────────────────────
    // Consecutive (~>), sequential (->), choice (|), parallel (&):
    let q = Query::parse("GetRefer ~> CheckIn -> (UpdateRefer | (SeeDoctor & PayTreatment))")?;
    println!("\ncomposite query matches: {}", q.count(&log)?);

    // ── 4. Build your own log with the builder API. ───────────────────
    let mut b = LogBuilder::new();
    let w = b.start_instance();
    b.append(w, "Plan", attrs! {}, attrs! { "budget" => 300i64 })?;
    b.append(w, "Execute", attrs! { "budget" => 300i64 }, attrs! {})?;
    b.end_instance(w)?;
    let mine = b.build()?;
    let q = Query::parse("Plan ~> Execute")?;
    println!("own log: Plan ~> Execute exists = {}", q.exists(&mine)?);

    // ── 5. Or simulate a whole process at scale. ───────────────────────
    let model = wlq::scenarios::clinic::model();
    let big = simulate(&model, &SimulationConfig::new(500, 7));
    let anomalies = wlq::analyses::update_before_reimburse(&big)?;
    println!(
        "simulated {} instances ({} records): {} updated before reimbursement",
        big.num_instances(),
        big.len(),
        anomalies.len()
    );
    Ok(())
}
