//! Process exploration across three workflow scenarios.
//!
//! Shows the ad hoc exploration style the paper argues for: no ETL, no
//! warehouse schema — point incident patterns straight at the log and
//! iterate. Covers the order-fulfillment scenario's parallel block (the
//! `⊕` operator) and the loan scenario's choice structure (`⊗`), plus
//! algebraic optimization and the incident-tree trace.
//!
//! ```sh
//! cargo run -p wlq-core --example process_mining
//! ```

use wlq::prelude::*;
use wlq::{IncidentTree, LogIndex, Optimizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ── Orders: the parallel block. ────────────────────────────────────
    let orders = simulate(
        &wlq::scenarios::order::model(),
        &SimulationConfig::new(400, 99),
    );
    println!(
        "── order fulfillment ({} instances) ──",
        orders.num_instances()
    );

    // Shipping and invoicing happen in parallel: the ⊕ pattern matches
    // regardless of interleaving order.
    let par = Query::parse("(PickItems -> Ship) & (CreateInvoice -> CollectPayment)")?;
    println!("parallel ship/invoice incidents : {}", par.count(&orders)?);
    // Sequential would miss the interleavings where invoicing finished first:
    let seq = Query::parse("(PickItems -> Ship) -> (CreateInvoice -> CollectPayment)")?;
    println!("strictly-sequenced incidents    : {}", seq.count(&orders)?);

    // ── Loans: the choice structure. ───────────────────────────────────
    let loans = simulate(
        &wlq::scenarios::loan::model(),
        &SimulationConfig::new(400, 7),
    );
    println!(
        "\n── loan origination ({} instances) ──",
        loans.num_instances()
    );
    let approved = Query::parse("(AutoApprove | Approve) -> Disburse")?;
    let rejected = Query::parse("Reject")?;
    let appealed = Query::parse("Reject -> Appeal -> ManualReview")?;
    println!(
        "approved & disbursed            : {} instances",
        approved.count_by_instance(&loans)?.len()
    );
    println!(
        "rejected at least once          : {} instances",
        rejected.count_by_instance(&loans)?.len()
    );
    println!(
        "appealed after rejection        : {} instances",
        appealed.count_by_instance(&loans)?.len()
    );

    // ── Optimizer at work. ─────────────────────────────────────────────
    let stats = LogStats::compute(&loans);
    let optimizer = Optimizer::new(stats);
    let pattern: Pattern = "(Submit -> Approve) | (Submit -> Reject)".parse()?;
    let (optimized, report) = optimizer.optimize_with_report(&pattern);
    println!("\noptimizer: {pattern}  ⇒  {optimized}");
    println!(
        "estimated cost {:.0} → {:.0} ({:.1}× speedup)",
        report.cost_before,
        report.cost_after,
        report.speedup()
    );

    // ── Incident-tree trace (the paper's Example 5 walkthrough). ──────
    let tree = IncidentTree::from_pattern(&"Submit -> (Reject -> Appeal)".parse()?);
    let index = LogIndex::build(&loans);
    let (_, trace) = tree.evaluate_traced(&loans, &index, Strategy::Optimized);
    println!("\nincident-tree evaluation trace:\n{trace}");
    Ok(())
}
