//! Model discovery and drift detection.
//!
//! The full process-intelligence loop on top of the query algebra:
//!
//! 1. **Mine** the frequent behavioural relations of a log
//!    (directly-follows discovery, expressed as incident patterns).
//! 2. **Check** the log against the known workflow model (conformance by
//!    token-game replay) and localise violations.
//! 3. **Track** an anomaly's emergence over log time with a query
//!    timeline.
//! 4. **Export** the model as Graphviz DOT and the log as XES for
//!    external process-mining tools.
//!
//! ```sh
//! cargo run -p wlq-core --example model_discovery
//! ```

use wlq::prelude::*;
use wlq::{mine_relations, timeline, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = wlq::scenarios::loan::model();
    let log = simulate(&model, &SimulationConfig::new(250, 77));
    println!(
        "discovered behaviour of {} ({} instances, {} records)\n",
        model.name(),
        log.num_instances(),
        log.len()
    );

    // ── 1. Mine the dominant relations. ───────────────────────────────
    println!("frequent relations (support ≥ 200 instances):");
    for relation in mine_relations(&log, 200) {
        println!(
            "  {:<38} {:>4} instances",
            relation.pattern.to_string(),
            relation.support
        );
    }

    // ── 2. Conformance: the log fits its own model… ────────────────────
    let report = model.check_log(&log);
    println!(
        "\nconformance vs {}: {} instance(s), {} violating",
        model.name(),
        report.verdicts.len(),
        report.violations().len()
    );
    assert!(report.is_conforming());

    // …but not a foreign one.
    let foreign = wlq::scenarios::order::model();
    let cross = foreign.check_log(&log);
    let complete = cross
        .verdicts
        .values()
        .filter(|v| **v == Verdict::Complete)
        .count();
    println!(
        "conformance vs {}: {} of {} traces fit (drift detector works)",
        foreign.name(),
        complete,
        cross.verdicts.len()
    );

    // ── 3. When do appeals start appearing? ────────────────────────────
    let appeals: Pattern = "Reject -> Appeal".parse()?;
    println!("\nappeal timeline (cumulative incidents every 500 records):");
    for point in timeline(&log, &appeals, 500)? {
        println!(
            "  up to lsn {:>5}: {:>4} (+{})",
            point.lsn, point.incidents, point.delta
        );
    }

    // ── 4. Interchange artifacts. ───────────────────────────────────────
    let dot = model.to_dot();
    let xes = wlq::io::xes::write_xes(&log);
    println!(
        "\nexport sizes: DOT {} bytes, XES {} bytes (write them with `wlq dot loan` / `wlq convert`)",
        dot.len(),
        xes.len()
    );
    Ok(())
}
