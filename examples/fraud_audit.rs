//! Fraud audit over a simulated clinic referral log.
//!
//! The paper's conclusion suggests incident-pattern queries for
//! "detecting anomalous or malicious behavior, with applications in fraud
//! detection". This example simulates a busy clinic and runs the built-in
//! rule battery ([`wlq::rules::RuleSet::clinic_fraud`]) plus a custom
//! rule, then drills into the worst offender.
//!
//! ```sh
//! cargo run -p wlq-core --example fraud_audit
//! ```

use wlq::prelude::*;
use wlq::rules::RuleSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = wlq::scenarios::clinic::model();
    let log = simulate(&model, &SimulationConfig::new(2_000, 1234));
    println!(
        "audit over {} instances / {} records\n",
        log.num_instances(),
        log.len()
    );

    // The built-in battery, extended with a custom rule.
    let mut rules = RuleSet::clinic_fraud();
    rules.add(
        "marathon-referral",
        "five or more doctor visits on one referral",
        "SeeDoctor -> SeeDoctor -> SeeDoctor -> SeeDoctor -> SeeDoctor",
    )?;
    println!("rules:\n{}", rules.to_text());

    let report = rules.audit(&log)?;
    print!("{report}");

    let offenders = report.repeat_offenders(3);
    println!("\n{} instance(s) tripped 3+ rules", offenders.len());
    for (wid, hits) in offenders.iter().take(5) {
        println!(
            "  instance {wid}: {hits} rules — {}",
            report.flagged[wid].join(", ")
        );
    }

    // Drill into the worst offender with the paper-notation rendering.
    if let Some((wid, _)) = offenders.first() {
        let sub = log.filter_instances(|w| w == *wid)?;
        println!("\nworst offender (instance {wid}) trace:");
        for record in sub.iter().take(15) {
            println!("  {record}");
        }
        let q = Query::parse("UpdateRefer -> GetReimburse")?;
        let incidents = q.find(&sub)?;
        if !incidents.is_empty() {
            println!("  anomaly incidents: {}", incidents.display_in(&sub));
        }
    }

    // Dollar-weighted view: group high-balance referrals by hospital.
    println!("\nhigh-balance (> $6000) referrals by hospital:");
    for (hospital, count) in wlq::analyses::high_balance_referrals_by(&log, 6000, "hospital")? {
        println!("  {hospital:<18} {count}");
    }

    // Process-latency view: how many steps from update to reimbursement?
    if let Some(stats) = Query::parse("UpdateRefer -> GetReimburse")?.span_stats(&log)? {
        println!("\nupdate→reimburse spans: {stats}");
    }
    Ok(())
}
