//! Cost-based pattern optimization — the "immediate task" the paper's
//! conclusion calls for, built on the laws of Section 4.
//!
//! Three passes, all equivalence-preserving by Theorems 2–5:
//!
//! 1. **Factoring** ([`crate::rewrite::factor`]): merge `(a θ b) ⊗ (a θ c)`
//!    into `a θ (b ⊗ c)` so shared sub-patterns are evaluated once.
//! 2. **Chain re-parenthesisation** (Theorems 2/4): dynamic programming
//!    over each `{⊙, →}` chain picks the cheapest evaluation order, like
//!    join ordering along a path.
//! 3. **Commutative reordering** (Theorems 2/3): operands of `⊗`/`⊕`
//!    chains are evaluated smallest-first.
//!
//! Costs come from a [`CostModel`] fed with per-activity counts
//! ([`wlq_log::LogStats`]).

use wlq_log::LogStats;

use crate::algebra::{flatten_chain, Chain};
use crate::ast::{Op, Pattern};
use crate::rewrite::factor;

/// Cardinality and cost estimates for pattern evaluation over a particular
/// log, derived from [`LogStats`].
#[derive(Debug, Clone)]
pub struct CostModel {
    num_records: f64,
    num_instances: f64,
    stats: LogStats,
}

impl CostModel {
    /// Builds a model from log statistics.
    #[must_use]
    pub fn new(stats: LogStats) -> Self {
        #[allow(clippy::cast_precision_loss)]
        CostModel {
            num_records: stats.num_records.max(1) as f64,
            num_instances: stats.num_instances.max(1) as f64,
            stats,
        }
    }

    /// Estimated `|incL(p)|` across the whole log.
    ///
    /// Atoms use exact activity counts; composites use uniform-placement
    /// approximations (a pair of incidents of one instance is adjacent with
    /// probability `≈ 1/m`, ordered with probability `≈ 1/2`, and lands in
    /// the same instance with probability `≈ 1/W`).
    #[must_use]
    pub fn estimate_incidents(&self, p: &Pattern) -> f64 {
        match p {
            Pattern::Atom(a) => {
                #[allow(clippy::cast_precision_loss)]
                let count = if a.negated {
                    self.num_records - self.stats.activity_count(a.activity.as_str()) as f64
                } else {
                    self.stats.activity_count(a.activity.as_str()) as f64
                };
                // Each predicate filters; assume selectivity 1/2.
                count * 0.5_f64.powi(a.predicates.len() as i32)
            }
            Pattern::Binary { op, left, right } => {
                let n1 = self.estimate_incidents(left);
                let n2 = self.estimate_incidents(right);
                self.combine_estimate(*op, n1, n2)
            }
        }
    }

    /// Estimated output size of combining incident sets of sizes `n1`,
    /// `n2` under `op`.
    #[must_use]
    pub fn combine_estimate(&self, op: Op, n1: f64, n2: f64) -> f64 {
        match op {
            Op::Consecutive => n1 * n2 / self.num_records,
            Op::Sequential => n1 * n2 / (2.0 * self.num_instances),
            Op::Choice => n1 + n2,
            Op::Parallel => n1 * n2 / self.num_instances,
        }
    }

    /// Estimated work of combining two incident sets under `op` with the
    /// paper's Algorithm 1 (Lemma 1 cost shapes).
    #[must_use]
    pub fn combine_cost(&self, op: Op, n1: f64, n2: f64, k1: f64, k2: f64) -> f64 {
        match op {
            Op::Consecutive | Op::Sequential => n1 * n2,
            Op::Choice => (n1 + n2) * k1.min(k2).max(1.0),
            Op::Parallel => n1 * n2 * (k1 + k2),
        }
    }

    /// Estimated total evaluation work for `p` (leaf scans plus all
    /// operator applications).
    #[must_use]
    pub fn estimate_cost(&self, p: &Pattern) -> f64 {
        match p {
            Pattern::Atom(_) => self.num_records,
            Pattern::Binary { op, left, right } => {
                let n1 = self.estimate_incidents(left);
                let n2 = self.estimate_incidents(right);
                #[allow(clippy::cast_precision_loss)]
                let (k1, k2) = (left.num_atoms() as f64, right.num_atoms() as f64);
                self.estimate_cost(left)
                    + self.estimate_cost(right)
                    + self.combine_cost(*op, n1, n2, k1, k2)
            }
        }
    }
}

/// The report produced alongside an optimized pattern.
#[derive(Debug, Clone)]
pub struct OptimizeReport {
    /// Estimated cost of the input pattern.
    pub cost_before: f64,
    /// Estimated cost of the optimized pattern.
    pub cost_after: f64,
    /// Human-readable descriptions of the transformations applied.
    pub decisions: Vec<String>,
}

impl OptimizeReport {
    /// Estimated speedup factor (`before / after`, at least 1 for a
    /// non-regressing optimizer).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.cost_after <= 0.0 {
            1.0
        } else {
            self.cost_before / self.cost_after
        }
    }
}

/// The cost-based optimizer.
#[derive(Debug, Clone)]
pub struct Optimizer {
    model: CostModel,
}

impl Optimizer {
    /// Creates an optimizer for logs matching `stats`.
    #[must_use]
    pub fn new(stats: LogStats) -> Self {
        Optimizer {
            model: CostModel::new(stats),
        }
    }

    /// Access to the underlying cost model.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Optimizes `p`, returning an equivalent pattern (by Theorems 2–5)
    /// with lower or equal estimated cost.
    #[must_use]
    pub fn optimize(&self, p: &Pattern) -> Pattern {
        self.optimize_with_report(p).0
    }

    /// Like [`optimize`](Self::optimize) but also reports costs and the
    /// decisions taken.
    #[must_use]
    pub fn optimize_with_report(&self, p: &Pattern) -> (Pattern, OptimizeReport) {
        let cost_before = self.model.estimate_cost(p);
        let mut decisions = Vec::new();

        let factored = factor(p);
        if &factored != p {
            decisions.push(format!("factored common choice operands: {factored}"));
        }
        let shaped = self.shape(&factored, &mut decisions);

        // Never regress: if our estimate says the rewrite is worse, keep
        // the original (the estimates are heuristic).
        let cost_after = self.model.estimate_cost(&shaped);
        if cost_after > cost_before {
            decisions.push("rewrite estimated worse than input; kept input".to_string());
            let report = OptimizeReport {
                cost_before,
                cost_after: cost_before,
                decisions,
            };
            return (p.clone(), report);
        }
        (
            shaped,
            OptimizeReport {
                cost_before,
                cost_after,
                decisions,
            },
        )
    }

    /// Bottom-up reshaping: chain DP for `{⊙, →}`, smallest-first for
    /// commutative chains.
    fn shape(&self, p: &Pattern, decisions: &mut Vec<String>) -> Pattern {
        match p {
            Pattern::Atom(_) => p.clone(),
            Pattern::Binary { op, .. } => {
                let chain = flatten_chain(p);
                let first = self.shape(&chain.first, decisions);
                let rest: Vec<(Op, Pattern)> = chain
                    .rest
                    .iter()
                    .map(|(o, q)| (*o, self.shape(q, decisions)))
                    .collect();
                let chain = Chain { first, rest };
                if chain.len() <= 2 {
                    return chain.left_deep();
                }
                if op.is_commutative() {
                    self.order_commutative(*op, chain, decisions)
                } else {
                    self.parenthesize_chain(chain, decisions)
                }
            }
        }
    }

    /// Sorts the operands of a `⊗`/`⊕` chain by estimated incident count,
    /// smallest first (Theorems 2 + 3 make any order equivalent).
    fn order_commutative(&self, op: Op, chain: Chain, decisions: &mut Vec<String>) -> Pattern {
        let Chain { first, rest } = chain;
        let mut operands: Vec<Pattern> = std::iter::once(first.clone())
            .chain(rest.into_iter().map(|(_, q)| q))
            .collect();
        let before: Vec<String> = operands.iter().map(ToString::to_string).collect();
        operands.sort_by(|a, b| {
            self.model
                .estimate_incidents(a)
                .total_cmp(&self.model.estimate_incidents(b))
        });
        let after: Vec<String> = operands.iter().map(ToString::to_string).collect();
        if before != after {
            decisions.push(format!(
                "reordered {} chain smallest-first: {}",
                op.name(),
                after.join(&format!(" {} ", op.ascii()))
            ));
        }
        operands
            .into_iter()
            .reduce(|acc, q| Pattern::binary(op, acc, q))
            .unwrap_or(first)
    }

    /// Matrix-chain-style DP over a `{⊙, →}` chain: choose the
    /// parenthesisation minimising estimated intermediate work
    /// (Theorems 2 and 4 make every parenthesisation equivalent).
    fn parenthesize_chain(&self, chain: Chain, decisions: &mut Vec<String>) -> Pattern {
        let operands: Vec<Pattern> = std::iter::once(chain.first.clone())
            .chain(chain.rest.iter().map(|(_, q)| q.clone()))
            .collect();
        let ops: Vec<Op> = chain.rest.iter().map(|(o, _)| *o).collect();
        let n = operands.len();

        // size[i][j]: estimated incidents of the sub-chain i..=j.
        // cost[i][j]: cheapest work to evaluate it. split[i][j]: argmin.
        let mut size = vec![vec![0.0_f64; n]; n];
        let mut cost = vec![vec![0.0_f64; n]; n];
        let mut atoms = vec![vec![0.0_f64; n]; n];
        let mut split = vec![vec![0_usize; n]; n];
        for i in 0..n {
            size[i][i] = self.model.estimate_incidents(&operands[i]);
            cost[i][i] = self.model.estimate_cost(&operands[i]);
            #[allow(clippy::cast_precision_loss)]
            {
                atoms[i][i] = operands[i].num_atoms() as f64;
            }
        }
        for span in 1..n {
            for i in 0..n - span {
                let j = i + span;
                let mut best = f64::INFINITY;
                let mut best_k = i;
                for k in i..j {
                    let op = ops[k];
                    let work = self.model.combine_cost(
                        op,
                        size[i][k],
                        size[k + 1][j],
                        atoms[i][k],
                        atoms[k + 1][j],
                    );
                    let total = cost[i][k] + cost[k + 1][j] + work;
                    if total < best {
                        best = total;
                        best_k = k;
                    }
                }
                cost[i][j] = best;
                split[i][j] = best_k;
                size[i][j] =
                    self.model
                        .combine_estimate(ops[best_k], size[i][best_k], size[best_k + 1][j]);
                atoms[i][j] = atoms[i][best_k] + atoms[best_k + 1][j];
            }
        }

        fn rebuild(
            operands: &[Pattern],
            ops: &[Op],
            split: &[Vec<usize>],
            i: usize,
            j: usize,
        ) -> Pattern {
            if i == j {
                return operands[i].clone();
            }
            let k = split[i][j];
            Pattern::binary(
                ops[k],
                rebuild(operands, ops, split, i, k),
                rebuild(operands, ops, split, k + 1, j),
            )
        }
        let result = rebuild(&operands, &ops, &split, 0, n - 1);
        let left = Chain {
            first: operands[0].clone(),
            rest: ops
                .iter()
                .copied()
                .zip(operands[1..].iter().cloned())
                .collect(),
        }
        .left_deep();
        if result != left {
            decisions.push(format!("re-parenthesised sequence chain: {result}"));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::paper;

    fn parse(s: &str) -> Pattern {
        Pattern::parse(s).unwrap()
    }

    fn optimizer() -> Optimizer {
        Optimizer::new(LogStats::compute(&paper::figure3_log()))
    }

    #[test]
    fn atom_estimates_use_exact_counts() {
        let model = optimizer().model().clone();
        assert_eq!(model.estimate_incidents(&parse("SeeDoctor")), 4.0);
        assert_eq!(model.estimate_incidents(&parse("UpdateRefer")), 1.0);
        assert_eq!(model.estimate_incidents(&parse("!SeeDoctor")), 16.0);
        assert_eq!(model.estimate_incidents(&parse("Missing")), 0.0);
    }

    #[test]
    fn predicate_estimates_halve_counts() {
        let model = optimizer().model().clone();
        let n = model.estimate_incidents(&parse("SeeDoctor[x > 1]"));
        assert_eq!(n, 2.0);
    }

    #[test]
    fn choice_estimate_is_additive() {
        let model = optimizer().model().clone();
        let n = model.estimate_incidents(&parse("SeeDoctor | PayTreatment"));
        assert_eq!(n, 7.0);
    }

    #[test]
    fn costs_grow_with_pattern_size() {
        let model = optimizer().model().clone();
        let small = model.estimate_cost(&parse("SeeDoctor"));
        let big = model.estimate_cost(&parse("SeeDoctor -> PayTreatment -> GetReimburse"));
        assert!(big > small);
    }

    #[test]
    fn optimizer_factors_common_work() {
        let opt = optimizer();
        let p = parse("(SeeDoctor -> PayTreatment) | (SeeDoctor -> UpdateRefer)");
        let (q, report) = opt.optimize_with_report(&p);
        assert_eq!(q, parse("SeeDoctor -> (PayTreatment | UpdateRefer)"));
        assert!(report.cost_after <= report.cost_before);
        assert!(!report.decisions.is_empty());
    }

    #[test]
    fn optimizer_orders_commutative_chains_smallest_first() {
        let opt = optimizer();
        // SeeDoctor (4) | UpdateRefer (1) | PayTreatment (3).
        let p = parse("SeeDoctor | UpdateRefer | PayTreatment");
        let q = opt.optimize(&p);
        assert_eq!(q, parse("UpdateRefer | PayTreatment | SeeDoctor"));
    }

    #[test]
    fn optimizer_preserves_sequential_operand_order() {
        let opt = optimizer();
        let p = parse("SeeDoctor -> UpdateRefer -> GetReimburse");
        let q = opt.optimize(&p);
        // Operand order must be unchanged (→ is not commutative); only the
        // parenthesisation may differ.
        let chain = flatten_chain(&q);
        let names: Vec<String> = std::iter::once(chain.first.to_string())
            .chain(chain.rest.iter().map(|(_, p)| p.to_string()))
            .collect();
        assert_eq!(names, ["SeeDoctor", "UpdateRefer", "GetReimburse"]);
    }

    #[test]
    fn chain_dp_prefers_selective_joins_first() {
        let opt = optimizer();
        // START (3) -> SeeDoctor (4) -> UpdateRefer (1): joining the two
        // rightmost first keeps intermediates small, so the DP should pick
        // a right-leaning split at the top.
        let p = parse("(START -> SeeDoctor) -> UpdateRefer");
        let (q, report) = opt.optimize_with_report(&p);
        assert!(report.cost_after <= report.cost_before);
        // Whatever shape wins, it must be the same chain.
        assert!(crate::algebra::ac_equivalent(&q, &p));
    }

    #[test]
    fn optimizer_never_regresses_by_its_own_estimate() {
        let opt = optimizer();
        for src in [
            "SeeDoctor",
            "!START -> END",
            "(SeeDoctor & CheckIn) | GetRefer",
            "START ~> GetRefer ~> CheckIn",
            "(GetRefer -> CheckIn) | (GetRefer -> SeeDoctor) | UpdateRefer",
        ] {
            let p = parse(src);
            let (_, report) = opt.optimize_with_report(&p);
            assert!(
                report.cost_after <= report.cost_before + 1e-9,
                "regressed on {src}: {report:?}"
            );
            assert!(report.speedup() >= 1.0);
        }
    }

    #[test]
    fn optimized_patterns_are_ac_or_distribution_equivalent() {
        // For chains without choice, optimize must be AC-equivalent.
        let opt = optimizer();
        for src in [
            "SeeDoctor -> UpdateRefer -> GetReimburse",
            "CheckIn ~> SeeDoctor -> PayTreatment ~> TakeTreatment",
            "SeeDoctor & PayTreatment & UpdateRefer",
        ] {
            let p = parse(src);
            let q = opt.optimize(&p);
            assert!(
                crate::algebra::ac_equivalent(&p, &q),
                "{src} optimized to non-AC-equivalent {q}"
            );
        }
    }
}
