//! Convenience constructors for common pattern shapes, plus structural
//! transformations over atoms.

use std::collections::BTreeSet;

use wlq_log::Activity;

use crate::algebra::canonicalize;
use crate::ast::{Op, Pattern};

impl Pattern {
    /// A left-deep chain of `op` over `operands`; `None` when empty.
    ///
    /// ```
    /// use wlq_pattern::{Op, Pattern};
    /// let p = Pattern::chain(Op::Sequential, ["A", "B", "C"].map(Pattern::atom)).unwrap();
    /// assert_eq!(p.to_string(), "A -> B -> C");
    /// ```
    #[must_use]
    pub fn chain(op: Op, operands: impl IntoIterator<Item = Pattern>) -> Option<Pattern> {
        let mut iter = operands.into_iter();
        let mut acc = iter.next()?;
        for operand in iter {
            acc = Pattern::binary(op, acc, operand);
        }
        Some(acc)
    }

    /// `a1 | a2 | …` over activity names; `None` when empty. "One of
    /// these activities executed."
    #[must_use]
    pub fn any_of<I, S>(activities: I) -> Option<Pattern>
    where
        I: IntoIterator<Item = S>,
        S: Into<Activity>,
    {
        Pattern::chain(Op::Choice, activities.into_iter().map(Pattern::atom))
    }

    /// `a1 & a2 & …` over activity names; `None` when empty. "All of
    /// these activities executed (on distinct records)."
    #[must_use]
    pub fn all_of<I, S>(activities: I) -> Option<Pattern>
    where
        I: IntoIterator<Item = S>,
        S: Into<Activity>,
    {
        Pattern::chain(Op::Parallel, activities.into_iter().map(Pattern::atom))
    }

    /// `a1 -> a2 -> …` over activity names; `None` when empty. "These
    /// activities executed in this order."
    #[must_use]
    pub fn ordered<I, S>(activities: I) -> Option<Pattern>
    where
        I: IntoIterator<Item = S>,
        S: Into<Activity>,
    {
        Pattern::chain(Op::Sequential, activities.into_iter().map(Pattern::atom))
    }

    /// `a1 ~> a2 ~> …` over activity names; `None` when empty. "These
    /// activities executed back to back."
    #[must_use]
    pub fn directly<I, S>(activities: I) -> Option<Pattern>
    where
        I: IntoIterator<Item = S>,
        S: Into<Activity>,
    {
        Pattern::chain(Op::Consecutive, activities.into_iter().map(Pattern::atom))
    }

    /// `open -> (body -> close)`: the body happens strictly inside the
    /// `[open, close]` fence — e.g. "an update between check-in and
    /// reimbursement".
    #[must_use]
    pub fn fenced(open: Pattern, body: Pattern, close: Pattern) -> Pattern {
        open.seq(body.seq(close))
    }

    /// The set of distinct activity names mentioned by the pattern.
    #[must_use]
    pub fn activities(&self) -> BTreeSet<Activity> {
        self.activity_multiset().into_keys().collect()
    }

    /// Returns a copy with every atom named `from` renamed to `to`
    /// (predicates and negation preserved).
    #[must_use]
    pub fn rename_activity(&self, from: &str, to: &str) -> Pattern {
        match self {
            Pattern::Atom(atom) => {
                let mut atom = atom.clone();
                if atom.activity.as_str() == from {
                    atom.activity = Activity::new(to);
                }
                Pattern::Atom(atom)
            }
            Pattern::Binary { op, left, right } => Pattern::binary(
                *op,
                left.rename_activity(from, to),
                right.rename_activity(from, to),
            ),
        }
    }

    /// Simplifies the pattern using semantics-preserving identities:
    ///
    /// * **choice idempotence** — `p ⊗ p ≡ p` (Definition 4: the union of
    ///   a set with itself), applied modulo associativity/commutativity,
    ///   so duplicate operands anywhere in a `⊗` chain collapse.
    ///
    /// The result is AC-canonical (see
    /// [`canonicalize`](crate::canonicalize)).
    #[must_use]
    pub fn simplify(&self) -> Pattern {
        let simplified = match self {
            Pattern::Atom(_) => self.clone(),
            Pattern::Binary { op, left, right } => {
                Pattern::binary(*op, left.simplify(), right.simplify())
            }
        };
        let canonical = canonicalize(&simplified);
        match canonical {
            Pattern::Binary { op: Op::Choice, .. } => {
                // Flatten the (already canonical, sorted) choice chain and
                // drop duplicates.
                let chain = crate::algebra::flatten_chain(&canonical);
                let mut operands: Vec<Pattern> = std::iter::once(chain.first)
                    .chain(chain.rest.into_iter().map(|(_, q)| q))
                    .collect();
                operands.dedup();
                Pattern::chain(Op::Choice, operands).unwrap_or(canonical)
            }
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Pattern {
        Pattern::parse(s).unwrap()
    }

    #[test]
    fn chain_builders_produce_left_deep_chains() {
        assert_eq!(
            Pattern::ordered(["A", "B", "C"]).unwrap(),
            parse("A -> B -> C")
        );
        assert_eq!(Pattern::directly(["A", "B"]).unwrap(), parse("A ~> B"));
        assert_eq!(Pattern::any_of(["A", "B"]).unwrap(), parse("A | B"));
        assert_eq!(
            Pattern::all_of(["A", "B", "C"]).unwrap(),
            parse("A & B & C")
        );
        assert_eq!(Pattern::ordered(Vec::<&str>::new()), None);
        assert_eq!(Pattern::ordered(["Solo"]).unwrap(), Pattern::atom("Solo"));
    }

    #[test]
    fn fenced_builds_the_example5_shape() {
        let p = Pattern::fenced(
            Pattern::atom("SeeDoctor"),
            Pattern::atom("UpdateRefer"),
            Pattern::atom("GetReimburse"),
        );
        assert_eq!(p, parse("SeeDoctor -> (UpdateRefer -> GetReimburse)"));
    }

    #[test]
    fn activities_collects_distinct_names() {
        let p = parse("A -> (B | A) & !C");
        let names: Vec<String> = p
            .activities()
            .iter()
            .map(|a| a.as_str().to_string())
            .collect();
        assert_eq!(names, ["A", "B", "C"]);
    }

    #[test]
    fn rename_preserves_structure_and_negation() {
        let p = parse("!A ~> (A -> B)");
        let renamed = p.rename_activity("A", "X");
        assert_eq!(renamed, parse("!X ~> (X -> B)"));
        // Renaming something absent is the identity.
        assert_eq!(p.rename_activity("Z", "Q"), p);
    }

    #[test]
    fn simplify_collapses_duplicate_choice_operands() {
        assert_eq!(parse("A | A").simplify(), parse("A"));
        assert_eq!(parse("A | B | A").simplify(), parse("A | B"));
        // Nested duplicates collapse through canonicalization.
        assert_eq!(parse("(B | A) | (A | B)").simplify(), parse("A | B"));
        // Equivalent-modulo-AC operands are detected.
        assert_eq!(parse("(A & B) | (B & A)").simplify(), parse("A & B"));
    }

    #[test]
    fn simplify_leaves_distinct_choices_and_other_ops_alone() {
        assert_eq!(parse("A | B").simplify(), parse("A | B"));
        // Parallel self-composition is NOT idempotent (needs two distinct
        // records), so it must survive.
        assert_eq!(parse("A & A").simplify(), parse("A & A"));
        // Sequential self-composition likewise.
        assert_eq!(parse("A -> A").simplify(), parse("A -> A"));
    }

    #[test]
    fn simplify_is_idempotent() {
        for src in ["A | A | A", "(A -> B) | (A -> B)", "A & (B | B)"] {
            let once = parse(src).simplify();
            assert_eq!(once.simplify(), once, "{src}");
        }
    }
}
