//! Whole-tree rewriting built on the laws of [`crate::algebra`].

use crate::algebra::{flatten_chain, Chain};
use crate::ast::{Op, Pattern};

/// Reshapes every reassociable chain in `p` to be left-deep.
///
/// Left-deep is the shape the paper's Algorithm 1 analysis assumes (the
/// worst-case pattern of Theorem 1 is described as "a left-deep incident
/// tree").
#[must_use]
pub fn left_deep(p: &Pattern) -> Pattern {
    reshape(p, false)
}

/// Reshapes every reassociable chain in `p` to be right-deep.
#[must_use]
pub fn right_deep(p: &Pattern) -> Pattern {
    reshape(p, true)
}

fn reshape(p: &Pattern, right: bool) -> Pattern {
    match p {
        Pattern::Atom(_) => p.clone(),
        Pattern::Binary { .. } => {
            let chain = flatten_chain(p);
            let first = reshape(&chain.first, right);
            let rest = chain
                .rest
                .iter()
                .map(|(op, q)| (*op, reshape(q, right)))
                .collect();
            let chain = Chain { first, rest };
            if right {
                chain.right_deep()
            } else {
                chain.left_deep()
            }
        }
    }
}

/// Expands all choices to the top (repeated Theorem 5 distribution),
/// returning the *choice normal form*: a list of choice-free patterns
/// whose pointwise union of incident sets equals `incL(p)`.
///
/// The expansion is exponential in the number of choice operators; callers
/// should bound pattern size. Used by the optimizer to compare factored
/// vs distributed plans, and by tests as an independent evaluation oracle.
///
/// ```
/// use wlq_pattern::{choice_normal_form, Pattern};
/// let p: Pattern = "A -> (B | C)".parse().unwrap();
/// let alts = choice_normal_form(&p);
/// let strs: Vec<String> = alts.iter().map(ToString::to_string).collect();
/// assert_eq!(strs, ["A -> B", "A -> C"]);
/// ```
#[must_use]
pub fn choice_normal_form(p: &Pattern) -> Vec<Pattern> {
    match p {
        Pattern::Atom(_) => vec![p.clone()],
        Pattern::Binary {
            op: Op::Choice,
            left,
            right,
        } => {
            let mut out = choice_normal_form(left);
            out.extend(choice_normal_form(right));
            out
        }
        Pattern::Binary { op, left, right } => {
            let ls = choice_normal_form(left);
            let rs = choice_normal_form(right);
            let mut out = Vec::with_capacity(ls.len() * rs.len());
            for l in &ls {
                for r in &rs {
                    out.push(Pattern::binary(*op, l.clone(), r.clone()));
                }
            }
            out
        }
    }
}

/// Rebuilds a pattern from its choice normal form (left-deep choice of the
/// alternatives). Returns `None` for an empty list.
#[must_use]
pub fn from_alternatives(alts: &[Pattern]) -> Option<Pattern> {
    let mut iter = alts.iter().cloned();
    let mut acc = iter.next()?;
    for q in iter {
        acc = Pattern::binary(Op::Choice, acc, q);
    }
    Some(acc)
}

/// Applies [`crate::algebra::factor_left`]/`factor_right` bottom-up to a
/// fixpoint, merging distributed choices back into factored form where the
/// laws allow. This is the optimizer's "factor common work" pass.
#[must_use]
pub fn factor(p: &Pattern) -> Pattern {
    use crate::algebra::{factor_left, factor_right};
    let folded = match p {
        Pattern::Atom(_) => p.clone(),
        Pattern::Binary { op, left, right } => Pattern::binary(*op, factor(left), factor(right)),
    };
    if let Some(q) = factor_left(&folded) {
        return factor(&q);
    }
    if let Some(q) = factor_right(&folded) {
        return factor(&q);
    }
    folded
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Pattern {
        Pattern::parse(s).unwrap()
    }

    #[test]
    fn left_and_right_deep_are_mutual_fixpoints() {
        let p = parse("A -> (B -> (C -> D))");
        let ld = left_deep(&p);
        assert_eq!(ld, parse("((A -> B) -> C) -> D"));
        let rd = right_deep(&ld);
        assert_eq!(rd, p);
        assert_eq!(left_deep(&rd), ld);
    }

    #[test]
    fn reshaping_preserves_mixed_family_operator_order() {
        let p = parse("A ~> (B -> (C ~> D))");
        let ld = left_deep(&p);
        assert_eq!(ld, parse("((A ~> B) -> C) ~> D"));
    }

    #[test]
    fn reshaping_recurses_below_foreign_operators() {
        let p = parse("(A -> (B -> C)) | (D & (E & F))");
        let ld = left_deep(&p);
        assert_eq!(ld, parse("((A -> B) -> C) | ((D & E) & F)"));
    }

    #[test]
    fn cnf_of_choice_free_pattern_is_singleton() {
        let p = parse("A -> B & C");
        assert_eq!(choice_normal_form(&p), vec![p]);
    }

    #[test]
    fn cnf_distributes_nested_choices() {
        let p = parse("(A | B) -> (C | D)");
        let alts: Vec<String> = choice_normal_form(&p)
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(alts, ["A -> C", "A -> D", "B -> C", "B -> D"]);
    }

    #[test]
    fn cnf_handles_choice_under_parallel() {
        let p = parse("A & (B | C)");
        let alts: Vec<String> = choice_normal_form(&p)
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(alts, ["A & B", "A & C"]);
    }

    #[test]
    fn from_alternatives_round_trips_cnf_count() {
        let p = parse("(A | B) ~> (C | D | E)");
        let alts = choice_normal_form(&p);
        assert_eq!(alts.len(), 6);
        let rebuilt = from_alternatives(&alts).unwrap();
        assert_eq!(choice_normal_form(&rebuilt), alts);
        assert!(from_alternatives(&[]).is_none());
    }

    #[test]
    fn factor_merges_distributed_choices() {
        let p = parse("(A -> B) | (A -> C)");
        assert_eq!(factor(&p), parse("A -> (B | C)"));
        let p = parse("(A -> C) | (B -> C)");
        assert_eq!(factor(&p), parse("(A | B) -> C"));
    }

    #[test]
    fn factor_recurses_and_cascades() {
        // ((A->B)|(A->C)) | nothing-to-factor elsewhere.
        let p = parse("X & ((A -> B) | (A -> C))");
        assert_eq!(factor(&p), parse("X & (A -> (B | C))"));
    }

    #[test]
    fn factor_leaves_unfactorable_patterns_alone() {
        let p = parse("(A -> B) | (X -> C)");
        assert_eq!(factor(&p), p);
    }
}
