//! Errors produced while parsing pattern text.

use std::fmt;

/// An error encountered while lexing or parsing an incident-pattern
/// expression, with the byte offset at which it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    /// Byte offset into the input where the problem was detected.
    pub position: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The kinds of pattern parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A character that cannot start any token.
    UnexpectedChar(char),
    /// The input ended while an expression was still expected.
    UnexpectedEnd,
    /// A token appeared where an operand was expected, or vice versa.
    UnexpectedToken(String),
    /// A `(` without matching `)`.
    UnbalancedParen,
    /// A string literal without closing quote.
    UnterminatedString,
    /// A malformed predicate (inside `[...]`).
    BadPredicate(String),
    /// The expression was empty.
    EmptyInput,
}

impl ParsePatternError {
    pub(crate) fn new(position: usize, kind: ParseErrorKind) -> Self {
        ParsePatternError { position, kind }
    }
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => {
                write!(f, "unexpected character {c:?} at offset {}", self.position)
            }
            ParseErrorKind::UnexpectedEnd => {
                write!(f, "unexpected end of pattern at offset {}", self.position)
            }
            ParseErrorKind::UnexpectedToken(t) => {
                write!(f, "unexpected {t} at offset {}", self.position)
            }
            ParseErrorKind::UnbalancedParen => {
                write!(f, "unbalanced parenthesis at offset {}", self.position)
            }
            ParseErrorKind::UnterminatedString => {
                write!(f, "unterminated string literal at offset {}", self.position)
            }
            ParseErrorKind::BadPredicate(msg) => {
                write!(f, "bad predicate at offset {}: {msg}", self.position)
            }
            ParseErrorKind::EmptyInput => write!(f, "empty pattern"),
        }
    }
}

impl std::error::Error for ParsePatternError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_offset() {
        let e = ParsePatternError::new(7, ParseErrorKind::UnexpectedChar('%'));
        assert!(e.to_string().contains("offset 7"));
        assert!(e.to_string().contains('%'));
    }

    #[test]
    fn error_is_send_sync_error() {
        fn assert_traits<T: std::error::Error + Send + Sync>() {}
        assert_traits::<ParsePatternError>();
    }
}
