//! Postfix (Reverse Polish) form of patterns and the conversions the
//! paper's Algorithm 3 relies on.
//!
//! The paper builds its incident tree by first converting the infix
//! pattern to postfix with Dijkstra's shunting-yard algorithm and then
//! folding the postfix sequence with a stack. [`to_postfix`] /
//! [`from_postfix`] are those two halves; the parser
//! ([`crate::Pattern::parse`]) runs shunting-yard directly over tokens.

use std::fmt;

use crate::ast::{Atom, Op, Pattern};

/// One item of a postfix-encoded pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PostfixItem {
    /// An operand: an atomic pattern.
    Atom(Atom),
    /// One of the four operators, applying to the two operands below it.
    Op(Op),
}

impl fmt::Display for PostfixItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PostfixItem::Atom(a) => write!(f, "{a}"),
            PostfixItem::Op(op) => write!(f, "{}", op.ascii()),
        }
    }
}

/// Errors when folding a postfix sequence into a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostfixError {
    /// The sequence was empty.
    Empty,
    /// An operator had fewer than two operands available.
    MissingOperand,
    /// More than one operand remained after folding.
    ExtraOperands,
}

impl fmt::Display for PostfixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PostfixError::Empty => write!(f, "empty postfix sequence"),
            PostfixError::MissingOperand => write!(f, "operator is missing an operand"),
            PostfixError::ExtraOperands => write!(f, "leftover operands after folding"),
        }
    }
}

impl std::error::Error for PostfixError {}

/// Flattens a pattern to postfix (post-order traversal).
///
/// ```
/// use wlq_pattern::{to_postfix, Pattern};
/// let p: Pattern = "A -> (B | C)".parse().unwrap();
/// let rpn: Vec<String> = to_postfix(&p).iter().map(ToString::to_string).collect();
/// assert_eq!(rpn, ["A", "B", "C", "|", "->"]);
/// ```
#[must_use]
pub fn to_postfix(p: &Pattern) -> Vec<PostfixItem> {
    fn walk(p: &Pattern, out: &mut Vec<PostfixItem>) {
        match p {
            Pattern::Atom(a) => out.push(PostfixItem::Atom(a.clone())),
            Pattern::Binary { op, left, right } => {
                walk(left, out);
                walk(right, out);
                out.push(PostfixItem::Op(*op));
            }
        }
    }
    let mut out = Vec::with_capacity(2 * p.num_atoms());
    walk(p, &mut out);
    out
}

/// Folds a postfix sequence back into a pattern with a stack — the
/// incident-tree construction of the paper's Algorithm 3.
///
/// # Errors
///
/// Returns a [`PostfixError`] if the sequence is empty or ill-formed.
pub fn from_postfix(items: impl IntoIterator<Item = PostfixItem>) -> Result<Pattern, PostfixError> {
    let mut stack: Vec<Pattern> = Vec::new();
    for item in items {
        match item {
            PostfixItem::Atom(a) => stack.push(Pattern::Atom(a)),
            PostfixItem::Op(op) => {
                let right = stack.pop().ok_or(PostfixError::MissingOperand)?;
                let left = stack.pop().ok_or(PostfixError::MissingOperand)?;
                stack.push(Pattern::binary(op, left, right));
            }
        }
    }
    let Some(result) = stack.pop() else {
        return Err(PostfixError::Empty);
    };
    if stack.is_empty() {
        Ok(result)
    } else {
        Err(PostfixError::ExtraOperands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(name: &str) -> Atom {
        Atom::new(name)
    }

    #[test]
    fn round_trip_simple() {
        let p = Pattern::atom("A").seq(Pattern::atom("B"));
        let back = from_postfix(to_postfix(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn round_trip_deep_and_mixed() {
        let p = Pattern::atom("A")
            .cons(Pattern::atom("B"))
            .seq(Pattern::atom("C").alt(Pattern::not_atom("D").par(Pattern::atom("E"))));
        let back = from_postfix(to_postfix(&p)).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn postfix_order_is_post_order() {
        // (A | B) -> C  ⇒  A B | C ->
        let p = Pattern::atom("A")
            .alt(Pattern::atom("B"))
            .seq(Pattern::atom("C"));
        let rpn: Vec<String> = to_postfix(&p).iter().map(ToString::to_string).collect();
        assert_eq!(rpn, ["A", "B", "|", "C", "->"]);
    }

    #[test]
    fn empty_sequence_is_rejected() {
        assert_eq!(from_postfix(vec![]), Err(PostfixError::Empty));
    }

    #[test]
    fn missing_operand_is_rejected() {
        let items = vec![PostfixItem::Atom(a("A")), PostfixItem::Op(Op::Choice)];
        assert_eq!(from_postfix(items), Err(PostfixError::MissingOperand));
    }

    #[test]
    fn extra_operands_are_rejected() {
        let items = vec![PostfixItem::Atom(a("A")), PostfixItem::Atom(a("B"))];
        assert_eq!(from_postfix(items), Err(PostfixError::ExtraOperands));
    }

    #[test]
    fn operator_fold_is_left_to_right() {
        // A B -> C ->  ⇒  (A -> B) -> C
        let items = vec![
            PostfixItem::Atom(a("A")),
            PostfixItem::Atom(a("B")),
            PostfixItem::Op(Op::Sequential),
            PostfixItem::Atom(a("C")),
            PostfixItem::Op(Op::Sequential),
        ];
        let p = from_postfix(items).unwrap();
        assert_eq!(p.to_string(), "A -> B -> C");
    }
}
