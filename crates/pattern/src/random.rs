//! Seeded random pattern generation for benchmarks and property tests.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::ast::{Op, Pattern};

/// Configuration for [`random_pattern`].
#[derive(Debug, Clone)]
pub struct PatternGenConfig {
    /// Activity names leaves are drawn from.
    pub alphabet: Vec<String>,
    /// Maximum tree depth (an atom has depth 1). Must be ≥ 1.
    pub max_depth: usize,
    /// Probability that an interior position becomes an operator node
    /// rather than a leaf (when depth allows).
    pub branch_prob: f64,
    /// Probability that a leaf is a negated atom.
    pub negation_prob: f64,
    /// The operators to draw from (uniformly). Must be nonempty.
    pub ops: Vec<Op>,
}

impl Default for PatternGenConfig {
    fn default() -> Self {
        PatternGenConfig {
            alphabet: ('A'..='F').map(|c| c.to_string()).collect(),
            max_depth: 4,
            branch_prob: 0.7,
            negation_prob: 0.1,
            ops: Op::ALL.to_vec(),
        }
    }
}

/// Generates a random pattern under `config` using `rng`.
///
/// # Panics
///
/// Panics if the alphabet or operator list is empty or `max_depth` is 0.
pub fn random_pattern<R: Rng + ?Sized>(rng: &mut R, config: &PatternGenConfig) -> Pattern {
    assert!(!config.alphabet.is_empty(), "alphabet must be nonempty");
    assert!(!config.ops.is_empty(), "operator list must be nonempty");
    assert!(config.max_depth >= 1, "max_depth must be at least 1");
    gen(rng, config, config.max_depth)
}

fn gen<R: Rng + ?Sized>(rng: &mut R, config: &PatternGenConfig, depth: usize) -> Pattern {
    if depth <= 1 || !rng.gen_bool(config.branch_prob) {
        // `random_pattern` asserts nonemptiness; the fallback keeps the
        // recursion panic-free regardless.
        let name = config.alphabet.choose(rng).map_or("T", String::as_str);
        return if rng.gen_bool(config.negation_prob) {
            Pattern::not_atom(name)
        } else {
            Pattern::atom(name)
        };
    }
    let op = config.ops.choose(rng).copied().unwrap_or(Op::Sequential);
    Pattern::binary(op, gen(rng, config, depth - 1), gen(rng, config, depth - 1))
}

/// Builds the worst-case pattern of Theorem 1:
/// `((…(t ⊕ t) ⊕ t…) ⊕ t)` with `k` parallel operators, left-deep.
///
/// ```
/// use wlq_pattern::theorem1_worst_case;
/// let p = theorem1_worst_case("t", 3);
/// assert_eq!(p.to_string(), "t & t & t & t");
/// assert_eq!(p.num_operators(), 3);
/// ```
#[must_use]
pub fn theorem1_worst_case(activity: &str, k: usize) -> Pattern {
    let mut p = Pattern::atom(activity);
    for _ in 0..k {
        p = p.par(Pattern::atom(activity));
    }
    p
}

/// Builds a left-deep sequential chain `a1 -> a2 -> … -> an`.
///
/// # Panics
///
/// Panics if `activities` is empty.
#[must_use]
pub fn sequential_chain(activities: &[&str]) -> Pattern {
    assert!(!activities.is_empty(), "activities must be nonempty");
    let mut p = Pattern::atom(activities.first().copied().unwrap_or("T"));
    for a in activities.iter().skip(1) {
        p = p.seq(Pattern::atom(*a));
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = PatternGenConfig::default();
        let a = random_pattern(&mut StdRng::seed_from_u64(7), &config);
        let b = random_pattern(&mut StdRng::seed_from_u64(7), &config);
        let c = random_pattern(&mut StdRng::seed_from_u64(8), &config);
        assert_eq!(a, b);
        // Different seeds almost surely differ; tolerate rare collision by
        // only checking display length sanity.
        let _ = c;
    }

    #[test]
    fn generated_patterns_respect_depth_bound() {
        let config = PatternGenConfig {
            max_depth: 3,
            ..PatternGenConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let p = random_pattern(&mut rng, &config);
            assert!(p.depth() <= 3, "depth {} for {p}", p.depth());
        }
    }

    #[test]
    fn generated_patterns_round_trip_through_text() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = PatternGenConfig {
            max_depth: 5,
            ..PatternGenConfig::default()
        };
        for _ in 0..200 {
            let p = random_pattern(&mut rng, &config);
            let reparsed: Pattern = p.to_string().parse().unwrap();
            assert_eq!(reparsed, p);
        }
    }

    #[test]
    fn restricted_op_sets_are_honoured() {
        let config = PatternGenConfig {
            ops: vec![Op::Sequential],
            negation_prob: 0.0,
            ..PatternGenConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = random_pattern(&mut rng, &config);
            for sub in p.subpatterns() {
                if let Some(op) = sub.op() {
                    assert_eq!(op, Op::Sequential);
                }
            }
            assert!(!p.has_negation());
        }
    }

    #[test]
    fn worst_case_shape_is_left_deep_parallel() {
        let p = theorem1_worst_case("t", 4);
        assert_eq!(p.num_operators(), 4);
        assert_eq!(p.num_atoms(), 5);
        assert_eq!(p.depth(), 5);
        let Pattern::Binary { op, right, .. } = &p else {
            panic!()
        };
        assert_eq!(*op, Op::Parallel);
        assert!(right.as_atom().is_some());
    }

    #[test]
    fn worst_case_zero_operators_is_an_atom() {
        assert_eq!(theorem1_worst_case("t", 0), Pattern::atom("t"));
    }

    #[test]
    fn sequential_chain_builder() {
        let p = sequential_chain(&["A", "B", "C"]);
        assert_eq!(p.to_string(), "A -> B -> C");
    }
}
