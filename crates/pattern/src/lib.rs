//! # wlq-pattern — the incident-pattern algebra
//!
//! Incident patterns (Definition 3 of *"Querying Workflow Logs"*) are the
//! query expressions of WLQ: atomic patterns `t` / `¬t` composed with four
//! BPMN-inspired binary operators — consecutive `⊙`, sequential `→`,
//! choice `⊗`, and parallel `⊕`.
//!
//! This crate provides:
//!
//! * the [`Pattern`] AST and combinators,
//! * a text syntax with a shunting-yard parser
//!   ([`Pattern::parse`], [`to_postfix`], [`from_postfix`]), including a
//!   span-preserving mode ([`Pattern::parse_spanned`]) for diagnostics,
//! * the algebraic laws of Theorems 2–5 as rewrites ([`algebra`]),
//!   reshaping utilities ([`rewrite`]), and
//! * a cost-based optimizer built on those laws ([`optimize`]).
//!
//! ## Quick start
//!
//! ```
//! use wlq_pattern::Pattern;
//!
//! // "Did anyone update a referral before being reimbursed?"
//! let p: Pattern = "UpdateRefer -> GetReimburse".parse()?;
//! assert_eq!(p.num_operators(), 1);
//! assert_eq!(wlq_pattern::to_symbolic(&p), "UpdateRefer → GetReimburse");
//! # Ok::<(), wlq_pattern::ParsePatternError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod ast;
mod builders;
mod display;
mod error;
mod parser;
mod span;
mod token;

pub mod algebra;
pub mod optimize;
pub mod rewrite;
pub mod shunting;

mod random;

pub use algebra::{ac_equivalent, canonicalize};
pub use ast::{Atom, CmpOp, Op, Pattern, Predicate, Scope};
pub use display::to_symbolic;
pub use error::{ParseErrorKind, ParsePatternError};
pub use optimize::{CostModel, OptimizeReport, Optimizer};
pub use parser::is_valid_pattern;
pub use random::{random_pattern, sequential_chain, theorem1_worst_case, PatternGenConfig};
pub use rewrite::{choice_normal_form, from_alternatives};
pub use shunting::{from_postfix, to_postfix, PostfixError, PostfixItem};
pub use span::{PatternSpans, Span, SpannedPattern};
pub use token::{tokenize, Spanned, Token};
