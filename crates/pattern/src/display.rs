//! Precedence-aware pretty printing of patterns.
//!
//! [`Pattern`]'s `Display` prints the ASCII text syntax with the minimal
//! parenthesisation needed to re-parse to the same tree. An alternate
//! renderer, [`to_symbolic`], prints the paper's Unicode operators.

use std::fmt;

use crate::ast::{Op, Pattern};

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write(self, f, false)
    }
}

/// Renders a pattern with the paper's operator glyphs (`⊙ → ⊗ ⊕`).
///
/// ```
/// use wlq_pattern::Pattern;
/// let p: Pattern = "A -> B & C".parse().unwrap();
/// assert_eq!(wlq_pattern::to_symbolic(&p), "A → B ⊕ C");
/// ```
#[must_use]
pub fn to_symbolic(p: &Pattern) -> String {
    let mut out = String::new();
    render(p, &mut out, true, None, false);
    out
}

fn write(p: &Pattern, f: &mut fmt::Formatter<'_>, _symbolic: bool) -> fmt::Result {
    let mut out = String::new();
    render(p, &mut out, false, None, false);
    f.write_str(&out)
}

/// Recursive renderer.
///
/// `parent` is the operator above this node (`None` at the root);
/// `is_right` says whether this node is the right operand. Parentheses are
/// required when the child binds looser than the parent, or equally tight
/// on the right side (all operators are parsed left-associatively, so a
/// right-nested same-precedence child needs parens to round-trip).
fn render(p: &Pattern, out: &mut String, symbolic: bool, parent: Option<Op>, is_right: bool) {
    match p {
        Pattern::Atom(a) => out.push_str(&a.to_string()),
        Pattern::Binary { op, left, right } => {
            let needs_parens = match parent {
                None => false,
                Some(parent_op) => {
                    op.precedence() < parent_op.precedence()
                        || (op.precedence() == parent_op.precedence() && is_right)
                }
            };
            if needs_parens {
                out.push('(');
            }
            render(left, out, symbolic, Some(*op), false);
            out.push(' ');
            out.push_str(if symbolic { op.symbol() } else { op.ascii() });
            out.push(' ');
            render(right, out, symbolic, Some(*op), true);
            if needs_parens {
                out.push(')');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> Pattern {
        Pattern::atom(name)
    }

    #[test]
    fn atoms_print_bare() {
        assert_eq!(p("A").to_string(), "A");
        assert_eq!(Pattern::not_atom("A").to_string(), "!A");
    }

    #[test]
    fn left_nesting_at_same_precedence_needs_no_parens() {
        let pat = p("A").seq(p("B")).seq(p("C"));
        assert_eq!(pat.to_string(), "A -> B -> C");
    }

    #[test]
    fn right_nesting_at_same_precedence_is_parenthesised() {
        let pat = p("A").seq(p("B").seq(p("C")));
        assert_eq!(pat.to_string(), "A -> (B -> C)");
    }

    #[test]
    fn looser_children_are_parenthesised() {
        // choice under sequential needs parens…
        let pat = p("A").alt(p("B")).seq(p("C"));
        assert_eq!(pat.to_string(), "(A | B) -> C");
        // …but sequential under choice does not.
        let pat = p("A").seq(p("B")).alt(p("C"));
        assert_eq!(pat.to_string(), "A -> B | C");
    }

    #[test]
    fn mixed_consecutive_sequential_share_precedence() {
        let pat = p("A").cons(p("B")).seq(p("C"));
        assert_eq!(pat.to_string(), "A ~> B -> C");
        let pat = p("A").cons(p("B").seq(p("C")));
        assert_eq!(pat.to_string(), "A ~> (B -> C)");
    }

    #[test]
    fn parallel_sits_between_choice_and_sequence() {
        let pat = p("A").par(p("B")).alt(p("C"));
        assert_eq!(pat.to_string(), "A & B | C");
        let pat = p("A").alt(p("B")).par(p("C"));
        assert_eq!(pat.to_string(), "(A | B) & C");
        let pat = p("A").seq(p("B")).par(p("C"));
        assert_eq!(pat.to_string(), "A -> B & C");
        let pat = p("A").par(p("B")).seq(p("C"));
        assert_eq!(pat.to_string(), "(A & B) -> C");
    }

    #[test]
    fn symbolic_rendering_uses_paper_glyphs() {
        let pat = p("A").cons(p("B")).seq(p("C").alt(p("D").par(p("E"))));
        assert_eq!(to_symbolic(&pat), "A ⊙ B → (C ⊗ D ⊕ E)");
    }

    #[test]
    fn example5_pattern_prints_like_the_paper() {
        let pat = p("SeeDoctor").seq(p("UpdateRefer").seq(p("GetReimburse")));
        assert_eq!(
            pat.to_string(),
            "SeeDoctor -> (UpdateRefer -> GetReimburse)"
        );
        assert_eq!(
            to_symbolic(&pat),
            "SeeDoctor → (UpdateRefer → GetReimburse)"
        );
    }
}
