//! The algebraic laws of Section 4 (Theorems 2–5) as pattern rewrites.
//!
//! * **Theorem 2** — every operator is associative.
//! * **Theorem 3** — `⊗` and `⊕` are commutative.
//! * **Theorem 4** — `⊙` and `⊕`… more precisely `⊙` and `→` associate
//!   *with each other*: in a chain mixing consecutive and sequential
//!   operators, any parenthesisation is equivalent (each operator keeps its
//!   infix operands).
//! * **Theorem 5** — every operator distributes over `⊗` from both sides.
//!
//! These laws justify [`reassociate_right`]/[`reassociate_left`],
//! [`commute`], [`distribute_left`]/[`distribute_right`] and their inverse
//! factorings, plus the associativity/commutativity-aware canonical form
//! ([`canonicalize`]) used for fast equivalence checks.

use crate::ast::{Op, Pattern};

/// Returns `true` if a node with operator `upper` directly above a node
/// with operator `lower` may be re-parenthesised (operands keep their infix
/// order and operators keep their operand pairs).
///
/// True when the operators are equal (Theorem 2) or both in the
/// `{⊙, →}` precedence family (Theorem 4).
#[must_use]
pub fn can_reassociate(upper: Op, lower: Op) -> bool {
    upper == lower
        || (matches!(upper, Op::Consecutive | Op::Sequential)
            && matches!(lower, Op::Consecutive | Op::Sequential))
}

/// Left-rotates `a θ1 (b θ2 c)` to `(a θ1 b) θ2 c` when Theorems 2/4 allow.
///
/// Returns `None` if the root shape does not match or the operator pair is
/// not reassociable.
#[must_use]
pub fn reassociate_left(p: &Pattern) -> Option<Pattern> {
    let Pattern::Binary {
        op: t1,
        left: a,
        right,
    } = p
    else {
        return None;
    };
    let Pattern::Binary {
        op: t2,
        left: b,
        right: c,
    } = right.as_ref()
    else {
        return None;
    };
    if !can_reassociate(*t1, *t2) {
        return None;
    }
    Some(Pattern::binary(
        *t2,
        Pattern::binary(*t1, a.as_ref().clone(), b.as_ref().clone()),
        c.as_ref().clone(),
    ))
}

/// Right-rotates `(a θ1 b) θ2 c` to `a θ1 (b θ2 c)` when Theorems 2/4 allow.
#[must_use]
pub fn reassociate_right(p: &Pattern) -> Option<Pattern> {
    let Pattern::Binary {
        op: t2,
        left,
        right: c,
    } = p
    else {
        return None;
    };
    let Pattern::Binary {
        op: t1,
        left: a,
        right: b,
    } = left.as_ref()
    else {
        return None;
    };
    if !can_reassociate(*t2, *t1) {
        return None;
    }
    Some(Pattern::binary(
        *t1,
        a.as_ref().clone(),
        Pattern::binary(*t2, b.as_ref().clone(), c.as_ref().clone()),
    ))
}

/// Swaps the operands of a commutative root (Theorem 3).
#[must_use]
pub fn commute(p: &Pattern) -> Option<Pattern> {
    let Pattern::Binary { op, left, right } = p else {
        return None;
    };
    if !op.is_commutative() {
        return None;
    }
    Some(Pattern::binary(
        *op,
        right.as_ref().clone(),
        left.as_ref().clone(),
    ))
}

/// Distributes from the left over choice (Theorem 5, part 1):
/// `a θ (b ⊗ c) → (a θ b) ⊗ (a θ c)`.
#[must_use]
pub fn distribute_left(p: &Pattern) -> Option<Pattern> {
    let Pattern::Binary { op, left: a, right } = p else {
        return None;
    };
    let Pattern::Binary {
        op: Op::Choice,
        left: b,
        right: c,
    } = right.as_ref()
    else {
        return None;
    };
    Some(Pattern::binary(
        Op::Choice,
        Pattern::binary(*op, a.as_ref().clone(), b.as_ref().clone()),
        Pattern::binary(*op, a.as_ref().clone(), c.as_ref().clone()),
    ))
}

/// Distributes from the right over choice (Theorem 5, part 2):
/// `(a ⊗ b) θ c → (a θ c) ⊗ (b θ c)`.
#[must_use]
pub fn distribute_right(p: &Pattern) -> Option<Pattern> {
    let Pattern::Binary { op, left, right: c } = p else {
        return None;
    };
    let Pattern::Binary {
        op: Op::Choice,
        left: a,
        right: b,
    } = left.as_ref()
    else {
        return None;
    };
    Some(Pattern::binary(
        Op::Choice,
        Pattern::binary(*op, a.as_ref().clone(), c.as_ref().clone()),
        Pattern::binary(*op, b.as_ref().clone(), c.as_ref().clone()),
    ))
}

/// Factors a common left operand out of a choice (inverse of
/// [`distribute_left`]): `(a θ b) ⊗ (a θ c) → a θ (b ⊗ c)` when both sides
/// share `θ` and `a`.
#[must_use]
pub fn factor_left(p: &Pattern) -> Option<Pattern> {
    let Pattern::Binary {
        op: Op::Choice,
        left,
        right,
    } = p
    else {
        return None;
    };
    let Pattern::Binary {
        op: t1,
        left: a1,
        right: b,
    } = left.as_ref()
    else {
        return None;
    };
    let Pattern::Binary {
        op: t2,
        left: a2,
        right: c,
    } = right.as_ref()
    else {
        return None;
    };
    if t1 != t2 || a1 != a2 {
        return None;
    }
    Some(Pattern::binary(
        *t1,
        a1.as_ref().clone(),
        Pattern::binary(Op::Choice, b.as_ref().clone(), c.as_ref().clone()),
    ))
}

/// Factors a common right operand out of a choice (inverse of
/// [`distribute_right`]): `(a θ c) ⊗ (b θ c) → (a ⊗ b) θ c`.
#[must_use]
pub fn factor_right(p: &Pattern) -> Option<Pattern> {
    let Pattern::Binary {
        op: Op::Choice,
        left,
        right,
    } = p
    else {
        return None;
    };
    let Pattern::Binary {
        op: t1,
        left: a,
        right: c1,
    } = left.as_ref()
    else {
        return None;
    };
    let Pattern::Binary {
        op: t2,
        left: b,
        right: c2,
    } = right.as_ref()
    else {
        return None;
    };
    if t1 != t2 || c1 != c2 {
        return None;
    }
    Some(Pattern::binary(
        *t1,
        Pattern::binary(Op::Choice, a.as_ref().clone(), b.as_ref().clone()),
        c1.as_ref().clone(),
    ))
}

/// All law-applications available at the *root* of `p`, labelled with the
/// law name. Used by the rewrite explorer and tested against the engine for
/// semantic equivalence.
#[must_use]
pub fn root_rewrites(p: &Pattern) -> Vec<(&'static str, Pattern)> {
    let mut out = Vec::new();
    if let Some(q) = reassociate_left(p) {
        out.push(("reassociate-left (T2/T4)", q));
    }
    if let Some(q) = reassociate_right(p) {
        out.push(("reassociate-right (T2/T4)", q));
    }
    if let Some(q) = commute(p) {
        out.push(("commute (T3)", q));
    }
    if let Some(q) = distribute_left(p) {
        out.push(("distribute-left (T5)", q));
    }
    if let Some(q) = distribute_right(p) {
        out.push(("distribute-right (T5)", q));
    }
    if let Some(q) = factor_left(p) {
        out.push(("factor-left (T5⁻¹)", q));
    }
    if let Some(q) = factor_right(p) {
        out.push(("factor-right (T5⁻¹)", q));
    }
    out
}

/// One-step rewrites anywhere in the tree (root or any descendant).
#[must_use]
pub fn all_rewrites(p: &Pattern) -> Vec<(&'static str, Pattern)> {
    let mut out = root_rewrites(p);
    if let Pattern::Binary { op, left, right } = p {
        for (law, l) in all_rewrites(left) {
            out.push((law, Pattern::binary(*op, l, right.as_ref().clone())));
        }
        for (law, r) in all_rewrites(right) {
            out.push((law, Pattern::binary(*op, left.as_ref().clone(), r)));
        }
    }
    out
}

/// A flattened associative chain: `first` followed by `(op, operand)`
/// steps. For `{⊙, →}` chains the ops may differ (Theorem 4); for `⊗`/`⊕`
/// chains they are all equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// The leftmost operand.
    pub first: Pattern,
    /// The operators and their right operands, in infix order.
    pub rest: Vec<(Op, Pattern)>,
}

impl Chain {
    /// Rebuilds the chain left-deep: `((first op1 x1) op2 x2) …`.
    #[must_use]
    pub fn left_deep(&self) -> Pattern {
        let mut acc = self.first.clone();
        for (op, operand) in &self.rest {
            acc = Pattern::binary(*op, acc, operand.clone());
        }
        acc
    }

    /// Rebuilds the chain right-deep: `first op1 (x1 op2 (x2 …))`.
    #[must_use]
    pub fn right_deep(&self) -> Pattern {
        let mut iter = self.rest.iter().rev();
        let Some((last_op, last)) = iter.next() else {
            return self.first.clone();
        };
        let mut acc = last.clone();
        let mut pending_op = *last_op;
        for (op, operand) in iter {
            acc = Pattern::binary(pending_op, operand.clone(), acc);
            pending_op = *op;
        }
        Pattern::binary(pending_op, self.first.clone(), acc)
    }

    /// Number of operands in the chain.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rest.len() + 1
    }

    /// Whether the chain is a single operand.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false // a chain always has at least its first operand
    }
}

/// Flattens the maximal reassociable chain at the root of `p`.
///
/// For a root in the `{⊙, →}` family this gathers every descendant
/// reachable through `{⊙, →}` nodes; for `⊗`/`⊕` roots it gathers
/// same-operator descendants. Atoms produce a single-operand chain.
#[must_use]
pub fn flatten_chain(p: &Pattern) -> Chain {
    fn in_family(op: Op, root: Op) -> bool {
        can_reassociate(root, op)
    }
    fn walk(p: &Pattern, root: Op, out: &mut Vec<(Option<Op>, Pattern)>) {
        match p {
            Pattern::Binary { op, left, right } if in_family(*op, root) => {
                walk(left, root, out);
                // The operator of this node sits between left's last operand
                // and right's first operand.
                let mark = out.len();
                walk(right, root, out);
                debug_assert!(mark < out.len());
                out[mark].0 = Some(*op);
            }
            other => out.push((None, other.clone())),
        }
    }
    match p {
        Pattern::Atom(_) => Chain {
            first: p.clone(),
            rest: Vec::new(),
        },
        Pattern::Binary { op, .. } => {
            let mut items: Vec<(Option<Op>, Pattern)> = Vec::new();
            walk(p, *op, &mut items);
            let mut iter = items.into_iter();
            let Some((_, first)) = iter.next() else {
                // Unreachable: `walk` pushes at least one operand.
                return Chain {
                    first: p.clone(),
                    rest: Vec::new(),
                };
            };
            // Interior operands are op-marked by `walk`; fall back to the
            // chain's own operator if one were ever missing.
            let rest = iter
                .map(|(marked, operand)| (marked.unwrap_or(*op), operand))
                .collect();
            Chain { first, rest }
        }
    }
}

/// Canonicalizes a pattern modulo associativity (Theorems 2, 4) and
/// commutativity (Theorem 3): reassociable chains become left-deep, and
/// the operands of `⊗`/`⊕` chains are sorted structurally.
///
/// Two patterns with equal canonical forms are semantically equivalent;
/// the converse does not hold (distributivity, Theorem 5, is not applied —
/// `(A → B) ⊗ (A → C)` and `A → (B ⊗ C)` canonicalize differently even
/// though they are equivalent).
#[must_use]
pub fn canonicalize(p: &Pattern) -> Pattern {
    match p {
        Pattern::Atom(_) => p.clone(),
        Pattern::Binary { op, .. } => {
            let chain = flatten_chain(p);
            // Canonicalize operands first.
            let first = canonicalize(&chain.first);
            let rest: Vec<(Op, Pattern)> = chain
                .rest
                .iter()
                .map(|(o, q)| (*o, canonicalize(q)))
                .collect();
            if op.is_commutative() {
                // All ops in the chain equal `op`; sort operands.
                let mut operands: Vec<Pattern> = std::iter::once(first)
                    .chain(rest.into_iter().map(|(_, q)| q))
                    .collect();
                operands.sort();
                operands
                    .into_iter()
                    .reduce(|acc, q| Pattern::binary(*op, acc, q))
                    .unwrap_or_else(|| p.clone())
            } else {
                Chain { first, rest }.left_deep()
            }
        }
    }
}

/// Structural equivalence modulo associativity and commutativity — a
/// sound (but incomplete) approximation of Definition 5 equivalence.
///
/// ```
/// use wlq_pattern::{ac_equivalent, Pattern};
/// let p: Pattern = "(A | B) | C".parse().unwrap();
/// let q: Pattern = "C | (B | A)".parse().unwrap();
/// assert!(ac_equivalent(&p, &q));
/// ```
#[must_use]
pub fn ac_equivalent(p: &Pattern, q: &Pattern) -> bool {
    canonicalize(p) == canonicalize(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Pattern {
        Pattern::parse(s).unwrap()
    }

    #[test]
    fn reassociation_applies_to_equal_ops() {
        for src in [
            "(A -> B) -> C",
            "(A ~> B) ~> C",
            "(A | B) | C",
            "(A & B) & C",
        ] {
            let p = parse(src);
            let r = reassociate_right(&p).unwrap();
            assert_eq!(reassociate_left(&r).unwrap(), p);
        }
    }

    #[test]
    fn theorem4_mixed_cons_seq_reassociates() {
        // (A ~> B) -> C  ⇌  A ~> (B -> C): operators keep their operand pairs.
        let p = parse("(A ~> B) -> C");
        let r = reassociate_right(&p).unwrap();
        assert_eq!(r, parse("A ~> (B -> C)"));
        assert_eq!(reassociate_left(&r).unwrap(), p);
    }

    #[test]
    fn reassociation_refuses_cross_family() {
        assert!(reassociate_right(&parse("(A | B) -> C")).is_none());
        assert!(reassociate_right(&parse("(A & B) | C")).is_none());
        assert!(reassociate_left(&parse("A -> (B & C)")).is_none());
        assert!(reassociate_right(&parse("A -> B")).is_none()); // left is atom
    }

    #[test]
    fn commute_only_choice_and_parallel() {
        assert_eq!(commute(&parse("A | B")).unwrap(), parse("B | A"));
        assert_eq!(commute(&parse("A & B")).unwrap(), parse("B & A"));
        assert!(commute(&parse("A -> B")).is_none());
        assert!(commute(&parse("A ~> B")).is_none());
        assert!(commute(&parse("A")).is_none());
    }

    #[test]
    fn distribution_and_factoring_are_inverse() {
        for theta in ["->", "~>", "&"] {
            let p = parse(&format!("A {theta} (B | C)"));
            let d = distribute_left(&p).unwrap();
            assert_eq!(d, parse(&format!("(A {theta} B) | (A {theta} C)")));
            assert_eq!(factor_left(&d).unwrap(), p);

            let p = parse(&format!("(A | B) {theta} C"));
            let d = distribute_right(&p).unwrap();
            assert_eq!(d, parse(&format!("(A {theta} C) | (B {theta} C)")));
            assert_eq!(factor_right(&d).unwrap(), p);
        }
    }

    #[test]
    fn factoring_requires_shared_operand_and_op() {
        assert!(factor_left(&parse("(A -> B) | (X -> C)")).is_none());
        assert!(factor_left(&parse("(A -> B) | (A ~> C)")).is_none());
        assert!(factor_right(&parse("(A -> C) | (B -> X)")).is_none());
    }

    #[test]
    fn root_rewrites_lists_applicable_laws() {
        let p = parse("(A -> B) -> C");
        let laws: Vec<&str> = root_rewrites(&p).into_iter().map(|(l, _)| l).collect();
        assert!(laws.contains(&"reassociate-right (T2/T4)"));
        assert!(!laws.contains(&"commute (T3)"));

        let p = parse("A | (B | C)");
        let laws: Vec<&str> = root_rewrites(&p).into_iter().map(|(l, _)| l).collect();
        assert!(laws.contains(&"reassociate-left (T2/T4)"));
        assert!(laws.contains(&"commute (T3)"));
        assert!(laws.contains(&"distribute-left (T5)"));
    }

    #[test]
    fn all_rewrites_reaches_subtrees() {
        let p = parse("X & ((A -> B) -> C)");
        let found = all_rewrites(&p)
            .into_iter()
            .any(|(_, q)| q == parse("X & (A -> (B -> C))"));
        assert!(found);
    }

    #[test]
    fn flatten_chain_collects_mixed_family() {
        let p = parse("A ~> B -> C ~> D");
        let chain = flatten_chain(&p);
        assert_eq!(chain.len(), 4);
        assert_eq!(chain.first, parse("A"));
        assert_eq!(
            chain.rest,
            vec![
                (Op::Consecutive, parse("B")),
                (Op::Sequential, parse("C")),
                (Op::Consecutive, parse("D")),
            ]
        );
        // Rebuilding left-deep gives back the left-assoc parse.
        assert_eq!(chain.left_deep(), p);
    }

    #[test]
    fn flatten_chain_stops_at_other_operators() {
        let p = parse("(A | B) -> C");
        let chain = flatten_chain(&p);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain.first, parse("A | B"));
    }

    #[test]
    fn right_deep_rebuild_preserves_operator_positions() {
        let p = parse("A ~> B -> C");
        let chain = flatten_chain(&p);
        let rd = chain.right_deep();
        assert_eq!(rd, parse("A ~> (B -> C)"));
        // And flattening the right-deep form gives the same chain.
        assert_eq!(flatten_chain(&rd), chain);
    }

    #[test]
    fn canonicalize_sorts_commutative_chains() {
        assert_eq!(
            canonicalize(&parse("C | (B | A)")),
            canonicalize(&parse("(A | B) | C"))
        );
        assert_eq!(canonicalize(&parse("B & A")), canonicalize(&parse("A & B")));
        // Non-commutative chains keep operand order.
        assert_ne!(
            canonicalize(&parse("A -> B")),
            canonicalize(&parse("B -> A"))
        );
    }

    #[test]
    fn ac_equivalence_examples() {
        assert!(ac_equivalent(
            &parse("A -> (B -> C)"),
            &parse("(A -> B) -> C")
        ));
        assert!(ac_equivalent(
            &parse("A ~> (B -> C)"),
            &parse("(A ~> B) -> C")
        ));
        assert!(ac_equivalent(
            &parse("(A & B) & (C & D)"),
            &parse("D & C & B & A")
        ));
        assert!(!ac_equivalent(&parse("A -> B"), &parse("A ~> B")));
        // Distribution is *not* captured (documented incompleteness).
        assert!(!ac_equivalent(
            &parse("A -> (B | C)"),
            &parse("(A -> B) | (A -> C)")
        ));
    }

    #[test]
    fn canonicalize_is_idempotent() {
        for src in [
            "A",
            "C | (B | A)",
            "A ~> (B -> C) ~> D",
            "(A & B) | (C -> D)",
            "!X -> (Y | Z & W)",
        ] {
            let c = canonicalize(&parse(src));
            assert_eq!(canonicalize(&c), c, "not idempotent for {src}");
        }
    }

    #[test]
    fn nested_commutative_sorting_is_recursive() {
        let p = parse("(B | A) -> (D & C)");
        let c = canonicalize(&p);
        assert_eq!(c, parse("(A | B) -> (C & D)"));
    }
}
