//! The pattern parser: tokens → shunting-yard → [`Pattern`].

use wlq_log::Value;

use crate::ast::{Atom, Op, Pattern, Predicate, Scope};
use crate::error::{ParseErrorKind, ParsePatternError};
use crate::span::{PatternSpans, Span, SpannedPattern};
use crate::token::{tokenize, Spanned, Token};

impl Pattern {
    /// Parses a pattern from the text syntax.
    ///
    /// Grammar (all operators left-associative; `~>`/`->` bind tightest,
    /// then `&`, then `|`):
    ///
    /// ```text
    /// pattern := operand (op operand)*
    /// operand := '!'? ident predicates? | '(' pattern ')'
    /// op      := '~>' | '->' | '&' | '|'     (or ⊙ → ⊕ ⊗)
    /// predicates := '[' clause (',' clause)* ']'
    /// clause  := ('in.'|'out.')? ident cmp value
    /// cmp     := '=' | '!=' | '<' | '<=' | '>' | '>='
    /// value   := integer | float | string | bareword
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`ParsePatternError`] with a byte offset on malformed input.
    ///
    /// ```
    /// use wlq_pattern::Pattern;
    /// let p: Pattern = "UpdateRefer -> GetReimburse".parse()?;
    /// assert_eq!(p.num_operators(), 1);
    /// # Ok::<(), wlq_pattern::ParsePatternError>(())
    /// ```
    pub fn parse(src: &str) -> Result<Pattern, ParsePatternError> {
        Pattern::parse_spanned(src).map(|sp| sp.pattern)
    }

    /// Parses a pattern keeping the source span of every AST node.
    ///
    /// The returned [`SpannedPattern`] pairs the pattern with a
    /// [`PatternSpans`] tree of identical shape, so tools (the analyzer,
    /// caret-rendered errors) can point any node back into `src`.
    ///
    /// # Errors
    ///
    /// Returns [`ParsePatternError`] with a byte offset on malformed input.
    ///
    /// ```
    /// use wlq_pattern::Pattern;
    /// let sp = Pattern::parse_spanned("A -> (B | C)")?;
    /// assert_eq!(sp.spans.span().slice("A -> (B | C)"), "A -> (B | C)");
    /// # Ok::<(), wlq_pattern::ParsePatternError>(())
    /// ```
    pub fn parse_spanned(src: &str) -> Result<SpannedPattern, ParsePatternError> {
        let tokens = tokenize(src)?;
        Parser {
            tokens,
            pos: 0,
            src_len: src.len(),
        }
        .parse_all()
    }
}

impl std::str::FromStr for Pattern {
    type Err = ParsePatternError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Pattern::parse(s)
    }
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    src_len: usize,
}

/// A postfix item carrying the source spans the fold needs: atoms and
/// operators with their extents, plus paren-widening markers.
enum SpItem {
    Atom(Atom, Span),
    Op(Op, Span),
    /// Widen the span of the expression on top of the stack to include
    /// the parentheses that just closed around it.
    Widen(Span),
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Spanned> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err_end(&self) -> ParsePatternError {
        ParsePatternError::new(self.src_len, ParseErrorKind::UnexpectedEnd)
    }

    /// End offset of the most recently consumed token.
    fn last_end(&self) -> usize {
        self.pos
            .checked_sub(1)
            .and_then(|i| self.tokens.get(i))
            .map_or(self.src_len, |s| s.end)
    }

    /// Shunting-yard over the token stream, emitting spanned postfix items.
    fn parse_all(mut self) -> Result<SpannedPattern, ParsePatternError> {
        if self.tokens.is_empty() {
            return Err(ParsePatternError::new(0, ParseErrorKind::EmptyInput));
        }
        let mut output: Vec<SpItem> = Vec::new();
        // Operator stack holds operators and open parens (None = paren),
        // each with the span of its token.
        let mut ops: Vec<(Option<Op>, Span)> = Vec::new();
        let mut expect_operand = true;

        while let Some(spanned) = self.peek().cloned() {
            let tok_span = Span::new(spanned.pos, spanned.end);
            match (&spanned.token, expect_operand) {
                (Token::Not | Token::Ident(_), true) => {
                    let (atom, span) = self.parse_atom()?;
                    output.push(SpItem::Atom(atom, span));
                    expect_operand = false;
                }
                (Token::LParen, true) => {
                    self.next();
                    ops.push((None, tok_span));
                }
                (Token::RParen, false) => {
                    self.next();
                    let mut opened = None;
                    while let Some((op, span)) = ops.pop() {
                        match op {
                            Some(op) => output.push(SpItem::Op(op, span)),
                            None => {
                                opened = Some(span);
                                break;
                            }
                        }
                    }
                    match opened {
                        // The last output item is the root of the group
                        // that just closed; stretch it over the parens.
                        Some(open) => output.push(SpItem::Widen(open.union(tok_span))),
                        None => {
                            return Err(ParsePatternError::new(
                                spanned.pos,
                                ParseErrorKind::UnbalancedParen,
                            ))
                        }
                    }
                }
                (Token::Op(op), false) => {
                    self.next();
                    while let Some(&(Some(top), top_span)) = ops.last() {
                        // Left-associative: pop while top binds at least as
                        // tightly.
                        if top.precedence() >= op.precedence() {
                            output.push(SpItem::Op(top, top_span));
                            ops.pop();
                        } else {
                            break;
                        }
                    }
                    ops.push((Some(*op), tok_span));
                    expect_operand = true;
                }
                (tok, _) => {
                    return Err(ParsePatternError::new(
                        spanned.pos,
                        ParseErrorKind::UnexpectedToken(tok.describe()),
                    ));
                }
            }
        }
        if expect_operand {
            return Err(self.err_end());
        }
        while let Some((op, span)) = ops.pop() {
            match op {
                Some(op) => output.push(SpItem::Op(op, span)),
                None => {
                    return Err(ParsePatternError::new(
                        span.start,
                        ParseErrorKind::UnbalancedParen,
                    ))
                }
            }
        }
        self.fold(output)
    }

    /// Folds the spanned postfix stream into a pattern plus its span
    /// tree. The shunting-yard invariants make underflow unreachable,
    /// but every pop is still checked so the parser cannot panic.
    fn fold(&self, items: Vec<SpItem>) -> Result<SpannedPattern, ParsePatternError> {
        let mut stack: Vec<(Pattern, PatternSpans)> = Vec::new();
        for item in items {
            match item {
                SpItem::Atom(atom, span) => {
                    stack.push((Pattern::Atom(atom), PatternSpans::Atom { span }));
                }
                SpItem::Op(op, op_span) => {
                    let Some((right, right_spans)) = stack.pop() else {
                        return Err(self.err_end());
                    };
                    let Some((left, left_spans)) = stack.pop() else {
                        return Err(self.err_end());
                    };
                    let span = left_spans.span().union(right_spans.span()).union(op_span);
                    stack.push((
                        Pattern::binary(op, left, right),
                        PatternSpans::Binary {
                            span,
                            op_span,
                            left: Box::new(left_spans),
                            right: Box::new(right_spans),
                        },
                    ));
                }
                SpItem::Widen(outer) => {
                    if let Some((_, spans)) = stack.last_mut() {
                        spans.widen(outer);
                    }
                }
            }
        }
        let Some((pattern, spans)) = stack.pop() else {
            return Err(self.err_end());
        };
        if stack.is_empty() {
            Ok(SpannedPattern { pattern, spans })
        } else {
            Err(self.err_end())
        }
    }

    /// `'!'? ident predicates?`
    fn parse_atom(&mut self) -> Result<(Atom, Span), ParsePatternError> {
        let start = self.peek().map_or(self.src_len, |s| s.pos);
        let mut negated = false;
        if matches!(self.peek().map(|s| &s.token), Some(Token::Not)) {
            self.next();
            negated = true;
        }
        let name = match self.next() {
            Some(Spanned {
                token: Token::Ident(name),
                ..
            }) => name,
            Some(s) => {
                return Err(ParsePatternError::new(
                    s.pos,
                    ParseErrorKind::UnexpectedToken(s.token.describe()),
                ))
            }
            None => return Err(self.err_end()),
        };
        let mut atom = if negated {
            Atom::negative(name.as_str())
        } else {
            Atom::new(name.as_str())
        };
        if matches!(self.peek().map(|s| &s.token), Some(Token::LBracket)) {
            self.next();
            atom.predicates = self.parse_predicates()?;
        }
        Ok((atom, Span::new(start, self.last_end())))
    }

    /// Parses `clause (',' clause)* ']'` — the opening `[` is consumed.
    fn parse_predicates(&mut self) -> Result<Vec<Predicate>, ParsePatternError> {
        let mut preds = Vec::new();
        loop {
            preds.push(self.parse_clause()?);
            match self.next() {
                Some(Spanned {
                    token: Token::Comma,
                    ..
                }) => continue,
                Some(Spanned {
                    token: Token::RBracket,
                    ..
                }) => return Ok(preds),
                Some(s) => {
                    return Err(ParsePatternError::new(
                        s.pos,
                        ParseErrorKind::BadPredicate(format!(
                            "expected ',' or ']', found {}",
                            s.token.describe()
                        )),
                    ))
                }
                None => return Err(self.err_end()),
            }
        }
    }

    /// `('in.'|'out.')? ident cmp value`
    fn parse_clause(&mut self) -> Result<Predicate, ParsePatternError> {
        let (first_pos, first_name) = match self.next() {
            Some(Spanned {
                token: Token::Ident(n),
                pos,
                ..
            }) => (pos, n),
            Some(s) => {
                return Err(ParsePatternError::new(
                    s.pos,
                    ParseErrorKind::BadPredicate(format!(
                        "expected attribute name, found {}",
                        s.token.describe()
                    )),
                ))
            }
            None => return Err(self.err_end()),
        };
        let (scope, attr) = if matches!(self.peek().map(|s| &s.token), Some(Token::Dot)) {
            self.next();
            let scope = match first_name.as_str() {
                "in" => Scope::Input,
                "out" => Scope::Output,
                other => {
                    return Err(ParsePatternError::new(
                        first_pos,
                        ParseErrorKind::BadPredicate(format!(
                            "unknown scope prefix {other:?} (expected 'in' or 'out')"
                        )),
                    ))
                }
            };
            let attr = match self.next() {
                Some(Spanned {
                    token: Token::Ident(n),
                    ..
                }) => n,
                Some(s) => {
                    return Err(ParsePatternError::new(
                        s.pos,
                        ParseErrorKind::BadPredicate(format!(
                            "expected attribute name after '.', found {}",
                            s.token.describe()
                        )),
                    ))
                }
                None => return Err(self.err_end()),
            };
            (scope, attr)
        } else {
            (Scope::Any, first_name)
        };
        let op = match self.next() {
            Some(Spanned {
                token: Token::Cmp(op),
                ..
            }) => op,
            Some(s) => {
                return Err(ParsePatternError::new(
                    s.pos,
                    ParseErrorKind::BadPredicate(format!(
                        "expected comparison operator, found {}",
                        s.token.describe()
                    )),
                ))
            }
            None => return Err(self.err_end()),
        };
        let value = match self.next() {
            Some(Spanned {
                token: Token::Int(i),
                ..
            }) => Value::Int(i),
            Some(Spanned {
                token: Token::Float(x),
                ..
            }) => Value::Float(x),
            Some(Spanned {
                token: Token::Str(s),
                ..
            }) => Value::from(s),
            Some(Spanned {
                token: Token::Ident(w),
                ..
            }) => match w.as_str() {
                "true" => Value::Bool(true),
                "false" => Value::Bool(false),
                other => Value::from(other),
            },
            Some(s) => {
                return Err(ParsePatternError::new(
                    s.pos,
                    ParseErrorKind::BadPredicate(format!(
                        "expected value, found {}",
                        s.token.describe()
                    )),
                ))
            }
            None => return Err(self.err_end()),
        };
        Ok(Predicate {
            scope,
            attr: attr.into(),
            op,
            value,
        })
    }
}

/// Returns `true` if `src` parses as a pattern — a cheap syntax check.
///
/// ```
/// assert!(wlq_pattern::is_valid_pattern("A -> B"));
/// assert!(!wlq_pattern::is_valid_pattern("A -> "));
/// ```
#[must_use]
pub fn is_valid_pattern(src: &str) -> bool {
    Pattern::parse(src).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CmpOp, Op};

    fn parse(s: &str) -> Pattern {
        Pattern::parse(s).unwrap()
    }

    #[test]
    fn atoms_and_negation() {
        assert_eq!(parse("A"), Pattern::atom("A"));
        assert_eq!(parse("!A"), Pattern::not_atom("A"));
        assert_eq!(parse("¬A"), Pattern::not_atom("A"));
        assert_eq!(parse("(A)"), Pattern::atom("A"));
    }

    #[test]
    fn operators_are_left_associative() {
        assert_eq!(parse("A -> B -> C"), parse("(A -> B) -> C"));
        assert_eq!(parse("A | B | C"), parse("(A | B) | C"));
        assert_eq!(parse("A & B & C"), parse("(A & B) & C"));
        assert_eq!(parse("A ~> B ~> C"), parse("(A ~> B) ~> C"));
    }

    #[test]
    fn precedence_sequential_over_parallel_over_choice() {
        let p = parse("A -> B & C | D");
        // Parses as ((A -> B) & C) | D.
        assert_eq!(p.op(), Some(Op::Choice));
        let Pattern::Binary { left, .. } = &p else {
            panic!()
        };
        assert_eq!(left.op(), Some(Op::Parallel));
        let Pattern::Binary { left: ll, .. } = left.as_ref() else {
            panic!()
        };
        assert_eq!(ll.op(), Some(Op::Sequential));
    }

    #[test]
    fn consecutive_and_sequential_share_precedence_left_assoc() {
        // A ~> B -> C parses as (A ~> B) -> C.
        let p = parse("A ~> B -> C");
        assert_eq!(p.op(), Some(Op::Sequential));
        let Pattern::Binary { left, .. } = &p else {
            panic!()
        };
        assert_eq!(left.op(), Some(Op::Consecutive));
    }

    #[test]
    fn parens_override_precedence() {
        let p = parse("A -> (B | C)");
        assert_eq!(p.op(), Some(Op::Sequential));
        let Pattern::Binary { right, .. } = &p else {
            panic!()
        };
        assert_eq!(right.op(), Some(Op::Choice));
    }

    #[test]
    fn display_parse_round_trip() {
        for src in [
            "A",
            "!A",
            "A -> B",
            "A ~> B -> C",
            "A -> (B -> C)",
            "(A | B) -> C & !D",
            "A & (B | C) -> D",
            "SeeDoctor -> (UpdateRefer -> GetReimburse)",
        ] {
            let p = parse(src);
            let printed = p.to_string();
            assert_eq!(
                parse(&printed),
                p,
                "round trip failed for {src} -> {printed}"
            );
        }
    }

    #[test]
    fn unicode_and_ascii_agree() {
        assert_eq!(parse("A ⊙ B → C ⊗ D ⊕ E"), parse("A ~> B -> C | D & E"));
    }

    #[test]
    fn predicates_parse_with_scopes_and_values() {
        let p =
            parse(r#"GetRefer[out.balance > 5000, in.state = "start", year = 2017, ok = true]"#);
        let atom = p.as_atom().unwrap();
        assert_eq!(atom.predicates.len(), 4);
        assert_eq!(atom.predicates[0].scope, Scope::Output);
        assert_eq!(atom.predicates[0].op, CmpOp::Gt);
        assert_eq!(atom.predicates[0].value, Value::Int(5000));
        assert_eq!(atom.predicates[1].scope, Scope::Input);
        assert_eq!(atom.predicates[1].value, Value::from("start"));
        assert_eq!(atom.predicates[2].scope, Scope::Any);
        assert_eq!(atom.predicates[3].value, Value::Bool(true));
    }

    #[test]
    fn predicate_display_round_trips() {
        let src = r#"GetRefer[out.balance >= 5000] -> GetReimburse[amount < 2000]"#;
        let p = parse(src);
        assert_eq!(parse(&p.to_string()), p);
    }

    #[test]
    fn error_empty_input() {
        let err = Pattern::parse("").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::EmptyInput));
        let err = Pattern::parse("   ").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::EmptyInput));
    }

    #[test]
    fn error_trailing_operator() {
        let err = Pattern::parse("A -> ").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedEnd));
    }

    #[test]
    fn error_leading_operator() {
        let err = Pattern::parse("-> A").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedToken(_)));
    }

    #[test]
    fn error_missing_operator_between_operands() {
        let err = Pattern::parse("A B").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedToken(_)));
    }

    #[test]
    fn error_unbalanced_parens() {
        assert!(matches!(
            Pattern::parse("(A -> B").unwrap_err().kind,
            ParseErrorKind::UnbalancedParen
        ));
        assert!(matches!(
            Pattern::parse("A -> B)").unwrap_err().kind,
            ParseErrorKind::UnbalancedParen
        ));
        assert!(matches!(
            Pattern::parse("()").unwrap_err().kind,
            ParseErrorKind::UnexpectedToken(_)
        ));
    }

    #[test]
    fn error_bad_predicate_forms() {
        assert!(Pattern::parse("A[]").is_err());
        assert!(Pattern::parse("A[x]").is_err());
        assert!(Pattern::parse("A[x >]").is_err());
        assert!(Pattern::parse("A[x > 1").is_err());
        assert!(Pattern::parse("A[foo.x > 1]").is_err());
        assert!(Pattern::parse("A[x > 1; y < 2]").is_err());
    }

    #[test]
    fn is_valid_pattern_helper() {
        assert!(is_valid_pattern("A -> B | C"));
        assert!(!is_valid_pattern("| A"));
    }

    #[test]
    fn double_negation_is_a_syntax_error() {
        assert!(Pattern::parse("!!A").is_err());
    }

    #[test]
    fn spanned_atoms_cover_negation_and_predicates() {
        let src = "!CheckIn ~> GetRefer[out.balance >= 5000]";
        let sp = Pattern::parse_spanned(src).unwrap();
        let PatternSpans::Binary {
            op_span,
            left,
            right,
            span,
        } = &sp.spans
        else {
            panic!("expected binary span tree");
        };
        assert_eq!(left.span().slice(src), "!CheckIn");
        assert_eq!(op_span.slice(src), "~>");
        assert_eq!(right.span().slice(src), "GetRefer[out.balance >= 5000]");
        assert_eq!(span.slice(src), src);
    }

    #[test]
    fn spanned_parens_widen_the_inner_node() {
        let src = "A -> (B | C)";
        let sp = Pattern::parse_spanned(src).unwrap();
        let PatternSpans::Binary { right, .. } = &sp.spans else {
            panic!("expected binary span tree");
        };
        assert_eq!(right.span().slice(src), "(B | C)");
        let PatternSpans::Binary { left, right, .. } = right.as_ref() else {
            panic!("expected inner binary");
        };
        assert_eq!(left.span().slice(src), "B");
        assert_eq!(right.span().slice(src), "C");
    }

    #[test]
    fn spanned_tree_mirrors_pattern_shape() {
        for src in [
            "A",
            "(A)",
            "((A))",
            "A ~> B -> C | D & E",
            "(A | B) -> C & !D",
            "SeeDoctor -> (UpdateRefer -> GetReimburse)",
        ] {
            let sp = Pattern::parse_spanned(src).unwrap();
            assert_eq!(sp.pattern, parse(src));
            fn check(p: &Pattern, s: &PatternSpans) {
                match (p, s) {
                    (Pattern::Atom(_), PatternSpans::Atom { .. }) => {}
                    (
                        Pattern::Binary { left, right, .. },
                        PatternSpans::Binary {
                            left: sl,
                            right: sr,
                            ..
                        },
                    ) => {
                        check(left, sl);
                        check(right, sr);
                    }
                    _ => panic!("shape mismatch for {p}"),
                }
            }
            check(&sp.pattern, &sp.spans);
        }
    }

    #[test]
    fn spanned_children_accessor() {
        let sp = Pattern::parse_spanned("A -> B").unwrap();
        assert_eq!(sp.spans.children().len(), 2);
        assert!(sp.spans.children()[0].children().is_empty());
    }
}
