//! Source spans for patterns: byte ranges tying every AST node back to
//! the text it was parsed from.
//!
//! [`Pattern::parse_spanned`](crate::Pattern::parse_spanned) returns a
//! [`SpannedPattern`]: the pattern plus a [`PatternSpans`] tree that
//! mirrors its shape node for node. Diagnostics (the `wlq-analysis`
//! crate, CLI caret rendering) walk the two trees in lockstep so every
//! finding can point into the source.

use std::fmt;

/// A half-open byte range `[start, end)` into the pattern source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Builds a span from its byte bounds.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// The smallest span covering both `self` and `other`.
    #[must_use]
    pub fn union(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The length of the spanned text in bytes.
    #[must_use]
    pub fn len(self) -> usize {
        self.end - self.start
    }

    /// Whether the span covers no text.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// The spanned slice of `src`, or `""` when out of range (a span
    /// from one source applied to another).
    #[must_use]
    pub fn slice(self, src: &str) -> &str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A tree of source spans with the same shape as the pattern it was
/// parsed alongside: one node per [`Pattern`](crate::Pattern) node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternSpans {
    /// Span of an atom, covering `!name[preds]` including negation and
    /// predicate brackets.
    Atom {
        /// The atom's full extent.
        span: Span,
    },
    /// Spans of a binary node.
    Binary {
        /// Full extent of the subexpression (both operands and the
        /// operator, widened to enclosing parentheses).
        span: Span,
        /// The operator token itself (`~>`, `->`, `|`, `&` or a glyph).
        op_span: Span,
        /// Spans of the left operand subtree.
        left: Box<PatternSpans>,
        /// Spans of the right operand subtree.
        right: Box<PatternSpans>,
    },
}

impl PatternSpans {
    /// The full extent of this node.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            PatternSpans::Atom { span } | PatternSpans::Binary { span, .. } => *span,
        }
    }

    /// Widens this node's extent to include `outer` (used when a
    /// parenthesized group closes around it).
    pub(crate) fn widen(&mut self, outer: Span) {
        match self {
            PatternSpans::Atom { span } | PatternSpans::Binary { span, .. } => {
                *span = span.union(outer);
            }
        }
    }

    /// The children of this node, left then right (empty for atoms).
    #[must_use]
    pub fn children(&self) -> Vec<&PatternSpans> {
        match self {
            PatternSpans::Atom { .. } => Vec::new(),
            PatternSpans::Binary { left, right, .. } => vec![left, right],
        }
    }
}

/// A parsed pattern together with the span tree tying each node back to
/// the source text.
///
/// ```
/// use wlq_pattern::Pattern;
/// let sp = Pattern::parse_spanned("SeeDoctor -> PayTreatment")?;
/// assert_eq!(sp.spans.span().slice("SeeDoctor -> PayTreatment"),
///            "SeeDoctor -> PayTreatment");
/// # Ok::<(), wlq_pattern::ParsePatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedPattern {
    /// The parsed pattern.
    pub pattern: crate::ast::Pattern,
    /// The mirror tree of source spans.
    pub spans: PatternSpans,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_len() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.union(b), Span::new(2, 9));
        assert_eq!(b.union(a), Span::new(2, 9));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::new(4, 4).is_empty());
    }

    #[test]
    fn new_clamps_inverted_bounds() {
        assert_eq!(Span::new(5, 2), Span::new(5, 5));
    }

    #[test]
    fn slice_is_total() {
        assert_eq!(Span::new(2, 4).slice("abcdef"), "cd");
        assert_eq!(Span::new(2, 40).slice("abc"), "");
    }
}
