//! The incident-pattern AST (Definition 3).

use std::collections::BTreeMap;
use std::fmt;

use wlq_log::{Activity, AttrName, Value};

/// The four binary pattern operators of Definition 3, inspired by BPMN
/// gateways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Op {
    /// `p1 ⊙ p2`: `p1` and `p2` executed consecutively
    /// (`last(o1) + 1 = first(o2)`).
    Consecutive,
    /// `p1 → p2`: `p1` executed before `p2` (`last(o1) < first(o2)`).
    Sequential,
    /// `p1 ⊗ p2`: one of `p1`, `p2` executed.
    Choice,
    /// `p1 ⊕ p2`: both executed, sharing no log records.
    Parallel,
}

impl Op {
    /// All four operators, in Definition 3 order.
    pub const ALL: [Op; 4] = [Op::Consecutive, Op::Sequential, Op::Choice, Op::Parallel];

    /// The Unicode symbol used by the paper.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            Op::Consecutive => "⊙",
            Op::Sequential => "→",
            Op::Choice => "⊗",
            Op::Parallel => "⊕",
        }
    }

    /// The ASCII spelling used by the text syntax
    /// (see [`crate::parse`](crate::Pattern::parse)).
    #[must_use]
    pub fn ascii(self) -> &'static str {
        match self {
            Op::Consecutive => "~>",
            Op::Sequential => "->",
            Op::Choice => "|",
            Op::Parallel => "&",
        }
    }

    /// Operator name as used in the paper's prose.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Op::Consecutive => "consecutive",
            Op::Sequential => "sequential",
            Op::Choice => "choice",
            Op::Parallel => "parallel",
        }
    }

    /// Whether the operator is commutative (Theorem 3: only `⊗` and `⊕`).
    #[must_use]
    pub fn is_commutative(self) -> bool {
        matches!(self, Op::Choice | Op::Parallel)
    }

    /// Binding strength for parsing and printing; higher binds tighter.
    ///
    /// Consecutive and sequential share a level — Theorem 4 shows they
    /// associate freely with each other — and bind tighter than parallel,
    /// which binds tighter than choice. All levels are left-associative.
    #[must_use]
    pub fn precedence(self) -> u8 {
        match self {
            Op::Consecutive | Op::Sequential => 3,
            Op::Parallel => 2,
            Op::Choice => 1,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// Which attribute map of a record an [atom predicate](Predicate) reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scope {
    /// Look in `αin` only (`in.` prefix in the text syntax).
    Input,
    /// Look in `αout` only (`out.` prefix).
    Output,
    /// Look in `αout` first, then `αin` (no prefix). Matches the intuition
    /// "the value of the attribute at this record".
    #[default]
    Any,
}

/// Comparison operators usable in atom predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The textual spelling.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    /// Evaluates the comparison on an [`Ordering`](std::cmp::Ordering).
    #[must_use]
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::{Equal, Greater, Less};
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An attribute condition on an atomic pattern — the WLQ *extension* that
/// makes the paper's motivating queries ("referrals with balance > $5,000")
/// expressible. Not part of the paper's Definition 3.
///
/// In the text syntax: `GetRefer[out.balance > 5000]`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Predicate {
    /// Which map to read the attribute from.
    pub scope: Scope,
    /// The attribute compared.
    pub attr: AttrName,
    /// The comparison operator.
    pub op: CmpOp,
    /// The constant compared against.
    pub value: Value,
}

impl Predicate {
    /// Creates a predicate over [`Scope::Any`].
    pub fn new(attr: impl Into<AttrName>, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate {
            scope: Scope::Any,
            attr: attr.into(),
            op,
            value: value.into(),
        }
    }

    /// Restricts the predicate to a map.
    #[must_use]
    pub fn scoped(mut self, scope: Scope) -> Self {
        self.scope = scope;
        self
    }

    /// Tests the predicate against a record's input/output maps.
    ///
    /// Numeric comparisons coerce between `Int` and `Float`
    /// ([`Value::numeric_cmp`]); other kinds compare only within their kind,
    /// and an undefined attribute satisfies no comparison except `!=`.
    #[must_use]
    pub fn matches(&self, input: &wlq_log::AttrMap, output: &wlq_log::AttrMap) -> bool {
        let actual = match self.scope {
            Scope::Input => input.get(self.attr.as_str()).cloned(),
            Scope::Output => output.get(self.attr.as_str()).cloned(),
            Scope::Any => output
                .get(self.attr.as_str())
                .or_else(|| input.get(self.attr.as_str()))
                .cloned(),
        };
        let Some(actual) = actual else {
            // Absent attribute: only `!=` can hold.
            return self.op == CmpOp::Ne;
        };
        let ord = if actual.kind() == self.value.kind() {
            actual.cmp(&self.value)
        } else if let Some(ord) = actual.numeric_cmp(&self.value) {
            ord
        } else {
            return self.op == CmpOp::Ne;
        };
        self.op.eval(ord)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let prefix = match self.scope {
            Scope::Input => "in.",
            Scope::Output => "out.",
            Scope::Any => "",
        };
        let quoted;
        let value: &dyn fmt::Display = match &self.value {
            Value::Str(s) => {
                quoted = format!("{s:?}");
                &quoted
            }
            other => other,
        };
        write!(f, "{prefix}{} {} {value}", self.attr, self.op)
    }
}

/// An atomic pattern: `t` or `¬t` for an activity name `t`, optionally
/// carrying [`Predicate`]s (extension).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Atom {
    /// The activity name `t ∈ T`.
    pub activity: Activity,
    /// `true` for the negative pattern `¬t` ("any activity other than `t`").
    pub negated: bool,
    /// Conjunction of attribute conditions; empty in the paper's core
    /// algebra.
    pub predicates: Vec<Predicate>,
}

impl Atom {
    /// The positive atom `t`.
    pub fn new(activity: impl Into<Activity>) -> Self {
        Atom {
            activity: activity.into(),
            negated: false,
            predicates: Vec::new(),
        }
    }

    /// The negative atom `¬t`.
    pub fn negative(activity: impl Into<Activity>) -> Self {
        Atom {
            activity: activity.into(),
            negated: true,
            predicates: Vec::new(),
        }
    }

    /// Adds an attribute condition (builder style).
    #[must_use]
    pub fn with_predicate(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            f.write_str("!")?;
        }
        write!(f, "{}", self.activity)?;
        if !self.predicates.is_empty() {
            f.write_str("[")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{p}")?;
            }
            f.write_str("]")?;
        }
        Ok(())
    }
}

/// An incident pattern (Definition 3): an atomic pattern or a binary
/// composition under one of the four [`Op`]s.
///
/// Build patterns with the combinators, the [`parse`](Self::parse) text
/// syntax, or [`from_postfix`](crate::shunting::from_postfix):
///
/// ```
/// use wlq_pattern::Pattern;
///
/// // The paper's Example 3 pattern, three equivalent spellings:
/// let a = Pattern::atom("SeeDoctor")
///     .seq(Pattern::atom("UpdateRefer").seq(Pattern::atom("GetReimburse")));
/// let b: Pattern = "SeeDoctor -> (UpdateRefer -> GetReimburse)".parse()?;
/// let c: Pattern = "SeeDoctor → (UpdateRefer → GetReimburse)".parse()?;
/// assert_eq!(a, b);
/// assert_eq!(b, c);
/// # Ok::<(), wlq_pattern::ParsePatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Pattern {
    /// An atomic pattern `t` or `¬t`.
    Atom(Atom),
    /// A composite pattern `left op right`.
    Binary {
        /// The composition operator.
        op: Op,
        /// Left sub-pattern.
        left: Box<Pattern>,
        /// Right sub-pattern.
        right: Box<Pattern>,
    },
}

impl Pattern {
    /// The positive atomic pattern `t`.
    pub fn atom(activity: impl Into<Activity>) -> Self {
        Pattern::Atom(Atom::new(activity))
    }

    /// The negative atomic pattern `¬t`.
    pub fn not_atom(activity: impl Into<Activity>) -> Self {
        Pattern::Atom(Atom::negative(activity))
    }

    /// Composes two patterns under `op`.
    #[must_use]
    pub fn binary(op: Op, left: Pattern, right: Pattern) -> Self {
        Pattern::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `self ⊙ other` (consecutive).
    #[must_use]
    pub fn cons(self, other: Pattern) -> Self {
        Pattern::binary(Op::Consecutive, self, other)
    }

    /// `self → other` (sequential).
    #[must_use]
    pub fn seq(self, other: Pattern) -> Self {
        Pattern::binary(Op::Sequential, self, other)
    }

    /// `self ⊗ other` (choice).
    #[must_use]
    pub fn alt(self, other: Pattern) -> Self {
        Pattern::binary(Op::Choice, self, other)
    }

    /// `self ⊕ other` (parallel).
    #[must_use]
    pub fn par(self, other: Pattern) -> Self {
        Pattern::binary(Op::Parallel, self, other)
    }

    /// Returns the atom if this pattern is atomic.
    #[must_use]
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Pattern::Atom(a) => Some(a),
            Pattern::Binary { .. } => None,
        }
    }

    /// The operator if this pattern is composite.
    #[must_use]
    pub fn op(&self) -> Option<Op> {
        match self {
            Pattern::Atom(_) => None,
            Pattern::Binary { op, .. } => Some(*op),
        }
    }

    /// Number of atomic patterns (leaves). The paper's `k_i` ("number of
    /// activity names in `p_i`") in Lemma 1.
    #[must_use]
    pub fn num_atoms(&self) -> usize {
        match self {
            Pattern::Atom(_) => 1,
            Pattern::Binary { left, right, .. } => left.num_atoms() + right.num_atoms(),
        }
    }

    /// Number of operators. The paper's `k` in Theorem 1.
    #[must_use]
    pub fn num_operators(&self) -> usize {
        match self {
            Pattern::Atom(_) => 0,
            Pattern::Binary { left, right, .. } => 1 + left.num_operators() + right.num_operators(),
        }
    }

    /// Height of the pattern tree; an atom has depth 1.
    #[must_use]
    pub fn depth(&self) -> usize {
        match self {
            Pattern::Atom(_) => 1,
            Pattern::Binary { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    /// The multiset of activity names in the pattern, as `name → count`.
    ///
    /// Section 3.1 uses this to decide whether a choice needs duplicate
    /// elimination (only when both sides have the same multiset).
    #[must_use]
    pub fn activity_multiset(&self) -> BTreeMap<Activity, usize> {
        fn walk(p: &Pattern, out: &mut BTreeMap<Activity, usize>) {
            match p {
                Pattern::Atom(a) => *out.entry(a.activity.clone()).or_insert(0) += 1,
                Pattern::Binary { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
            }
        }
        let mut out = BTreeMap::new();
        walk(self, &mut out);
        out
    }

    /// Returns `true` if any atom is negated.
    #[must_use]
    pub fn has_negation(&self) -> bool {
        match self {
            Pattern::Atom(a) => a.negated,
            Pattern::Binary { left, right, .. } => left.has_negation() || right.has_negation(),
        }
    }

    /// Returns `true` if any atom carries predicates (i.e. the pattern uses
    /// the extension beyond the paper's core algebra).
    #[must_use]
    pub fn has_predicates(&self) -> bool {
        match self {
            Pattern::Atom(a) => !a.predicates.is_empty(),
            Pattern::Binary { left, right, .. } => left.has_predicates() || right.has_predicates(),
        }
    }

    /// Pre-order iteration over all subpatterns, root first.
    pub fn subpatterns(&self) -> impl Iterator<Item = &Pattern> {
        let mut stack = vec![self];
        std::iter::from_fn(move || {
            let next = stack.pop()?;
            if let Pattern::Binary { left, right, .. } = next {
                stack.push(right);
                stack.push(left);
            }
            Some(next)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> Pattern {
        Pattern::atom(name)
    }

    #[test]
    fn combinators_build_the_expected_tree() {
        let pat = p("A").seq(p("B").cons(p("C")));
        assert_eq!(pat.op(), Some(Op::Sequential));
        let Pattern::Binary { right, .. } = &pat else {
            panic!()
        };
        assert_eq!(right.op(), Some(Op::Consecutive));
        assert_eq!(pat.num_atoms(), 3);
        assert_eq!(pat.num_operators(), 2);
        assert_eq!(pat.depth(), 3);
    }

    #[test]
    fn atom_accessors() {
        let a = Pattern::not_atom("X");
        let atom = a.as_atom().unwrap();
        assert!(atom.negated);
        assert_eq!(atom.activity.as_str(), "X");
        assert!(p("A").seq(p("B")).as_atom().is_none());
    }

    #[test]
    fn activity_multiset_counts_duplicates() {
        let pat = p("A").alt(p("A").par(p("B")));
        let ms = pat.activity_multiset();
        let a: Activity = "A".into();
        let b: Activity = "B".into();
        assert_eq!(ms[&a], 2);
        assert_eq!(ms[&b], 1);
    }

    #[test]
    fn negation_and_predicate_flags() {
        assert!(!p("A").has_negation());
        assert!(Pattern::not_atom("A").has_negation());
        assert!(p("A").seq(Pattern::not_atom("B")).has_negation());
        let with_pred =
            Pattern::Atom(Atom::new("A").with_predicate(Predicate::new("x", CmpOp::Gt, 5i64)));
        assert!(with_pred.has_predicates());
        assert!(!p("A").has_predicates());
    }

    #[test]
    fn operator_metadata() {
        assert!(Op::Choice.is_commutative());
        assert!(Op::Parallel.is_commutative());
        assert!(!Op::Sequential.is_commutative());
        assert!(!Op::Consecutive.is_commutative());
        assert_eq!(Op::Consecutive.precedence(), Op::Sequential.precedence());
        assert!(Op::Parallel.precedence() < Op::Sequential.precedence());
        assert!(Op::Choice.precedence() < Op::Parallel.precedence());
        for op in Op::ALL {
            assert!(!op.symbol().is_empty());
            assert!(!op.ascii().is_empty());
            assert!(!op.name().is_empty());
        }
    }

    #[test]
    fn subpatterns_visits_every_node_root_first() {
        let pat = p("A").seq(p("B").alt(p("C")));
        let nodes: Vec<&Pattern> = pat.subpatterns().collect();
        assert_eq!(nodes.len(), 5);
        assert_eq!(nodes[0], &pat);
        assert_eq!(nodes[1], &p("A"));
    }

    #[test]
    fn cmp_op_eval_covers_all_orderings() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.eval(Equal) && !CmpOp::Eq.eval(Less));
        assert!(CmpOp::Ne.eval(Less) && !CmpOp::Ne.eval(Equal));
        assert!(CmpOp::Lt.eval(Less) && !CmpOp::Lt.eval(Equal));
        assert!(CmpOp::Le.eval(Equal) && !CmpOp::Le.eval(Greater));
        assert!(CmpOp::Gt.eval(Greater) && !CmpOp::Gt.eval(Equal));
        assert!(CmpOp::Ge.eval(Equal) && !CmpOp::Ge.eval(Less));
    }

    #[test]
    fn predicate_matches_scopes_and_coercion() {
        use wlq_log::attrs;
        let input = attrs! { "balance" => 1000i64, "state" => "start" };
        let output = attrs! { "balance" => 5000i64 };

        // Any scope prefers output.
        assert!(Predicate::new("balance", CmpOp::Gt, 2000i64).matches(&input, &output));
        // Input scope sees 1000.
        assert!(!Predicate::new("balance", CmpOp::Gt, 2000i64)
            .scoped(Scope::Input)
            .matches(&input, &output));
        // Output scope.
        assert!(Predicate::new("balance", CmpOp::Eq, 5000i64)
            .scoped(Scope::Output)
            .matches(&input, &output));
        // Int vs float coercion.
        assert!(Predicate::new("balance", CmpOp::Lt, 5000.5f64).matches(&input, &output));
        // Strings compare lexically.
        assert!(Predicate::new("state", CmpOp::Eq, "start").matches(&input, &output));
        // Missing attribute: only != holds.
        assert!(Predicate::new("missing", CmpOp::Ne, 1i64).matches(&input, &output));
        assert!(!Predicate::new("missing", CmpOp::Eq, 1i64).matches(&input, &output));
        // Type mismatch (string vs int): only != holds.
        assert!(!Predicate::new("state", CmpOp::Lt, 1i64).matches(&input, &output));
        assert!(Predicate::new("state", CmpOp::Ne, 1i64).matches(&input, &output));
    }

    #[test]
    fn predicate_display_is_readable() {
        let p1 = Predicate::new("balance", CmpOp::Gt, 5000i64);
        assert_eq!(p1.to_string(), "balance > 5000");
        let p2 = Predicate::new("state", CmpOp::Eq, "active").scoped(Scope::Output);
        assert_eq!(p2.to_string(), "out.state = \"active\"");
        let p3 = Predicate::new("x", CmpOp::Le, 1.5f64).scoped(Scope::Input);
        assert_eq!(p3.to_string(), "in.x <= 1.5");
    }

    #[test]
    fn atom_display_includes_negation_and_predicates() {
        assert_eq!(Atom::new("A").to_string(), "A");
        assert_eq!(Atom::negative("A").to_string(), "!A");
        let a = Atom::new("GetRefer").with_predicate(Predicate::new("balance", CmpOp::Gt, 5000i64));
        assert_eq!(a.to_string(), "GetRefer[balance > 5000]");
    }
}
