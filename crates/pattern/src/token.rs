//! Lexer for the pattern text syntax.
//!
//! Operators: `~>` (consecutive), `->` (sequential), `|` (choice),
//! `&` (parallel), with the paper's glyphs `⊙ → ⊗ ⊕` accepted as
//! synonyms. `!`/`¬` negate an atom. `[...]` encloses attribute
//! predicates (extension), e.g. `GetRefer[out.balance > 5000]`.

use crate::ast::{CmpOp, Op};
use crate::error::{ParseErrorKind, ParsePatternError};

/// A lexical token of the pattern syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// An identifier (activity name, attribute name, or scope prefix).
    Ident(String),
    /// `!` or `¬`.
    Not,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// One of the four pattern operators.
    Op(Op),
    /// A comparison operator inside predicates.
    Cmp(CmpOp),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A double-quoted string literal (already unescaped).
    Str(String),
}

impl Token {
    /// A short description used in error messages.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier {s:?}"),
            Token::Not => "'!'".to_string(),
            Token::LParen => "'('".to_string(),
            Token::RParen => "')'".to_string(),
            Token::LBracket => "'['".to_string(),
            Token::RBracket => "']'".to_string(),
            Token::Comma => "','".to_string(),
            Token::Dot => "'.'".to_string(),
            Token::Op(op) => format!("operator '{}'", op.ascii()),
            Token::Cmp(c) => format!("comparison '{c}'"),
            Token::Int(i) => format!("integer {i}"),
            Token::Float(x) => format!("number {x}"),
            Token::Str(s) => format!("string {s:?}"),
        }
    }
}

/// A token plus the byte offsets where it starts and ends.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset in the source where the token starts.
    pub pos: usize,
    /// Byte offset just past the token's last character.
    pub end: usize,
}

/// Tokenizes pattern text.
///
/// # Errors
///
/// Returns [`ParsePatternError`] for characters that start no token and
/// unterminated string literals.
pub fn tokenize(src: &str) -> Result<Vec<Spanned>, ParsePatternError> {
    let mut out = Vec::new();
    let bytes: Vec<(usize, char)> = src.char_indices().collect();
    let mut i = 0;
    while i < bytes.len() {
        let (pos, c) = bytes[i];
        let tok = match c {
            c if c.is_whitespace() => {
                i += 1;
                continue;
            }
            '(' => some(Token::LParen, &mut i),
            ')' => some(Token::RParen, &mut i),
            '[' => some(Token::LBracket, &mut i),
            ']' => some(Token::RBracket, &mut i),
            ',' => some(Token::Comma, &mut i),
            '.' => some(Token::Dot, &mut i),
            '|' => some(Token::Op(Op::Choice), &mut i),
            '&' => some(Token::Op(Op::Parallel), &mut i),
            '⊗' => some(Token::Op(Op::Choice), &mut i),
            '⊕' => some(Token::Op(Op::Parallel), &mut i),
            '⊙' => some(Token::Op(Op::Consecutive), &mut i),
            '→' => some(Token::Op(Op::Sequential), &mut i),
            '¬' => some(Token::Not, &mut i),
            '~' => {
                if next_is(&bytes, i, '>') {
                    i += 2;
                    Token::Op(Op::Consecutive)
                } else {
                    return Err(ParsePatternError::new(
                        pos,
                        ParseErrorKind::UnexpectedChar('~'),
                    ));
                }
            }
            '-' => {
                if next_is(&bytes, i, '>') {
                    i += 2;
                    Token::Op(Op::Sequential)
                } else if i + 1 < bytes.len() && bytes[i + 1].1.is_ascii_digit() {
                    lex_number(&bytes, &mut i)?
                } else {
                    return Err(ParsePatternError::new(
                        pos,
                        ParseErrorKind::UnexpectedChar('-'),
                    ));
                }
            }
            '!' => {
                if next_is(&bytes, i, '=') {
                    i += 2;
                    Token::Cmp(CmpOp::Ne)
                } else {
                    i += 1;
                    Token::Not
                }
            }
            '=' => some(Token::Cmp(CmpOp::Eq), &mut i),
            '<' => {
                if next_is(&bytes, i, '=') {
                    i += 2;
                    Token::Cmp(CmpOp::Le)
                } else {
                    i += 1;
                    Token::Cmp(CmpOp::Lt)
                }
            }
            '>' => {
                if next_is(&bytes, i, '=') {
                    i += 2;
                    Token::Cmp(CmpOp::Ge)
                } else {
                    i += 1;
                    Token::Cmp(CmpOp::Gt)
                }
            }
            '"' => lex_string(&bytes, &mut i, pos)?,
            c if c.is_ascii_digit() => lex_number(&bytes, &mut i)?,
            c if is_ident_start(c) => lex_ident(&bytes, &mut i),
            other => {
                return Err(ParsePatternError::new(
                    pos,
                    ParseErrorKind::UnexpectedChar(other),
                ))
            }
        };
        // After lexing, `i` points at the first unconsumed character, whose
        // offset is exactly one past the token's last byte.
        let end = bytes.get(i).map_or(src.len(), |&(p, _)| p);
        out.push(Spanned {
            token: tok,
            pos,
            end,
        });
    }
    Ok(out)
}

fn some(tok: Token, i: &mut usize) -> Token {
    *i += 1;
    tok
}

fn next_is(bytes: &[(usize, char)], i: usize, c: char) -> bool {
    bytes.get(i + 1).is_some_and(|&(_, next)| next == c)
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn lex_ident(bytes: &[(usize, char)], i: &mut usize) -> Token {
    let mut s = String::new();
    while *i < bytes.len() && is_ident_continue(bytes[*i].1) {
        s.push(bytes[*i].1);
        *i += 1;
    }
    Token::Ident(s)
}

fn lex_number(bytes: &[(usize, char)], i: &mut usize) -> Result<Token, ParsePatternError> {
    let start = bytes[*i].0;
    let mut s = String::new();
    if bytes[*i].1 == '-' {
        s.push('-');
        *i += 1;
    }
    let mut is_float = false;
    while *i < bytes.len() {
        let c = bytes[*i].1;
        if c.is_ascii_digit() {
            s.push(c);
            *i += 1;
        } else if c == '.'
            && !is_float
            && bytes.get(*i + 1).is_some_and(|&(_, d)| d.is_ascii_digit())
        {
            is_float = true;
            s.push(c);
            *i += 1;
        } else {
            break;
        }
    }
    if is_float {
        s.parse::<f64>()
            .map(Token::Float)
            .map_err(|_| ParsePatternError::new(start, ParseErrorKind::UnexpectedChar('.')))
    } else {
        s.parse::<i64>()
            .map(Token::Int)
            .map_err(|_| ParsePatternError::new(start, ParseErrorKind::UnexpectedToken(s)))
    }
}

fn lex_string(
    bytes: &[(usize, char)],
    i: &mut usize,
    start: usize,
) -> Result<Token, ParsePatternError> {
    *i += 1; // opening quote
    let mut s = String::new();
    while *i < bytes.len() {
        let c = bytes[*i].1;
        *i += 1;
        match c {
            '"' => return Ok(Token::Str(s)),
            '\\' => {
                if *i < bytes.len() {
                    let esc = bytes[*i].1;
                    *i += 1;
                    s.push(match esc {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    });
                } else {
                    break;
                }
            }
            other => s.push(other),
        }
    }
    Err(ParsePatternError::new(
        start,
        ParseErrorKind::UnterminatedString,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn lexes_all_ascii_operators() {
        assert_eq!(
            toks("A ~> B -> C | D & E"),
            vec![
                Token::Ident("A".into()),
                Token::Op(Op::Consecutive),
                Token::Ident("B".into()),
                Token::Op(Op::Sequential),
                Token::Ident("C".into()),
                Token::Op(Op::Choice),
                Token::Ident("D".into()),
                Token::Op(Op::Parallel),
                Token::Ident("E".into()),
            ]
        );
    }

    #[test]
    fn lexes_unicode_operator_synonyms() {
        assert_eq!(toks("A ⊙ B → C ⊗ D ⊕ E"), toks("A ~> B -> C | D & E"));
        assert_eq!(toks("¬A"), toks("!A"));
    }

    #[test]
    fn lexes_predicates() {
        assert_eq!(
            toks(r#"GetRefer[out.balance >= 5000, state = "active"]"#),
            vec![
                Token::Ident("GetRefer".into()),
                Token::LBracket,
                Token::Ident("out".into()),
                Token::Dot,
                Token::Ident("balance".into()),
                Token::Cmp(CmpOp::Ge),
                Token::Int(5000),
                Token::Comma,
                Token::Ident("state".into()),
                Token::Cmp(CmpOp::Eq),
                Token::Str("active".into()),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn lexes_numbers_including_negative_and_float() {
        assert_eq!(
            toks("[x = -42]"),
            vec![
                Token::LBracket,
                Token::Ident("x".into()),
                Token::Cmp(CmpOp::Eq),
                Token::Int(-42),
                Token::RBracket,
            ]
        );
        assert_eq!(toks("[x < 1.5]")[3], Token::Float(1.5));
    }

    #[test]
    fn not_equal_vs_negation() {
        assert_eq!(toks("!A")[0], Token::Not);
        assert_eq!(toks("[a != 1]")[2], Token::Cmp(CmpOp::Ne));
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r#"[a = "he said \"hi\"\n"]"#)[3],
            Token::Str("he said \"hi\"\n".into())
        );
    }

    #[test]
    fn positions_are_byte_offsets() {
        let spanned = tokenize("A -> B").unwrap();
        assert_eq!(spanned[0].pos, 0);
        assert_eq!(spanned[1].pos, 2);
        assert_eq!(spanned[2].pos, 5);
    }

    #[test]
    fn end_offsets_cover_the_token_text() {
        let src = "Abc ~> B[x >= 10]";
        for s in tokenize(src).unwrap() {
            assert!(s.pos < s.end, "{:?}", s.token);
            assert!(s.end <= src.len());
        }
        let spanned = tokenize("Abc -> B").unwrap();
        assert_eq!((spanned[0].pos, spanned[0].end), (0, 3));
        assert_eq!((spanned[1].pos, spanned[1].end), (4, 6));
        assert_eq!((spanned[2].pos, spanned[2].end), (7, 8));
    }

    #[test]
    fn bad_characters_are_rejected_with_position() {
        let err = tokenize("A % B").unwrap_err();
        assert_eq!(err.position, 2);
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedChar('%')));
        assert!(tokenize("A ~ B").is_err());
        assert!(tokenize("A - B").is_err());
    }

    #[test]
    fn unterminated_string_is_rejected() {
        let err = tokenize(r#"[a = "oops]"#).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnterminatedString));
    }

    #[test]
    fn describe_is_nonempty_for_all_tokens() {
        for t in toks(r#"!A(B)[x.y = 1, z != 2.5] | "s""#) {
            assert!(!t.describe().is_empty());
        }
    }
}
