//! Property tests of the pattern crate: canonical forms, reshaping,
//! rewrites, the optimizer's cost discipline, and syntax round-trips —
//! all over randomly generated patterns.

use proptest::prelude::{prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Strategy};

use wlq_log::{attrs, LogBuilder, LogStats};
use wlq_pattern::{
    ac_equivalent, algebra, canonicalize, choice_normal_form, from_postfix, rewrite, to_postfix,
    Op, Optimizer, Pattern,
};

const ALPHABET: [&str; 4] = ["A", "B", "C", "D"];

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    let leaf = prop_oneof![
        4 => (0..ALPHABET.len()).prop_map(|i| Pattern::atom(ALPHABET[i])),
        1 => (0..ALPHABET.len()).prop_map(|i| Pattern::not_atom(ALPHABET[i])),
    ];
    leaf.prop_recursive(4, 16, 2, |inner| {
        (0..4u8, inner.clone(), inner).prop_map(|(op, l, r)| {
            let op = match op {
                0 => Op::Consecutive,
                1 => Op::Sequential,
                2 => Op::Choice,
                _ => Op::Parallel,
            };
            Pattern::binary(op, l, r)
        })
    })
}

/// Random log statistics: a small synthetic log over the same alphabet.
fn arb_stats() -> impl Strategy<Value = LogStats> {
    prop::collection::vec(prop::collection::vec(0..ALPHABET.len(), 0..10), 1..4).prop_map(
        |instances| {
            let mut b = LogBuilder::new();
            for tasks in &instances {
                let w = b.start_instance();
                for &t in tasks {
                    b.append(w, ALPHABET[t], attrs! {}, attrs! {}).unwrap();
                }
            }
            LogStats::compute(&b.build().unwrap())
        },
    )
}

proptest! {
    /// Canonicalization is idempotent and sound for AC-equivalence.
    #[test]
    fn canonicalize_is_idempotent(p in arb_pattern()) {
        let once = canonicalize(&p);
        prop_assert_eq!(canonicalize(&once), once.clone());
        prop_assert!(ac_equivalent(&p, &once));
    }

    /// Reassociation and commutation rewrites do not change the canonical
    /// form (they are exactly what AC-canonicalization quotients out).
    #[test]
    fn ac_rewrites_preserve_canonical_form(p in arb_pattern()) {
        let canon = canonicalize(&p);
        for (law, q) in algebra::all_rewrites(&p) {
            if law.contains("reassociate") || law.contains("commute") {
                prop_assert_eq!(
                    canonicalize(&q),
                    canon.clone(),
                    "{} changed the canonical form of {}",
                    law,
                    &p
                );
            }
        }
    }

    /// Left-deep and right-deep reshaping are AC-equivalent to the input
    /// and mutually inverse in canonical form.
    #[test]
    fn reshaping_is_ac_equivalent(p in arb_pattern()) {
        let ld = rewrite::left_deep(&p);
        let rd = rewrite::right_deep(&p);
        prop_assert!(ac_equivalent(&p, &ld));
        prop_assert!(ac_equivalent(&p, &rd));
        prop_assert_eq!(rewrite::left_deep(&rd), ld);
    }

    /// Postfix and display round-trips are lossless.
    #[test]
    fn syntax_round_trips(p in arb_pattern()) {
        prop_assert_eq!(from_postfix(to_postfix(&p)).unwrap(), p.clone());
        let printed = p.to_string();
        let reparsed: Pattern = printed.parse().unwrap();
        prop_assert_eq!(reparsed, p);
    }

    /// The number of choice-normal-form alternatives is the product of
    /// per-subtree alternative counts (and the alternatives are
    /// choice-free).
    #[test]
    fn cnf_count_and_shape(p in arb_pattern()) {
        fn expected(p: &Pattern) -> usize {
            match p {
                Pattern::Atom(_) => 1,
                Pattern::Binary { op: Op::Choice, left, right } => {
                    expected(left) + expected(right)
                }
                Pattern::Binary { left, right, .. } => expected(left) * expected(right),
            }
        }
        let alts = choice_normal_form(&p);
        prop_assert_eq!(alts.len(), expected(&p));
        for alt in &alts {
            for sub in alt.subpatterns() {
                prop_assert!(sub.op() != Some(Op::Choice), "choice survived CNF");
            }
        }
    }

    /// The optimizer never increases its own cost estimate, and its
    /// output parses/prints cleanly.
    #[test]
    fn optimizer_cost_discipline(p in arb_pattern(), stats in arb_stats()) {
        let optimizer = Optimizer::new(stats);
        let (optimized, report) = optimizer.optimize_with_report(&p);
        prop_assert!(report.cost_after <= report.cost_before + 1e-9);
        prop_assert!(report.speedup() >= 1.0);
        let reparsed: Pattern = optimized.to_string().parse().unwrap();
        prop_assert_eq!(reparsed, optimized);
    }

    /// Simplification is idempotent, AC-sound for choice-free patterns,
    /// and never grows the pattern.
    #[test]
    fn simplify_discipline(p in arb_pattern()) {
        let s = p.simplify();
        prop_assert_eq!(s.simplify(), s.clone());
        prop_assert!(s.num_atoms() <= p.num_atoms());
        if !p.subpatterns().any(|q| q.op() == Some(Op::Choice)) {
            prop_assert!(ac_equivalent(&p, &s));
        }
    }

    /// Structural metrics are consistent: a binary tree with k operators
    /// has k+1 atoms, and postfix length is atoms + operators.
    #[test]
    fn structural_metrics(p in arb_pattern()) {
        prop_assert_eq!(p.num_atoms(), p.num_operators() + 1);
        prop_assert_eq!(to_postfix(&p).len(), p.num_atoms() + p.num_operators());
        prop_assert!(p.depth() <= p.num_atoms());
        let multiset_total: usize = p.activity_multiset().values().sum();
        prop_assert_eq!(multiset_total, p.num_atoms());
    }
}
