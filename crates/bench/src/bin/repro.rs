//! `repro` — regenerates every experiment of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run -p wlq-bench --release --bin repro            # all experiments
//! cargo run -p wlq-bench --release --bin repro -- e3 e7   # a subset
//! ```
//!
//! Experiment ids follow DESIGN.md §4: E1–E2 reproduce the paper's worked
//! examples (Figure 3, Figure 4, Examples 1/3/5); E3–E6 validate the
//! Lemma 1 complexity shapes per operator; E7 the Theorem 1 worst case;
//! E8–E10 are the ablations (naive vs optimized operators, algebraic
//! rewriting, parallel scaling).

use std::time::Duration;

use wlq_bench::{
    common_tail_incidents, fmt_us, loglog_slope, shared_prefix_incidents, singleton_incidents,
    time_median,
};
use wlq_engine::{naive, optimized, Evaluator, IncidentTree, Query, Strategy};
use wlq_log::{paper, Log, LogIndex, LogStats, Lsn};
use wlq_pattern::{theorem1_worst_case, Optimizer, Pattern};
use wlq_workflow::{generator, scenarios, simulate, SimulationConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |id: &str| all || args.iter().any(|a| a == id);

    println!("WLQ experiment reproduction — paper: \"Querying Workflow Logs\" (Tang, Mackey, Su)");
    println!("================================================================================");
    if want("e1") {
        e1_figure3();
    }
    if want("e2") {
        e2_incident_tree();
    }
    if want("e3") {
        e3_consecutive_scaling();
    }
    if want("e4") {
        e4_sequential_scaling();
    }
    if want("e5") {
        e5_choice_scaling();
    }
    if want("e6") {
        e6_parallel_scaling();
    }
    if want("e7") {
        e7_theorem1();
    }
    if want("e8") {
        e8_naive_vs_optimized();
    }
    if want("e9") {
        e9_rewrite_ablation();
    }
    if want("e10") {
        e10_parallel_scaling();
    }
    if want("e11") {
        e11_streaming();
    }
    if want("e12") {
        e12_warehouse();
    }
}

/// E12: the traditional ETL/warehouse pipeline (the paper's Figure 1) vs
/// direct log querying (its Figure 2).
fn e12_warehouse() {
    use wlq_bench::warehouse::Warehouse;

    heading(
        "E12",
        "baseline: ETL + warehouse (paper's Figure 1) vs direct log querying (Figure 2)",
    );
    let log = simulate(
        &scenarios::clinic::model(),
        &SimulationConfig::new(2000, 17),
    );
    println!(
        "log: {} records, {} instances\n",
        log.len(),
        log.num_instances()
    );

    // Pipeline setup costs.
    let t_etl = time_median(3, || {
        std::hint::black_box(Warehouse::etl(&log, &["balance"]));
    });
    let t_index = time_median(3, || {
        std::hint::black_box(Evaluator::new(&log));
    });
    println!(
        "setup: ETL (facts + 1 column) {} µs, WLQ index {} µs",
        fmt_us(t_etl),
        fmt_us(t_index)
    );

    // Per-query cost on the anomaly query.
    let warehouse = Warehouse::etl(&log, &["balance"]);
    let evaluator = Evaluator::new(&log);
    let pattern: Pattern = "UpdateRefer -> GetReimburse".parse().expect("parses");
    let expected = evaluator.count(&pattern);
    assert_eq!(
        warehouse.count_sequential_pairs("UpdateRefer", "GetReimburse"),
        expected,
        "warehouse and engine disagree"
    );
    let t_wh = time_median(5, || {
        std::hint::black_box(warehouse.count_sequential_pairs("UpdateRefer", "GetReimburse"));
    });
    let t_wlq = time_median(5, || {
        std::hint::black_box(evaluator.count(&pattern));
    });
    println!(
        "query 'UpdateRefer -> GetReimburse': warehouse {} µs, WLQ {} µs ({} incidents)",
        fmt_us(t_wh),
        fmt_us(t_wlq),
        expected
    );

    // The flexibility gap: a query over an attribute that was not
    // extracted forces a full re-ETL; the log query just runs.
    println!("\nflexibility: query over the un-extracted 'receipt' attribute");
    assert!(warehouse.instances_with_attr_over("receipt", 4500).is_err());
    let t_re_etl = time_median(3, || {
        let wide = Warehouse::etl(&log, &["balance", "receipt"]);
        std::hint::black_box(
            wide.instances_with_attr_over("receipt", 4500)
                .expect("extracted"),
        );
    });
    let receipt_pattern: Pattern = "PayTreatment[out.receipt > 4500]".parse().expect("parses");
    let t_direct = time_median(3, || {
        std::hint::black_box(evaluator.count(&receipt_pattern));
    });
    println!(
        "  warehouse: column missing → re-ETL + query = {} µs",
        fmt_us(t_re_etl)
    );
    println!(
        "  WLQ      : ad hoc predicate query        = {} µs",
        fmt_us(t_direct)
    );
    println!(
        "\nreading: per-query costs are comparable once both sides are set up; the\n\
         warehouse pays a full re-ETL whenever an analysis needs data it didn't\n\
         extract — the paper's core argument for querying the log directly.\n"
    );
}

/// E11: streaming monitor vs per-append batch re-evaluation.
fn e11_streaming() {
    use wlq_engine::StreamingEvaluator;

    heading(
        "E11",
        "ablation: streaming (incremental) evaluation vs per-append batch re-evaluation",
    );
    let pattern: Pattern = "UpdateRefer -> GetReimburse".parse().expect("parses");
    println!(
        "{:>10} {:>10} {:>16} {:>20} {:>8}",
        "instances", "records", "streaming (µs)", "batch/append (µs)", "ratio"
    );
    for &instances in &[10usize, 20, 40, 80] {
        let log = simulate(
            &scenarios::clinic::model(),
            &SimulationConfig::new(instances, 5),
        );
        let t_stream = time_median(3, || {
            let mut stream = StreamingEvaluator::new(pattern.clone());
            for record in log.iter() {
                std::hint::black_box(stream.append(record).expect("valid log"));
            }
        });
        let t_batch = time_median(1, || {
            for lsn in 1..=log.len() as u64 {
                let prefix = log.prefix(Lsn(lsn)).expect("nonempty");
                std::hint::black_box(Evaluator::new(&prefix).count(&pattern));
            }
        });
        println!(
            "{:>10} {:>10} {:>16} {:>20} {:>7.0}×",
            instances,
            log.len(),
            fmt_us(t_stream),
            fmt_us(t_batch),
            t_batch.as_secs_f64() / t_stream.as_secs_f64().max(1e-12)
        );
    }
    println!(
        "\nexpectation: the batch monitor pays O(n) full evaluations (superlinear total);\n\
         the streaming evaluator replays the log once, so the ratio widens with log size.\n"
    );
}

fn heading(id: &str, title: &str) {
    println!("\n{id} — {title}");
    println!("{}", "-".repeat(72));
}

/// E1: Figure 3 and Example 1.
fn e1_figure3() {
    heading(
        "E1",
        "Figure 3: the clinic referral log, and Example 1 (record l4)",
    );
    let log = paper::figure3_log();
    print!("{log}");
    let l4 = log.get(Lsn(4)).expect("l4 exists");
    println!(
        "\nExample 1: lsn(l)={} wid(l)={} is-lsn(l)={} act(l)={}",
        l4.lsn(),
        l4.wid(),
        l4.is_lsn(),
        l4.activity()
    );
    println!("  αin(l)  = {}", l4.input());
    println!("  αout(l) = {}", l4.output());
    println!("{}", LogStats::compute(&log));
}

/// E2: Figure 4 / Examples 3 and 5 — the incident tree and its trace.
fn e2_incident_tree() {
    heading(
        "E2",
        "Figure 4 + Examples 3/5: incident tree evaluation trace",
    );
    let log = paper::figure3_log();
    let index = LogIndex::build(&log);

    let simple: Pattern = "UpdateRefer -> GetReimburse".parse().expect("parses");
    let set = Evaluator::new(&log).evaluate(&simple);
    println!("Example 3: incL({simple}) = {set}   (the paper's {{l14, l20}})");

    let p: Pattern = "SeeDoctor -> (UpdateRefer -> GetReimburse)"
        .parse()
        .expect("parses");
    println!(
        "\nincident tree of {p} (postfix: {:?})",
        postfix_strings(&p)
    );
    let tree = IncidentTree::from_pattern(&p);
    let (set, trace) = tree.evaluate_traced(&log, &index, Strategy::Optimized);
    println!("{trace}");
    let incident = set.iter().next().expect("one incident");
    let lsns: Vec<String> = incident
        .positions()
        .iter()
        .map(|&pos| {
            format!(
                "l{}",
                log.record(incident.wid(), pos).expect("exists").lsn()
            )
        })
        .collect();
    println!(
        "root incident = {{{}}} — matches Example 5's {{l13, l14, l20}}; Example 3's printed\n\
         {{l13, l14, l19}} is an erratum (l19 is TakeTreatment).",
        lsns.join(", ")
    );
}

fn postfix_strings(p: &Pattern) -> Vec<String> {
    wlq_pattern::to_postfix(p)
        .iter()
        .map(ToString::to_string)
        .collect()
}

/// Sweeps an operator over equal-size inputs and prints time vs n.
fn operator_sweep(
    name: &str,
    paper_bound: &str,
    sizes: &[usize],
    make: impl Fn(usize) -> (Vec<wlq_engine::Incident>, Vec<wlq_engine::Incident>),
    eval: impl Fn(&[wlq_engine::Incident], &[wlq_engine::Incident]) -> Vec<wlq_engine::Incident>,
) {
    println!("operator: {name}   paper bound: {paper_bound}");
    println!("{:>8} {:>14} {:>12}", "n", "time (µs)", "|out|");
    let mut points = Vec::new();
    for &n in sizes {
        let (left, right) = make(n);
        let mut out_len = 0;
        let t = time_median(5, || {
            out_len = eval(&left, &right).len();
        });
        println!("{:>8} {:>14} {:>12}", n, fmt_us(t), out_len);
        points.push((n as f64, t.as_secs_f64()));
    }
    println!(
        "log-log slope of time vs n: {:.2} (expected ≈ 2 for O(n1·n2))\n",
        loglog_slope(&points)
    );
}

/// E3: Lemma 1, consecutive operator.
fn e3_consecutive_scaling() {
    heading(
        "E3",
        "Lemma 1 ⊙ (consecutive): time O(n1·n2), |out| ≤ n1·n2",
    );
    operator_sweep(
        "consecutive (naive, Algorithm 1)",
        "O(n1·n2)",
        &[64, 128, 256, 512, 1024],
        |n| {
            // Spaced singletons: no adjacency, so the measurement is the
            // pure pair scan.
            (singleton_incidents(n, 2, 2), singleton_incidents(n, 3, 2))
        },
        naive::consecutive_eval,
    );
}

/// E4: Lemma 1, sequential operator.
fn e4_sequential_scaling() {
    heading("E4", "Lemma 1 → (sequential): time O(n1·n2), |out| ≤ n1·n2");
    operator_sweep(
        "sequential (naive, Algorithm 1), all pairs match",
        "O(n1·n2)",
        &[64, 128, 256, 512],
        |n| {
            // Left block entirely before right block: output is exactly n².
            (
                singleton_incidents(n, 2, 1),
                singleton_incidents(n, 2 + n as u32, 1),
            )
        },
        naive::sequential_eval,
    );
}

/// E5: Lemma 1, choice operator — time vs incident width k.
fn e5_choice_scaling() {
    heading(
        "E5",
        "Lemma 1 ⊗ (choice): time O(n1·n2·min(k1,k2)) for the printed algorithm",
    );
    let n = 256;
    println!("fixed n1 = n2 = {n}; sweeping incident width k");
    println!(
        "{:>8} {:>22} {:>22}",
        "k", "printed variant (µs)", "union semantics (µs)"
    );
    let mut pts_printed = Vec::new();
    for &k in &[2usize, 4, 8, 16, 32] {
        // Shared-prefix incidents: every pairwise equality comparison must
        // scan the full width before deciding.
        let left = shared_prefix_incidents(n, k);
        let right = left.clone();
        let t_printed = time_median(5, || {
            std::hint::black_box(naive::choice_eval_as_printed(&left, &right));
        });
        let t_union = time_median(5, || {
            std::hint::black_box(optimized::choice_eval(&left, &right));
        });
        println!("{:>8} {:>22} {:>22}", k, fmt_us(t_printed), fmt_us(t_union));
        pts_printed.push((k as f64, t_printed.as_secs_f64()));
    }
    println!(
        "log-log slope of printed-variant time vs k: {:.2} (expected ≈ 1: linear in min(k1,k2))\n",
        loglog_slope(&pts_printed)
    );
}

/// E6: Lemma 1, parallel operator — time vs k1 + k2.
fn e6_parallel_scaling() {
    heading("E6", "Lemma 1 ⊕ (parallel): time O(n1·n2·(k1+k2))");
    let n = 128;
    println!(
        "fixed n1 = n2 = {n}; sweeping incident width k (common-tail incidents: every\n\
         pair overlaps at its last record, so each disjointness check is a full merge scan)"
    );
    println!("{:>8} {:>14} {:>12}", "k", "time (µs)", "|out|");
    let mut points = Vec::new();
    for &k in &[2usize, 4, 8, 16, 32] {
        let left = common_tail_incidents(n, k);
        let right = left.clone();
        let mut out_len = 0;
        let t = time_median(3, || {
            out_len = naive::parallel_eval(&left, &right).len();
        });
        println!("{:>8} {:>14} {:>12}", k, fmt_us(t), out_len);
        points.push((k as f64, t.as_secs_f64()));
    }
    println!(
        "log-log slope of time vs k: {:.2} (expected ≈ 1: linear in k1+k2)\n",
        loglog_slope(&points)
    );
}

/// E7: Theorem 1's worst-case pattern family.
fn e7_theorem1() {
    heading(
        "E7",
        "Theorem 1 worst case: p = ((t ⊕ t) ⊕ t)…, single-instance log of only t",
    );
    println!(
        "{:>6} {:>4} {:>16} {:>14} {:>24}",
        "m", "k", "|incL(p)|", "time (µs)", "C(m, k+1) (predicted)"
    );
    let ms = [8usize, 12, 16, 24, 32];
    let ks = [1usize, 2, 3];
    let mut slopes = Vec::new();
    for &k in &ks {
        let p = theorem1_worst_case("t", k);
        let mut points = Vec::new();
        for &m in &ms {
            let log = generator::worst_case_log("t", m);
            let eval = Evaluator::with_strategy(&log, Strategy::NaivePaper);
            let mut count = 0;
            let t = time_median(3, || {
                count = eval.count(&p);
            });
            println!(
                "{:>6} {:>4} {:>16} {:>14} {:>24}",
                m,
                k,
                count,
                fmt_us(t),
                binomial(m, k + 1)
            );
            assert_eq!(count, binomial(m, k + 1), "worst-case count formula");
            points.push((m as f64, count as f64));
        }
        let slope = loglog_slope(&points);
        slopes.push((k, slope));
        println!();
    }
    for (k, slope) in slopes {
        println!(
            "k = {k}: |incL| growth exponent vs m ≈ {slope:.2} (C(m,k+1) ~ m^{}; the paper states O(m^k) — \
             off by one on this family)",
            k + 1
        );
    }
    println!();
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let mut result = 1usize;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

/// E8: the paper's Algorithm 1 vs the optimized operators.
fn e8_naive_vs_optimized() {
    heading(
        "E8",
        "ablation: Algorithm 1 (naive) vs index/merge-based operators",
    );
    println!(
        "{:<44} {:>12} {:>12} {:>8}",
        "workload / pattern", "naive (µs)", "opt (µs)", "speedup"
    );
    let mut rows: Vec<(String, Duration, Duration)> = Vec::new();

    // Consecutive on a sparse log: the optimized hash join skips the scan.
    let log = generator::pair_log("A", 2000, "B", 2000, true);
    rows.push(run_both(&log, "A ~> B", "pair_log 2k+2k interleaved"));
    // One long instance: per-instance incident lists get large, which is
    // where the output-sensitive joins pay off.
    let long = generator::uniform_log(1, 5000, 100, 3);
    rows.push(run_both(&long, "T0 ~> T1", "uniform 1×5000, |T| = 100"));
    rows.push(run_both(&long, "T0 -> T1", "uniform 1×5000, |T| = 100"));
    // Selective sequential.
    let clinic = simulate(&scenarios::clinic::model(), &SimulationConfig::new(800, 5));
    rows.push(run_both(
        &clinic,
        "UpdateRefer -> GetReimburse",
        "clinic 800 inst",
    ));
    rows.push(run_both(&clinic, "GetRefer ~> CheckIn", "clinic 800 inst"));
    rows.push(run_both(
        &clinic,
        "SeeDoctor -> PayTreatment -> GetReimburse",
        "clinic 800 inst",
    ));
    rows.push(run_both(
        &clinic,
        "UpdateRefer | CompleteRefer",
        "clinic 800 inst",
    ));

    for (label, t_naive, t_opt) in rows {
        println!(
            "{:<44} {:>12} {:>12} {:>7.1}×",
            label,
            fmt_us(t_naive),
            fmt_us(t_opt),
            t_naive.as_secs_f64() / t_opt.as_secs_f64().max(1e-12)
        );
    }

    // Count-only queries escape the output bound entirely: the chain DP
    // of `fast_count` is O(m·k) regardless of |incL|.
    let big = generator::pair_log("A", 2000, "B", 2000, false);
    let p: Pattern = "A -> B".parse().expect("parses");
    let eval = Evaluator::new(&big);
    let expected = wlq_engine::fast_count(&big, &p).expect("chain");
    assert_eq!(expected, 2000 * 2000);
    let t_enumerate = time_median(3, || {
        std::hint::black_box(eval.evaluate(&p).len());
    });
    let t_count = time_median(3, || {
        std::hint::black_box(wlq_engine::fast_count(&big, &p));
    });
    println!(
        "\ncount-only on pair_log 2k+2k block (|incL| = 4,000,000):\n\
         \x20 enumerate-then-count {} µs vs chain DP {} µs ({:.0}×)\n",
        fmt_us(t_enumerate),
        fmt_us(t_count),
        t_enumerate.as_secs_f64() / t_count.as_secs_f64().max(1e-12)
    );
}

fn run_both(log: &Log, pattern: &str, workload: &str) -> (String, Duration, Duration) {
    let p: Pattern = pattern.parse().expect("parses");
    let naive_eval = Evaluator::with_strategy(log, Strategy::NaivePaper);
    let opt_eval = Evaluator::with_strategy(log, Strategy::Optimized);
    assert_eq!(
        naive_eval.evaluate(&p),
        opt_eval.evaluate(&p),
        "strategies disagree"
    );
    let t_naive = time_median(3, || {
        std::hint::black_box(naive_eval.evaluate(&p));
    });
    let t_opt = time_median(3, || {
        std::hint::black_box(opt_eval.evaluate(&p));
    });
    (format!("{workload}: {pattern}"), t_naive, t_opt)
}

/// E9: the algebraic optimizer (Theorems 2–5 as rewrites).
fn e9_rewrite_ablation() {
    heading(
        "E9",
        "ablation: algebraic rewriting (chain DP, choice factoring, ⊕/⊗ ordering)",
    );
    let log = generator::skewed_log(40, 120, 8, 7);
    let stats = LogStats::compute(&log);
    let optimizer = Optimizer::new(stats);
    let eval = Evaluator::new(&log);

    let cases = [
        // Selectivity-skewed sequential chain, worst-first written order.
        "T0 -> T1 -> T5 -> T6",
        // Shared prefix hidden in a distributed choice.
        "(T0 -> T1 -> T6) | (T0 -> T1 -> T7)",
        // Commutative chain written biggest-first.
        "(T0 & T6) | (T0 & T7)",
        "T0 & T1 & T6",
    ];
    println!(
        "{:<40} {:>14} {:>14} {:>8}",
        "pattern", "as written", "optimized", "speedup"
    );
    for src in cases {
        let p: Pattern = src.parse().expect("parses");
        let (rewritten, _) = optimizer.optimize_with_report(&p);
        assert_eq!(
            eval.evaluate(&p),
            eval.evaluate(&rewritten),
            "rewrite broke {src}"
        );
        let t_raw = time_median(3, || {
            std::hint::black_box(eval.evaluate(&p));
        });
        let t_opt = time_median(3, || {
            std::hint::black_box(eval.evaluate(&rewritten));
        });
        println!(
            "{:<40} {:>12}µs {:>12}µs {:>7.1}×",
            src,
            fmt_us(t_raw),
            fmt_us(t_opt),
            t_raw.as_secs_f64() / t_opt.as_secs_f64().max(1e-12)
        );
        println!("    plan: {rewritten}");
    }
    println!();
}

/// E10: log-size and thread scaling of evaluation.
fn e10_parallel_scaling() {
    heading(
        "E10",
        "scaling: log size and per-instance parallel evaluation",
    );

    // Part 1: log-size scaling on the clinic scenario (index prebuilt).
    let pattern: Pattern = "SeeDoctor -> (UpdateRefer -> GetReimburse)"
        .parse()
        .expect("parses");
    println!("part 1 — log size (clinic scenario, 1 thread):");
    println!(
        "{:>10} {:>10} {:>14} {:>12}",
        "instances", "records", "eval (µs)", "|inc|"
    );
    for &instances in &[100usize, 400, 1600, 6400] {
        let log = simulate(
            &scenarios::clinic::model(),
            &SimulationConfig::new(instances, 11),
        );
        let eval = Evaluator::new(&log);
        let mut count = 0;
        let t = time_median(3, || {
            count = eval.evaluate(&pattern).len();
        });
        println!(
            "{:>10} {:>10} {:>14} {:>12}",
            instances,
            log.len(),
            fmt_us(t),
            count
        );
    }

    // Part 2: thread scaling on a compute-bound workload — Algorithm 1's
    // quadratic pair scans over long instances with a small output (so the
    // measurement is CPU work, not result allocation).
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "\npart 2 — worker threads (uniform 64×2000, |T| = 5, naive strategy, pattern T0 ~> T1):"
    );
    println!(
        "         host has {cores} core(s): expect ≈ min(threads, {cores})× speedup and, on a\n\
         single-core host, ≈ 1.0× with no degradation (threading overhead is negligible)"
    );
    let log = generator::uniform_log(64, 2000, 5, 13);
    let heavy: Pattern = "T0 ~> T1".parse().expect("parses");
    let eval = Evaluator::with_strategy(&log, Strategy::NaivePaper);
    let reference = eval.evaluate(&heavy);
    println!("{:>8} {:>14} {:>10}", "threads", "eval (µs)", "speedup");
    let mut base = None;
    for &threads in &[1usize, 2, 4, 8] {
        assert_eq!(
            eval.evaluate_parallel(&heavy, threads)
                .expect("workers run"),
            reference
        );
        let t = time_median(3, || {
            let _ = std::hint::black_box(eval.evaluate_parallel(&heavy, threads));
        });
        let baseline = *base.get_or_insert(t);
        println!(
            "{:>8} {:>14} {:>9.1}×",
            threads,
            fmt_us(t),
            baseline.as_secs_f64() / t.as_secs_f64().max(1e-12)
        );
    }

    // Part 3: the Query facade with plan + evaluation timing.
    let log = simulate(
        &scenarios::clinic::model(),
        &SimulationConfig::new(1600, 11),
    );
    let profile = Query::new(pattern)
        .threads(4)
        .profile(&log)
        .expect("profile runs");
    println!("\nQuery::profile on 1600 clinic instances:\n{profile}");
}
