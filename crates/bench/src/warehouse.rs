//! A miniature ETL/data-warehouse baseline — the traditional pipeline of
//! the paper's Figure 1, built to quantify its Figure 2 argument.
//!
//! The warehouse performs classic ETL: **extract** a fact table
//! `(wid, is-lsn, activity)` plus the attribute columns chosen *at ETL
//! time*, **transform** activity names through a dictionary encoding, and
//! **load** into sorted columnar vectors. Queries then run as sort-merge
//! joins over the facts — fast, but only over what was extracted: a
//! query touching an attribute that was not in the ETL column list
//! requires re-running ETL (the paper's "if timestamps are not
//! extracted, analysis of activity duration is not possible").

use std::collections::{BTreeMap, HashMap};

use wlq_log::{Log, Value, Wid};

/// The warehouse: dictionary-encoded facts plus extracted attribute
/// columns.
#[derive(Debug, Clone)]
pub struct Warehouse {
    /// `(wid, is-lsn, activity-id)`, sorted by `(activity-id, wid, is-lsn)`
    /// — i.e. clustered for activity lookups, like a warehouse index.
    facts: Vec<(u64, u32, u32)>,
    dictionary: HashMap<String, u32>,
    /// Extracted attribute columns: name → `(wid, is-lsn) → value`
    /// (values from αout, the "current value after the activity").
    columns: HashMap<String, BTreeMap<(u64, u32), Value>>,
}

impl Warehouse {
    /// Runs ETL over `log`, extracting only the listed attributes.
    #[must_use]
    pub fn etl(log: &Log, extracted_attrs: &[&str]) -> Warehouse {
        let mut dictionary: HashMap<String, u32> = HashMap::new();
        let mut facts: Vec<(u64, u32, u32)> = Vec::with_capacity(log.len());
        let mut columns: HashMap<String, BTreeMap<(u64, u32), Value>> = extracted_attrs
            .iter()
            .map(|a| ((*a).to_string(), BTreeMap::new()))
            .collect();
        for record in log.iter() {
            let next_id = dictionary.len() as u32;
            let id = *dictionary
                .entry(record.activity().as_str().to_string())
                .or_insert(next_id);
            facts.push((record.wid().get(), record.is_lsn().get(), id));
            for attr in extracted_attrs {
                if let Some(v) = record.output().get(attr) {
                    columns
                        .get_mut(*attr)
                        .expect("column pre-created")
                        .insert((record.wid().get(), record.is_lsn().get()), v.clone());
                }
            }
        }
        facts.sort_unstable_by_key(|&(wid, islsn, act)| (act, wid, islsn));
        Warehouse {
            facts,
            dictionary,
            columns,
        }
    }

    /// Whether `attr` was extracted at ETL time.
    #[must_use]
    pub fn has_column(&self, attr: &str) -> bool {
        self.columns.contains_key(attr)
    }

    fn rows_of(&self, activity: &str) -> &[(u64, u32, u32)] {
        let Some(&id) = self.dictionary.get(activity) else {
            return &[];
        };
        let start = self.facts.partition_point(|&(_, _, a)| a < id);
        let end = self.facts.partition_point(|&(_, _, a)| a <= id);
        &self.facts[start..end]
    }

    /// OLAP-style query: the number of `(a-row, b-row)` pairs within one
    /// instance with the `a` row strictly earlier — the warehouse
    /// rendition of `incL(a → b)` for atomic operands. Sort-merge over
    /// the two activity clusters.
    #[must_use]
    pub fn count_sequential_pairs(&self, a: &str, b: &str) -> usize {
        let rows_a = self.rows_of(a);
        let rows_b = self.rows_of(b);
        // Both slices are sorted by (wid, is-lsn); merge per wid.
        let mut count = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < rows_a.len() && j < rows_b.len() {
            let wid_a = rows_a[i].0;
            let wid_b = rows_b[j].0;
            match wid_a.cmp(&wid_b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let wid = wid_a;
                    let end_a = rows_a[i..].partition_point(|r| r.0 == wid) + i;
                    let end_b = rows_b[j..].partition_point(|r| r.0 == wid) + j;
                    // For each a-position, count b-positions after it.
                    for &(_, pa, _) in &rows_a[i..end_a] {
                        let first_after = rows_b[j..end_b].partition_point(|r| r.1 <= pa) + j;
                        count += end_b - first_after;
                    }
                    i = end_a;
                    j = end_b;
                }
            }
        }
        count
    }

    /// Warehouse query over an extracted attribute: instances where
    /// `attr`'s extracted value ever exceeded `threshold`.
    ///
    /// # Errors
    ///
    /// Returns [`ColumnMissing`] — "re-run ETL" — when `attr` was not
    /// extracted (the inflexibility the paper calls out).
    pub fn instances_with_attr_over(
        &self,
        attr: &str,
        threshold: i64,
    ) -> Result<Vec<Wid>, ColumnMissing> {
        let column = self
            .columns
            .get(attr)
            .ok_or_else(|| ColumnMissing(attr.to_string()))?;
        let mut out: Vec<Wid> = column
            .iter()
            .filter(|(_, v)| v.as_int().is_some_and(|i| i > threshold))
            .map(|(&(wid, _), _)| Wid(wid))
            .collect();
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }
}

/// The warehouse cannot answer: the attribute was not extracted at ETL
/// time. The only remedy is re-running ETL with the column added.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnMissing(pub String);

impl std::fmt::Display for ColumnMissing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "attribute {:?} was not extracted; re-run ETL", self.0)
    }
}

impl std::error::Error for ColumnMissing {}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_engine::Evaluator;
    use wlq_log::paper;
    use wlq_pattern::Pattern;

    #[test]
    fn warehouse_pair_counts_match_the_query_engine() {
        let log = paper::figure3_log();
        let warehouse = Warehouse::etl(&log, &[]);
        let eval = Evaluator::new(&log);
        for (a, b) in [
            ("UpdateRefer", "GetReimburse"),
            ("SeeDoctor", "PayTreatment"),
            ("GetRefer", "CheckIn"),
            ("Missing", "CheckIn"),
        ] {
            let pattern: Pattern = format!("{a} -> {b}").parse().unwrap();
            assert_eq!(
                warehouse.count_sequential_pairs(a, b),
                eval.count(&pattern),
                "{a} -> {b}"
            );
        }
    }

    #[test]
    fn unextracted_attributes_force_re_etl() {
        let log = paper::figure3_log();
        let narrow = Warehouse::etl(&log, &["balance"]);
        assert!(narrow.has_column("balance"));
        assert!(!narrow.has_column("receipt1"));
        assert!(narrow.instances_with_attr_over("balance", 1500).is_ok());
        assert!(narrow.instances_with_attr_over("receipt1", 0).is_err());
        // After "re-running ETL" with the extra column it works.
        let wide = Warehouse::etl(&log, &["balance", "receipt1"]);
        let hits = wide.instances_with_attr_over("receipt1", 500).unwrap();
        assert_eq!(hits, vec![Wid(1), Wid(2)]);
    }

    #[test]
    fn extracted_attribute_queries_match_predicates() {
        let log = paper::figure3_log();
        let warehouse = Warehouse::etl(&log, &["balance"]);
        // Warehouse: instances whose balance ever exceeded 1500 (αout).
        let wh = warehouse.instances_with_attr_over("balance", 1500).unwrap();
        // WLQ equivalent: any record writing balance > 1500.
        let eval = Evaluator::new(&log);
        let p: Pattern = "GetRefer[out.balance > 1500] | UpdateRefer[out.balance > 1500]"
            .parse()
            .unwrap();
        let direct: Vec<Wid> = eval.matching_instances(&p);
        assert_eq!(wh, direct);
    }
}
