//! Shared workload builders and measurement helpers for the benchmark
//! harness and the `repro` binary.
//!
//! Every experiment of EXPERIMENTS.md is driven either by a Criterion
//! bench (`benches/`) or by the `repro` binary (`src/bin/repro.rs`); both
//! build their inputs here so the two agree on workload shapes.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod warehouse;

use std::time::{Duration, Instant};

use wlq_engine::Incident;
use wlq_log::{IsLsn, Wid};

/// A synthetic per-instance incident list of `n` singleton incidents at
/// positions `start, start + stride, …` (sorted by `first`, as the
/// operator implementations require).
#[must_use]
pub fn singleton_incidents(n: usize, start: u32, stride: u32) -> Vec<Incident> {
    (0..n)
        .map(|i| Incident::singleton(Wid(1), IsLsn(start + i as u32 * stride)))
        .collect()
}

/// A synthetic incident list of `n` incidents, each containing `k`
/// positions, with position sets interleaved so that all incidents'
/// `[first, last]` ranges overlap (forcing the parallel operator's full
/// disjointness scan, the Lemma 1 worst case).
#[must_use]
pub fn overlapping_incidents(n: usize, k: usize) -> Vec<Incident> {
    let n_u32 = n as u32;
    (0..n as u32)
        .map(|j| {
            let positions: Vec<IsLsn> = (0..k as u32)
                .map(|row| IsLsn(1 + j + row * n_u32))
                .collect();
            Incident::from_positions(Wid(1), positions)
        })
        .collect()
}

/// A synthetic incident list of `n` incidents of width `k` that all share
/// the *prefix* `{1, …, k-1}` and differ only in their final position.
/// Element-wise equality comparison of any two of them scans the full
/// width before deciding — the worst case of the paper's printed
/// `CHOICE-EVAL` (time `Θ(n1·n2·min(k1,k2))`).
///
/// # Panics
///
/// Panics if `k` is 0.
#[must_use]
pub fn shared_prefix_incidents(n: usize, k: usize) -> Vec<Incident> {
    assert!(k > 0);
    (0..n as u32)
        .map(|j| {
            let mut positions: Vec<IsLsn> = (1..k as u32).map(IsLsn).collect();
            positions.push(IsLsn(k as u32 + j));
            Incident::from_positions(Wid(1), positions)
        })
        .collect()
}

/// A synthetic incident list of `n` incidents of width `k` that all share
/// one *final* position, so every cross pair (a) defeats the range
/// shortcut (the spans all end at the same record) and (b) is found
/// non-disjoint only after a full `Θ(k1+k2)` merge scan, producing no
/// output. Isolates the parallel operator's disjointness-check cost.
///
/// # Panics
///
/// Panics if `k` is 0.
#[must_use]
pub fn common_tail_incidents(n: usize, k: usize) -> Vec<Incident> {
    assert!(k > 0);
    let n_u32 = n as u32;
    let sentinel = IsLsn(1 + n_u32 * k as u32 + 1);
    (0..n as u32)
        .map(|j| {
            let mut positions: Vec<IsLsn> = (0..k as u32 - 1)
                .map(|row| IsLsn(1 + j + row * n_u32))
                .collect();
            positions.push(sentinel);
            Incident::from_positions(Wid(1), positions)
        })
        .collect()
}

/// Median wall-clock time of `runs` executions of `f` (at least one).
pub fn time_median<F: FnMut()>(runs: usize, mut f: F) -> Duration {
    let runs = runs.max(1);
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the growth exponent on
/// a log–log plot. Points with non-positive coordinates are skipped.
///
/// # Panics
///
/// Panics if fewer than two usable points remain.
#[must_use]
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    assert!(logs.len() >= 2, "need at least two positive points");
    let n = logs.len() as f64;
    let sum_x: f64 = logs.iter().map(|p| p.0).sum();
    let sum_y: f64 = logs.iter().map(|p| p.1).sum();
    let sum_xx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sum_xy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sum_xy - sum_x * sum_y) / (n * sum_xx - sum_x * sum_x)
}

/// Formats a duration in microseconds with three decimal digits.
#[must_use]
pub fn fmt_us(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_incidents_are_sorted_and_spaced() {
        let incs = singleton_incidents(4, 10, 3);
        let firsts: Vec<u32> = incs.iter().map(|o| o.first().get()).collect();
        assert_eq!(firsts, vec![10, 13, 16, 19]);
    }

    #[test]
    fn overlapping_incidents_overlap_and_are_disjoint() {
        let incs = overlapping_incidents(5, 3);
        assert_eq!(incs.len(), 5);
        for o in &incs {
            assert_eq!(o.len(), 3);
        }
        // Ranges overlap pairwise…
        assert!(incs[0].last() > incs[4].first());
        // …but no two incidents share a position.
        for i in 0..incs.len() {
            for j in i + 1..incs.len() {
                assert!(incs[i].is_disjoint(&incs[j]));
            }
        }
    }

    #[test]
    fn shared_prefix_incidents_differ_only_at_the_tail() {
        let incs = shared_prefix_incidents(4, 5);
        for o in &incs {
            assert_eq!(o.len(), 5);
            assert_eq!(o.positions()[..4], [IsLsn(1), IsLsn(2), IsLsn(3), IsLsn(4)]);
        }
        assert_ne!(incs[0], incs[1]);
    }

    #[test]
    fn common_tail_incidents_pairwise_overlap_without_shortcut() {
        let incs = common_tail_incidents(6, 4);
        for i in 0..incs.len() {
            for j in 0..incs.len() {
                // Every pair shares the sentinel: never disjoint.
                assert!(!incs[i].is_disjoint(&incs[j]));
                // And the spans overlap, so the range shortcut can't fire.
                assert!(incs[i].last() >= incs[j].first());
            }
        }
    }

    #[test]
    fn loglog_slope_recovers_exponents() {
        let quadratic: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((loglog_slope(&quadratic) - 2.0).abs() < 1e-9);
        let linear: Vec<(f64, f64)> = (1..=6).map(|i| (i as f64, 3.0 * i as f64)).collect();
        assert!((loglog_slope(&linear) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_median_is_positive() {
        let d = time_median(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d > Duration::ZERO);
    }
}
