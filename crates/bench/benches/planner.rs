//! Cost-based planning on vs off.
//!
//! Three comparisons, each `Strategy::Planned` (plan-on) against
//! `Strategy::Optimized` and `Strategy::Batch` (plan-off):
//!
//! * **`sequential_pairlog`** — the adversarial `A -> B` pair log where
//!   the sort-merge sequential kernel replaces per-left binary searches
//!   (the batch strategy's former end-to-end regression case).
//! * **`dense`/`sparse`/`skewed` logs** — generator workloads where the
//!   planner's rewrite choice and physical operator selection have to not
//!   regress across log shapes.
//! * **`plan_count`** — `count()` on chains, where the planner routes to
//!   the enumeration-free DP.
//!
//! Planning overhead itself is measured by `plan_only`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wlq_engine::{Evaluator, Planner, Strategy};
use wlq_log::Log;
use wlq_pattern::Pattern;
use wlq_workflow::generator;

fn strategies() -> [(&'static str, Strategy); 3] {
    [
        ("optimized", Strategy::Optimized),
        ("batch", Strategy::Batch),
        ("planned", Strategy::Planned),
    ]
}

/// Evaluate one pattern on one log under every strategy.
fn bench_eval_case(
    group: &mut criterion::BenchmarkGroup<'_>,
    log: &Log,
    src: &str,
    param: impl std::fmt::Display,
) {
    let p: Pattern = src.parse().unwrap();
    for (name, strategy) in strategies() {
        let eval = Evaluator::with_strategy(log, strategy);
        group.bench_with_input(BenchmarkId::new(name, &param), &p, |b, p| {
            b.iter(|| black_box(eval.evaluate(p)));
        });
    }
}

/// The batch regression fixture: n A's then n B's, `A -> B` (~n²/2 out).
fn bench_sequential_pairlog(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_pairlog");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let log = generator::pair_log("A", n, "B", n, true);
        bench_eval_case(&mut group, &log, "A -> B", n);
    }
    group.finish();
}

/// Uniform logs: every activity equally likely (dense postings).
fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_dense");
    group.sample_size(10);
    let log = generator::uniform_log(50, 80, 4, 7);
    for (name, src) in [
        ("seq_chain", "A -> B -> C"),
        ("mixed", "(A ~> B) | (C -> D)"),
        ("parallel", "A & D"),
    ] {
        bench_eval_case(&mut group, &log, src, name);
    }
    group.finish();
}

/// Sparse logs: a large alphabet thins each activity's postings.
fn bench_sparse(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_sparse");
    group.sample_size(10);
    let log = generator::uniform_log(50, 80, 26, 11);
    for (name, src) in [
        ("seq_chain", "A -> B -> C"),
        ("choice_of_seqs", "(A -> B) | (A -> C)"),
    ] {
        bench_eval_case(&mut group, &log, src, name);
    }
    group.finish();
}

/// Skewed logs: Zipf-ish activity frequencies, where per-instance posting
/// maxima diverge from whole-log means.
fn bench_skewed(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_skewed");
    group.sample_size(10);
    let log = generator::skewed_log(50, 80, 8, 13);
    for (name, src) in [
        ("hot_hot", "A -> B"),
        ("hot_cold", "A -> H"),
        ("cold_hot", "H -> A"),
    ] {
        bench_eval_case(&mut group, &log, src, name);
    }
    group.finish();
}

/// Counting on chains: the planner routes to the enumeration-free DP.
fn bench_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_count");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let log = generator::pair_log("A", n, "B", n, true);
        let p: Pattern = "A -> B".parse().unwrap();
        for (name, strategy) in strategies() {
            let eval = Evaluator::with_strategy(&log, strategy);
            group.bench_with_input(BenchmarkId::new(name, n), &p, |b, p| {
                b.iter(|| black_box(eval.count(p)));
            });
        }
    }
    group.finish();
}

/// Planning overhead alone: candidate enumeration + costing + operator
/// selection, no execution.
fn bench_plan_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("plan_only");
    group.sample_size(10);
    let log = generator::uniform_log(50, 80, 8, 17);
    let planner = Planner::from_log(&log);
    for (name, src) in [
        ("atom", "A"),
        ("chain4", "A -> B -> C -> D"),
        ("choice_of_seqs", "(A -> B) | (A -> C) | (A ~> D)"),
    ] {
        let p: Pattern = src.parse().unwrap();
        group.bench_with_input(BenchmarkId::new(name, "plan"), &p, |b, p| {
            b.iter(|| black_box(planner.plan(p).cost()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sequential_pairlog,
    bench_dense,
    bench_sparse,
    bench_skewed,
    bench_count,
    bench_plan_only
);
criterion_main!(benches);
