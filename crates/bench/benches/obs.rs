//! Profiling-off overhead check for the execution profiler.
//!
//! The `wlq-obs` design promise is that profiling costs nothing unless a
//! profiled entry point runs: the unprofiled executors are untouched and
//! the instrumented mirrors live in a separate module. These groups make
//! that claim measurable:
//!
//! * **`unprofiled_pairlog`** — `Evaluator::evaluate` under the default
//!   planned strategy on the `A -> B` pair log, the exact workload
//!   `sequential_pairlog/planned` times in `BENCH_planner.json`. With
//!   the `profiling` feature compiled in (the default), these numbers
//!   must stay within noise of that baseline.
//! * **`profiled_pairlog`** — the same workload through
//!   `Evaluator::evaluate_profiled`, quantifying what turning the
//!   profiler *on* costs (timer reads and counter accumulation per node
//!   per instance).
//! * **`profiled_generator`** — profiling overhead on a branchy
//!   generator log where per-node bookkeeping is a larger fraction of
//!   the work.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wlq_engine::{Evaluator, Strategy};
use wlq_pattern::Pattern;
use wlq_workflow::generator;

/// The planner bench's regression fixture: n A's then n B's, `A -> B`.
fn bench_pairlog(c: &mut Criterion) {
    let pattern: Pattern = "A -> B".parse().unwrap();
    let mut group = c.benchmark_group("unprofiled_pairlog");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let log = generator::pair_log("A", n, "B", n, true);
        let eval = Evaluator::with_strategy(&log, Strategy::Planned);
        group.bench_with_input(BenchmarkId::new("planned", n), &pattern, |b, p| {
            b.iter(|| black_box(eval.evaluate(p)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("profiled_pairlog");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let log = generator::pair_log("A", n, "B", n, true);
        let eval = Evaluator::with_strategy(&log, Strategy::Planned);
        group.bench_with_input(BenchmarkId::new("planned", n), &pattern, |b, p| {
            b.iter(|| black_box(eval.evaluate_profiled(p, 1).unwrap()));
        });
    }
    group.finish();
}

/// Profiling on a branchy multi-operator pattern over a generator log.
fn bench_generator(c: &mut Criterion) {
    let log = generator::uniform_log(200, 40, 8, 0xB0B);
    let pattern: Pattern = "(T0 ~> T1) -> (T2 | T3)".parse().unwrap();
    let eval = Evaluator::with_strategy(&log, Strategy::Planned);
    let mut group = c.benchmark_group("profiled_generator");
    group.sample_size(10);
    group.bench_function("unprofiled", |b| {
        b.iter(|| black_box(eval.evaluate(&pattern)));
    });
    group.bench_function("profiled", |b| {
        b.iter(|| black_box(eval.evaluate_profiled(&pattern, 1).unwrap()));
    });
    group.finish();
}

criterion_group!(benches, bench_pairlog, bench_generator);
criterion_main!(benches);
