//! E7: Theorem 1's worst-case pattern family `((t ⊕ t) ⊕ t)…` on a
//! single-instance, single-activity log — evaluation time explodes with
//! the operator count `k` and grows polynomially (degree ≈ k+1) in the
//! log size `m`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wlq_engine::{Evaluator, Strategy};
use wlq_pattern::theorem1_worst_case;
use wlq_workflow::generator::worst_case_log;

fn bench_vary_m(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_theorem1_vary_m");
    group.sample_size(10);
    let k = 2;
    let pattern = theorem1_worst_case("t", k);
    for m in [8usize, 16, 32] {
        let log = worst_case_log("t", m);
        group.bench_with_input(BenchmarkId::new(format!("k{k}"), m), &m, |b, _| {
            let eval = Evaluator::with_strategy(&log, Strategy::NaivePaper);
            b.iter(|| black_box(eval.count(&pattern)));
        });
    }
    group.finish();
}

fn bench_vary_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_theorem1_vary_k");
    group.sample_size(10);
    let m = 16;
    let log = worst_case_log("t", m);
    for k in [1usize, 2, 3] {
        let pattern = theorem1_worst_case("t", k);
        group.bench_with_input(BenchmarkId::new(format!("m{m}"), k), &k, |b, _| {
            let eval = Evaluator::with_strategy(&log, Strategy::NaivePaper);
            b.iter(|| black_box(eval.count(&pattern)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_vary_m, bench_vary_k);
criterion_main!(benches);
