//! E9: algebraic rewriting ablation — patterns as written vs after the
//! Theorems 2–5 optimizer (choice factoring, chain re-parenthesisation,
//! commutative reordering) on a selectivity-skewed log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wlq_engine::Evaluator;
use wlq_log::LogStats;
use wlq_pattern::{Optimizer, Pattern};
use wlq_workflow::generator::skewed_log;

fn bench_rewrites(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_rewrite");
    group.sample_size(10);
    let log = skewed_log(40, 120, 8, 7);
    let optimizer = Optimizer::new(LogStats::compute(&log));
    let eval = Evaluator::new(&log);

    let cases = [
        ("skewed_chain", "T0 -> T1 -> T5 -> T6"),
        (
            "shared_prefix_choice",
            "(T0 -> T1 -> T6) | (T0 -> T1 -> T7)",
        ),
        ("parallel_choice", "(T0 & T6) | (T0 & T7)"),
        ("commutative_chain", "T0 & T1 & T6"),
    ];
    for (name, src) in cases {
        let p: Pattern = src.parse().unwrap();
        let rewritten = optimizer.optimize(&p);
        assert_eq!(eval.evaluate(&p), eval.evaluate(&rewritten));
        group.bench_with_input(BenchmarkId::new("as_written", name), &p, |b, p| {
            b.iter(|| black_box(eval.evaluate(p)));
        });
        group.bench_with_input(BenchmarkId::new("optimized", name), &rewritten, |b, p| {
            b.iter(|| black_box(eval.evaluate(p)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rewrites);
criterion_main!(benches);
