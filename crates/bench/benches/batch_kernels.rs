//! Flat arena-backed kernels vs the incident-list operators.
//!
//! Two levels of comparison:
//!
//! * **Kernels** — `optimized::*_eval` over `Vec<Incident>` against
//!   [`wlq_engine::combine_batch_into`] over prebuilt [`IncidentBatch`]
//!   inputs with a recycled output batch (exactly how the evaluator
//!   drives the kernels). The join workloads (⊙/→) are the ones the
//!   flat layout targets: unions become bump-appends into the shared
//!   position pool and no per-incident `Vec` is ever allocated.
//! * **End to end** — `Evaluator` with `Strategy::Optimized` vs
//!   `Strategy::Batch` on adversarial pair logs, where the batch path
//!   keeps the flat representation through the whole pattern tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wlq_engine::{combine_batch_into, optimized, Evaluator, Incident, IncidentBatch, Strategy};
use wlq_log::{IsLsn, Wid};
use wlq_pattern::{Op, Pattern};
use wlq_workflow::generator;

const WID: Wid = Wid(1);

/// Singleton incidents at `start, start + step, …` (`n` of them).
fn singletons(start: u32, step: u32, n: u32) -> Vec<Incident> {
    (0..n)
        .map(|i| Incident::singleton(WID, IsLsn(start + i * step)))
        .collect()
}

/// Width-2 incidents `{p, p + 1}` for `p = start, start + step, …`.
fn pairs(start: u32, step: u32, n: u32) -> Vec<Incident> {
    (0..n)
        .map(|i| {
            let p = start + i * step;
            Incident::from_positions(WID, vec![IsLsn(p), IsLsn(p + 1)])
        })
        .collect()
}

fn batch_of(incidents: &[Incident]) -> IncidentBatch {
    IncidentBatch::from_incidents(WID, incidents)
}

/// Benchmark one operator on one fixture pair, list vs flat.
fn bench_kernel_case(
    group: &mut criterion::BenchmarkGroup<'_>,
    op: Op,
    name: &str,
    left: &[Incident],
    right: &[Incident],
) {
    let eval = match op {
        Op::Consecutive => optimized::consecutive_eval,
        Op::Sequential => optimized::sequential_eval,
        Op::Choice => optimized::choice_eval,
        Op::Parallel => optimized::parallel_eval,
    };
    group.bench_with_input(BenchmarkId::new("lists", name), &(), |b, ()| {
        b.iter(|| black_box(eval(left, right)));
    });
    let (lb, rb) = (batch_of(left), batch_of(right));
    let mut out = IncidentBatch::new(WID);
    group.bench_with_input(BenchmarkId::new("batch", name), &(), |b, ()| {
        b.iter(|| {
            combine_batch_into(op, &lb, &rb, &mut out);
            black_box(out.len())
        });
    });
}

/// ⊙: every left incident chains into exactly one right incident.
fn bench_consecutive(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_consecutive");
    group.sample_size(10);
    for n in [256u32, 1024, 4096] {
        let left = singletons(0, 2, n);
        let right = singletons(1, 2, n);
        bench_kernel_case(
            &mut group,
            Op::Consecutive,
            &format!("dense_{n}"),
            &left,
            &right,
        );
    }
    group.finish();
}

/// →: all-pairs join, the quadratic worst case (~n²/2 output incidents).
fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_sequential");
    group.sample_size(10);
    for n in [64u32, 128, 256] {
        let left = singletons(0, 2, n);
        let right = singletons(1, 2, n);
        bench_kernel_case(
            &mut group,
            Op::Sequential,
            &format!("allpairs_{n}"),
            &left,
            &right,
        );
        let left = pairs(0, 4, n);
        let right = pairs(2, 4, n);
        bench_kernel_case(
            &mut group,
            Op::Sequential,
            &format!("width2_{n}"),
            &left,
            &right,
        );
    }
    group.finish();
}

/// ⊗: interleaved union — already linear on both paths.
fn bench_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_choice");
    group.sample_size(10);
    for n in [1024u32, 4096] {
        let left = singletons(0, 2, n);
        let right = singletons(1, 2, n);
        bench_kernel_case(
            &mut group,
            Op::Choice,
            &format!("interleaved_{n}"),
            &left,
            &right,
        );
    }
    group.finish();
}

/// ⊕: disjoint all-pairs unions (the concat fast path) at modest sizes.
fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_parallel");
    group.sample_size(10);
    for n in [64u32, 128] {
        let left = pairs(0, 4, n);
        let right = pairs(2, 4, n);
        bench_kernel_case(
            &mut group,
            Op::Parallel,
            &format!("disjoint_{n}"),
            &left,
            &right,
        );
    }
    group.finish();
}

/// Whole-evaluator comparison on adversarial pair logs.
fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_end_to_end");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let log = generator::pair_log("A", n, "B", n, true);
        for (name, src) in [("consecutive", "A ~> B"), ("sequential", "A -> B")] {
            let p: Pattern = src.parse().unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("optimized_{name}"), n),
                &p,
                |b, p| {
                    let eval = Evaluator::with_strategy(&log, Strategy::Optimized);
                    b.iter(|| black_box(eval.evaluate(p)));
                },
            );
            group.bench_with_input(BenchmarkId::new(format!("batch_{name}"), n), &p, |b, p| {
                let eval = Evaluator::with_strategy(&log, Strategy::Batch);
                b.iter(|| black_box(eval.evaluate(p)));
            });
        }
    }
    group.finish();
}

/// Counting queries: the batch path counts refs without ever
/// materialising an incident, while the classic path must build every
/// `Vec<Incident>` first.
fn bench_end_to_end_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_count");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let log = generator::pair_log("A", n, "B", n, true);
        let p: Pattern = "A -> B".parse().unwrap();
        group.bench_with_input(BenchmarkId::new("optimized_sequential", n), &p, |b, p| {
            let eval = Evaluator::with_strategy(&log, Strategy::Optimized);
            b.iter(|| black_box(eval.count(p)));
        });
        group.bench_with_input(BenchmarkId::new("batch_sequential", n), &p, |b, p| {
            let eval = Evaluator::with_strategy(&log, Strategy::Batch);
            b.iter(|| black_box(eval.count(p)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_consecutive,
    bench_sequential,
    bench_choice,
    bench_parallel,
    bench_end_to_end,
    bench_end_to_end_count
);
criterion_main!(benches);
