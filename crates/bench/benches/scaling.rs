//! E10: evaluation scaling with log size and with per-instance
//! parallelism (crossbeam worker threads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wlq_engine::Evaluator;
use wlq_pattern::Pattern;
use wlq_workflow::{scenarios, simulate, SimulationConfig};

fn bench_log_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_log_size");
    group.sample_size(10);
    let p: Pattern = "SeeDoctor -> (UpdateRefer -> GetReimburse)"
        .parse()
        .unwrap();
    for instances in [100usize, 400, 1600] {
        let log = simulate(
            &scenarios::clinic::model(),
            &SimulationConfig::new(instances, 11),
        );
        let eval = Evaluator::new(&log);
        group.bench_with_input(BenchmarkId::from_parameter(instances), &p, |b, p| {
            b.iter(|| black_box(eval.evaluate(p)));
        });
    }
    group.finish();
}

fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_threads");
    group.sample_size(10);
    let p: Pattern = "T0 ~> T1".parse().unwrap();
    let log = wlq_workflow::generator::uniform_log(64, 2000, 5, 13);
    let eval = Evaluator::with_strategy(&log, wlq_engine::Strategy::NaivePaper);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &p, |b, p| {
            b.iter(|| black_box(eval.evaluate_parallel(p, threads)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_log_size, bench_threads);
criterion_main!(benches);
