//! E8: the paper's Algorithm 1 operators vs the index/merge-based
//! implementations, on realistic (simulated clinic) and adversarial
//! (pair-log) workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wlq_engine::{Evaluator, Strategy};
use wlq_pattern::Pattern;
use wlq_workflow::{generator, scenarios, simulate, SimulationConfig};

fn bench_clinic_patterns(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_clinic");
    group.sample_size(10);
    let log = simulate(&scenarios::clinic::model(), &SimulationConfig::new(400, 5));
    let patterns = [
        ("selective_seq", "UpdateRefer -> GetReimburse"),
        ("consecutive", "GetRefer ~> CheckIn"),
        ("three_chain", "SeeDoctor -> PayTreatment -> GetReimburse"),
        ("choice", "UpdateRefer | CompleteRefer"),
    ];
    for (name, src) in patterns {
        let p: Pattern = src.parse().unwrap();
        group.bench_with_input(BenchmarkId::new("naive", name), &p, |b, p| {
            let eval = Evaluator::with_strategy(&log, Strategy::NaivePaper);
            b.iter(|| black_box(eval.evaluate(p)));
        });
        group.bench_with_input(BenchmarkId::new("optimized", name), &p, |b, p| {
            let eval = Evaluator::with_strategy(&log, Strategy::Optimized);
            b.iter(|| black_box(eval.evaluate(p)));
        });
    }
    group.finish();
}

fn bench_adversarial_consecutive(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_adversarial");
    group.sample_size(10);
    for n in [500usize, 1000, 2000] {
        let log = generator::pair_log("A", n, "B", n, true);
        let p: Pattern = "A ~> B".parse().unwrap();
        group.bench_with_input(BenchmarkId::new("naive", n), &p, |b, p| {
            let eval = Evaluator::with_strategy(&log, Strategy::NaivePaper);
            b.iter(|| black_box(eval.evaluate(p)));
        });
        group.bench_with_input(BenchmarkId::new("optimized", n), &p, |b, p| {
            let eval = Evaluator::with_strategy(&log, Strategy::Optimized);
            b.iter(|| black_box(eval.evaluate(p)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_clinic_patterns,
    bench_adversarial_consecutive
);
criterion_main!(benches);
