//! E3–E6: Lemma 1 per-operator complexity shapes.
//!
//! Each group sweeps one operator's driving parameter (`n` for ⊙/→, the
//! incident width `k` for ⊗/⊕) so the Criterion report exposes the growth
//! curve the paper claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wlq_bench::{common_tail_incidents, shared_prefix_incidents, singleton_incidents};
use wlq_engine::{naive, optimized};

/// E3: consecutive, time O(n1·n2).
fn bench_consecutive(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_consecutive");
    group.sample_size(20);
    for n in [64usize, 128, 256, 512] {
        let left = singleton_incidents(n, 2, 2);
        let right = singleton_incidents(n, 3, 2);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(naive::consecutive_eval(&left, &right)));
        });
        group.bench_with_input(BenchmarkId::new("optimized", n), &n, |b, _| {
            b.iter(|| black_box(optimized::consecutive_eval(&left, &right)));
        });
    }
    group.finish();
}

/// E4: sequential, time O(n1·n2) (output-bound: all pairs match).
fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_sequential");
    group.sample_size(10);
    for n in [64usize, 128, 256, 512] {
        let left = singleton_incidents(n, 2, 1);
        let right = singleton_incidents(n, 2 + n as u32, 1);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| black_box(naive::sequential_eval(&left, &right)));
        });
        group.bench_with_input(BenchmarkId::new("optimized", n), &n, |b, _| {
            b.iter(|| black_box(optimized::sequential_eval(&left, &right)));
        });
    }
    group.finish();
}

/// E5: choice, printed variant time O(n1·n2·min(k1,k2)); union variant for
/// contrast.
fn bench_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_choice");
    group.sample_size(15);
    let n = 256;
    for k in [2usize, 8, 32] {
        let left = shared_prefix_incidents(n, k);
        let right = left.clone();
        group.bench_with_input(BenchmarkId::new("printed", k), &k, |b, _| {
            b.iter(|| black_box(naive::choice_eval_as_printed(&left, &right)));
        });
        group.bench_with_input(BenchmarkId::new("union", k), &k, |b, _| {
            b.iter(|| black_box(optimized::choice_eval(&left, &right)));
        });
    }
    group.finish();
}

/// E6: parallel, time O(n1·n2·(k1+k2)) with overlapping ranges.
fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_parallel");
    group.sample_size(10);
    let n = 128;
    for k in [2usize, 8, 32] {
        let left = common_tail_incidents(n, k);
        let right = left.clone();
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, _| {
            b.iter(|| black_box(naive::parallel_eval(&left, &right)));
        });
        group.bench_with_input(BenchmarkId::new("optimized", k), &k, |b, _| {
            b.iter(|| black_box(optimized::parallel_eval(&left, &right)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_consecutive,
    bench_sequential,
    bench_choice,
    bench_parallel
);
criterion_main!(benches);
