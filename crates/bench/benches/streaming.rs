//! E11: incremental (streaming) evaluation vs per-append batch
//! re-evaluation — the runtime-monitoring ablation.
//!
//! The paper motivates log queries for monitoring current executions; a
//! monitor that re-evaluates the whole log after every append pays
//! `O(n · eval(n))`, while the streaming evaluator pays only for new
//! incidents. This bench measures a full replay of a simulated clinic log
//! both ways.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use wlq_engine::{Evaluator, StreamingEvaluator};
use wlq_log::Log;
use wlq_pattern::Pattern;
use wlq_workflow::{scenarios, simulate, SimulationConfig};

fn replay_streaming(log: &Log, pattern: &Pattern) -> usize {
    let mut stream = StreamingEvaluator::new(pattern.clone());
    let mut total = 0;
    for record in log.iter() {
        total += stream.append(record).expect("valid log").len();
    }
    total
}

fn replay_batch(log: &Log, pattern: &Pattern) -> usize {
    // Re-evaluate the growing prefix after every append, as a naive
    // monitor would.
    let mut last = 0;
    for lsn in 1..=log.len() as u64 {
        let prefix = log.prefix(wlq_log::Lsn(lsn)).expect("nonempty prefix");
        last = Evaluator::new(&prefix).count(pattern);
    }
    last
}

fn bench_monitoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_streaming");
    group.sample_size(10);
    let pattern: Pattern = "UpdateRefer -> GetReimburse".parse().unwrap();
    for instances in [10usize, 20, 40] {
        let log = simulate(
            &scenarios::clinic::model(),
            &SimulationConfig::new(instances, 5),
        );
        group.bench_with_input(BenchmarkId::new("streaming", instances), &log, |b, log| {
            b.iter(|| black_box(replay_streaming(log, &pattern)))
        });
        group.bench_with_input(
            BenchmarkId::new("batch_per_append", instances),
            &log,
            |b, log| b.iter(|| black_box(replay_batch(log, &pattern))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_monitoring);
criterion_main!(benches);
