//! # wlq-obs — execution observability
//!
//! The runtime-profiling companion to `wlq-engine`: plain-data metric
//! counters the engine fills in per plan node, an [`ExecutionProfile`]
//! aggregating them across parallel workers, and a versioned JSON Lines
//! trace format with a validator for CI.
//!
//! This crate is deliberately engine-agnostic (std only, no dependency on
//! the engine crates): the engine depends on it behind its `profiling`
//! cargo feature, so disabling that feature removes the instrumented
//! execution paths — and this crate — from the build entirely. Nothing
//! here observes a running evaluation by itself; the engine's profiled
//! executors *push* numbers into these structs.
//!
//! * [`NodeMetrics`] — the per-node counters (wall time, records scanned,
//!   pairs compared, incidents emitted, output bytes).
//! * [`ExecutionProfile`] — one profiled run: a pre-order node tree with
//!   estimates next to actuals (Q-error), plus per-worker breakdowns.
//! * [`render_trace`] / [`validate_trace`] — the span-style JSON Lines
//!   trace (schema version [`TRACE_SCHEMA_VERSION`]) and its checker.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod metrics;
mod profile;
mod trace;

pub use metrics::{q_error, NodeMetrics};
pub use profile::{ExecutionProfile, NodeShape, ProfiledNode, WorkerProfile};
pub use trace::{render_trace, validate_trace, TraceError, TraceSummary, TRACE_SCHEMA_VERSION};
