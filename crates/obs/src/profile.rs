//! Execution profiles: a pre-order node tree with estimates next to
//! actuals, plus per-worker breakdowns.

use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

use crate::metrics::{q_error, NodeMetrics};

/// The static shape of one profiled node, known before execution: its
/// display label, sub-pattern text, tree depth, and — when a cost-based
/// plan produced it — the planner's cardinality estimate and cost.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeShape {
    /// Display label, e.g. `scan SeeDoctor` or `sequential [sort-merge]`.
    pub label: String,
    /// The sub-pattern this node evaluates, as text.
    pub pattern: String,
    /// Tree depth (root = 0).
    pub depth: usize,
    /// The planner's estimated incident count, when one exists.
    pub estimate: Option<f64>,
    /// The planner's estimated cost of this subtree, when one exists.
    pub cost: Option<f64>,
}

/// One node of an [`ExecutionProfile`]: shape plus measured counters.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfiledNode {
    /// The node's static shape (label, pattern, depth, estimates).
    pub shape: NodeShape,
    /// The counters the engine accumulated at this node, merged across
    /// all workers.
    pub metrics: NodeMetrics,
}

impl ProfiledNode {
    /// The Q-error of the planner's estimate against the measured
    /// incident count, when an estimate exists.
    #[must_use]
    pub fn q_error(&self) -> Option<f64> {
        self.shape
            .estimate
            .map(|est| q_error(est, self.metrics.incidents_emitted))
    }
}

/// One worker's share of a profiled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Worker index (0-based).
    pub worker: usize,
    /// Workflow instances this worker swept.
    pub instances: u64,
    /// Incidents this worker emitted at the root.
    pub incidents: u64,
    /// Busy wall-clock time (instance evaluation only, queue idle
    /// excluded).
    pub wall: Duration,
}

/// A completed profiled evaluation: what ran, what each node did, and how
/// the work spread over workers.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionProfile {
    /// The query as given.
    pub query: String,
    /// The pattern that actually executed (the planner's chosen rewrite
    /// under the planned strategy; the query itself otherwise).
    pub plan: String,
    /// The strategy name, e.g. `planned`.
    pub strategy: String,
    /// The rewrite rule that produced the executed pattern, when the
    /// cost-based planner chose one.
    pub rule: Option<String>,
    /// Worker threads requested.
    pub threads: usize,
    /// The plan tree in pre-order, with merged per-node counters.
    pub nodes: Vec<ProfiledNode>,
    /// Per-worker breakdown (one entry even for sequential runs).
    pub workers: Vec<WorkerProfile>,
    /// Wall-clock time of the whole run (planning included).
    pub total_wall: Duration,
    /// `|incL(p)|`: incidents the run produced.
    pub total_incidents: u64,
}

impl ExecutionProfile {
    /// Worker skew: the largest worker busy-time divided by the mean.
    /// `1.0` means perfectly balanced; `None` without workers.
    #[must_use]
    pub fn skew(&self) -> Option<f64> {
        if self.workers.is_empty() {
            return None;
        }
        let max = self.workers.iter().map(|w| w.wall).max()?;
        let sum: Duration = self.workers.iter().map(|w| w.wall).sum();
        let mean = sum.as_secs_f64() / self.workers.len() as f64;
        if mean <= 0.0 {
            return Some(1.0);
        }
        Some(max.as_secs_f64() / mean)
    }

    /// The worst per-node Q-error, over nodes that carry an estimate.
    /// `None` when no node does (non-planned strategies never do).
    #[must_use]
    pub fn max_q_error(&self) -> Option<f64> {
        self.nodes
            .iter()
            .filter_map(ProfiledNode::q_error)
            .fold(None, |acc, q| Some(acc.map_or(q, |a: f64| a.max(q))))
    }

    /// Renders the profile as one line of JSON with a stable schema
    /// (`version` [`crate::TRACE_SCHEMA_VERSION`]): header fields, then
    /// `nodes` in pre-order, then `workers`.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"version\":");
        let _ = write!(
            out,
            "{},\"query\":{},\"plan\":{},\"strategy\":{},\"rule\":{},\"threads\":{},\
             \"total_wall_ns\":{},\"total_incidents\":{},\"nodes\":[",
            crate::TRACE_SCHEMA_VERSION,
            json_str(&self.query),
            json_str(&self.plan),
            json_str(&self.strategy),
            self.rule
                .as_deref()
                .map_or_else(|| "null".to_string(), json_str),
            self.threads,
            self.total_wall.as_nanos(),
            self.total_incidents,
        );
        for (i, node) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":{},\"pattern\":{},\"depth\":{},\"estimate\":{},\"cost\":{},\
                 \"wall_ns\":{},\"records_scanned\":{},\"pairs_compared\":{},\
                 \"incidents_emitted\":{},\"output_bytes\":{},\"q_error\":{}}}",
                json_str(&node.shape.label),
                json_str(&node.shape.pattern),
                node.shape.depth,
                json_num(node.shape.estimate),
                json_num(node.shape.cost),
                node.metrics.wall.as_nanos(),
                node.metrics.records_scanned,
                node.metrics.pairs_compared,
                node.metrics.incidents_emitted,
                node.metrics.output_bytes,
                json_num(node.q_error()),
            );
        }
        out.push_str("],\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"worker\":{},\"instances\":{},\"incidents\":{},\"wall_ns\":{}}}",
                w.worker,
                w.instances,
                w.incidents,
                w.wall.as_nanos(),
            );
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for ExecutionProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "query    : {}", self.query)?;
        match &self.rule {
            Some(rule) => writeln!(f, "plan     : {}  [{rule}]", self.plan)?,
            None => writeln!(f, "plan     : {}", self.plan)?,
        }
        writeln!(
            f,
            "strategy : {}, {} thread(s)",
            self.strategy, self.threads
        )?;
        writeln!(
            f,
            "{:>10} {:>10} {:>12} {:>10} {:>12} {:>10} {:>8}  node",
            "actual", "scanned", "pairs", "bytes", "time", "est", "q-err"
        )?;
        for node in &self.nodes {
            let est = node
                .shape
                .estimate
                .map_or_else(|| "-".to_string(), |e| format!("{e:.1}"));
            let q = node
                .q_error()
                .map_or_else(|| "-".to_string(), |q| format!("{q:.2}"));
            writeln!(
                f,
                "{:>10} {:>10} {:>12} {:>10} {:>12?} {:>10} {:>8}  {:indent$}{}",
                node.metrics.incidents_emitted,
                node.metrics.records_scanned,
                node.metrics.pairs_compared,
                node.metrics.output_bytes,
                node.metrics.wall,
                est,
                q,
                "",
                node.shape.label,
                indent = node.shape.depth * 2,
            )?;
        }
        if !self.workers.is_empty() {
            writeln!(f, "workers:")?;
            for w in &self.workers {
                writeln!(
                    f,
                    "  worker {}: {} instance(s), {} incident(s), {:?}",
                    w.worker, w.instances, w.incidents, w.wall
                )?;
            }
            if self.workers.len() > 1 {
                if let Some(skew) = self.skew() {
                    writeln!(f, "skew     : max/mean worker busy time = {skew:.2}")?;
                }
            }
        }
        writeln!(
            f,
            "total    : {} incident(s) in {:?}",
            self.total_incidents, self.total_wall
        )
    }
}

/// Escapes `s` as a JSON string literal (quotes included), mirroring the
/// analyzer's renderer so every `wlq` JSON surface escapes identically.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an optional float as a JSON number, `null` when absent or
/// non-finite.
pub(crate) fn json_num(value: Option<f64>) -> String {
    match value {
        Some(v) if v.is_finite() => format!("{v}"),
        _ => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExecutionProfile {
        let shapes = [
            ("sequential [sort-merge]", "A -> B", 0, Some(2.0)),
            ("scan A", "A", 1, Some(1.5)),
            ("scan B", "B", 1, Some(4.0)),
        ];
        ExecutionProfile {
            query: "A -> B".to_string(),
            plan: "A -> B".to_string(),
            strategy: "planned".to_string(),
            rule: Some("original".to_string()),
            threads: 2,
            nodes: shapes
                .into_iter()
                .map(|(label, pattern, depth, estimate)| ProfiledNode {
                    shape: NodeShape {
                        label: label.to_string(),
                        pattern: pattern.to_string(),
                        depth,
                        estimate,
                        cost: Some(10.0),
                    },
                    metrics: NodeMetrics {
                        wall: Duration::from_micros(5),
                        records_scanned: 4,
                        pairs_compared: 8,
                        incidents_emitted: 4,
                        output_bytes: 64,
                    },
                })
                .collect(),
            workers: vec![
                WorkerProfile {
                    worker: 0,
                    instances: 2,
                    incidents: 3,
                    wall: Duration::from_micros(30),
                },
                WorkerProfile {
                    worker: 1,
                    instances: 1,
                    incidents: 1,
                    wall: Duration::from_micros(10),
                },
            ],
            total_wall: Duration::from_micros(50),
            total_incidents: 4,
        }
    }

    #[test]
    fn display_renders_tree_workers_and_totals() {
        let text = sample().to_string();
        assert!(text.contains("query    : A -> B"), "{text}");
        assert!(text.contains("sequential [sort-merge]"), "{text}");
        assert!(text.contains("  scan A"), "{text}");
        assert!(text.contains("worker 1: 1 instance(s)"), "{text}");
        assert!(text.contains("skew     :"), "{text}");
        assert!(text.contains("total    : 4 incident(s)"), "{text}");
    }

    #[test]
    fn skew_is_max_over_mean() {
        let profile = sample();
        // Busy times 30us and 10us: mean 20us, max 30us -> skew 1.5.
        assert!((profile.skew().unwrap() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn q_error_tracks_estimate_vs_actual() {
        let profile = sample();
        // Root: est 2.0 vs actual 4 -> 2.0; scan B: est 4.0 vs 4 -> 1.0.
        assert!((profile.nodes[0].q_error().unwrap() - 2.0).abs() < 1e-9);
        assert!((profile.nodes[2].q_error().unwrap() - 1.0).abs() < 1e-9);
        // scan A is the worst: est 1.5 vs actual 4.
        assert!((profile.max_q_error().unwrap() - 4.0 / 1.5).abs() < 1e-9);
    }

    #[test]
    fn json_escapes_and_orders_keys() {
        let json = sample().render_json();
        assert!(
            json.starts_with("{\"version\":1,\"query\":\"A -> B\""),
            "{json}"
        );
        let nodes_at = json.find("\"nodes\":[").unwrap();
        let workers_at = json.find("\"workers\":[").unwrap();
        assert!(nodes_at < workers_at);
        assert!(json.contains("\"rule\":\"original\""), "{json}");
        assert!(json.contains("\"q_error\":2"), "{json}");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_num(None), "null");
        assert_eq!(json_num(Some(f64::NAN)), "null");
        assert_eq!(json_num(Some(1.5)), "1.5");
    }
}
