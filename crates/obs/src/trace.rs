//! The JSON Lines execution trace: span-style `node_begin`/`node_end`
//! events in plan order, with a schema validator for CI.
//!
//! A trace is a sequence of single-line flat JSON objects:
//!
//! ```jsonl
//! {"event":"trace_begin","version":1,"query":"A -> B","plan":"A -> B","strategy":"planned","threads":1}
//! {"event":"node_begin","node":0,"depth":0,"label":"sequential [sort-merge]","pattern":"A -> B"}
//! {"event":"node_begin","node":1,"depth":1,"label":"scan A","pattern":"A"}
//! {"event":"node_end","node":1,"wall_ns":812,"records_scanned":4,"pairs_compared":0,"incidents_emitted":4,"output_bytes":64,"estimate":4,"cost":4,"q_error":1}
//! {"event":"node_end","node":0,...}
//! {"event":"worker","worker":0,"instances":3,"incidents":6,"wall_ns":4012}
//! {"event":"trace_end","total_wall_ns":53120,"total_incidents":6}
//! ```
//!
//! `node` ids are pre-order indices; `node_begin` events nest exactly as
//! the plan tree does, and every `node_end` closes the innermost open
//! node. [`validate_trace`] enforces all of this plus per-event required
//! fields, so a pinned schema test (and the CI smoke job) can reject any
//! accidental format drift.

use std::collections::BTreeMap;
use std::fmt;

use crate::profile::{json_num, json_str, ExecutionProfile};

/// The trace and profile JSON schema version. Bump on any
/// breaking change to event shapes or [`ExecutionProfile::render_json`].
pub const TRACE_SCHEMA_VERSION: u64 = 1;

/// Renders a profile as a span-style JSON Lines trace.
///
/// Events are synthesized from the profile's pre-order node tree:
/// `trace_begin`, nested `node_begin`/`node_end` pairs, one `worker`
/// event per worker, and `trace_end`. Node wall times are the merged
/// per-node totals, so `node_end` carries the same numbers as the
/// profile's table.
#[must_use]
pub fn render_trace(profile: &ExecutionProfile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"event\":\"trace_begin\",\"version\":{},\"query\":{},\"plan\":{},\
         \"strategy\":{},\"threads\":{}}}\n",
        TRACE_SCHEMA_VERSION,
        json_str(&profile.query),
        json_str(&profile.plan),
        json_str(&profile.strategy),
        profile.threads,
    ));
    emit_subtree(profile, 0, &mut out);
    for w in &profile.workers {
        out.push_str(&format!(
            "{{\"event\":\"worker\",\"worker\":{},\"instances\":{},\"incidents\":{},\
             \"wall_ns\":{}}}\n",
            w.worker,
            w.instances,
            w.incidents,
            w.wall.as_nanos(),
        ));
    }
    out.push_str(&format!(
        "{{\"event\":\"trace_end\",\"total_wall_ns\":{},\"total_incidents\":{}}}\n",
        profile.total_wall.as_nanos(),
        profile.total_incidents,
    ));
    out
}

/// Emits `node_begin` for node `i`, recurses over its children (the
/// following pre-order nodes one level deeper), then emits `node_end`.
/// Returns the index just past the subtree.
fn emit_subtree(profile: &ExecutionProfile, i: usize, out: &mut String) -> usize {
    let Some(node) = profile.nodes.get(i) else {
        return i;
    };
    out.push_str(&format!(
        "{{\"event\":\"node_begin\",\"node\":{},\"depth\":{},\"label\":{},\"pattern\":{}}}\n",
        i,
        node.shape.depth,
        json_str(&node.shape.label),
        json_str(&node.shape.pattern),
    ));
    let mut j = i + 1;
    while profile
        .nodes
        .get(j)
        .is_some_and(|next| next.shape.depth > node.shape.depth)
    {
        j = emit_subtree(profile, j, out);
    }
    out.push_str(&format!(
        "{{\"event\":\"node_end\",\"node\":{},\"wall_ns\":{},\"records_scanned\":{},\
         \"pairs_compared\":{},\"incidents_emitted\":{},\"output_bytes\":{},\
         \"estimate\":{},\"cost\":{},\"q_error\":{}}}\n",
        i,
        node.metrics.wall.as_nanos(),
        node.metrics.records_scanned,
        node.metrics.pairs_compared,
        node.metrics.incidents_emitted,
        node.metrics.output_bytes,
        json_num(node.shape.estimate),
        json_num(node.shape.cost),
        json_num(node.q_error()),
    ));
    j
}

/// What a valid trace contained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// The schema version the trace declared.
    pub version: u64,
    /// Number of nodes (`node_begin`/`node_end` pairs).
    pub nodes: usize,
    /// Number of `worker` events.
    pub workers: usize,
    /// Total event lines.
    pub events: usize,
    /// The `trace_end` incident total.
    pub total_incidents: u64,
}

/// A trace validation failure: the offending line (1-based; 0 for
/// whole-trace problems) and what was wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number, 0 when the trace as a whole is malformed.
    pub line: usize,
    /// Human-readable description of the problem.
    pub detail: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.detail)
        } else {
            write!(f, "line {}: {}", self.line, self.detail)
        }
    }
}

impl std::error::Error for TraceError {}

fn err(line: usize, detail: impl Into<String>) -> TraceError {
    TraceError {
        line,
        detail: detail.into(),
    }
}

/// One scalar value of a flat trace event object.
#[derive(Debug, Clone, PartialEq)]
enum Scalar {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

impl Scalar {
    fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Scalar::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

/// Validates a JSON Lines trace against the pinned schema
/// ([`TRACE_SCHEMA_VERSION`]): event order, `node_begin`/`node_end`
/// nesting, pre-order node ids, and per-event required fields.
///
/// # Errors
///
/// Returns the first [`TraceError`] encountered.
pub fn validate_trace(text: &str) -> Result<TraceSummary, TraceError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (first_no, first) = lines.next().ok_or_else(|| err(0, "empty trace"))?;
    let begin = parse_flat_object(first).map_err(|d| err(first_no + 1, d))?;
    expect_event(&begin, "trace_begin", first_no + 1)?;
    let version = require_u64(&begin, "version", first_no + 1)?;
    if version != TRACE_SCHEMA_VERSION {
        return Err(err(
            first_no + 1,
            format!("unsupported schema version {version} (expected {TRACE_SCHEMA_VERSION})"),
        ));
    }
    for key in ["query", "plan", "strategy"] {
        require_str(&begin, key, first_no + 1)?;
    }
    require_u64(&begin, "threads", first_no + 1)?;

    let mut open: Vec<u64> = Vec::new();
    let mut nodes = 0usize;
    let mut workers = 0usize;
    let mut events = 1usize;
    let mut ended: Option<u64> = None;
    for (no, line) in lines {
        let lineno = no + 1;
        if ended.is_some() {
            return Err(err(lineno, "event after trace_end"));
        }
        events += 1;
        let obj = parse_flat_object(line).map_err(|d| err(lineno, d))?;
        let event = require_str(&obj, "event", lineno)?;
        match event.as_str() {
            "node_begin" => {
                let node = require_u64(&obj, "node", lineno)?;
                if node != nodes as u64 {
                    return Err(err(
                        lineno,
                        format!("node ids must be pre-order: expected {nodes}, got {node}"),
                    ));
                }
                let depth = require_u64(&obj, "depth", lineno)?;
                if depth != open.len() as u64 {
                    return Err(err(
                        lineno,
                        format!("depth {depth} does not match nesting level {}", open.len()),
                    ));
                }
                require_str(&obj, "label", lineno)?;
                require_str(&obj, "pattern", lineno)?;
                open.push(node);
                nodes += 1;
            }
            "node_end" => {
                let node = require_u64(&obj, "node", lineno)?;
                match open.pop() {
                    Some(top) if top == node => {}
                    Some(top) => {
                        return Err(err(
                            lineno,
                            format!("node_end {node} closes innermost open node {top}"),
                        ))
                    }
                    None => return Err(err(lineno, "node_end with no open node")),
                }
                for key in [
                    "wall_ns",
                    "records_scanned",
                    "pairs_compared",
                    "incidents_emitted",
                    "output_bytes",
                ] {
                    require_u64(&obj, key, lineno)?;
                }
                for key in ["estimate", "cost", "q_error"] {
                    require_num_or_null(&obj, key, lineno)?;
                }
            }
            "worker" => {
                if !open.is_empty() {
                    return Err(err(lineno, "worker event inside an open node span"));
                }
                for key in ["worker", "instances", "incidents", "wall_ns"] {
                    require_u64(&obj, key, lineno)?;
                }
                workers += 1;
            }
            "trace_end" => {
                if !open.is_empty() {
                    return Err(err(
                        lineno,
                        format!("trace_end with {} node span(s) still open", open.len()),
                    ));
                }
                require_u64(&obj, "total_wall_ns", lineno)?;
                ended = Some(require_u64(&obj, "total_incidents", lineno)?);
            }
            other => return Err(err(lineno, format!("unknown event {other:?}"))),
        }
    }
    let total_incidents = ended.ok_or_else(|| err(0, "missing trace_end"))?;
    if nodes == 0 {
        return Err(err(0, "trace has no nodes"));
    }
    Ok(TraceSummary {
        version,
        nodes,
        workers,
        events,
        total_incidents,
    })
}

fn expect_event(
    obj: &BTreeMap<String, Scalar>,
    want: &str,
    lineno: usize,
) -> Result<(), TraceError> {
    let event = require_str(obj, "event", lineno)?;
    if event == want {
        Ok(())
    } else {
        Err(err(
            lineno,
            format!("expected {want:?}, got event {event:?}"),
        ))
    }
}

fn require_str(
    obj: &BTreeMap<String, Scalar>,
    key: &str,
    lineno: usize,
) -> Result<String, TraceError> {
    match obj.get(key) {
        Some(Scalar::Str(s)) => Ok(s.clone()),
        Some(_) => Err(err(lineno, format!("field {key:?} must be a string"))),
        None => Err(err(lineno, format!("missing field {key:?}"))),
    }
}

fn require_u64(
    obj: &BTreeMap<String, Scalar>,
    key: &str,
    lineno: usize,
) -> Result<u64, TraceError> {
    match obj.get(key) {
        Some(scalar) => scalar.as_u64().ok_or_else(|| {
            err(
                lineno,
                format!("field {key:?} must be a non-negative integer"),
            )
        }),
        None => Err(err(lineno, format!("missing field {key:?}"))),
    }
}

fn require_num_or_null(
    obj: &BTreeMap<String, Scalar>,
    key: &str,
    lineno: usize,
) -> Result<(), TraceError> {
    match obj.get(key) {
        Some(Scalar::Num(_) | Scalar::Null) => Ok(()),
        Some(_) => Err(err(
            lineno,
            format!("field {key:?} must be a number or null"),
        )),
        None => Err(err(lineno, format!("missing field {key:?}"))),
    }
}

/// Parses one flat JSON object (`{"key": scalar, ...}` — no nested
/// containers, which trace events never use).
fn parse_flat_object(line: &str) -> Result<BTreeMap<String, Scalar>, String> {
    let mut p = Parser {
        bytes: line.trim().as_bytes(),
        pos: 0,
    };
    let obj = p.object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(obj)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, want: u8) -> Result<(), String> {
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}",
                char::from(want),
                self.pos
            ))
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, Scalar>, String> {
        self.skip_ws();
        self.eat(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.scalar()?;
            out.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn scalar(&mut self) -> Result<Scalar, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Scalar::Str(self.string()?)),
            Some(b't') => self.literal("true", Scalar::Bool(true)),
            Some(b'f') => self.literal("false", Scalar::Bool(false)),
            Some(b'n') => self.literal("null", Scalar::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a scalar at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Scalar) -> Result<Scalar, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Scalar, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Scalar::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let Some(c) = rest.chars().next() else {
                        return Err("unterminated string".to_string());
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NodeMetrics, NodeShape, ProfiledNode, WorkerProfile};
    use std::time::Duration;

    fn sample_profile() -> ExecutionProfile {
        let node = |label: &str, pattern: &str, depth: usize, emitted: u64| ProfiledNode {
            shape: NodeShape {
                label: label.to_string(),
                pattern: pattern.to_string(),
                depth,
                estimate: Some(2.0),
                cost: Some(8.0),
            },
            metrics: NodeMetrics {
                wall: Duration::from_nanos(500),
                records_scanned: 3,
                pairs_compared: 6,
                incidents_emitted: emitted,
                output_bytes: 48,
            },
        };
        ExecutionProfile {
            query: "A -> B".to_string(),
            plan: "A -> B".to_string(),
            strategy: "planned".to_string(),
            rule: Some("original".to_string()),
            threads: 1,
            nodes: vec![
                node("sequential [sort-merge]", "A -> B", 0, 2),
                node("scan A", "A", 1, 3),
                node("scan B", "B", 1, 3),
            ],
            workers: vec![WorkerProfile {
                worker: 0,
                instances: 1,
                incidents: 2,
                wall: Duration::from_nanos(2000),
            }],
            total_wall: Duration::from_nanos(9000),
            total_incidents: 2,
        }
    }

    #[test]
    fn rendered_traces_validate() {
        let trace = render_trace(&sample_profile());
        let summary = validate_trace(&trace).unwrap();
        assert_eq!(summary.version, TRACE_SCHEMA_VERSION);
        assert_eq!(summary.nodes, 3);
        assert_eq!(summary.workers, 1);
        assert_eq!(summary.total_incidents, 2);
        // trace_begin + 3 begin/end pairs + worker + trace_end.
        assert_eq!(summary.events, 9);
    }

    #[test]
    fn spans_nest_like_the_tree() {
        let trace = render_trace(&sample_profile());
        let events: Vec<&str> = trace.lines().collect();
        // Root opens first and closes last among node events.
        assert!(events[1].contains("\"node_begin\",\"node\":0"));
        assert!(events[2].contains("\"node_begin\",\"node\":1"));
        assert!(events[3].contains("\"node_end\",\"node\":1"));
        assert!(events[4].contains("\"node_begin\",\"node\":2"));
        assert!(events[5].contains("\"node_end\",\"node\":2"));
        assert!(events[6].contains("\"node_end\",\"node\":0"));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        let good = render_trace(&sample_profile());
        // Truncation: unbalanced spans / missing trace_end.
        let lines: Vec<&str> = good.lines().collect();
        let truncated = lines[..lines.len() - 1].join("\n");
        assert!(validate_trace(&truncated).is_err());
        // Wrong version.
        let wrong = good.replacen("\"version\":1", "\"version\":99", 1);
        assert!(validate_trace(&wrong)
            .unwrap_err()
            .detail
            .contains("version"));
        // Not JSON at all.
        assert!(validate_trace("hello\n").is_err());
        // Missing a required counter on node_end.
        let gutted = good.replace("\"pairs_compared\"", "\"pears_compared\"");
        assert!(validate_trace(&gutted)
            .unwrap_err()
            .detail
            .contains("pairs_compared"));
        // Empty input.
        assert_eq!(validate_trace("").unwrap_err().detail, "empty trace");
    }

    #[test]
    fn flat_parser_handles_escapes_and_numbers() {
        let obj = parse_flat_object("{\"s\":\"a\\\"b\\u0041\",\"n\":-1.5e2,\"t\":true,\"z\":null}")
            .unwrap();
        assert_eq!(obj["s"], Scalar::Str("a\"bA".to_string()));
        assert_eq!(obj["n"], Scalar::Num(-150.0));
        assert_eq!(obj["t"], Scalar::Bool(true));
        assert_eq!(obj["z"], Scalar::Null);
        assert!(parse_flat_object("{\"a\":1} extra").is_err());
        assert!(parse_flat_object("{\"a\":}").is_err());
    }
}
