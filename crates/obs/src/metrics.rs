//! Per-node metric counters and the Q-error measure.

use std::ops::AddAssign;
use std::time::Duration;

/// Counters for one plan node, accumulated over every instance a worker
/// sweeps. All counters are additive, so per-worker metric vectors merge
/// by element-wise [`AddAssign`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Wall-clock time spent at this node, children excluded.
    pub wall: Duration,
    /// Index candidates examined by a leaf scan (postings for a positive
    /// atom, the whole instance for a negated one). Zero for joins.
    pub records_scanned: u64,
    /// Candidate pairs the node's physical operator compared, modelled
    /// deterministically from operand and output sizes (see the engine's
    /// profiling docs for the per-operator formulas).
    pub pairs_compared: u64,
    /// Incidents this node emitted.
    pub incidents_emitted: u64,
    /// Bytes of output storage the node produced (position pool plus
    /// incident refs for batches; positions plus headers classically).
    pub output_bytes: u64,
}

impl NodeMetrics {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        NodeMetrics::default()
    }
}

impl AddAssign<&NodeMetrics> for NodeMetrics {
    fn add_assign(&mut self, other: &NodeMetrics) {
        self.wall += other.wall;
        self.records_scanned += other.records_scanned;
        self.pairs_compared += other.pairs_compared;
        self.incidents_emitted += other.incidents_emitted;
        self.output_bytes += other.output_bytes;
    }
}

/// The Q-error of a cardinality estimate: `max(est/actual, actual/est)`,
/// with both sides clamped to at least 1 so zero-output nodes with
/// near-zero estimates read as perfect rather than undefined. Always
/// `>= 1`; `1.0` means the estimate was exact.
#[must_use]
pub fn q_error(estimate: f64, actual: u64) -> f64 {
    let est = estimate.max(1.0);
    #[allow(clippy::cast_precision_loss)]
    let act = (actual as f64).max(1.0);
    (est / act).max(act / est)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_merge_is_elementwise_addition() {
        let mut a = NodeMetrics {
            wall: Duration::from_millis(2),
            records_scanned: 10,
            pairs_compared: 100,
            incidents_emitted: 5,
            output_bytes: 80,
        };
        let b = NodeMetrics {
            wall: Duration::from_millis(3),
            records_scanned: 1,
            pairs_compared: 9,
            incidents_emitted: 2,
            output_bytes: 20,
        };
        a += &b;
        assert_eq!(a.wall, Duration::from_millis(5));
        assert_eq!(a.records_scanned, 11);
        assert_eq!(a.pairs_compared, 109);
        assert_eq!(a.incidents_emitted, 7);
        assert_eq!(a.output_bytes, 100);
    }

    #[test]
    fn q_error_is_symmetric_and_clamped() {
        assert!((q_error(10.0, 10) - 1.0).abs() < 1e-12);
        assert!((q_error(20.0, 10) - 2.0).abs() < 1e-12);
        assert!((q_error(5.0, 10) - 2.0).abs() < 1e-12);
        // Both sides clamp at 1: a tiny estimate of a zero actual is
        // perfect, not infinite.
        assert!((q_error(0.001, 0) - 1.0).abs() < 1e-12);
        assert!((q_error(4.0, 0) - 4.0).abs() < 1e-12);
    }
}
