//! Rendering diagnostics: human-readable caret output (rustc style) and
//! a stable machine-readable JSON format.
//!
//! The same snippet renderer serves analyzer diagnostics and
//! [`ParsePatternError`]s, so `wlq` points a caret at the offending
//! token for both.

use std::fmt::Write as _;

use wlq_pattern::{ParsePatternError, Span};

use crate::diag::{Report, Severity};

/// Converts a byte offset into 1-based `(line, column)`, counting
/// columns in characters. Offsets past the end clamp to the last
/// position.
#[must_use]
pub fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let before = &src[..floor_char_boundary(src, offset)];
    let line = before.bytes().filter(|&b| b == b'\n').count() + 1;
    let line_start = before.rfind('\n').map_or(0, |i| i + 1);
    let column = before[line_start..].chars().count() + 1;
    (line, column)
}

fn floor_char_boundary(src: &str, mut i: usize) -> usize {
    i = i.min(src.len());
    while i > 0 && !src.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// The `--> pattern:L:C` / source line / caret block for one span.
fn snippet(src: &str, span: Span) -> String {
    let (line, column) = line_col(src, span.start);
    let line_text = src.lines().nth(line - 1).unwrap_or("");
    let gutter = line.to_string();
    let pad = " ".repeat(gutter.len());
    // Caret length in characters, clamped to the rest of the line.
    let start = floor_char_boundary(src, span.start);
    let end = floor_char_boundary(src, span.end.max(span.start));
    let caret_len = src
        .get(start..end)
        .map_or(1, |s| s.chars().take_while(|&c| c != '\n').count())
        .max(1);
    let mut out = String::new();
    let _ = writeln!(out, "{pad}--> pattern:{line}:{column}");
    let _ = writeln!(out, "{pad} |");
    let _ = writeln!(out, "{gutter} | {line_text}");
    let _ = writeln!(
        out,
        "{pad} | {}{}",
        " ".repeat(column - 1),
        "^".repeat(caret_len)
    );
    out
}

/// Renders a report the way `rustc` renders diagnostics: severity,
/// code, message, caret snippet, then notes and suggestions.
#[must_use]
pub fn render_human(src: &str, report: &Report) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
        if let Some(span) = d.span {
            out.push_str(&snippet(src, span));
        }
        for note in &d.notes {
            let _ = writeln!(out, " = note: {note}");
        }
        if let Some(suggestion) = &d.suggestion {
            let _ = writeln!(out, " = help: {suggestion}");
        }
        out.push('\n');
    }
    let _ = write!(
        out,
        "{} error(s), {} warning(s), {} hint(s)",
        report.errors(),
        report.warnings(),
        report.hints()
    );
    if report.unsatisfiable() {
        out.push_str("; pattern is unsatisfiable");
    }
    out.push('\n');
    out
}

/// Renders a parse error with the same caret snippet the analyzer
/// uses, so `wlq` error output is uniform.
#[must_use]
pub fn render_parse_error(src: &str, err: &ParsePatternError) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "error: {err}");
    if !src.is_empty() {
        let span = Span::new(err.position, err.position + 1);
        out.push_str(&snippet(src, span));
    }
    out
}

/// Renders a report as one line of JSON with a stable schema:
///
/// ```json
/// {"version":1,
///  "summary":{"errors":0,"warnings":0,"hints":0},
///  "unsatisfiable":false,
///  "diagnostics":[
///    {"code":"WLQ001","name":"unsatisfiable-start-end","severity":"error",
///     "message":"…","span":{"start":0,"end":5,"line":1,"column":1},
///     "notes":["…"],"suggestion":null}]}
/// ```
///
/// `span` is `null` for diagnostics on patterns parsed without spans.
#[must_use]
pub fn render_json(src: &str, report: &Report) -> String {
    let mut out = String::from("{\"version\":1,\"summary\":{");
    let _ = write!(
        out,
        "\"errors\":{},\"warnings\":{},\"hints\":{}}},\"unsatisfiable\":{},\"diagnostics\":[",
        report.errors(),
        report.warnings(),
        report.hints(),
        report.unsatisfiable()
    );
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"code\":{},\"name\":{},\"severity\":{},\"message\":{},\"span\":",
            json_str(d.code.as_str()),
            json_str(d.code.name()),
            json_str(d.severity.as_str()),
            json_str(&d.message)
        );
        match d.span {
            Some(span) => {
                let (line, column) = line_col(src, span.start);
                let _ = write!(
                    out,
                    "{{\"start\":{},\"end\":{},\"line\":{line},\"column\":{column}}}",
                    span.start, span.end
                );
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"notes\":[");
        for (j, note) in d.notes.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_str(note));
        }
        out.push_str("],\"suggestion\":");
        match &d.suggestion {
            Some(s) => out.push_str(&json_str(s)),
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Escapes a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `true` when the severity should fail a `--deny-warnings` run.
#[must_use]
pub fn denies(severity: Severity, deny_warnings: bool) -> bool {
    match severity {
        Severity::Error => true,
        Severity::Warning => deny_warnings,
        Severity::Hint => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Diagnostic, LintCode};
    use wlq_pattern::Pattern;

    #[test]
    fn line_col_counts_lines_and_chars() {
        assert_eq!(line_col("abc", 0), (1, 1));
        assert_eq!(line_col("abc", 2), (1, 3));
        assert_eq!(line_col("a\nbc", 2), (2, 1));
        assert_eq!(line_col("a\nbc", 4), (2, 3));
        // Multi-byte character: ⊙ is 3 bytes but 1 column, so the `B`
        // at byte 6 sits in column 5.
        assert_eq!(line_col("A ⊙ B", 6), (1, 5));
        // Past-the-end clamps.
        assert_eq!(line_col("ab", 99), (1, 3));
    }

    #[test]
    fn snippet_places_the_caret_under_the_span() {
        let src = "A -> START";
        let s = snippet(src, Span::new(5, 10));
        assert!(s.contains("--> pattern:1:6"), "{s}");
        assert!(s.contains("| A -> START"), "{s}");
        assert!(s.contains("|      ^^^^^"), "{s}");
    }

    #[test]
    fn parse_error_rendering_has_a_caret() {
        let src = "A -> ";
        let err = Pattern::parse(src).expect_err("invalid");
        let rendered = render_parse_error(src, &err);
        assert!(rendered.starts_with("error: "), "{rendered}");
        assert!(rendered.contains('^'), "{rendered}");
    }

    #[test]
    fn json_escaping_covers_quotes_and_control_chars() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_span_is_null_without_spans() {
        let report = Report {
            diagnostics: vec![Diagnostic::new(LintCode::NegationOnly, "msg", None)],
            unsatisfiable: false,
        };
        let json = render_json("", &report);
        assert!(json.contains("\"span\":null"), "{json}");
        assert!(json.contains("\"suggestion\":null"), "{json}");
    }

    #[test]
    fn deny_logic() {
        assert!(denies(Severity::Error, false));
        assert!(!denies(Severity::Warning, false));
        assert!(denies(Severity::Warning, true));
        assert!(!denies(Severity::Hint, true));
    }
}
