//! Diagnostic primitives: the lint registry, severities, and span-anchored
//! findings.
//!
//! Every lint has a stable code (`WLQ0xx` for unsatisfiability errors,
//! `WLQ1xx` for warnings and hints) so tooling can filter or suppress
//! findings without parsing messages.

use std::fmt;

use wlq_pattern::Span;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The pattern (or a subexpression) can never match: running it is
    /// certainly pointless.
    Error,
    /// The pattern is almost certainly not what the author meant, or
    /// will be needlessly expensive to evaluate.
    Warning,
    /// A stylistic or borderline observation.
    Hint,
}

impl Severity {
    /// Lowercase name as used in human and JSON output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Hint => "hint",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The registry of lints, one variant per stable code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintCode {
    /// `WLQ001`: a `⊙`/`→` node forces records before `START` or after
    /// `END`, which Definition 2 rules out.
    StartEndUnsatisfiable,
    /// `WLQ002`: both operands of a `⊕` must match the unique `START`
    /// (or `END`) record, but parallel operands share no records.
    ParallelBoundaryDuplicate,
    /// `WLQ003`: an atom's predicate conjunction can never hold.
    ContradictoryPredicates,
    /// `WLQ101`: an activity name that occurs in no record of the log
    /// the pattern is checked against.
    UnknownActivity,
    /// `WLQ102`: a duplicate branch in a `⊗` chain (`p ⊗ p ≡ p`).
    DuplicateChoiceBranch,
    /// `WLQ103`: structurally identical operands of a `⊕` chain — legal
    /// (they must match disjoint records) but usually a mistake.
    IdenticalParallelOperands,
    /// `WLQ104`: every atom is negated, so every leaf scans the
    /// complement of one activity — the Lemma 1 worst case.
    NegationOnly,
    /// `WLQ105`: estimated evaluation cost exceeds the configured
    /// budget.
    CostBudgetExceeded,
}

impl LintCode {
    /// Every lint the analyzer knows, in code order.
    pub const ALL: [LintCode; 8] = [
        LintCode::StartEndUnsatisfiable,
        LintCode::ParallelBoundaryDuplicate,
        LintCode::ContradictoryPredicates,
        LintCode::UnknownActivity,
        LintCode::DuplicateChoiceBranch,
        LintCode::IdenticalParallelOperands,
        LintCode::NegationOnly,
        LintCode::CostBudgetExceeded,
    ];

    /// The stable code, e.g. `"WLQ001"`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::StartEndUnsatisfiable => "WLQ001",
            LintCode::ParallelBoundaryDuplicate => "WLQ002",
            LintCode::ContradictoryPredicates => "WLQ003",
            LintCode::UnknownActivity => "WLQ101",
            LintCode::DuplicateChoiceBranch => "WLQ102",
            LintCode::IdenticalParallelOperands => "WLQ103",
            LintCode::NegationOnly => "WLQ104",
            LintCode::CostBudgetExceeded => "WLQ105",
        }
    }

    /// The kebab-case lint name, e.g. `"unsatisfiable-start-end"`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LintCode::StartEndUnsatisfiable => "unsatisfiable-start-end",
            LintCode::ParallelBoundaryDuplicate => "parallel-boundary-duplicate",
            LintCode::ContradictoryPredicates => "contradictory-predicates",
            LintCode::UnknownActivity => "unknown-activity",
            LintCode::DuplicateChoiceBranch => "duplicate-choice-branch",
            LintCode::IdenticalParallelOperands => "identical-parallel-operands",
            LintCode::NegationOnly => "negation-only-pattern",
            LintCode::CostBudgetExceeded => "cost-budget-exceeded",
        }
    }

    /// The fixed severity of this lint.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            LintCode::StartEndUnsatisfiable
            | LintCode::ParallelBoundaryDuplicate
            | LintCode::ContradictoryPredicates => Severity::Error,
            LintCode::UnknownActivity
            | LintCode::DuplicateChoiceBranch
            | LintCode::NegationOnly
            | LintCode::CostBudgetExceeded => Severity::Warning,
            LintCode::IdenticalParallelOperands => Severity::Hint,
        }
    }

    /// One-line description for registry listings.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            LintCode::StartEndUnsatisfiable => {
                "subexpression places records before START or after END"
            }
            LintCode::ParallelBoundaryDuplicate => {
                "parallel operands both require the unique START/END record"
            }
            LintCode::ContradictoryPredicates => "an atom's predicates can never hold together",
            LintCode::UnknownActivity => "activity occurs in no record of the log",
            LintCode::DuplicateChoiceBranch => "duplicate branch in a choice chain",
            LintCode::IdenticalParallelOperands => "identical operands in a parallel chain",
            LintCode::NegationOnly => "pattern has no positive activity anchor",
            LintCode::CostBudgetExceeded => "estimated evaluation cost exceeds the budget",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a lint code plus a message anchored to a source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// The lint's severity (always `code.severity()`).
    pub severity: Severity,
    /// The primary message.
    pub message: String,
    /// Byte span into the pattern source, when the pattern was parsed
    /// with spans (absent for programmatically built patterns).
    pub span: Option<Span>,
    /// Additional context lines.
    pub notes: Vec<String>,
    /// A suggested replacement or remedial action, if the analyzer has
    /// one.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic for `code` with the severity of its lint.
    #[must_use]
    pub fn new(code: LintCode, message: impl Into<String>, span: Option<Span>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            span,
            notes: Vec::new(),
            suggestion: None,
        }
    }

    /// Appends a note line.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Attaches a suggestion.
    #[must_use]
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

/// The outcome of analyzing one pattern.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// All findings, ordered by source position then code.
    pub diagnostics: Vec<Diagnostic>,
    pub(crate) unsatisfiable: bool,
}

impl Report {
    /// `true` when the analyzer proved the *whole* pattern matches no
    /// incident on any Definition 2 log. Dead subexpressions inside a
    /// choice produce error diagnostics without setting this flag,
    /// because the other branches may still match.
    #[must_use]
    pub fn unsatisfiable(&self) -> bool {
        self.unsatisfiable
    }

    /// Number of error findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning findings.
    #[must_use]
    pub fn warnings(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of hint findings.
    #[must_use]
    pub fn hints(&self) -> usize {
        self.count(Severity::Hint)
    }

    /// Whether the report contains no findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for code in LintCode::ALL {
            assert!(seen.insert(code.as_str()), "duplicate code {code}");
            assert!(code.as_str().starts_with("WLQ"));
            assert!(!code.name().is_empty());
            assert!(!code.summary().is_empty());
        }
        assert_eq!(seen.len(), LintCode::ALL.len());
    }

    #[test]
    fn error_codes_are_the_0xx_block() {
        for code in LintCode::ALL {
            let is_0xx = code.as_str().starts_with("WLQ0");
            assert_eq!(
                code.severity() == Severity::Error,
                is_0xx,
                "{code}: unsatisfiability proofs and only they are errors"
            );
        }
    }

    #[test]
    fn report_counts_by_severity() {
        let mut r = Report::default();
        r.diagnostics
            .push(Diagnostic::new(LintCode::StartEndUnsatisfiable, "x", None));
        r.diagnostics
            .push(Diagnostic::new(LintCode::UnknownActivity, "y", None));
        r.diagnostics.push(Diagnostic::new(
            LintCode::IdenticalParallelOperands,
            "z",
            None,
        ));
        assert_eq!((r.errors(), r.warnings(), r.hints()), (1, 1, 1));
        assert!(!r.is_clean());
        assert!(!r.unsatisfiable());
    }

    #[test]
    fn diagnostic_builders_attach_notes_and_suggestions() {
        let d = Diagnostic::new(LintCode::CostBudgetExceeded, "too costly", None)
            .with_note("a note")
            .with_suggestion("rewrite it");
        assert_eq!(d.notes.len(), 1);
        assert_eq!(d.suggestion.as_deref(), Some("rewrite it"));
        assert_eq!(d.severity, Severity::Warning);
    }
}
