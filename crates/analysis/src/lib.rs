//! # wlq-analysis — static analysis for incident patterns
//!
//! A lint pass that vets a Definition-3 pattern *before* the engine
//! runs it, the way SIGNAL and PQL validate process queries ahead of
//! execution:
//!
//! * **Unsatisfiability proofs** (errors `WLQ001`–`WLQ003`): shapes
//!   that can never match on any Definition-2 log — records forced
//!   before `START` or after `END`, parallel operands both claiming the
//!   unique boundary record, contradictory predicate conjunctions.
//! * **Log-aware checks** (warnings): activities that occur in no
//!   record of the checked log (`WLQ101`), and a Lemma-1 cost budget
//!   (`WLQ105`) that reuses the planner's [`wlq_pattern::CostModel`]
//!   and suggests the cheapest Theorem 2–5 rewrite.
//! * **Redundancy and style** (`WLQ102`–`WLQ104`): duplicate choice
//!   branches, identical parallel operands, negation-only patterns.
//!
//! Diagnostics are anchored to byte spans of the source text via
//! [`wlq_pattern::SpannedPattern`], rendered either rustc-style with
//! carets ([`render_human`]) or as stable JSON ([`render_json`]).
//!
//! ## Quick start
//!
//! ```
//! use wlq_analysis::{render_human, Analyzer};
//! use wlq_log::paper;
//!
//! let analyzer = Analyzer::with_log(&paper::figure3_log());
//! let report = analyzer.analyze_source("SeeDoctor -> PayTreatment")?;
//! assert!(report.is_clean());
//!
//! let report = analyzer.analyze_source("PayTreatment -> START")?;
//! assert!(report.unsatisfiable());
//! println!("{}", render_human("PayTreatment -> START", &report));
//! # Ok::<(), wlq_pattern::ParsePatternError>(())
//! ```
//!
//! The soundness contract: [`Report::unsatisfiable`] is `true` only for
//! patterns with `incL(p) = ∅` on every valid log — differentially
//! checked against the engine by the fuzz suite.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod analyzer;
mod diag;
mod render;
mod rules;

pub use analyzer::{Analyzer, DEFAULT_COST_BUDGET};
pub use diag::{Diagnostic, LintCode, Report, Severity};
pub use render::{denies, line_col, render_human, render_json, render_parse_error};
