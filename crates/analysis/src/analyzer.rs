//! The analyzer: configuration plus the rule-driving entry points.

use wlq_log::{Log, LogStats};
use wlq_pattern::{ParsePatternError, Pattern, PatternSpans, SpannedPattern};

use crate::diag::Report;
use crate::rules;

/// Default WLQ105 budget: generous enough that the paper's worked
/// examples on realistic logs stay silent, small enough to flag
/// Theorem 1 `O(m^k)` blowups on large logs.
pub const DEFAULT_COST_BUDGET: f64 = 1e8;

/// A configured static-analysis pass over incident patterns.
///
/// Purely syntactic lints always run; log-dependent lints (unknown
/// activities, cost budget) run only when the analyzer was given a log
/// or its [`LogStats`].
///
/// ```
/// use wlq_analysis::Analyzer;
/// use wlq_log::paper;
///
/// let analyzer = Analyzer::with_log(&paper::figure3_log());
/// let report = analyzer.analyze_source("CheckIn -> START")?;
/// assert!(report.unsatisfiable());
/// assert_eq!(report.errors(), 1);
/// # Ok::<(), wlq_pattern::ParsePatternError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Analyzer {
    stats: Option<LogStats>,
    cost_budget: Option<f64>,
}

impl Analyzer {
    /// An analyzer with no log context: only syntactic lints run.
    #[must_use]
    pub fn new() -> Self {
        Analyzer::default()
    }

    /// An analyzer checking patterns against `log`.
    #[must_use]
    pub fn with_log(log: &Log) -> Self {
        Analyzer::with_stats(LogStats::compute(log))
    }

    /// An analyzer checking patterns against precomputed statistics.
    #[must_use]
    pub fn with_stats(stats: LogStats) -> Self {
        Analyzer {
            stats: Some(stats),
            cost_budget: None,
        }
    }

    /// Overrides the WLQ105 cost budget (default
    /// [`DEFAULT_COST_BUDGET`]).
    #[must_use]
    pub fn cost_budget(mut self, budget: f64) -> Self {
        self.cost_budget = Some(budget);
        self
    }

    /// The statistics the analyzer checks against, if any.
    #[must_use]
    pub fn stats(&self) -> Option<&LogStats> {
        self.stats.as_ref()
    }

    /// Parses `src` with spans and analyzes the result.
    ///
    /// # Errors
    ///
    /// Returns the parse error when `src` is not a valid pattern —
    /// rendering it with a caret is the caller's job (see
    /// [`render_parse_error`](crate::render_parse_error)).
    pub fn analyze_source(&self, src: &str) -> Result<Report, ParsePatternError> {
        Ok(self.analyze(&Pattern::parse_spanned(src)?))
    }

    /// Analyzes a pattern parsed with spans: every diagnostic is
    /// anchored to the source text.
    #[must_use]
    pub fn analyze(&self, sp: &SpannedPattern) -> Report {
        self.run(&sp.pattern, Some(&sp.spans))
    }

    /// Analyzes a pattern without source spans (built programmatically
    /// or generated): diagnostics carry no anchors but are otherwise
    /// identical.
    #[must_use]
    pub fn analyze_pattern(&self, p: &Pattern) -> Report {
        self.run(p, None)
    }

    fn run(&self, p: &Pattern, spans: Option<&PatternSpans>) -> Report {
        let mut diagnostics = Vec::new();
        rules::structural(p, spans, &mut diagnostics);
        rules::duplicate_branches(p, spans, &mut diagnostics);
        rules::negation_only(p, spans, &mut diagnostics);
        if let Some(stats) = &self.stats {
            rules::unknown_activities(p, spans, stats, &mut diagnostics);
            rules::cost(
                p,
                spans,
                stats,
                self.cost_budget.unwrap_or(DEFAULT_COST_BUDGET),
                &mut diagnostics,
            );
        }
        diagnostics.sort_by_key(|d| (d.span.map_or(usize::MAX, |s| s.start), d.code.as_str()));
        Report {
            diagnostics,
            unsatisfiable: rules::unsatisfiable(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::paper;

    fn analyze(src: &str) -> Report {
        Analyzer::new().analyze_source(src).expect("valid pattern")
    }

    #[test]
    fn clean_patterns_stay_clean() {
        for src in [
            "SeeDoctor -> PayTreatment",
            "START ~> GetRefer",
            "A | B",
            "!A ~> B",
            "(A & B) -> C",
        ] {
            let r = analyze(src);
            assert!(r.is_clean(), "{src}: {:?}", r.diagnostics);
            assert!(!r.unsatisfiable());
        }
    }

    #[test]
    fn record_level_negation_shapes_are_not_flagged_unsat() {
        // `t ~> !t` is satisfiable under record-level negation: the `!t`
        // matches any single record with a different activity.
        for src in ["A ~> !A", "!A -> A", "!START ~> A"] {
            let r = analyze(src);
            assert!(!r.unsatisfiable(), "{src}");
            assert_eq!(r.errors(), 0, "{src}: {:?}", r.diagnostics);
        }
    }

    #[test]
    fn start_after_arrow_is_unsatisfiable() {
        for src in ["A -> START", "A ~> START", "A -> (START | START ~> B)"] {
            let r = analyze(src);
            assert!(r.unsatisfiable(), "{src}");
            assert!(r.errors() >= 1, "{src}");
        }
    }

    #[test]
    fn end_before_arrow_is_unsatisfiable() {
        for src in ["END -> A", "END ~> A", "(B ~> END) -> A"] {
            let r = analyze(src);
            assert!(r.unsatisfiable(), "{src}");
        }
    }

    #[test]
    fn dead_choice_branch_reports_error_without_root_verdict() {
        let r = analyze("(A -> START) | B");
        assert_eq!(r.errors(), 1);
        assert!(
            !r.unsatisfiable(),
            "the live branch B keeps the pattern satisfiable"
        );
    }

    #[test]
    fn parallel_start_duplication_is_unsatisfiable() {
        let r = analyze("START & (START ~> A)");
        assert!(r.unsatisfiable());
        assert!(r.errors() >= 1);
    }

    #[test]
    fn log_dependent_rules_need_a_log() {
        let r = analyze("NoSuchActivity -> AlsoMissing");
        assert!(r.is_clean(), "no log, no unknown-activity lint");
        let r = Analyzer::with_log(&paper::figure3_log())
            .analyze_source("NoSuchActivity -> AlsoMissing")
            .expect("parses");
        assert_eq!(r.warnings(), 2);
    }

    #[test]
    fn spanless_analysis_matches_spanned_analysis() {
        let src = "(A -> START) | (B | B)";
        let spanned = Analyzer::new().analyze_source(src).expect("parses");
        let p: Pattern = src.parse().expect("parses");
        let spanless = Analyzer::new().analyze_pattern(&p);
        let codes = |r: &Report| r.diagnostics.iter().map(|d| d.code).collect::<Vec<_>>();
        assert_eq!(codes(&spanned), codes(&spanless));
        assert_eq!(spanned.unsatisfiable(), spanless.unsatisfiable());
        assert!(spanless.diagnostics.iter().all(|d| d.span.is_none()));
        assert!(spanned.diagnostics.iter().all(|d| d.span.is_some()));
    }
}
