//! Snapshot test pinning the `--format json` schema byte-for-byte.
//!
//! If this test fails, the machine-readable output changed: bump the
//! `version` field and update downstream consumers before updating the
//! expected strings here.

use wlq_analysis::{render_json, Analyzer};
use wlq_log::paper;

#[test]
fn clean_pattern_snapshot() {
    let src = "SeeDoctor -> PayTreatment";
    let report = Analyzer::new().analyze_source(src).expect("parses");
    assert_eq!(
        render_json(src, &report),
        "{\"version\":1,\"summary\":{\"errors\":0,\"warnings\":0,\"hints\":0},\
         \"unsatisfiable\":false,\"diagnostics\":[]}"
    );
}

#[test]
fn unsatisfiable_pattern_snapshot() {
    let src = "CheckIn -> START";
    let report = Analyzer::new().analyze_source(src).expect("parses");
    assert_eq!(
        render_json(src, &report),
        "{\"version\":1,\"summary\":{\"errors\":1,\"warnings\":0,\"hints\":0},\
         \"unsatisfiable\":true,\"diagnostics\":[\
         {\"code\":\"WLQ001\",\"name\":\"unsatisfiable-start-end\",\"severity\":\"error\",\
         \"message\":\"the right operand of `->` always matches the START record, \
         so this subexpression can never match\",\
         \"span\":{\"start\":11,\"end\":16,\"line\":1,\"column\":12},\
         \"notes\":[\"START is the first record of every instance (Definition 2); \
         no record can precede it\"],\
         \"suggestion\":null}]}"
    );
}

#[test]
fn unknown_activity_snapshot() {
    let src = "Zzz ~> CheckIn";
    let report = Analyzer::with_log(&paper::figure3_log())
        .analyze_source(src)
        .expect("parses");
    assert_eq!(
        render_json(src, &report),
        "{\"version\":1,\"summary\":{\"errors\":0,\"warnings\":1,\"hints\":0},\
         \"unsatisfiable\":false,\"diagnostics\":[\
         {\"code\":\"WLQ101\",\"name\":\"unknown-activity\",\"severity\":\"warning\",\
         \"message\":\"activity `Zzz` never occurs in the log (20 records, 9 distinct activities)\",\
         \"span\":{\"start\":0,\"end\":3,\"line\":1,\"column\":1},\
         \"notes\":[\"a positive atom over an absent activity matches nothing\"],\
         \"suggestion\":null}]}"
    );
}

#[test]
fn json_is_one_line_and_versioned() {
    for src in ["A | A", "!A ~> !B", "(A -> START) | B"] {
        let report = Analyzer::new().analyze_source(src).expect("parses");
        let json = render_json(src, &report);
        assert_eq!(json.lines().count(), 1, "{src}");
        assert!(json.starts_with("{\"version\":1,"), "{src}: {json}");
        assert!(json.ends_with("]}"), "{src}: {json}");
    }
}
