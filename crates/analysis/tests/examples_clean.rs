//! Every pattern shipped in `examples/patterns.wlq` must analyze clean
//! against the paper's Figure 3 log — the same gate CI applies through
//! `wlq check --deny-warnings`.

use wlq_analysis::Analyzer;
use wlq_log::paper;

#[test]
fn shipped_example_patterns_are_clean() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/patterns.wlq"
    ))
    .expect("examples/patterns.wlq exists");
    let analyzer = Analyzer::with_log(&paper::figure3_log());
    let mut checked = 0;
    for (lineno, line) in text.lines().enumerate() {
        let src = line.trim();
        if src.is_empty() || src.starts_with('#') {
            continue;
        }
        let report = analyzer
            .analyze_source(src)
            .unwrap_or_else(|e| panic!("line {}: {src:?} does not parse: {e}", lineno + 1));
        assert!(
            report.is_clean(),
            "line {}: {src:?} is not clean: {:?}",
            lineno + 1,
            report.diagnostics
        );
        assert!(!report.unsatisfiable(), "line {}: {src:?}", lineno + 1);
        checked += 1;
    }
    assert!(
        checked >= 8,
        "expected a meaningful example set, got {checked}"
    );
}
