//! Golden tests: one triggering source per lint code, checking the
//! code, severity, span anchor, and the human caret rendering.

use wlq_analysis::{render_human, Analyzer, LintCode, Severity};
use wlq_log::paper;

/// Analyzes `src` without log context and returns the report.
fn analyze(src: &str) -> wlq_analysis::Report {
    Analyzer::new().analyze_source(src).expect("valid pattern")
}

/// Analyzes `src` against the Figure 3 log.
fn analyze_fig3(src: &str) -> wlq_analysis::Report {
    Analyzer::with_log(&paper::figure3_log())
        .analyze_source(src)
        .expect("valid pattern")
}

/// Asserts the report contains a diagnostic for `code` whose span
/// slices `src` to `slice`, and returns it.
fn expect_diag<'r>(
    report: &'r wlq_analysis::Report,
    src: &str,
    code: LintCode,
    slice: &str,
) -> &'r wlq_analysis::Diagnostic {
    let diag = report
        .diagnostics
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("no {code:?} in {:?}", report.diagnostics));
    let span = diag.span.unwrap_or_else(|| panic!("{code:?} has no span"));
    assert_eq!(span.slice(src), slice, "{code:?} anchors the wrong text");
    assert_eq!(diag.severity, code.severity());
    diag
}

#[test]
fn wlq001_start_after_arrow() {
    let src = "CheckIn -> START";
    let report = analyze(src);
    expect_diag(&report, src, LintCode::StartEndUnsatisfiable, "START");
    assert!(report.unsatisfiable());
    let human = render_human(src, &report);
    assert!(human.contains("error[WLQ001]"), "{human}");
    assert!(human.contains("^^^^^"), "{human}");
}

#[test]
fn wlq001_end_before_arrow() {
    let src = "END ~> CheckIn";
    let report = analyze(src);
    expect_diag(&report, src, LintCode::StartEndUnsatisfiable, "END");
    assert!(report.unsatisfiable());
}

#[test]
fn wlq002_parallel_boundary_duplicate() {
    let src = "START & (START ~> GetRefer)";
    let report = analyze(src);
    let diag = expect_diag(&report, src, LintCode::ParallelBoundaryDuplicate, src);
    assert!(report.unsatisfiable());
    assert!(
        diag.message.contains("START"),
        "message names the boundary: {}",
        diag.message
    );
}

#[test]
fn wlq003_contradictory_equalities() {
    let src = "GetRefer[balance = 1, balance = 2]";
    let report = analyze(src);
    expect_diag(&report, src, LintCode::ContradictoryPredicates, src);
    assert!(report.unsatisfiable());
}

#[test]
fn wlq003_empty_numeric_interval() {
    let src = "GetRefer[in.balance > 5, in.balance < 3]";
    let report = analyze(src);
    expect_diag(&report, src, LintCode::ContradictoryPredicates, src);
    assert!(report.unsatisfiable());
}

#[test]
fn wlq101_unknown_activity_needs_a_log() {
    let src = "Zzz -> CheckIn";
    assert!(analyze(src).is_clean(), "no log, no unknown-activity lint");
    let report = analyze_fig3(src);
    let diag = expect_diag(&report, src, LintCode::UnknownActivity, "Zzz");
    assert_eq!(diag.severity, Severity::Warning);
    assert!(
        !report.unsatisfiable(),
        "absence is log-specific, not a proof"
    );
}

#[test]
fn wlq102_duplicate_choice_branch() {
    let src = "CheckIn | CheckIn";
    let report = analyze(src);
    let diag = expect_diag(&report, src, LintCode::DuplicateChoiceBranch, "CheckIn");
    assert!(diag.span.unwrap().start > 0, "anchors the *second* branch");
    assert!(diag.suggestion.is_some());
    assert!(!report.unsatisfiable());
}

#[test]
fn wlq102_sees_through_associativity() {
    // `(A | B) | (B | A)` flattens to one choice chain (Theorem 4), so
    // both operands of the second group duplicate earlier branches.
    let src = "(CheckIn | SeeDoctor) | (SeeDoctor | CheckIn)";
    let report = analyze(src);
    let dups: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == LintCode::DuplicateChoiceBranch)
        .map(|d| d.span.expect("anchored").slice(src))
        .collect();
    assert_eq!(dups, ["SeeDoctor", "CheckIn"]);
    // Both carry spans in the second group, past the `|` at byte 22.
    for d in &report.diagnostics {
        assert!(d.span.unwrap().start > 22, "{d:?}");
    }
}

#[test]
fn wlq103_identical_parallel_operands_is_a_hint() {
    let src = "CheckIn & CheckIn";
    let report = analyze(src);
    let diag = expect_diag(&report, src, LintCode::IdenticalParallelOperands, "CheckIn");
    assert_eq!(diag.severity, Severity::Hint);
    assert!(
        !report.unsatisfiable(),
        "two distinct CheckIn records can exist"
    );
}

#[test]
fn wlq104_negation_only() {
    let src = "!CheckIn ~> !SeeDoctor";
    let report = analyze(src);
    let diag = expect_diag(&report, src, LintCode::NegationOnly, src);
    assert!(
        diag.suggestion.is_some(),
        "suggests adding a positive anchor"
    );
    // One positive atom anywhere silences it.
    assert!(analyze("!CheckIn ~> PayTreatment")
        .diagnostics
        .iter()
        .all(|d| d.code != LintCode::NegationOnly));
}

#[test]
fn wlq105_cost_budget_with_rewrite_suggestion() {
    let src = "SeeDoctor -> PayTreatment";
    let report = Analyzer::with_log(&paper::figure3_log())
        .cost_budget(1.0)
        .analyze_source(src)
        .expect("valid pattern");
    let diag = expect_diag(&report, src, LintCode::CostBudgetExceeded, src);
    assert!(
        diag.message.contains("cost"),
        "message states the estimate: {}",
        diag.message
    );
    // With the default budget the same pattern is silent.
    assert!(analyze_fig3(src).is_clean());
}

#[test]
fn every_lint_code_has_a_golden_trigger() {
    // The cases above cover the whole registry; this guards against a
    // new lint landing without a golden test.
    assert_eq!(LintCode::ALL.len(), 8);
}
