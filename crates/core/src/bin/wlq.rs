//! `wlq` — command-line interface to the workflow-log query engine.
//!
//! ```text
//! wlq simulate <clinic|order|loan|helpdesk> <instances> <seed> [out-file]
//! wlq stats    <log-file>
//! wlq validate <log-file>
//! wlq query    <log-file> <pattern> [--count|--exists|--by-instance]
//!              [--naive] [--no-optimize] [--threads N]
//! wlq explain  <log-file> <pattern>
//! wlq timeline <log-file> <pattern> [step]
//! wlq spans    <log-file> <pattern>
//! wlq mine     <log-file> [min-support]
//! wlq check    <clinic|order|loan|helpdesk> <log-file>
//! wlq audit    <log-file> [rules-file]
//! wlq convert  <in-file> <out-file>
//! wlq dot      <clinic|order|loan|helpdesk>
//! wlq example
//! ```
//!
//! Log files are read/written by extension: `.csv` (CSV), `.bin`
//! (binary), `.xes` (IEEE XES subset), anything else the Figure 3-style
//! text table.

use std::process::ExitCode;

use wlq::{
    io, mine_relations, scenarios, simulate, Explain, Log, LogStats, Pattern, Query,
    SimulationConfig, Strategy, WorkflowModel,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `wlq help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        "example" => {
            print!("{}", io::text::write_text(&wlq::paper::figure3_log()));
            Ok(())
        }
        "simulate" => cmd_simulate(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "validate" => cmd_validate(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "timeline" => cmd_timeline(&args[1..]),
        "spans" => cmd_spans(&args[1..]),
        "mine" => cmd_mine(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "convert" => cmd_convert(&args[1..]),
        "audit" => cmd_audit(&args[1..]),
        "dot" => cmd_dot(&args[1..]),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn usage() -> String {
    "wlq — query workflow logs with incident patterns\n\
     \n\
     commands:\n\
     \x20 simulate <clinic|order|loan|helpdesk> <instances> <seed> [out-file]\n\
     \x20 stats    <log-file>\n\
     \x20 validate <log-file>\n\
     \x20 query    <log-file> <pattern> [--count|--exists|--by-instance] [--naive] [--no-optimize] [--threads N]\n\
     \x20 explain  <log-file> <pattern>\n\
     \x20 timeline <log-file> <pattern> [step]\n\
     \x20 spans    <log-file> <pattern>\n\
     \x20 mine     <log-file> [min-support]\n\
     \x20 check    <clinic|order|loan|helpdesk> <log-file>\n\
     \x20 audit    <log-file> [rules-file]\n\
     \x20 convert  <in-file> <out-file>\n\
     \x20 dot      <clinic|order|loan|helpdesk>\n\
     \x20 example\n\
     \n\
     pattern syntax: activity names composed with ~> (consecutive), -> (sequential),\n\
     | (choice), & (parallel); !A negates; A[out.balance > 5000] filters attributes.\n"
        .to_string()
}

fn scenario_model(name: &str) -> Result<WorkflowModel, String> {
    match name {
        "clinic" => Ok(scenarios::clinic::model()),
        "order" => Ok(scenarios::order::model()),
        "loan" => Ok(scenarios::loan::model()),
        "helpdesk" => Ok(scenarios::helpdesk::model()),
        other => Err(format!(
            "unknown scenario {other:?} (expected clinic, order, loan, or helpdesk)"
        )),
    }
}

fn read_log(path: &str) -> Result<Log, String> {
    let read_err = |e: std::io::Error| format!("cannot read {path}: {e}");
    if path.ends_with(".bin") {
        let raw = std::fs::read(path).map_err(read_err)?;
        io::binary::read_binary(raw.into()).map_err(|e| format!("{path}: {e}"))
    } else {
        let text = std::fs::read_to_string(path).map_err(read_err)?;
        if path.ends_with(".csv") {
            io::csv::read_csv(&text).map_err(|e| format!("{path}: {e}"))
        } else if path.ends_with(".xes") {
            io::xes::read_xes(&text).map_err(|e| format!("{path}: {e}"))
        } else {
            io::text::read_text(&text).map_err(|e| format!("{path}: {e}"))
        }
    }
}

fn write_log(log: &Log, path: &str) -> Result<(), String> {
    let write_err = |e: std::io::Error| format!("cannot write {path}: {e}");
    if path.ends_with(".bin") {
        std::fs::write(path, io::binary::write_binary(log)).map_err(write_err)
    } else if path.ends_with(".csv") {
        std::fs::write(path, io::csv::write_csv(log)).map_err(write_err)
    } else if path.ends_with(".xes") {
        std::fs::write(path, io::xes::write_xes(log)).map_err(write_err)
    } else {
        std::fs::write(path, io::text::write_text(log)).map_err(write_err)
    }
}

fn parse_pattern(src: &str) -> Result<Pattern, String> {
    src.parse().map_err(|e| format!("bad pattern {src:?}: {e}"))
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let [scenario, instances, seed, rest @ ..] = args else {
        return Err("usage: simulate <scenario> <instances> <seed> [out-file]".to_string());
    };
    let model = scenario_model(scenario)?;
    let instances: usize = instances
        .parse()
        .map_err(|_| format!("instances must be a number, got {instances:?}"))?;
    let seed: u64 = seed
        .parse()
        .map_err(|_| format!("seed must be a number, got {seed:?}"))?;
    let log = simulate(&model, &SimulationConfig::new(instances, seed));
    match rest {
        [] => print!("{}", io::text::write_text(&log)),
        [path] => {
            write_log(&log, path)?;
            println!(
                "wrote {} records ({} instances) to {path}",
                log.len(),
                log.num_instances()
            );
        }
        _ => return Err("too many arguments to simulate".to_string()),
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("usage: stats <log-file>".to_string());
    };
    let log = read_log(path)?;
    print!("{}", LogStats::compute(&log));
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("usage: validate <log-file>".to_string());
    };
    let log = read_log(path)?;
    println!(
        "valid log: {} records, {} instances ({} completed)",
        log.len(),
        log.num_instances(),
        log.wids().filter(|&w| log.is_completed(w)).count()
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let [path, pattern_src, flags @ ..] = args else {
        return Err("usage: query <log-file> <pattern> [flags]".to_string());
    };
    let log = read_log(path)?;
    let mut query = Query::parse(pattern_src).map_err(|e| format!("bad pattern: {e}"))?;
    let mut mode = "list";
    let mut iter = flags.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--count" => mode = "count",
            "--exists" => mode = "exists",
            "--by-instance" => mode = "by-instance",
            "--naive" => query = query.strategy(Strategy::NaivePaper),
            "--no-optimize" => query = query.optimize(false),
            "--threads" => {
                let n: usize = iter
                    .next()
                    .ok_or("--threads needs a number")?
                    .parse()
                    .map_err(|_| "--threads needs a number".to_string())?;
                query = query.threads(n);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    match mode {
        "count" => println!("{}", query.count(&log)),
        "exists" => println!("{}", query.exists(&log)),
        "by-instance" => {
            for (wid, count) in query.count_by_instance(&log) {
                println!("wid {wid}: {count}");
            }
        }
        _ => {
            let incidents = query.find(&log);
            println!(
                "{} incident(s) in {} instance(s)",
                incidents.len(),
                incidents.num_matched_instances()
            );
            for incident in incidents.iter().take(50) {
                println!("  {incident}");
            }
            if incidents.len() > 50 {
                println!("  … {} more", incidents.len() - 50);
            }
        }
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let [path, pattern_src] = args else {
        return Err("usage: explain <log-file> <pattern>".to_string());
    };
    let log = read_log(path)?;
    let pattern = parse_pattern(pattern_src)?;
    let explain = Explain::run(&log, &pattern, true, Strategy::Optimized);
    print!("{explain}");
    Ok(())
}

fn cmd_timeline(args: &[String]) -> Result<(), String> {
    let (path, pattern_src, step) = match args {
        [path, pattern] => (path, pattern, 0usize),
        [path, pattern, step] => (
            path,
            pattern,
            step.parse()
                .map_err(|_| format!("step must be a number, got {step:?}"))?,
        ),
        _ => return Err("usage: timeline <log-file> <pattern> [step]".to_string()),
    };
    let log = read_log(path)?;
    let pattern = parse_pattern(pattern_src)?;
    let step = if step == 0 {
        (log.len() / 10).max(1)
    } else {
        step
    };
    println!("{:>10} {:>12} {:>8}", "up to lsn", "incidents", "new");
    for point in wlq::timeline(&log, &pattern, step) {
        println!(
            "{:>10} {:>12} {:>8}",
            point.lsn.get(),
            point.incidents,
            point.delta
        );
    }
    Ok(())
}

fn cmd_spans(args: &[String]) -> Result<(), String> {
    let [path, pattern_src] = args else {
        return Err("usage: spans <log-file> <pattern>".to_string());
    };
    let log = read_log(path)?;
    let query = Query::parse(pattern_src).map_err(|e| format!("bad pattern: {e}"))?;
    match query.span_stats(&log) {
        Some(stats) => println!("{stats}"),
        None => println!("no incidents"),
    }
    Ok(())
}

fn cmd_mine(args: &[String]) -> Result<(), String> {
    let (path, min_support) = match args {
        [path] => (path, 2),
        [path, support] => (
            path,
            support
                .parse()
                .map_err(|_| format!("min-support must be a number, got {support:?}"))?,
        ),
        _ => return Err("usage: mine <log-file> [min-support]".to_string()),
    };
    let log = read_log(path)?;
    let relations = mine_relations(&log, min_support);
    println!(
        "{} relation(s) with support ≥ {min_support}:",
        relations.len()
    );
    for relation in relations {
        println!(
            "  {:<40} support {}",
            relation.pattern.to_string(),
            relation.support
        );
    }
    Ok(())
}

fn cmd_check(args: &[String]) -> Result<(), String> {
    let [scenario, path] = args else {
        return Err("usage: check <scenario> <log-file>".to_string());
    };
    let model = scenario_model(scenario)?;
    let log = read_log(path)?;
    let report = model.check_log(&log);
    let violations = report.violations();
    for (wid, verdict) in &report.verdicts {
        println!("wid {wid}: {verdict:?}");
    }
    if violations.is_empty() {
        println!("log conforms to {}", model.name());
        Ok(())
    } else {
        Err(format!(
            "{} instance(s) violate the model",
            violations.len()
        ))
    }
}

fn cmd_audit(args: &[String]) -> Result<(), String> {
    let (path, rules) = match args {
        [path] => (path, wlq::rules::RuleSet::clinic_fraud()),
        [path, rules_file] => {
            let text = std::fs::read_to_string(rules_file)
                .map_err(|e| format!("cannot read {rules_file}: {e}"))?;
            (
                path,
                wlq::rules::RuleSet::parse(&text).map_err(|e| e.to_string())?,
            )
        }
        _ => return Err("usage: audit <log-file> [rules-file]".to_string()),
    };
    let log = read_log(path)?;
    let report = rules.audit(&log);
    print!("{report}");
    for (wid, hits) in report.repeat_offenders(2).into_iter().take(10) {
        println!("  repeat offender: instance {wid} tripped {hits} rules");
    }
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), String> {
    let [input, output] = args else {
        return Err("usage: convert <in-file> <out-file>".to_string());
    };
    let log = read_log(input)?;
    write_log(&log, output)?;
    println!("converted {} records: {input} -> {output}", log.len());
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let [scenario] = args else {
        return Err("usage: dot <scenario>".to_string());
    };
    print!("{}", scenario_model(scenario)?.to_dot());
    Ok(())
}
