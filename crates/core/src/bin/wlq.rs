//! `wlq` — command-line interface to the workflow-log query engine.
//!
//! ```text
//! wlq simulate <clinic|order|loan|helpdesk> <instances> <seed> [out-file]
//! wlq stats    <log-file>
//! wlq validate <log-file>
//! wlq query    <log-file> <pattern> [--count|--exists|--by-instance]
//!              [--naive] [--no-optimize] [--threads N]
//!              [--profile] [--trace-out <trace-file>]
//! wlq explain  <log-file> <pattern> [--plan|--analyze]
//!              [--threads N] [--trace-out <trace-file>]
//! wlq explain  --analyze <pattern> --log <log-file>
//! wlq trace-check <trace-file>
//! wlq timeline <log-file> <pattern> [step]
//! wlq spans    <log-file> <pattern>
//! wlq mine     <log-file> [min-support]
//! wlq check    <pattern> [--log <log-file>] [--format human|json]
//!              [--deny-warnings] [--cost-budget N]
//! wlq conform  <clinic|order|loan|helpdesk> <log-file>
//! wlq audit    <log-file> [rules-file]
//! wlq convert  <in-file> <out-file>
//! wlq dot      <clinic|order|loan|helpdesk>
//! wlq example
//! ```
//!
//! Log files are read/written by extension: `.csv` (CSV), `.bin`
//! (binary), `.xes` (IEEE XES subset), anything else the Figure 3-style
//! text table.
//!
//! ## Exit codes
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | domain failure (e.g. `conform` found violating instances, or `check` found lint errors) |
//! | 2 | usage error (unknown command/scenario/flag, bad argument) |
//! | 3 | pattern or rule-file parse error |
//! | 4 | file I/O error |
//! | 5 | malformed log file |
//! | 6 | engine evaluation error |

use std::fmt;
use std::process::ExitCode;

use wlq::{
    denies, io, mine_relations, profile_evaluation, render_human, render_json, render_parse_error,
    render_trace, scenarios, simulate, validate_trace, Analyzer, EngineError, ExecutionProfile,
    Explain, Log, LogStats, Pattern, Query, SimulationConfig, Strategy, WorkflowModel,
};

/// A CLI failure, categorised for its exit code.
#[derive(Debug)]
enum CliError {
    /// The invocation itself was wrong (exit 2).
    Usage(String),
    /// A pattern or rule file failed to parse (exit 3).
    Parse(String),
    /// A file could not be read or written (exit 4).
    Io(String),
    /// A log file was read but is not a valid log (exit 5).
    InvalidLog(String),
    /// The engine reported an evaluation error (exit 6).
    Engine(EngineError),
    /// The command ran but the answer is a failure, e.g. a
    /// non-conforming log (exit 1).
    Domain(String),
}

impl CliError {
    fn exit_code(&self) -> u8 {
        match self {
            CliError::Domain(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Parse(_) => 3,
            CliError::Io(_) => 4,
            CliError::InvalidLog(_) => 5,
            CliError::Engine(_) => 6,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m)
            | CliError::Parse(m)
            | CliError::Io(m)
            | CliError::InvalidLog(m)
            | CliError::Domain(m) => f.write_str(m),
            CliError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl From<EngineError> for CliError {
    fn from(e: EngineError) -> Self {
        CliError::Engine(e)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `wlq help` for usage");
            ExitCode::from(e.exit_code())
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "help" | "--help" | "-h" => {
            print!("{}", usage());
            Ok(())
        }
        "example" => {
            print!("{}", io::text::write_text(&wlq::paper::figure3_log()));
            Ok(())
        }
        "simulate" => cmd_simulate(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "validate" => cmd_validate(&args[1..]),
        "query" => cmd_query(&args[1..]),
        "explain" => cmd_explain(&args[1..]),
        "trace-check" => cmd_trace_check(&args[1..]),
        "timeline" => cmd_timeline(&args[1..]),
        "spans" => cmd_spans(&args[1..]),
        "mine" => cmd_mine(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "conform" => cmd_conform(&args[1..]),
        "convert" => cmd_convert(&args[1..]),
        "audit" => cmd_audit(&args[1..]),
        "dot" => cmd_dot(&args[1..]),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

fn usage() -> String {
    "wlq — query workflow logs with incident patterns\n\
     \n\
     commands:\n\
     \x20 simulate <clinic|order|loan|helpdesk> <instances> <seed> [out-file]\n\
     \x20 stats    <log-file>\n\
     \x20 validate <log-file>\n\
     \x20 query    <log-file> <pattern> [--count|--exists|--by-instance] [--naive] [--no-optimize] [--threads N]\n\
     \x20          [--profile] [--trace-out <trace-file>]\n\
     \x20 explain  <log-file> <pattern> [--plan|--analyze] [--threads N] [--trace-out <trace-file>]\n\
     \x20          (--analyze also accepts: explain --analyze <pattern> --log <log-file>)\n\
     \x20 trace-check <trace-file>\n\
     \x20 timeline <log-file> <pattern> [step]\n\
     \x20 spans    <log-file> <pattern>\n\
     \x20 mine     <log-file> [min-support]\n\
     \x20 check    <pattern> [--log <log-file>] [--format human|json] [--deny-warnings] [--cost-budget N]\n\
     \x20 conform  <clinic|order|loan|helpdesk> <log-file>\n\
     \x20 audit    <log-file> [rules-file]\n\
     \x20 convert  <in-file> <out-file>\n\
     \x20 dot      <clinic|order|loan|helpdesk>\n\
     \x20 example\n\
     \n\
     exit codes: 0 ok, 1 domain failure, 2 usage, 3 pattern/rules parse,\n\
     4 file I/O, 5 malformed log, 6 engine error\n\
     \n\
     pattern syntax: activity names composed with ~> (consecutive), -> (sequential),\n\
     | (choice), & (parallel); !A negates; A[out.balance > 5000] filters attributes.\n"
        .to_string()
}

fn usage_err(msg: &str) -> CliError {
    CliError::Usage(msg.to_string())
}

fn scenario_model(name: &str) -> Result<WorkflowModel, CliError> {
    match name {
        "clinic" => Ok(scenarios::clinic::model()),
        "order" => Ok(scenarios::order::model()),
        "loan" => Ok(scenarios::loan::model()),
        "helpdesk" => Ok(scenarios::helpdesk::model()),
        other => Err(CliError::Usage(format!(
            "unknown scenario {other:?} (expected clinic, order, loan, or helpdesk)"
        ))),
    }
}

fn read_log(path: &str) -> Result<Log, CliError> {
    let read_err = |e: std::io::Error| CliError::Io(format!("cannot read {path}: {e}"));
    if path.ends_with(".bin") {
        let raw = std::fs::read(path).map_err(read_err)?;
        io::binary::read_binary(raw.into())
            .map_err(|e| CliError::InvalidLog(format!("{path}: {e}")))
    } else {
        let text = std::fs::read_to_string(path).map_err(read_err)?;
        let parsed = if path.ends_with(".csv") {
            io::csv::read_csv(&text)
        } else if path.ends_with(".xes") {
            io::xes::read_xes(&text)
        } else {
            io::text::read_text(&text)
        };
        parsed.map_err(|e| CliError::InvalidLog(format!("{path}: {e}")))
    }
}

fn write_log(log: &Log, path: &str) -> Result<(), CliError> {
    let write_err = |e: std::io::Error| CliError::Io(format!("cannot write {path}: {e}"));
    if path.ends_with(".bin") {
        std::fs::write(path, io::binary::write_binary(log)).map_err(write_err)
    } else if path.ends_with(".csv") {
        std::fs::write(path, io::csv::write_csv(log)).map_err(write_err)
    } else if path.ends_with(".xes") {
        std::fs::write(path, io::xes::write_xes(log)).map_err(write_err)
    } else {
        std::fs::write(path, io::text::write_text(log)).map_err(write_err)
    }
}

/// Parses a pattern, rendering failures with the same caret snippet the
/// analyzer uses so the offending token is pointed at directly.
fn parse_pattern(src: &str) -> Result<Pattern, CliError> {
    src.parse().map_err(|e| parse_failure(src, &e))
}

fn parse_failure(src: &str, err: &wlq::ParsePatternError) -> CliError {
    // `main` prefixes the message with "error: ", which the renderer
    // also emits — drop the renderer's copy.
    let rendered = render_parse_error(src, err);
    let msg = rendered.strip_prefix("error: ").unwrap_or(&rendered);
    CliError::Parse(msg.trim_end().to_string())
}

fn cmd_simulate(args: &[String]) -> Result<(), CliError> {
    let [scenario, instances, seed, rest @ ..] = args else {
        return Err(usage_err(
            "usage: simulate <scenario> <instances> <seed> [out-file]",
        ));
    };
    let model = scenario_model(scenario)?;
    let instances: usize = instances
        .parse()
        .map_err(|_| CliError::Usage(format!("instances must be a number, got {instances:?}")))?;
    let seed: u64 = seed
        .parse()
        .map_err(|_| CliError::Usage(format!("seed must be a number, got {seed:?}")))?;
    let log = simulate(&model, &SimulationConfig::new(instances, seed));
    match rest {
        [] => print!("{}", io::text::write_text(&log)),
        [path] => {
            write_log(&log, path)?;
            println!(
                "wrote {} records ({} instances) to {path}",
                log.len(),
                log.num_instances()
            );
        }
        _ => return Err(usage_err("too many arguments to simulate")),
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let [path] = args else {
        return Err(usage_err("usage: stats <log-file>"));
    };
    let log = read_log(path)?;
    print!("{}", LogStats::compute(&log));
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), CliError> {
    let [path] = args else {
        return Err(usage_err("usage: validate <log-file>"));
    };
    let log = read_log(path)?;
    println!(
        "valid log: {} records, {} instances ({} completed)",
        log.len(),
        log.num_instances(),
        log.wids().filter(|&w| log.is_completed(w)).count()
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), CliError> {
    let [path, pattern_src, flags @ ..] = args else {
        return Err(usage_err("usage: query <log-file> <pattern> [flags]"));
    };
    let log = read_log(path)?;
    let mut query = Query::parse(pattern_src).map_err(|e| parse_failure(pattern_src, &e))?;
    let mut mode = "list";
    let mut naive = false;
    let mut threads = 1usize;
    let mut profile = false;
    let mut trace_out: Option<&str> = None;
    let mut iter = flags.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--count" => mode = "count",
            "--exists" => mode = "exists",
            "--by-instance" => mode = "by-instance",
            "--naive" => {
                naive = true;
                query = query.strategy(Strategy::NaivePaper);
            }
            "--no-optimize" => query = query.optimize(false),
            "--threads" => {
                let n: usize = iter
                    .next()
                    .ok_or_else(|| usage_err("--threads needs a number"))?
                    .parse()
                    .map_err(|_| usage_err("--threads needs a number"))?;
                threads = n;
                query = query.threads(n);
            }
            "--profile" => profile = true,
            "--trace-out" => {
                trace_out = Some(
                    iter.next()
                        .ok_or_else(|| usage_err("--trace-out needs a file"))?
                        .as_str(),
                );
            }
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    if trace_out.is_some() && !profile {
        return Err(usage_err("--trace-out requires --profile"));
    }
    if profile {
        // The profiled path evaluates the pattern as written (the
        // planner still applies its own rewrites under the default
        // strategy) and answers the same mode from the returned set.
        let pattern = parse_pattern(pattern_src)?;
        let strategy = if naive {
            Strategy::NaivePaper
        } else {
            Strategy::default()
        };
        let (incidents, profile) = profile_evaluation(&log, &pattern, strategy, threads)?;
        match mode {
            "count" => println!("{}", incidents.len()),
            "exists" => println!("{}", !incidents.is_empty()),
            "by-instance" => {
                for (wid, count) in incidents.counts_by_wid() {
                    println!("wid {wid}: {count}");
                }
            }
            _ => {
                println!(
                    "{} incident(s) in {} instance(s)",
                    incidents.len(),
                    incidents.num_matched_instances()
                );
                for incident in incidents.iter().take(50) {
                    println!("  {incident}");
                }
                if incidents.len() > 50 {
                    println!("  … {} more", incidents.len() - 50);
                }
            }
        }
        println!();
        print!("{profile}");
        if let Some(out) = trace_out {
            write_trace(&profile, out)?;
        }
        return Ok(());
    }
    match mode {
        "count" => println!("{}", query.count(&log)?),
        "exists" => println!("{}", query.exists(&log)?),
        "by-instance" => {
            for (wid, count) in query.count_by_instance(&log)? {
                println!("wid {wid}: {count}");
            }
        }
        _ => {
            let incidents = query.find(&log)?;
            println!(
                "{} incident(s) in {} instance(s)",
                incidents.len(),
                incidents.num_matched_instances()
            );
            for incident in incidents.iter().take(50) {
                println!("  {incident}");
            }
            if incidents.len() > 50 {
                println!("  … {} more", incidents.len() - 50);
            }
        }
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), CliError> {
    const USAGE: &str = "usage: explain <log-file> <pattern> [--plan|--analyze] \
                         [--threads N] [--trace-out <trace-file>] \
                         (or: explain --analyze <pattern> --log <log-file>)";
    let mut positional: Vec<&str> = Vec::new();
    let mut plan = false;
    let mut analyze = false;
    let mut log_path: Option<&str> = None;
    let mut threads = 1usize;
    let mut trace_out: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            // --plan: run under the cost-based planner and print the
            // chosen physical operator tree alongside the
            // estimate/actual table.
            "--plan" => plan = true,
            // --analyze: actually execute the plan and print per-node
            // actuals (rows, pairs, bytes, wall time) next to the
            // planner's estimates, with a Q-error column.
            "--analyze" => analyze = true,
            "--log" => {
                log_path = Some(
                    iter.next()
                        .ok_or_else(|| usage_err("--log needs a file"))?
                        .as_str(),
                );
            }
            "--threads" => {
                threads = iter
                    .next()
                    .ok_or_else(|| usage_err("--threads needs a number"))?
                    .parse()
                    .map_err(|_| usage_err("--threads needs a number"))?;
            }
            "--trace-out" => {
                trace_out = Some(
                    iter.next()
                        .ok_or_else(|| usage_err("--trace-out needs a file"))?
                        .as_str(),
                );
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown flag {flag:?}")))
            }
            other => positional.push(other),
        }
    }
    if plan && analyze {
        return Err(usage_err("--plan and --analyze are mutually exclusive"));
    }
    if trace_out.is_some() && !analyze {
        return Err(usage_err("--trace-out requires --analyze"));
    }
    let (path, pattern_src) = match (log_path, positional.as_slice()) {
        (Some(path), [pattern]) => (path, *pattern),
        (None, [path, pattern]) => (*path, *pattern),
        _ => return Err(usage_err(USAGE)),
    };
    let log = read_log(path)?;
    let pattern = parse_pattern(pattern_src)?;
    if analyze {
        let (_, profile) = profile_evaluation(&log, &pattern, Strategy::default(), threads)?;
        print!("{profile}");
        if let Some(out) = trace_out {
            write_trace(&profile, out)?;
        }
        return Ok(());
    }
    let strategy = if plan {
        Strategy::Planned
    } else {
        Strategy::Optimized
    };
    let explain = Explain::run(&log, &pattern, true, strategy);
    print!("{explain}");
    Ok(())
}

/// Writes a profile's JSON Lines trace to `path` and confirms.
fn write_trace(profile: &ExecutionProfile, path: &str) -> Result<(), CliError> {
    let trace = render_trace(profile);
    std::fs::write(path, &trace).map_err(|e| CliError::Io(format!("cannot write {path}: {e}")))?;
    println!("wrote trace ({} events) to {path}", trace.lines().count());
    Ok(())
}

/// `wlq trace-check <trace-file>` — validates a JSON Lines execution
/// trace against the schema `--trace-out` emits (exit 1 if invalid).
fn cmd_trace_check(args: &[String]) -> Result<(), CliError> {
    let [path] = args else {
        return Err(usage_err("usage: trace-check <trace-file>"));
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read {path}: {e}")))?;
    match validate_trace(&text) {
        Ok(summary) => {
            println!(
                "valid trace: version {}, {} node(s), {} worker(s), {} event(s), {} incident(s)",
                summary.version,
                summary.nodes,
                summary.workers,
                summary.events,
                summary.total_incidents
            );
            Ok(())
        }
        Err(e) => Err(CliError::Domain(format!("invalid trace {path}: {e}"))),
    }
}

fn cmd_timeline(args: &[String]) -> Result<(), CliError> {
    let (path, pattern_src, step) = match args {
        [path, pattern] => (path, pattern, 0usize),
        [path, pattern, step] => (
            path,
            pattern,
            step.parse()
                .map_err(|_| CliError::Usage(format!("step must be a number, got {step:?}")))?,
        ),
        _ => return Err(usage_err("usage: timeline <log-file> <pattern> [step]")),
    };
    let log = read_log(path)?;
    let pattern = parse_pattern(pattern_src)?;
    let step = if step == 0 {
        (log.len() / 10).max(1)
    } else {
        step
    };
    println!("{:>10} {:>12} {:>8}", "up to lsn", "incidents", "new");
    for point in wlq::timeline(&log, &pattern, step)? {
        println!(
            "{:>10} {:>12} {:>8}",
            point.lsn.get(),
            point.incidents,
            point.delta
        );
    }
    Ok(())
}

fn cmd_spans(args: &[String]) -> Result<(), CliError> {
    let [path, pattern_src] = args else {
        return Err(usage_err("usage: spans <log-file> <pattern>"));
    };
    let log = read_log(path)?;
    let query = Query::parse(pattern_src).map_err(|e| parse_failure(pattern_src, &e))?;
    match query.span_stats(&log)? {
        Some(stats) => println!("{stats}"),
        None => println!("no incidents"),
    }
    Ok(())
}

fn cmd_mine(args: &[String]) -> Result<(), CliError> {
    let (path, min_support) = match args {
        [path] => (path, 2),
        [path, support] => (
            path,
            support.parse().map_err(|_| {
                CliError::Usage(format!("min-support must be a number, got {support:?}"))
            })?,
        ),
        _ => return Err(usage_err("usage: mine <log-file> [min-support]")),
    };
    let log = read_log(path)?;
    let relations = mine_relations(&log, min_support);
    println!(
        "{} relation(s) with support ≥ {min_support}:",
        relations.len()
    );
    for relation in relations {
        println!(
            "  {:<40} support {}",
            relation.pattern.to_string(),
            relation.support
        );
    }
    Ok(())
}

/// `wlq check <pattern> …` — the static analyzer.
///
/// Exit code 0 when the pattern is clean (or has only allowed
/// warnings/hints), 1 when a lint error fires or `--deny-warnings`
/// upgrades a warning, 3 on parse errors.
fn cmd_check(args: &[String]) -> Result<(), CliError> {
    const USAGE: &str =
        "usage: check <pattern> [--log <log-file>] [--format human|json] [--deny-warnings] [--cost-budget N]";
    let [pattern_src, flags @ ..] = args else {
        return Err(usage_err(USAGE));
    };
    let mut log_path: Option<&str> = None;
    let mut format = "human";
    let mut deny_warnings = false;
    let mut cost_budget: Option<f64> = None;
    let mut iter = flags.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--log" => {
                log_path = Some(
                    iter.next()
                        .ok_or_else(|| usage_err("--log needs a file"))?
                        .as_str(),
                );
            }
            "--format" => {
                format = iter
                    .next()
                    .ok_or_else(|| usage_err("--format needs `human` or `json`"))?
                    .as_str();
                if format != "human" && format != "json" {
                    return Err(CliError::Usage(format!(
                        "--format must be `human` or `json`, got {format:?}"
                    )));
                }
            }
            "--deny-warnings" => deny_warnings = true,
            "--cost-budget" => {
                let n: f64 = iter
                    .next()
                    .ok_or_else(|| usage_err("--cost-budget needs a number"))?
                    .parse()
                    .map_err(|_| usage_err("--cost-budget needs a number"))?;
                cost_budget = Some(n);
            }
            other => return Err(CliError::Usage(format!("unknown flag {other:?}"))),
        }
    }
    let mut analyzer = match log_path {
        Some(path) => Analyzer::with_log(&read_log(path)?),
        None => Analyzer::new(),
    };
    if let Some(budget) = cost_budget {
        analyzer = analyzer.cost_budget(budget);
    }
    let report = analyzer
        .analyze_source(pattern_src)
        .map_err(|e| parse_failure(pattern_src, &e))?;
    match format {
        "json" => println!("{}", render_json(pattern_src, &report)),
        _ => print!("{}", render_human(pattern_src, &report)),
    }
    let denied = report
        .diagnostics
        .iter()
        .filter(|d| denies(d.severity, deny_warnings))
        .count();
    if denied > 0 {
        Err(CliError::Domain(format!(
            "check failed: {denied} denied diagnostic(s)"
        )))
    } else {
        Ok(())
    }
}

fn cmd_conform(args: &[String]) -> Result<(), CliError> {
    let [scenario, path] = args else {
        return Err(usage_err("usage: conform <scenario> <log-file>"));
    };
    let model = scenario_model(scenario)?;
    let log = read_log(path)?;
    let report = model.check_log(&log);
    let violations = report.violations();
    for (wid, verdict) in &report.verdicts {
        println!("wid {wid}: {verdict:?}");
    }
    if violations.is_empty() {
        println!("log conforms to {}", model.name());
        Ok(())
    } else {
        Err(CliError::Domain(format!(
            "{} instance(s) violate the model",
            violations.len()
        )))
    }
}

fn cmd_audit(args: &[String]) -> Result<(), CliError> {
    let (path, rules) = match args {
        [path] => (path, wlq::rules::RuleSet::clinic_fraud()),
        [path, rules_file] => {
            let text = std::fs::read_to_string(rules_file)
                .map_err(|e| CliError::Io(format!("cannot read {rules_file}: {e}")))?;
            (
                path,
                wlq::rules::RuleSet::parse(&text).map_err(|e| CliError::Parse(e.to_string()))?,
            )
        }
        _ => return Err(usage_err("usage: audit <log-file> [rules-file]")),
    };
    let log = read_log(path)?;
    let report = rules.audit(&log)?;
    print!("{report}");
    for (wid, hits) in report.repeat_offenders(2).into_iter().take(10) {
        println!("  repeat offender: instance {wid} tripped {hits} rules");
    }
    Ok(())
}

fn cmd_convert(args: &[String]) -> Result<(), CliError> {
    let [input, output] = args else {
        return Err(usage_err("usage: convert <in-file> <out-file>"));
    };
    let log = read_log(input)?;
    write_log(&log, output)?;
    println!("converted {} records: {input} -> {output}", log.len());
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), CliError> {
    let [scenario] = args else {
        return Err(usage_err("usage: dot <scenario>"));
    };
    print!("{}", scenario_model(scenario)?.to_dot());
    Ok(())
}
