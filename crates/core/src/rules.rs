//! Named rule sets: reusable batteries of incident-pattern queries.
//!
//! The paper closes by suggesting queries "constructed from business
//! principles" for fraud detection. A [`RuleSet`] is exactly that: named
//! patterns with descriptions, parsed from a simple text format, run
//! together as an audit.
//!
//! ## Rule-file format
//!
//! One rule per line: `name := pattern  # optional description`.
//! Blank lines and lines starting with `#` are skipped.
//!
//! ```text
//! # clinic fraud battery
//! update-before-reimburse := UpdateRefer -> GetReimburse # budget raised before payout
//! double-update           := UpdateRefer -> UpdateRefer
//! ```

use std::collections::BTreeMap;
use std::fmt;

use wlq_engine::{EngineError, IncidentSet, Query};
use wlq_log::{Log, Wid};
use wlq_pattern::ParsePatternError;

/// A named, documented incident-pattern query.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Identifier (no whitespace).
    pub name: String,
    /// Human explanation of what a hit means.
    pub description: String,
    /// The pattern to evaluate.
    pub query: Query,
}

/// A parse failure for a rule file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleParseError {
    /// 1-based line of the offending rule.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for RuleParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for RuleParseError {}

/// An ordered collection of [`Rule`]s.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Creates an empty rule set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule built from a pattern source string.
    ///
    /// # Errors
    ///
    /// Returns the pattern parser's error on bad syntax.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
        pattern: &str,
    ) -> Result<(), ParsePatternError> {
        self.rules.push(Rule {
            name: name.into(),
            description: description.into(),
            query: Query::parse(pattern)?,
        });
        Ok(())
    }

    /// Parses a rule file (see the module docs for the format).
    ///
    /// # Errors
    ///
    /// Returns a [`RuleParseError`] naming the offending line.
    pub fn parse(text: &str) -> Result<RuleSet, RuleParseError> {
        let mut set = RuleSet::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((name, rest)) = line.split_once(":=") else {
                return Err(RuleParseError {
                    line: line_no,
                    message: "expected `name := pattern`".to_string(),
                });
            };
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return Err(RuleParseError {
                    line: line_no,
                    message: format!("bad rule name {name:?}"),
                });
            }
            let (pattern_src, description) = match rest.split_once('#') {
                Some((p, d)) => (p.trim(), d.trim().to_string()),
                None => (rest.trim(), String::new()),
            };
            set.add(name, description, pattern_src)
                .map_err(|e| RuleParseError {
                    line: line_no,
                    message: format!("bad pattern: {e}"),
                })?;
        }
        Ok(set)
    }

    /// The rules, in file order.
    #[must_use]
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the set has no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Renders the set back to the rule-file format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for rule in &self.rules {
            out.push_str(&rule.name);
            out.push_str(" := ");
            out.push_str(&rule.query.pattern().to_string());
            if !rule.description.is_empty() {
                out.push_str(" # ");
                out.push_str(&rule.description);
            }
            out.push('\n');
        }
        out
    }

    /// Runs every rule against `log`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EngineError`] any rule's query reports
    /// (impossible for default-configured rule queries).
    pub fn audit(&self, log: &Log) -> Result<AuditReport, EngineError> {
        let mut rows = Vec::with_capacity(self.rules.len());
        let mut flagged: BTreeMap<Wid, Vec<String>> = BTreeMap::new();
        for rule in &self.rules {
            let incidents = rule.query.find(log)?;
            for wid in incidents.wids() {
                flagged.entry(wid).or_default().push(rule.name.clone());
            }
            rows.push(AuditRow {
                name: rule.name.clone(),
                description: rule.description.clone(),
                incidents,
            });
        }
        Ok(AuditReport { rows, flagged })
    }

    /// The built-in clinic fraud battery used by the examples and the CLI.
    ///
    /// # Panics
    ///
    /// Never in practice: the built-in rule text is covered by tests.
    #[must_use]
    pub fn clinic_fraud() -> RuleSet {
        match RuleSet::parse(CLINIC_FRAUD_RULES) {
            Ok(set) => set,
            Err(e) => panic!("built-in rules parse: {e}"),
        }
    }
}

/// The built-in clinic battery, in rule-file syntax.
pub const CLINIC_FRAUD_RULES: &str = "\
# clinic referral fraud battery (see the paper's Section 2 and conclusion)
update-before-reimburse := UpdateRefer -> GetReimburse # budget raised before cashing out
double-update           := UpdateRefer -> UpdateRefer  # two budget raises in one referral
instant-reimburse       := CheckIn ~> GetReimburse     # paid without ever seeing a doctor
high-value-receipt      := PayTreatment[out.receipt > 4500] # single receipt over $4500
pay-without-visit       := !SeeDoctor ~> PayTreatment  # payment not preceded by a visit
";

/// One rule's outcome in an [`AuditReport`].
#[derive(Debug, Clone)]
pub struct AuditRow {
    /// The rule's name.
    pub name: String,
    /// The rule's description.
    pub description: String,
    /// Every incident the rule matched.
    pub incidents: IncidentSet,
}

/// The outcome of [`RuleSet::audit`].
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Per-rule outcomes, in rule order.
    pub rows: Vec<AuditRow>,
    /// For each flagged instance, the names of the rules that hit it.
    pub flagged: BTreeMap<Wid, Vec<String>>,
}

impl AuditReport {
    /// Instances flagged by at least `threshold` rules, most-flagged
    /// first.
    #[must_use]
    pub fn repeat_offenders(&self, threshold: usize) -> Vec<(Wid, usize)> {
        let mut out: Vec<(Wid, usize)> = self
            .flagged
            .iter()
            .filter(|(_, rules)| rules.len() >= threshold)
            .map(|(wid, rules)| (*wid, rules.len()))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Total incidents across all rules.
    #[must_use]
    pub fn total_incidents(&self) -> usize {
        self.rows.iter().map(|r| r.incidents.len()).sum()
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.rows {
            writeln!(
                f,
                "{:<26} {:>6} incident(s) in {:>4} instance(s)  {}",
                row.name,
                row.incidents.len(),
                row.incidents.num_matched_instances(),
                row.description,
            )?;
        }
        writeln!(f, "flagged instances: {}", self.flagged.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::paper;

    #[test]
    fn rule_file_parses_names_patterns_descriptions() {
        let set = RuleSet::parse(
            "# comment\n\
             \n\
             a := A -> B # about a\n\
             b := X | Y\n",
        )
        .unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.rules()[0].name, "a");
        assert_eq!(set.rules()[0].description, "about a");
        assert_eq!(set.rules()[1].description, "");
        assert_eq!(set.rules()[1].query.pattern().to_string(), "X | Y");
    }

    #[test]
    fn bad_rule_lines_are_rejected_with_line_numbers() {
        let err = RuleSet::parse("a := A\nnot a rule\n").unwrap_err();
        assert_eq!(err.line, 2);
        let err = RuleSet::parse("bad name := A").unwrap_err();
        assert_eq!(err.line, 1);
        let err = RuleSet::parse("a := ->").unwrap_err();
        assert!(err.message.contains("bad pattern"));
    }

    #[test]
    fn to_text_round_trips() {
        let set = RuleSet::clinic_fraud();
        let text = set.to_text();
        let reparsed = RuleSet::parse(&text).unwrap();
        assert_eq!(reparsed.len(), set.len());
        for (a, b) in set.rules().iter().zip(reparsed.rules()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.query.pattern(), b.query.pattern());
            assert_eq!(a.description, b.description);
        }
    }

    #[test]
    fn clinic_battery_flags_figure3_instance2() {
        let log = paper::figure3_log();
        let report = RuleSet::clinic_fraud().audit(&log).unwrap();
        // update-before-reimburse hits wid 2.
        let row = &report.rows[0];
        assert_eq!(row.name, "update-before-reimburse");
        assert_eq!(row.incidents.len(), 1);
        assert!(report.flagged.contains_key(&Wid(2)));
        assert_eq!(
            report.repeat_offenders(1).first().map(|p| p.0),
            Some(Wid(2))
        );
        // Nobody trips three rules on the tiny example log.
        assert!(report.repeat_offenders(3).is_empty());
    }

    #[test]
    fn report_display_mentions_every_rule() {
        let log = paper::figure3_log();
        let report = RuleSet::clinic_fraud().audit(&log).unwrap();
        let text = report.to_string();
        for rule in RuleSet::clinic_fraud().rules() {
            assert!(text.contains(&rule.name), "missing {}", rule.name);
        }
        assert!(report.total_incidents() >= 1);
    }
}
