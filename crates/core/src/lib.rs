//! # WLQ — querying workflow logs
//!
//! A full Rust implementation of *"Querying Workflow Logs"* (Yan Tang,
//! Isaac Mackey, Jianwen Su): an algebraic query language over workflow
//! execution logs based on **incident patterns**, with four BPMN-inspired
//! composition operators — consecutive `⊙` (`~>`), sequential `→` (`->`),
//! choice `⊗` (`|`), and parallel `⊕` (`&`).
//!
//! This crate is the facade: it re-exports the whole API surface and adds
//! the paper's motivating analyses as ready-made queries ([`analyses`]).
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | Log model | [`wlq_log`] | records, logs, validation, indexes, serialization |
//! | Workflow engine | [`wlq_workflow`] | models, simulator, scenarios, generators |
//! | Pattern algebra | [`wlq_pattern`] | AST, parser, laws (Theorems 2–5), optimizer |
//! | Evaluation | [`wlq_engine`] | naive + optimized operators, trees, parallel, streaming |
//! | Observability | [`wlq_obs`] | per-operator metrics, execution profiles, JSON Lines traces |
//! | Static analysis | [`wlq_analysis`] | span-anchored lints, unsatisfiability proofs, cost budget |
//!
//! ## Quick start
//!
//! ```
//! use wlq::prelude::*;
//!
//! // Enact the paper's clinic referral process…
//! let model = wlq::scenarios::clinic::model();
//! let log = simulate(&model, &SimulationConfig::new(50, 42));
//!
//! // …and ask the paper's question: does anyone update their referral
//! // before being reimbursed?
//! let q = Query::parse("UpdateRefer -> GetReimburse")?;
//! println!("{} anomalous incident(s)", q.count(&log)?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use wlq_analysis::{
    denies, line_col, render_human, render_json, render_parse_error, Analyzer, Diagnostic,
    LintCode, Report, Severity, DEFAULT_COST_BUDGET,
};
pub use wlq_engine::{
    combine, combine_batch, combine_batch_into, equivalent_up_to, evaluate_parallel, fast_count,
    leaf_batch, leaf_incidents, mine_relations, profile_evaluation, timeline, BatchArena,
    BoundIncident, BoundedEquiv, EngineError, EvalTrace, Evaluator, Explain, ExplainRow, Incident,
    IncidentBatch, IncidentRef, IncidentSet, IncidentTree, JoinShape, LabelledPattern,
    MinedRelation, Node, NodeTrace, PhysOp, PhysicalPlan, PlanCost, PlanNode, PlanRow, PlanStats,
    Planner, Query, QueryProfile, RewriteCandidate, SharedStreamingEvaluator, SpanStats, Strategy,
    StreamingEvaluator, TimelinePoint,
};
pub use wlq_log::{
    attrs, io, paper, Activity, AttrMap, AttrName, IsLsn, Log, LogBuilder, LogError, LogIndex,
    LogRecord, LogStats, Lsn, ParseLogError, Value, Wid, END_ACTIVITY, START_ACTIVITY,
};
pub use wlq_obs::{
    q_error, render_trace, validate_trace, ExecutionProfile, NodeMetrics, NodeShape, ProfiledNode,
    TraceError, TraceSummary, WorkerProfile, TRACE_SCHEMA_VERSION,
};
pub use wlq_pattern::{
    ac_equivalent, algebra, canonicalize, choice_normal_form, from_postfix, is_valid_pattern,
    optimize, random_pattern, rewrite, sequential_chain, theorem1_worst_case, to_postfix,
    to_symbolic, Atom, CmpOp, CostModel, Op, OptimizeReport, Optimizer, ParseErrorKind,
    ParsePatternError, Pattern, PatternGenConfig, PatternSpans, PostfixError, PostfixItem,
    Predicate, Scope, Span, SpannedPattern,
};
pub use wlq_workflow::{
    generator, scenarios, simulate, ConformanceReport, DataEffect, ModelBuilder, ModelError,
    NodeDef, NodeId, SimulationConfig, Verdict, WorkflowModel,
};

pub mod rules;

/// Everything most programs need, for `use wlq::prelude::*`.
pub mod prelude {
    pub use wlq_engine::{Evaluator, Incident, IncidentSet, Query, Strategy, StreamingEvaluator};
    pub use wlq_log::{attrs, AttrMap, Log, LogBuilder, LogStats, Value, Wid};
    pub use wlq_pattern::{Op, Pattern};
    pub use wlq_workflow::{simulate, SimulationConfig, WorkflowModel};
}

pub mod analyses {
    //! The paper's motivating analyses, packaged as functions.
    //!
    //! The introduction asks two questions of the clinic referral log:
    //!
    //! 1. *"How many students every year get referrals with balance >
    //!    $5,000?"* — [`high_balance_referrals`] (the amount is a
    //!    parameter; grouping uses any attribute, e.g. `year`, when the
    //!    log records one).
    //! 2. *"Are there any students updating their referral after they
    //!    already got reimbursed?"* — [`update_after_reimburse`], and its
    //!    mirror [`update_before_reimburse`] from Section 2.

    use std::collections::BTreeMap;

    use wlq_engine::{EngineError, Query};
    use wlq_log::{Log, Value, Wid};
    use wlq_pattern::{CmpOp, Pattern, Predicate};

    /// Instances whose referral was issued (or later updated to) a balance
    /// strictly above `threshold`. Uses the attribute-predicate extension.
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`EngineError`] (impossible for these
    /// default-configured queries).
    pub fn high_balance_referrals(log: &Log, threshold: i64) -> Result<Vec<Wid>, EngineError> {
        let refer = Pattern::Atom(
            wlq_pattern::Atom::new("GetRefer").with_predicate(Predicate::new(
                "balance",
                CmpOp::Gt,
                threshold,
            )),
        );
        let update = Pattern::Atom(
            wlq_pattern::Atom::new("UpdateRefer").with_predicate(Predicate::new(
                "balance",
                CmpOp::Gt,
                threshold,
            )),
        );
        Ok(Query::new(refer.alt(update)).find(log)?.wids().collect())
    }

    /// Like [`high_balance_referrals`], additionally grouped by the value
    /// of `group_attr` (e.g. a `year` attribute) at the matching record.
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`EngineError`] (impossible for these
    /// default-configured queries).
    pub fn high_balance_referrals_by(
        log: &Log,
        threshold: i64,
        group_attr: &str,
    ) -> Result<BTreeMap<Value, usize>, EngineError> {
        let refer = Pattern::Atom(
            wlq_pattern::Atom::new("GetRefer").with_predicate(Predicate::new(
                "balance",
                CmpOp::Gt,
                threshold,
            )),
        );
        Query::new(refer).count_instances_by_attr(log, group_attr)
    }

    /// The Section 2 query: instances where a referral update happens
    /// *before* a reimbursement (`UpdateRefer → GetReimburse`).
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`EngineError`] (impossible for these
    /// default-configured queries).
    pub fn update_before_reimburse(log: &Log) -> Result<Vec<Wid>, EngineError> {
        static_query("UpdateRefer -> GetReimburse", log)
    }

    /// The introduction's fraud hint: instances updating a referral
    /// *after* already being reimbursed (`GetReimburse → UpdateRefer`).
    ///
    /// # Errors
    ///
    /// Propagates the engine's [`EngineError`] (impossible for these
    /// default-configured queries).
    pub fn update_after_reimburse(log: &Log) -> Result<Vec<Wid>, EngineError> {
        static_query("GetReimburse -> UpdateRefer", log)
    }

    fn static_query(pattern: &str, log: &Log) -> Result<Vec<Wid>, EngineError> {
        let query = Query::parse(pattern).map_err(EngineError::Pattern)?;
        Ok(query.find(log)?.wids().collect())
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use wlq_log::paper;

        #[test]
        fn figure3_update_before_reimburse_is_wid2() {
            let log = paper::figure3_log();
            assert_eq!(update_before_reimburse(&log).unwrap(), vec![Wid(2)]);
            assert!(update_after_reimburse(&log).unwrap().is_empty());
        }

        #[test]
        fn figure3_high_balance_thresholds() {
            let log = paper::figure3_log();
            // Initial balances: 1000, 2000, 500; wid 2 updates to 5000.
            assert_eq!(
                high_balance_referrals(&log, 5000).unwrap(),
                Vec::<Wid>::new()
            );
            assert_eq!(high_balance_referrals(&log, 4999).unwrap(), vec![Wid(2)]);
            assert_eq!(
                high_balance_referrals(&log, 900).unwrap(),
                vec![Wid(1), Wid(2)]
            );
            assert_eq!(
                high_balance_referrals(&log, 100).unwrap(),
                vec![Wid(1), Wid(2), Wid(3)]
            );
        }

        #[test]
        fn grouping_by_hospital_counts_instances() {
            let log = paper::figure3_log();
            let groups = high_balance_referrals_by(&log, 900, "hospital").unwrap();
            assert_eq!(groups[&Value::from("Public Hospital")], 1);
            assert_eq!(groups[&Value::from("People Hospital")], 1);
        }
    }
}
