//! Workflow models: BPMN-style control-flow graphs with data effects.

use std::collections::BTreeSet;
use std::fmt;

use wlq_log::Activity;

use crate::data::DataEffect;

/// Index of a node within a [`WorkflowModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A node of a workflow model.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeDef {
    /// Execute an activity: read `reads`, write `writes`, then move to
    /// `next`.
    Task {
        /// The activity name logged for this task.
        activity: Activity,
        /// Attributes the task reads (they become `αin`, with their
        /// current values, when defined).
        reads: Vec<String>,
        /// Attribute writes (they become `αout`).
        writes: Vec<(String, DataEffect)>,
        /// Successor node.
        next: NodeId,
    },
    /// Exclusive (XOR) gateway: follow exactly one branch, drawn by
    /// weight.
    Xor {
        /// `(weight, target)` pairs; weights need not sum to 1.
        branches: Vec<(f64, NodeId)>,
    },
    /// Parallel (AND) split: activate every branch concurrently; tokens
    /// meet at `join`.
    AndSplit {
        /// Branch entry nodes.
        branches: Vec<NodeId>,
        /// The matching [`NodeDef::AndJoin`].
        join: NodeId,
    },
    /// Parallel (AND) join: a barrier; when all of the matching split's
    /// tokens arrive, one token continues to `next`.
    AndJoin {
        /// Successor after the barrier.
        next: NodeId,
    },
    /// Terminate the instance (an `END` record is written).
    End,
}

/// Errors detected by [`WorkflowModel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The model has no nodes.
    Empty,
    /// A node references an out-of-range node id.
    DanglingEdge {
        /// The node holding the reference.
        from: usize,
        /// The missing target.
        to: usize,
    },
    /// An XOR gateway has no branches or a non-positive total weight.
    BadXor(usize),
    /// An AND split has no branches or its `join` is not an `AndJoin`.
    BadAndSplit(usize),
    /// No `End` node is reachable from the entry node.
    EndUnreachable,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Empty => write!(f, "model has no nodes"),
            ModelError::DanglingEdge { from, to } => {
                write!(f, "node n{from} references missing node n{to}")
            }
            ModelError::BadXor(id) => {
                write!(
                    f,
                    "xor gateway n{id} has no branches or non-positive weights"
                )
            }
            ModelError::BadAndSplit(id) => {
                write!(
                    f,
                    "and-split n{id} has no branches or a join that is not an and-join"
                )
            }
            ModelError::EndUnreachable => write!(f, "no end node is reachable from the entry"),
        }
    }
}

impl std::error::Error for ModelError {}

/// A workflow model: a named control-flow graph over tasks and gateways.
///
/// Build models with [`ModelBuilder`](crate::ModelBuilder); enact them
/// with [`simulate`](crate::simulate).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowModel {
    name: String,
    nodes: Vec<NodeDef>,
    entry: NodeId,
}

impl WorkflowModel {
    /// Assembles and validates a model.
    ///
    /// # Errors
    ///
    /// Returns a [`ModelError`] describing the first structural problem.
    pub fn new(
        name: impl Into<String>,
        nodes: Vec<NodeDef>,
        entry: NodeId,
    ) -> Result<Self, ModelError> {
        let model = WorkflowModel {
            name: name.into(),
            nodes,
            entry,
        };
        model.validate()?;
        Ok(model)
    }

    /// The model's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry node (where each instance's first token starts).
    #[must_use]
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// The node table.
    #[must_use]
    pub fn nodes(&self) -> &[NodeDef] {
        &self.nodes
    }

    /// Looks up a node definition.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &NodeDef {
        &self.nodes[id.0]
    }

    /// The distinct task activity names in the model, sorted.
    #[must_use]
    pub fn activities(&self) -> Vec<Activity> {
        let mut set: BTreeSet<Activity> = BTreeSet::new();
        for node in &self.nodes {
            if let NodeDef::Task { activity, .. } = node {
                set.insert(activity.clone());
            }
        }
        set.into_iter().collect()
    }

    fn validate(&self) -> Result<(), ModelError> {
        if self.nodes.is_empty() {
            return Err(ModelError::Empty);
        }
        let check = |from: usize, to: NodeId| {
            if to.0 < self.nodes.len() {
                Ok(())
            } else {
                Err(ModelError::DanglingEdge { from, to: to.0 })
            }
        };
        check(usize::MAX, self.entry).map_err(|_| ModelError::DanglingEdge {
            from: 0,
            to: self.entry.0,
        })?;
        for (i, node) in self.nodes.iter().enumerate() {
            match node {
                NodeDef::Task { next, .. } => check(i, *next)?,
                NodeDef::Xor { branches } => {
                    if branches.is_empty() || branches.iter().any(|&(w, _)| w <= 0.0) {
                        return Err(ModelError::BadXor(i));
                    }
                    for &(_, target) in branches {
                        check(i, target)?;
                    }
                }
                NodeDef::AndSplit { branches, join } => {
                    if branches.is_empty() {
                        return Err(ModelError::BadAndSplit(i));
                    }
                    for &target in branches {
                        check(i, target)?;
                    }
                    check(i, *join)?;
                    if !matches!(self.nodes[join.0], NodeDef::AndJoin { .. }) {
                        return Err(ModelError::BadAndSplit(i));
                    }
                }
                NodeDef::AndJoin { next } => check(i, *next)?,
                NodeDef::End => {}
            }
        }
        // Reachability of at least one End from the entry.
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.entry];
        let mut end_reachable = false;
        while let Some(NodeId(i)) = stack.pop() {
            if seen[i] {
                continue;
            }
            seen[i] = true;
            match &self.nodes[i] {
                NodeDef::Task { next, .. } | NodeDef::AndJoin { next } => stack.push(*next),
                NodeDef::Xor { branches } => {
                    stack.extend(branches.iter().map(|&(_, t)| t));
                }
                NodeDef::AndSplit { branches, join } => {
                    stack.extend(branches.iter().copied());
                    stack.push(*join);
                }
                NodeDef::End => end_reachable = true,
            }
        }
        if !end_reachable {
            return Err(ModelError::EndUnreachable);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(name: &str, next: usize) -> NodeDef {
        NodeDef::Task {
            activity: Activity::new(name),
            reads: vec![],
            writes: vec![],
            next: NodeId(next),
        }
    }

    #[test]
    fn linear_model_validates() {
        let model = WorkflowModel::new(
            "linear",
            vec![task("A", 1), task("B", 2), NodeDef::End],
            NodeId(0),
        )
        .unwrap();
        assert_eq!(model.name(), "linear");
        assert_eq!(model.entry(), NodeId(0));
        assert_eq!(model.activities().len(), 2);
    }

    #[test]
    fn empty_model_is_rejected() {
        assert_eq!(
            WorkflowModel::new("x", vec![], NodeId(0)),
            Err(ModelError::Empty)
        );
    }

    #[test]
    fn dangling_edges_are_rejected() {
        let err = WorkflowModel::new("x", vec![task("A", 5)], NodeId(0)).unwrap_err();
        assert_eq!(err, ModelError::DanglingEdge { from: 0, to: 5 });
    }

    #[test]
    fn xor_needs_positive_weights() {
        let nodes = vec![
            NodeDef::Xor {
                branches: vec![(0.0, NodeId(1))],
            },
            NodeDef::End,
        ];
        assert_eq!(
            WorkflowModel::new("x", nodes, NodeId(0)),
            Err(ModelError::BadXor(0))
        );
        let nodes = vec![NodeDef::Xor { branches: vec![] }, NodeDef::End];
        assert_eq!(
            WorkflowModel::new("x", nodes, NodeId(0)),
            Err(ModelError::BadXor(0))
        );
    }

    #[test]
    fn and_split_join_must_pair() {
        // join pointing at a Task is invalid.
        let nodes = vec![
            NodeDef::AndSplit {
                branches: vec![NodeId(1)],
                join: NodeId(1),
            },
            task("A", 2),
            NodeDef::End,
        ];
        assert_eq!(
            WorkflowModel::new("x", nodes, NodeId(0)),
            Err(ModelError::BadAndSplit(0))
        );
    }

    #[test]
    fn unreachable_end_is_rejected() {
        // A → A loop, End exists but unreachable.
        let nodes = vec![task("A", 0), NodeDef::End];
        assert_eq!(
            WorkflowModel::new("x", nodes, NodeId(0)),
            Err(ModelError::EndUnreachable)
        );
    }

    #[test]
    fn valid_and_split_model() {
        let nodes = vec![
            NodeDef::AndSplit {
                branches: vec![NodeId(1), NodeId(2)],
                join: NodeId(3),
            },
            task("Ship", 3),
            task("Invoice", 3),
            NodeDef::AndJoin { next: NodeId(4) },
            NodeDef::End,
        ];
        let model = WorkflowModel::new("par", nodes, NodeId(0)).unwrap();
        assert_eq!(model.activities().len(), 2);
    }

    #[test]
    fn error_messages_are_informative() {
        for e in [
            ModelError::Empty,
            ModelError::DanglingEdge { from: 1, to: 9 },
            ModelError::BadXor(2),
            ModelError::BadAndSplit(3),
            ModelError::EndUnreachable,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
