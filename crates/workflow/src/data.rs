//! Data effects: how task executions write attribute values.

use rand::Rng;

use wlq_log::{AttrMap, Value};

/// How a task computes the value it writes to an attribute.
///
/// Effects are evaluated against the instance's current attribute store
/// and a seeded RNG, so simulations are reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum DataEffect {
    /// Write a fixed value.
    Const(Value),
    /// Write an integer drawn uniformly from `lo..=hi`.
    UniformInt {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Write one of the given strings, uniformly.
    OneOf(Vec<String>),
    /// Write a fresh pseudo-random 5-hex-digit identifier (e.g. `034d1`).
    FreshId,
    /// Copy the current value of another attribute (⊥ if undefined).
    CopyFrom(String),
    /// Add `delta` to the current integer value of the attribute being
    /// written (treating ⊥/non-integers as 0).
    Add(i64),
}

impl DataEffect {
    /// Evaluates the effect for attribute `target` given the current
    /// attribute `store`.
    pub fn eval<R: Rng + ?Sized>(&self, target: &str, store: &AttrMap, rng: &mut R) -> Value {
        match self {
            DataEffect::Const(v) => v.clone(),
            DataEffect::UniformInt { lo, hi } => Value::Int(rng.gen_range(*lo..=*hi)),
            DataEffect::OneOf(options) => {
                let i = rng.gen_range(0..options.len());
                Value::from(options[i].as_str())
            }
            DataEffect::FreshId => {
                let id: u32 = rng.gen_range(0..0xF_FFFF);
                Value::from(format!("{id:05x}"))
            }
            DataEffect::CopyFrom(source) => store.get_or_undefined(source),
            DataEffect::Add(delta) => {
                let current = store.get(target).and_then(Value::as_int).unwrap_or(0);
                Value::Int(current + delta)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use wlq_log::attrs;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn const_effect_returns_value() {
        let v = DataEffect::Const(Value::Int(7)).eval("x", &attrs! {}, &mut rng());
        assert_eq!(v, Value::Int(7));
    }

    #[test]
    fn uniform_int_respects_bounds_and_seed() {
        let mut r1 = rng();
        let mut r2 = rng();
        for _ in 0..100 {
            let a = DataEffect::UniformInt { lo: 5, hi: 9 }.eval("x", &attrs! {}, &mut r1);
            let b = DataEffect::UniformInt { lo: 5, hi: 9 }.eval("x", &attrs! {}, &mut r2);
            assert_eq!(a, b);
            let n = a.as_int().unwrap();
            assert!((5..=9).contains(&n));
        }
    }

    #[test]
    fn one_of_draws_from_options() {
        let opts = vec!["a".to_string(), "b".to_string()];
        let mut r = rng();
        for _ in 0..20 {
            let v = DataEffect::OneOf(opts.clone()).eval("x", &attrs! {}, &mut r);
            assert!(v == Value::from("a") || v == Value::from("b"));
        }
    }

    #[test]
    fn fresh_id_is_five_hex_digits() {
        let v = DataEffect::FreshId.eval("x", &attrs! {}, &mut rng());
        let s = v.as_str().unwrap().to_string();
        assert_eq!(s.len(), 5);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn copy_from_reads_store() {
        let store = attrs! { "src" => 42i64 };
        assert_eq!(
            DataEffect::CopyFrom("src".into()).eval("x", &store, &mut rng()),
            Value::Int(42)
        );
        assert_eq!(
            DataEffect::CopyFrom("missing".into()).eval("x", &store, &mut rng()),
            Value::Undefined
        );
    }

    #[test]
    fn add_treats_undefined_as_zero() {
        let store = attrs! { "x" => 10i64 };
        assert_eq!(
            DataEffect::Add(5).eval("x", &store, &mut rng()),
            Value::Int(15)
        );
        assert_eq!(
            DataEffect::Add(5).eval("y", &store, &mut rng()),
            Value::Int(5)
        );
    }
}
