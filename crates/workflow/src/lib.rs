//! # wlq-workflow — workflow models and a log-emitting execution engine
//!
//! The paper's framework (its Figure 2) places a *workflow execution
//! engine* in front of the log: the engine advances instances and records
//! every activity execution as a log record. No such engine ships with the
//! paper, so this crate provides one — a BPMN-flavoured model
//! ([`WorkflowModel`]: tasks, exclusive and parallel gateways, loops, data
//! effects) and a seeded multi-instance simulator ([`simulate`]) that
//! emits valid [`wlq_log::Log`]s.
//!
//! Three ready-made [`scenarios`] ship with the crate (the paper's clinic
//! referral process, order fulfillment, loan origination), plus
//! shape-controlled [`generator`]s for benchmarks.
//!
//! ## Quick start
//!
//! ```
//! use wlq_workflow::{scenarios, simulate, SimulationConfig};
//!
//! let model = scenarios::clinic::model();
//! let log = simulate(&model, &SimulationConfig::new(100, 42));
//! assert_eq!(log.num_instances(), 100);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod builder;
mod conformance;
mod data;
mod dot;
mod engine;
mod model;

pub mod generator;
pub mod scenarios;

pub use builder::ModelBuilder;
pub use conformance::{ConformanceReport, Verdict};
pub use data::DataEffect;
pub use engine::{simulate, SimulationConfig};
pub use model::{ModelError, NodeDef, NodeId, WorkflowModel};
