//! The college-clinic referral process of the paper's Example 2.
//!
//! A student gets a referral with a budget (`balance`), checks in at the
//! referred hospital, then cycles through doctor visits, payments,
//! treatments, and possible referral updates (a new diagnosis may raise
//! the balance), finally collecting reimbursement and completing the
//! referral. Activity names match the paper's Figure 3.

use crate::builder::ModelBuilder;
use crate::data::DataEffect;
use crate::model::{NodeDef, WorkflowModel};

/// Builds the clinic referral model.
///
/// Control flow (loop weights in parentheses):
///
/// ```text
/// START → GetRefer → CheckIn → ┬─(0.45)→ SeeDoctor → PayTreatment ─┬─(0.5)→ TakeTreatment ─┐
///                              │                                   └─(0.5)────────────────┤
///                              ├─(0.15)→ UpdateRefer ──────────────────────────────────────┤
///                              │                 ↑ loops back ──────────────────────────────┘
///                              └─(0.40)→ GetReimburse → CompleteRefer → END
/// ```
#[must_use]
pub fn model() -> WorkflowModel {
    let mut b = ModelBuilder::new("clinic-referral");
    let end = b.end();
    let complete = b.task_io(
        "CompleteRefer",
        ["referState", "balance"],
        [("referState", DataEffect::Const("complete".into()))],
        end,
    );
    let reimburse = b.task_io(
        "GetReimburse",
        ["referState", "balance", "receipt", "receiptState"],
        [
            ("reimburse", DataEffect::CopyFrom("balance".into())),
            ("balance", DataEffect::Const(0i64.into())),
            ("receiptState", DataEffect::Const("complete".into())),
        ],
        complete,
    );

    // The visit/update loop head is a forward reference.
    let loop_head = b.placeholder();

    let take_treatment = b.task_io("TakeTreatment", ["referId", "receipt"], [], loop_head);
    let after_pay = b.xor([(0.5, take_treatment), (0.5, loop_head)]);
    let pay = b.task_io(
        "PayTreatment",
        ["referId", "referState"],
        [
            ("receipt", DataEffect::UniformInt { lo: 50, hi: 5000 }),
            ("receiptState", DataEffect::Const("active".into())),
        ],
        after_pay,
    );
    let see_doctor = b.task_io("SeeDoctor", ["referId", "referState"], [], pay);
    let update = b.task_io(
        "UpdateRefer",
        ["referId", "referState", "balance"],
        [("balance", DataEffect::Add(3000))],
        loop_head,
    );
    b.fill(
        loop_head,
        NodeDef::Xor {
            branches: vec![(0.45, see_doctor), (0.15, update), (0.40, reimburse)],
        },
    );

    let check_in = b.task_io(
        "CheckIn",
        ["referId", "referState", "balance"],
        [("referState", DataEffect::Const("active".into()))],
        loop_head,
    );
    let get_refer = b.task_io(
        "GetRefer",
        [] as [&str; 0],
        [
            (
                "hospital",
                DataEffect::OneOf(vec![
                    "Public Hospital".to_string(),
                    "People Hospital".to_string(),
                    "Union Hospital".to_string(),
                ]),
            ),
            ("referId", DataEffect::FreshId),
            ("referState", DataEffect::Const("start".into())),
            ("balance", DataEffect::UniformInt { lo: 500, hi: 8000 }),
        ],
        check_in,
    );
    b.build(get_refer).expect("clinic model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimulationConfig};
    use wlq_log::LogStats;

    #[test]
    fn model_has_the_figure3_activities() {
        let names: Vec<String> = model()
            .activities()
            .iter()
            .map(|a| a.as_str().to_string())
            .collect();
        assert_eq!(
            names,
            [
                "CheckIn",
                "CompleteRefer",
                "GetRefer",
                "GetReimburse",
                "PayTreatment",
                "SeeDoctor",
                "TakeTreatment",
                "UpdateRefer",
            ]
        );
    }

    #[test]
    fn every_instance_follows_the_referral_protocol() {
        let log = simulate(&model(), &SimulationConfig::new(30, 17));
        for wid in log.wids() {
            let acts: Vec<&str> = log.instance(wid).map(|r| r.activity().as_str()).collect();
            assert_eq!(acts[0], "START");
            assert_eq!(acts[1], "GetRefer");
            assert_eq!(acts[2], "CheckIn");
            assert_eq!(acts[acts.len() - 1], "END");
            // PayTreatment is always immediately preceded by SeeDoctor.
            for (i, a) in acts.iter().enumerate() {
                if *a == "PayTreatment" {
                    assert_eq!(acts[i - 1], "SeeDoctor", "instance {wid:?}");
                }
            }
        }
    }

    #[test]
    fn balances_are_set_and_sometimes_updated() {
        let log = simulate(&model(), &SimulationConfig::new(200, 23));
        let stats = LogStats::compute(&log);
        assert_eq!(stats.activity_count("GetRefer"), 200);
        // With weight 0.15 per loop round, updates occur but not always.
        let updates = stats.activity_count("UpdateRefer");
        assert!(updates > 0, "no UpdateRefer in 200 instances");
        assert!(updates < 600);
        // An update raises the balance by 3000.
        let update_rec = log
            .iter()
            .find(|r| r.activity().as_str() == "UpdateRefer")
            .unwrap();
        let before = update_rec
            .input()
            .get_or_undefined("balance")
            .as_int()
            .unwrap();
        let after = update_rec
            .output()
            .get_or_undefined("balance")
            .as_int()
            .unwrap();
        assert_eq!(after, before + 3000);
    }

    #[test]
    fn reimbursement_zeroes_the_balance() {
        let log = simulate(&model(), &SimulationConfig::new(20, 31));
        for r in log
            .iter()
            .filter(|r| r.activity().as_str() == "GetReimburse")
        {
            assert_eq!(r.output().get_or_undefined("balance").as_int(), Some(0));
        }
    }
}
