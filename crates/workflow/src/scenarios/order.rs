//! Order fulfillment with a parallel shipping/invoicing block.
//!
//! The AND gateway produces genuinely interleaved branch activities within
//! one instance, the situation the parallel pattern `⊕` is designed to
//! query ("was the order shipped and invoiced, in either order?").

use crate::builder::ModelBuilder;
use crate::data::DataEffect;
use crate::model::WorkflowModel;

/// Builds the order-fulfillment model:
///
/// ```text
/// START → PlaceOrder → ⟨AND⟩ ┬→ PickItems → Ship      ─┐
///                            └→ CreateInvoice → Collect ┴→ ⟨JOIN⟩ → CloseOrder → END
/// ```
#[must_use]
pub fn model() -> WorkflowModel {
    let mut b = ModelBuilder::new("order-fulfillment");
    let end = b.end();
    let close = b.task_io(
        "CloseOrder",
        ["orderId", "shipped", "paid"],
        [("orderState", DataEffect::Const("closed".into()))],
        end,
    );
    let join = b.and_join(close);

    let ship = b.task_io(
        "Ship",
        ["orderId"],
        [("shipped", DataEffect::Const(true.into()))],
        join,
    );
    let pick = b.task_io("PickItems", ["orderId"], [], ship);

    let collect = b.task_io(
        "CollectPayment",
        ["orderId", "amount"],
        [("paid", DataEffect::Const(true.into()))],
        join,
    );
    let invoice = b.task_io(
        "CreateInvoice",
        ["orderId"],
        [("amount", DataEffect::UniformInt { lo: 10, hi: 900 })],
        collect,
    );

    let split = b.and_split([pick, invoice], join);
    let place = b.task_io(
        "PlaceOrder",
        [] as [&str; 0],
        [
            ("orderId", DataEffect::FreshId),
            ("orderState", DataEffect::Const("open".into())),
        ],
        split,
    );
    b.build(place).expect("order model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimulationConfig};

    #[test]
    fn both_branches_always_complete_before_close() {
        let log = simulate(&model(), &SimulationConfig::new(25, 9));
        for wid in log.wids() {
            let acts: Vec<&str> = log.instance(wid).map(|r| r.activity().as_str()).collect();
            let pos = |name: &str| acts.iter().position(|a| *a == name).unwrap();
            assert!(pos("Ship") < pos("CloseOrder"), "instance {wid:?}");
            assert!(
                pos("CollectPayment") < pos("CloseOrder"),
                "instance {wid:?}"
            );
            assert!(pos("PickItems") < pos("Ship"));
            assert!(pos("CreateInvoice") < pos("CollectPayment"));
        }
    }

    #[test]
    fn branch_orders_vary_across_seeds() {
        let mut ship_first = 0;
        let mut invoice_first = 0;
        for seed in 0..30 {
            let log = simulate(&model(), &SimulationConfig::new(1, seed));
            let acts: Vec<&str> = log
                .instance(wlq_log::Wid(1))
                .map(|r| r.activity().as_str())
                .collect();
            let ship = acts.iter().position(|a| *a == "Ship").unwrap();
            let invoice = acts.iter().position(|a| *a == "CreateInvoice").unwrap();
            if ship < invoice {
                ship_first += 1;
            } else {
                invoice_first += 1;
            }
        }
        assert!(
            ship_first > 0 && invoice_first > 0,
            "no interleaving variety"
        );
    }

    #[test]
    fn every_instance_is_completed() {
        let log = simulate(&model(), &SimulationConfig::new(10, 77));
        assert!(log.wids().all(|w| log.is_completed(w)));
        assert_eq!(log.num_instances(), 10);
    }
}
