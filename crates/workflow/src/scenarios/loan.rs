//! Loan origination with nested exclusive choices.
//!
//! Choice-heavy control flow (auto-approval, manual review, rejection,
//! appeal) exercises the `⊗` operator and the optimizer's choice
//! factoring: many distinct paths share prefixes.

use crate::builder::ModelBuilder;
use crate::data::DataEffect;
use crate::model::WorkflowModel;

/// Builds the loan origination model:
///
/// ```text
/// START → Submit → CheckCredit → ┬─(0.3)→ AutoApprove ────────────┐
///                                ├─(0.5)→ ManualReview ┬─(0.6)→ Approve ─┤
///                                │                     └─(0.4)→ Reject → ┬─(0.3)→ Appeal → ManualReview
///                                └─(0.2)→ Reject  ──────────────────────┴─(0.7)→ END
///                                              approved → SignContract → Disburse → END
/// ```
#[must_use]
pub fn model() -> WorkflowModel {
    let mut b = ModelBuilder::new("loan-origination");
    let end = b.end();
    let disburse = b.task_io(
        "Disburse",
        ["loanId", "amount"],
        [("loanState", DataEffect::Const("disbursed".into()))],
        end,
    );
    let sign = b.task_io(
        "SignContract",
        ["loanId"],
        [("loanState", DataEffect::Const("signed".into()))],
        disburse,
    );

    // Manual review is a loop target (appeals re-enter review).
    let review_gateway = b.placeholder();
    let manual_review = b.task_io("ManualReview", ["loanId", "score"], [], review_gateway);

    let appeal = b.task_io("Appeal", ["loanId"], [], manual_review);
    let after_reject = b.xor([(0.3, appeal), (0.7, end)]);
    let reject = b.task_io(
        "Reject",
        ["loanId", "score"],
        [("loanState", DataEffect::Const("rejected".into()))],
        after_reject,
    );
    let approve = b.task_io(
        "Approve",
        ["loanId", "score"],
        [("loanState", DataEffect::Const("approved".into()))],
        sign,
    );
    b.fill(
        review_gateway,
        crate::model::NodeDef::Xor {
            branches: vec![(0.6, approve), (0.4, reject)],
        },
    );

    let auto_approve = b.task_io(
        "AutoApprove",
        ["loanId", "score"],
        [("loanState", DataEffect::Const("approved".into()))],
        sign,
    );
    let triage = b.xor([(0.3, auto_approve), (0.5, manual_review), (0.2, reject)]);
    let check = b.task_io(
        "CheckCredit",
        ["loanId"],
        [("score", DataEffect::UniformInt { lo: 300, hi: 850 })],
        triage,
    );
    let submit = b.task_io(
        "Submit",
        [] as [&str; 0],
        [
            ("loanId", DataEffect::FreshId),
            (
                "amount",
                DataEffect::UniformInt {
                    lo: 1000,
                    hi: 50000,
                },
            ),
            ("loanState", DataEffect::Const("submitted".into())),
        ],
        check,
    );
    b.build(submit).expect("loan model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimulationConfig};
    use wlq_log::LogStats;

    #[test]
    fn all_paths_start_with_submit_and_check() {
        let log = simulate(&model(), &SimulationConfig::new(40, 4));
        for wid in log.wids() {
            let acts: Vec<&str> = log.instance(wid).map(|r| r.activity().as_str()).collect();
            assert_eq!(&acts[..3], &["START", "Submit", "CheckCredit"]);
        }
    }

    #[test]
    fn outcomes_are_diverse() {
        let log = simulate(&model(), &SimulationConfig::new(300, 12));
        let stats = LogStats::compute(&log);
        assert!(stats.activity_count("AutoApprove") > 0);
        assert!(stats.activity_count("ManualReview") > 0);
        assert!(stats.activity_count("Reject") > 0);
        assert!(stats.activity_count("Approve") > 0);
        // Appeals exist but are a minority path.
        let appeals = stats.activity_count("Appeal");
        assert!(appeals > 0);
        assert!(appeals < stats.activity_count("Reject"));
    }

    #[test]
    fn disbursement_only_after_signing() {
        let log = simulate(&model(), &SimulationConfig::new(50, 8));
        for wid in log.wids() {
            let acts: Vec<&str> = log.instance(wid).map(|r| r.activity().as_str()).collect();
            if let Some(d) = acts.iter().position(|a| *a == "Disburse") {
                let s = acts.iter().position(|a| *a == "SignContract").unwrap();
                assert!(s < d);
            }
        }
    }
}
