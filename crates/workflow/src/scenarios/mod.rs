//! Ready-made workflow models.
//!
//! * [`clinic`] — the paper's college-clinic referral process (Example 2).
//! * [`order`] — order fulfillment with a parallel shipping/invoicing
//!   block (exercises `⊕` queries).
//! * [`loan`] — loan origination with nested exclusive choices (exercises
//!   `⊗` queries).
//! * [`helpdesk`] — ticketing with triage, a parallel diagnosis block and
//!   escalation loops (every gateway type at once).

pub mod clinic;
pub mod helpdesk;
pub mod loan;
pub mod order;
