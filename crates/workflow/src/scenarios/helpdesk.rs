//! Helpdesk ticketing: triage, parallel diagnosis, escalation loops.
//!
//! This scenario combines every gateway type in one model — an XOR
//! triage, an AND block (reproduction and log collection proceed in
//! parallel), and an escalation loop that can cycle tickets between
//! support levels — which makes it the stress scenario for queries mixing
//! all four operators.

use crate::builder::ModelBuilder;
use crate::data::DataEffect;
use crate::model::{NodeDef, WorkflowModel};

/// Builds the helpdesk model:
///
/// ```text
/// START → OpenTicket → Triage ─┬─(0.35)→ AnswerFaq → Close → END
///                              └─(0.65)→ ⟨AND⟩ ┬→ Reproduce ─┐
///                                              └→ CollectLogs ┴→ ⟨JOIN⟩ → Diagnose
///   Diagnose → ┬─(0.5)→ Fix → Verify ─┬─(0.8)→ Close → END
///              │                      └─(0.2)→ Diagnose       (verification failed)
///              └─(0.5)→ Escalate → Diagnose                   (up a support level)
/// ```
#[must_use]
pub fn model() -> WorkflowModel {
    let mut b = ModelBuilder::new("helpdesk");
    let end = b.end();
    let close = b.task_io(
        "Close",
        ["ticketId"],
        [("state", DataEffect::Const("closed".into()))],
        end,
    );

    let diagnose_gateway = b.placeholder();
    let diagnose = b.task_io("Diagnose", ["ticketId", "severity"], [], diagnose_gateway);

    let verify_gateway = b.xor([(0.8, close), (0.2, diagnose)]);
    let verify = b.task_io("Verify", ["ticketId"], [], verify_gateway);
    let fix = b.task_io(
        "Fix",
        ["ticketId"],
        [("patched", DataEffect::Const(true.into()))],
        verify,
    );
    let escalate = b.task_io(
        "Escalate",
        ["ticketId", "level"],
        [("level", DataEffect::Add(1))],
        diagnose,
    );
    b.fill(
        diagnose_gateway,
        NodeDef::Xor {
            branches: vec![(0.5, fix), (0.5, escalate)],
        },
    );

    let join = b.and_join(diagnose);
    let reproduce = b.task_io("Reproduce", ["ticketId"], [], join);
    let collect = b.task_io("CollectLogs", ["ticketId"], [], join);
    let split = b.and_split([reproduce, collect], join);

    let faq = b.task_io("AnswerFaq", ["ticketId"], [], close);
    let triage = b.xor([(0.35, faq), (0.65, split)]);
    let open = b.task_io(
        "OpenTicket",
        [] as [&str; 0],
        [
            ("ticketId", DataEffect::FreshId),
            ("severity", DataEffect::UniformInt { lo: 1, hi: 4 }),
            ("level", DataEffect::Const(1i64.into())),
            ("state", DataEffect::Const("open".into())),
        ],
        triage,
    );
    b.build(open).expect("helpdesk model is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimulationConfig};
    use wlq_log::LogStats;

    #[test]
    fn tickets_either_answer_faq_or_go_through_diagnosis() {
        let log = simulate(&model(), &SimulationConfig::new(120, 8));
        for wid in log.wids() {
            let acts: Vec<&str> = log.instance(wid).map(|r| r.activity().as_str()).collect();
            let faq = acts.contains(&"AnswerFaq");
            let diagnosed = acts.contains(&"Diagnose");
            assert!(
                faq ^ diagnosed,
                "instance {wid:?} must take exactly one route"
            );
            if diagnosed {
                assert!(acts.contains(&"Reproduce"));
                assert!(acts.contains(&"CollectLogs"));
            }
            assert_eq!(*acts.last().unwrap(), "END");
            assert_eq!(acts[acts.len() - 2], "Close");
        }
    }

    #[test]
    fn escalation_levels_accumulate() {
        let log = simulate(&model(), &SimulationConfig::new(300, 21));
        let mut max_level = 1;
        for r in log.iter().filter(|r| r.activity().as_str() == "Escalate") {
            let after = r.output().get_or_undefined("level").as_int().unwrap();
            let before = r.input().get_or_undefined("level").as_int().unwrap();
            assert_eq!(after, before + 1);
            max_level = max_level.max(after);
        }
        assert!(max_level >= 2, "no ticket escalated twice in 300 instances");
    }

    #[test]
    fn model_conforms_to_itself_and_has_expected_activities() {
        let m = model();
        let names: Vec<String> = m
            .activities()
            .iter()
            .map(|a| a.as_str().to_string())
            .collect();
        assert_eq!(
            names,
            [
                "AnswerFaq",
                "Close",
                "CollectLogs",
                "Diagnose",
                "Escalate",
                "Fix",
                "OpenTicket",
                "Reproduce",
                "Verify",
            ]
        );
        let log = simulate(&m, &SimulationConfig::new(40, 3));
        assert!(m.check_log(&log).is_conforming());
        let stats = LogStats::compute(&log);
        assert_eq!(stats.activity_count("OpenTicket"), 40);
    }
}
