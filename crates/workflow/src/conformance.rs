//! Conformance checking: does a log's instance fit a workflow model?
//!
//! The paper motivates log querying with anomaly hunting; conformance
//! checking is the complementary substrate feature — replay each logged
//! instance against the model's token game and report instances whose
//! activity sequence the model cannot produce. The replay explores
//! gateway nondeterminism (XOR branch choice, token interleaving inside
//! AND blocks) by memoized depth-first search.

use std::collections::{BTreeMap, HashSet};

use wlq_log::{Activity, Log, Wid};

use crate::model::{NodeDef, NodeId, WorkflowModel};

/// A snapshot of the token game: active token positions plus AND-join
/// bookkeeping. Canonicalised (sorted) so it can key the memo table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct State {
    /// Sorted node indexes of active tokens.
    tokens: Vec<usize>,
    /// Sorted `(join node, expected, arrived)` triples.
    joins: Vec<(usize, usize, usize)>,
}

impl State {
    fn initial(entry: NodeId) -> State {
        State {
            tokens: vec![entry.0],
            joins: Vec::new(),
        }
    }

    fn canonical(mut self) -> State {
        self.tokens.sort_unstable();
        self.joins.sort_unstable();
        self
    }

    fn remove_token(&self, idx: usize) -> State {
        let mut s = self.clone();
        s.tokens.remove(idx);
        s
    }

    fn move_token(&self, idx: usize, to: NodeId) -> State {
        let mut s = self.clone();
        s.tokens[idx] = to.0;
        s.canonical()
    }
}

/// The verdict for one workflow instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The instance's full trace (including its `END`) is a run of the
    /// model.
    Complete,
    /// The instance is not finished, but its trace so far is a prefix of
    /// some run of the model.
    ValidPrefix,
    /// No run of the model produces this trace.
    Violating,
}

/// The result of replaying a whole log against a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceReport {
    /// Verdict per instance.
    pub verdicts: BTreeMap<Wid, Verdict>,
}

impl ConformanceReport {
    /// Instances whose trace the model cannot produce.
    #[must_use]
    pub fn violations(&self) -> Vec<Wid> {
        self.verdicts
            .iter()
            .filter(|(_, v)| **v == Verdict::Violating)
            .map(|(w, _)| *w)
            .collect()
    }

    /// Returns `true` when no instance violates the model.
    #[must_use]
    pub fn is_conforming(&self) -> bool {
        self.verdicts.values().all(|v| *v != Verdict::Violating)
    }
}

impl WorkflowModel {
    /// Whether the model can produce exactly the given task sequence and
    /// terminate (all tokens consumed by `End` nodes).
    ///
    /// `trace` contains only task activities — no `START`/`END` markers.
    #[must_use]
    pub fn accepts(&self, trace: &[Activity]) -> bool {
        let mut memo = HashSet::new();
        self.search(State::initial(self.entry()), trace, 0, true, &mut memo)
    }

    /// Whether the given task sequence is a prefix of some run.
    #[must_use]
    pub fn accepts_prefix(&self, trace: &[Activity]) -> bool {
        let mut memo = HashSet::new();
        self.search(State::initial(self.entry()), trace, 0, false, &mut memo)
    }

    /// Replays every instance of `log` and reports a [`Verdict`] each:
    /// completed instances (with `END`) must be full runs; open instances
    /// must be prefixes of runs.
    #[must_use]
    pub fn check_log(&self, log: &Log) -> ConformanceReport {
        let mut verdicts = BTreeMap::new();
        for wid in log.wids() {
            let trace: Vec<Activity> = log
                .instance(wid)
                .filter(|r| !r.is_start() && !r.is_end())
                .map(|r| r.activity().clone())
                .collect();
            let verdict = if log.is_completed(wid) {
                if self.accepts(&trace) {
                    Verdict::Complete
                } else {
                    Verdict::Violating
                }
            } else if self.accepts_prefix(&trace) {
                Verdict::ValidPrefix
            } else {
                Verdict::Violating
            };
            verdicts.insert(wid, verdict);
        }
        ConformanceReport { verdicts }
    }

    /// Memoized DFS over (token state, trace position).
    fn search(
        &self,
        state: State,
        trace: &[Activity],
        pos: usize,
        need_completion: bool,
        memo: &mut HashSet<(State, usize)>,
    ) -> bool {
        if pos == trace.len() {
            if !need_completion {
                return true;
            }
            if state.tokens.is_empty() {
                return true;
            }
        }
        if !memo.insert((state.clone(), pos)) {
            return false; // already explored (or in progress on a cycle)
        }
        for idx in 0..state.tokens.len() {
            // Skip duplicate token positions: advancing either is the same.
            if idx > 0 && state.tokens[idx] == state.tokens[idx - 1] {
                continue;
            }
            let node = NodeId(state.tokens[idx]);
            match self.node(node) {
                NodeDef::Task { activity, next, .. } => {
                    if pos < trace.len() && &trace[pos] == activity {
                        let next_state = state.move_token(idx, *next);
                        if self.search(next_state, trace, pos + 1, need_completion, memo) {
                            return true;
                        }
                    }
                }
                NodeDef::Xor { branches } => {
                    for &(_, target) in branches {
                        let next_state = state.move_token(idx, target);
                        if self.search(next_state, trace, pos, need_completion, memo) {
                            return true;
                        }
                    }
                }
                NodeDef::AndSplit { branches, join } => {
                    let mut s = state.remove_token(idx);
                    s.tokens.extend(branches.iter().map(|b| b.0));
                    bump_join(&mut s.joins, join.0, branches.len(), 0);
                    if self.search(s.canonical(), trace, pos, need_completion, memo) {
                        return true;
                    }
                }
                NodeDef::AndJoin { next } => {
                    let mut s = state.remove_token(idx);
                    let (expected, arrived) = join_counts(&s.joins, node.0);
                    let arrived = arrived + 1;
                    if arrived >= expected.max(1) {
                        clear_join(&mut s.joins, node.0);
                        s.tokens.push(next.0);
                    } else {
                        set_join(&mut s.joins, node.0, expected, arrived);
                    }
                    if self.search(s.canonical(), trace, pos, need_completion, memo) {
                        return true;
                    }
                }
                NodeDef::End => {
                    let s = state.remove_token(idx);
                    if self.search(s.canonical(), trace, pos, need_completion, memo) {
                        return true;
                    }
                }
            }
        }
        false
    }
}

fn join_counts(joins: &[(usize, usize, usize)], node: usize) -> (usize, usize) {
    joins
        .iter()
        .find(|(j, _, _)| *j == node)
        .map_or((0, 0), |&(_, e, a)| (e, a))
}

fn bump_join(
    joins: &mut Vec<(usize, usize, usize)>,
    node: usize,
    add_expected: usize,
    add_arrived: usize,
) {
    if let Some(entry) = joins.iter_mut().find(|(j, _, _)| *j == node) {
        entry.1 += add_expected;
        entry.2 += add_arrived;
    } else {
        joins.push((node, add_expected, add_arrived));
    }
}

fn set_join(joins: &mut Vec<(usize, usize, usize)>, node: usize, expected: usize, arrived: usize) {
    if let Some(entry) = joins.iter_mut().find(|(j, _, _)| *j == node) {
        entry.1 = expected;
        entry.2 = arrived;
    } else {
        joins.push((node, expected, arrived));
    }
}

fn clear_join(joins: &mut Vec<(usize, usize, usize)>, node: usize) {
    joins.retain(|(j, _, _)| *j != node);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::engine::{simulate, SimulationConfig};
    use crate::scenarios;
    use wlq_log::{attrs, LogBuilder};

    fn acts(names: &[&str]) -> Vec<Activity> {
        names.iter().map(|n| Activity::new(*n)).collect()
    }

    fn linear() -> crate::model::WorkflowModel {
        let mut b = ModelBuilder::new("linear");
        let end = b.end();
        let c = b.task("C", end);
        let bb = b.task("B", c);
        let a = b.task("A", bb);
        b.build(a).unwrap()
    }

    #[test]
    fn linear_model_accepts_exactly_its_sequence() {
        let m = linear();
        assert!(m.accepts(&acts(&["A", "B", "C"])));
        assert!(!m.accepts(&acts(&["A", "C", "B"])));
        assert!(!m.accepts(&acts(&["A", "B"])));
        assert!(!m.accepts(&acts(&["A", "B", "C", "C"])));
        assert!(m.accepts_prefix(&acts(&["A", "B"])));
        assert!(m.accepts_prefix(&acts(&[])));
        assert!(!m.accepts_prefix(&acts(&["B"])));
    }

    #[test]
    fn parallel_model_accepts_both_interleavings() {
        let mut b = ModelBuilder::new("par");
        let end = b.end();
        let join = b.and_join(end);
        let left = b.task("X", join);
        let right = b.task("Y", join);
        let split = b.and_split([left, right], join);
        let m = b.build(split).unwrap();
        assert!(m.accepts(&acts(&["X", "Y"])));
        assert!(m.accepts(&acts(&["Y", "X"])));
        assert!(!m.accepts(&acts(&["X"])));
        assert!(!m.accepts(&acts(&["X", "Y", "X"])));
        assert!(m.accepts_prefix(&acts(&["Y"])));
    }

    #[test]
    fn loops_accept_any_number_of_rounds() {
        let mut b = ModelBuilder::new("loop");
        let end = b.end();
        let head = b.placeholder();
        let body = b.task("W", head);
        b.fill(
            head,
            NodeDef::Xor {
                branches: vec![(0.5, body), (0.5, end)],
            },
        );
        let m = b.build(head).unwrap();
        for rounds in 0..5 {
            let trace = vec![Activity::new("W"); rounds];
            assert!(m.accepts(&trace), "rounds={rounds}");
        }
        assert!(!m.accepts(&acts(&["W", "Z"])));
    }

    #[test]
    fn simulated_logs_always_conform() {
        for (model, seed) in [
            (scenarios::clinic::model(), 1),
            (scenarios::order::model(), 2),
            (scenarios::loan::model(), 3),
        ] {
            let log = simulate(&model, &SimulationConfig::new(30, seed));
            let report = model.check_log(&log);
            assert!(
                report.is_conforming(),
                "{}: violations {:?}",
                model.name(),
                report.violations()
            );
            assert!(report.verdicts.values().all(|v| *v == Verdict::Complete));
        }
    }

    #[test]
    fn corrupted_traces_are_flagged() {
        let model = scenarios::order::model();
        // Hand-build a log that skips shipping entirely.
        let mut b = LogBuilder::new();
        let w = b.start_instance();
        for act in [
            "PlaceOrder",
            "CreateInvoice",
            "CollectPayment",
            "CloseOrder",
        ] {
            b.append(w, act, attrs! {}, attrs! {}).unwrap();
        }
        b.end_instance(w).unwrap();
        let log = b.build().unwrap();
        let report = model.check_log(&log);
        assert_eq!(report.verdicts[&w], Verdict::Violating);
        assert_eq!(report.violations(), vec![w]);
        assert!(!report.is_conforming());
    }

    #[test]
    fn open_instances_get_prefix_verdicts() {
        let model = linear();
        let mut b = LogBuilder::new();
        let w1 = b.start_instance(); // valid prefix: A
        b.append(w1, "A", attrs! {}, attrs! {}).unwrap();
        let w2 = b.start_instance(); // violating: starts with B
        b.append(w2, "B", attrs! {}, attrs! {}).unwrap();
        let log = b.build().unwrap();
        let report = model.check_log(&log);
        assert_eq!(report.verdicts[&w1], Verdict::ValidPrefix);
        assert_eq!(report.verdicts[&w2], Verdict::Violating);
    }

    #[test]
    fn incomplete_run_with_end_is_violating() {
        // A completed instance that stopped halfway through the model.
        let model = linear();
        let mut b = LogBuilder::new();
        let w = b.start_instance();
        b.append(w, "A", attrs! {}, attrs! {}).unwrap();
        b.end_instance(w).unwrap();
        let log = b.build().unwrap();
        assert_eq!(model.check_log(&log).verdicts[&w], Verdict::Violating);
    }
}
