//! Graphviz DOT export of workflow models, for documentation and
//! debugging of scenario processes.

use std::fmt::Write as _;

use crate::model::{NodeDef, WorkflowModel};

impl WorkflowModel {
    /// Renders the model as a Graphviz `digraph`.
    ///
    /// Tasks are boxes, XOR gateways diamonds (edges labelled with their
    /// weights), AND gateways diamonds labelled `+`, and `End` nodes
    /// double circles.
    ///
    /// ```
    /// use wlq_workflow::scenarios;
    /// let dot = scenarios::order::model().to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("PlaceOrder"));
    /// ```
    #[must_use]
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name());
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  entry [shape=point];");
        let _ = writeln!(out, "  entry -> n{};", self.entry().0);
        for (i, node) in self.nodes().iter().enumerate() {
            match node {
                NodeDef::Task { activity, next, .. } => {
                    let _ = writeln!(out, "  n{i} [shape=box, label=\"{activity}\"];");
                    let _ = writeln!(out, "  n{i} -> n{};", next.0);
                }
                NodeDef::Xor { branches } => {
                    let _ = writeln!(out, "  n{i} [shape=diamond, label=\"×\"];");
                    for (weight, target) in branches {
                        let _ = writeln!(out, "  n{i} -> n{} [label=\"{weight:.2}\"];", target.0);
                    }
                }
                NodeDef::AndSplit { branches, .. } => {
                    let _ = writeln!(out, "  n{i} [shape=diamond, label=\"+\"];");
                    for target in branches {
                        let _ = writeln!(out, "  n{i} -> n{};", target.0);
                    }
                }
                NodeDef::AndJoin { next } => {
                    let _ = writeln!(out, "  n{i} [shape=diamond, label=\"+\"];");
                    let _ = writeln!(out, "  n{i} -> n{};", next.0);
                }
                NodeDef::End => {
                    let _ = writeln!(out, "  n{i} [shape=doublecircle, label=\"\"];");
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::scenarios;

    #[test]
    fn dot_lists_every_task_once() {
        let model = scenarios::clinic::model();
        let dot = model.to_dot();
        for activity in model.activities() {
            assert_eq!(
                dot.matches(&format!("label=\"{activity}\"")).count(),
                1,
                "{activity} should appear exactly once"
            );
        }
        assert!(dot.starts_with("digraph \"clinic-referral\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_marks_gateways_and_ends() {
        let dot = scenarios::order::model().to_dot();
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("shape=doublecircle"));
        assert!(dot.contains("entry ->"));
    }

    #[test]
    fn xor_edges_carry_weights() {
        let dot = scenarios::loan::model().to_dot();
        assert!(dot.contains("label=\"0.30\"") || dot.contains("label=\"0.50\""));
    }
}
