//! Synthetic and adversarial log generators for benchmarks.
//!
//! The paper has no public datasets, so the benchmark harness generates
//! logs with precisely controlled shapes:
//!
//! * [`uniform_log`] — instances of fixed length over a uniform activity
//!   alphabet (the generic scaling workload),
//! * [`worst_case_log`] — a single instance whose records all carry the
//!   same activity, the input that realises Theorem 1's `O(m^k)` bound,
//! * [`pair_log`] — exactly `n1` records of activity `A` and `n2` of `B`
//!   in one instance, for Lemma 1's per-operator `n1·n2` sweeps,
//! * [`skewed_log`] — a Zipf-ish alphabet for optimizer experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wlq_log::{attrs, Log, LogBuilder};

/// A log of `instances` instances, each with `length` task records drawn
/// uniformly from an alphabet `T0..T{alphabet-1}`, interleaved round-robin.
///
/// # Panics
///
/// Panics if `instances`, `length`, or `alphabet` is 0.
#[must_use]
pub fn uniform_log(instances: usize, length: usize, alphabet: usize, seed: u64) -> Log {
    assert!(instances > 0 && length > 0 && alphabet > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..alphabet).map(|i| format!("T{i}")).collect();
    let mut b = LogBuilder::new();
    let wids: Vec<_> = (0..instances).map(|_| b.start_instance()).collect();
    for _ in 0..length {
        for &wid in &wids {
            let name = &names[rng.gen_range(0..alphabet)];
            b.append(wid, name.as_str(), attrs! {}, attrs! {})
                .expect("open");
        }
    }
    for &wid in &wids {
        b.end_instance(wid).expect("open");
    }
    b.build().expect("nonempty")
}

/// The Theorem 1 worst case: one instance, `m` records all named
/// `activity`. Every subset-combination explosion the paper's bound
/// describes is realised on this input.
///
/// # Panics
///
/// Panics if `m` is 0.
#[must_use]
pub fn worst_case_log(activity: &str, m: usize) -> Log {
    assert!(m > 0);
    let mut b = LogBuilder::new();
    let wid = b.start_instance();
    for _ in 0..m {
        b.append(wid, activity, attrs! {}, attrs! {}).expect("open");
    }
    b.build().expect("nonempty")
}

/// One instance containing exactly `n1` records of activity `a` followed
/// by `n2` records of `b` (so `a -> b` pairs are maximal: `n1·n2`).
///
/// With `interleave = true` the records alternate instead, halving the
/// ordered pairs but exercising the merge paths.
///
/// # Panics
///
/// Panics if `n1` or `n2` is 0.
#[must_use]
pub fn pair_log(a: &str, n1: usize, b_name: &str, n2: usize, interleave: bool) -> Log {
    assert!(n1 > 0 && n2 > 0);
    let mut b = LogBuilder::new();
    let wid = b.start_instance();
    if interleave {
        let (mut i, mut j) = (0, 0);
        while i < n1 || j < n2 {
            if i < n1 {
                b.append(wid, a, attrs! {}, attrs! {}).expect("open");
                i += 1;
            }
            if j < n2 {
                b.append(wid, b_name, attrs! {}, attrs! {}).expect("open");
                j += 1;
            }
        }
    } else {
        for _ in 0..n1 {
            b.append(wid, a, attrs! {}, attrs! {}).expect("open");
        }
        for _ in 0..n2 {
            b.append(wid, b_name, attrs! {}, attrs! {}).expect("open");
        }
    }
    b.build().expect("nonempty")
}

/// A multi-instance log with a skewed (geometric) activity distribution:
/// activity `T0` is the most frequent, each later activity roughly half as
/// frequent. Used by the optimizer ablation — selectivity differences are
/// what join reordering exploits.
///
/// # Panics
///
/// Panics if `instances`, `length`, or `alphabet` is 0.
#[must_use]
pub fn skewed_log(instances: usize, length: usize, alphabet: usize, seed: u64) -> Log {
    assert!(instances > 0 && length > 0 && alphabet > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = (0..alphabet).map(|i| format!("T{i}")).collect();
    // Geometric weights 2^-(i+1), renormalised by rejection.
    let mut b = LogBuilder::new();
    let wids: Vec<_> = (0..instances).map(|_| b.start_instance()).collect();
    for _ in 0..length {
        for &wid in &wids {
            let mut idx = 0;
            while idx + 1 < alphabet && rng.gen_bool(0.5) {
                idx += 1;
            }
            b.append(wid, names[idx].as_str(), attrs! {}, attrs! {})
                .expect("open");
        }
    }
    for &wid in &wids {
        b.end_instance(wid).expect("open");
    }
    b.build().expect("nonempty")
}

/// Injects control-flow anomalies into a log: in a fraction `rate` of the
/// instances, one randomly chosen task record is moved to a later random
/// position within its instance (re-numbering is-lsns, so the result is
/// still a *valid* log — just one that may no longer conform to the
/// process that produced it). Returns the drifted log together with the
/// ids of the tampered instances.
///
/// Used to calibrate conformance checking and audit rules: a detector
/// should flag (a superset of) the returned instances.
///
/// # Panics
///
/// Panics if `rate` is outside `0.0..=1.0`.
#[must_use]
pub fn inject_reorder_anomalies(log: &Log, rate: f64, seed: u64) -> (Log, Vec<wlq_log::Wid>) {
    assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = LogBuilder::new();
    let mut tampered = Vec::new();
    for wid in log.wids() {
        let tasks: Vec<_> = log
            .instance(wid)
            .filter(|r| !r.is_start() && !r.is_end())
            .cloned()
            .collect();
        let completed = log.is_completed(wid);
        b.start_instance_with_id(wid).expect("fresh wid");
        let tamper = tasks.len() >= 2 && rng.gen_bool(rate);
        let order: Vec<usize> = if tamper {
            tampered.push(wid);
            let from = rng.gen_range(0..tasks.len() - 1);
            let to = rng.gen_range(from + 1..tasks.len());
            let mut order: Vec<usize> = (0..tasks.len()).collect();
            let moved = order.remove(from);
            order.insert(to, moved);
            order
        } else {
            (0..tasks.len()).collect()
        };
        for i in order {
            let r = &tasks[i];
            b.append(
                wid,
                r.activity().clone(),
                r.input().clone(),
                r.output().clone(),
            )
            .expect("open");
        }
        if completed {
            b.end_instance(wid).expect("open");
        }
    }
    (b.build().expect("nonempty"), tampered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::{LogStats, Wid};

    #[test]
    fn uniform_log_shape() {
        let log = uniform_log(4, 10, 3, 1);
        assert_eq!(log.num_instances(), 4);
        assert_eq!(log.len(), 4 * (10 + 2)); // + START and END
        for wid in log.wids() {
            assert!(log.is_completed(wid));
            assert_eq!(log.instance_len(wid), 12);
        }
        let stats = LogStats::compute(&log);
        let total: usize = (0..3).map(|i| stats.activity_count(&format!("T{i}"))).sum();
        assert_eq!(total, 40);
    }

    #[test]
    fn uniform_log_is_deterministic() {
        assert_eq!(uniform_log(3, 5, 2, 9), uniform_log(3, 5, 2, 9));
        assert_ne!(uniform_log(3, 5, 2, 9), uniform_log(3, 5, 2, 10));
    }

    #[test]
    fn worst_case_log_is_single_instance_single_activity() {
        let log = worst_case_log("t", 16);
        assert_eq!(log.num_instances(), 1);
        assert_eq!(log.len(), 17); // START + 16
        let stats = LogStats::compute(&log);
        assert_eq!(stats.activity_count("t"), 16);
    }

    #[test]
    fn pair_log_block_layout_maximises_ordered_pairs() {
        let log = pair_log("A", 3, "B", 4, false);
        let acts: Vec<&str> = log
            .instance(Wid(1))
            .map(|r| r.activity().as_str())
            .collect();
        assert_eq!(acts, ["START", "A", "A", "A", "B", "B", "B", "B"]);
    }

    #[test]
    fn pair_log_interleaved_alternates() {
        let log = pair_log("A", 2, "B", 2, true);
        let acts: Vec<&str> = log
            .instance(Wid(1))
            .map(|r| r.activity().as_str())
            .collect();
        assert_eq!(acts, ["START", "A", "B", "A", "B"]);
    }

    #[test]
    fn injected_anomalies_keep_logs_valid_and_are_reported() {
        let model = crate::scenarios::clinic::model();
        let log = crate::simulate(&model, &crate::SimulationConfig::new(60, 9));
        let (drifted, tampered) = inject_reorder_anomalies(&log, 0.4, 7);
        // Still a valid log of the same shape.
        assert_eq!(drifted.len(), log.len());
        assert_eq!(drifted.num_instances(), log.num_instances());
        assert!(!tampered.is_empty());
        // Untampered instances are byte-identical in activity sequence.
        for wid in log.wids() {
            let before: Vec<_> = log.instance(wid).map(|r| r.activity().clone()).collect();
            let after: Vec<_> = drifted
                .instance(wid)
                .map(|r| r.activity().clone())
                .collect();
            if tampered.contains(&wid) {
                // Same multiset, possibly different order.
                let mut b = before.clone();
                let mut a = after.clone();
                b.sort();
                a.sort();
                assert_eq!(a, b, "tampering changed the multiset for {wid:?}");
            } else {
                assert_eq!(before, after, "untampered {wid:?} changed");
            }
        }
    }

    #[test]
    fn conformance_flags_only_tampered_candidates() {
        let model = crate::scenarios::order::model();
        let log = crate::simulate(&model, &crate::SimulationConfig::new(40, 3));
        let (drifted, tampered) = inject_reorder_anomalies(&log, 0.5, 11);
        let report = model.check_log(&drifted);
        // Every violation must be a tampered instance (reordering can be
        // harmless — e.g. swapping the two parallel branches — so not
        // every tampered instance violates; but no clean one may).
        for wid in report.violations() {
            assert!(tampered.contains(&wid), "{wid:?} flagged but not tampered");
        }
        assert!(
            !report.violations().is_empty(),
            "seed produced no detectable anomaly; pick another"
        );
    }

    #[test]
    fn zero_rate_is_identity_on_activity_sequences() {
        // The rebuild regroups instances (global lsns differ), but every
        // instance's sequence — what incident semantics observe — is
        // unchanged.
        let log = uniform_log(5, 8, 3, 2);
        let (drifted, tampered) = inject_reorder_anomalies(&log, 0.0, 1);
        assert!(tampered.is_empty());
        for wid in log.wids() {
            let before: Vec<_> = log.instance(wid).map(|r| r.activity().clone()).collect();
            let after: Vec<_> = drifted
                .instance(wid)
                .map(|r| r.activity().clone())
                .collect();
            assert_eq!(before, after);
        }
    }

    #[test]
    fn skewed_log_is_actually_skewed() {
        let log = skewed_log(2, 200, 6, 3);
        let stats = LogStats::compute(&log);
        let c0 = stats.activity_count("T0");
        let c4 = stats.activity_count("T4");
        assert!(c0 > 3 * c4.max(1), "T0={c0} T4={c4}: not skewed");
    }
}
