//! The workflow execution engine: enacts a model as many interleaved
//! instances and writes the resulting workflow log.
//!
//! This is the substrate the paper assumes ("the workflow engine …
//! records the key actions in a workflow log"): real deployments were not
//! available, so a seeded multi-instance simulator produces logs with the
//! same structure — interleaved instances, data attributes read and
//! written by tasks, probabilistic control flow, and parallel branches.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wlq_log::{AttrMap, Log, LogBuilder, Wid};

use crate::model::{NodeDef, NodeId, WorkflowModel};

/// Parameters of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Number of workflow instances to enact.
    pub instances: usize,
    /// RNG seed; equal seeds give byte-identical logs.
    pub seed: u64,
    /// Probability that the next step starts a new instance (while quota
    /// remains) rather than advancing a running one. Controls how heavily
    /// instances interleave.
    pub arrival_prob: f64,
    /// Safety valve: an instance is force-completed after this many
    /// engine steps (guards against unlucky loop weights).
    pub max_steps_per_instance: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            instances: 10,
            seed: 42,
            arrival_prob: 0.3,
            max_steps_per_instance: 500,
        }
    }
}

impl SimulationConfig {
    /// A config with `instances` instances and `seed`, other fields
    /// default.
    #[must_use]
    pub fn new(instances: usize, seed: u64) -> Self {
        SimulationConfig {
            instances,
            seed,
            ..SimulationConfig::default()
        }
    }
}

/// Per-instance runtime state.
#[derive(Debug)]
struct InstanceState {
    wid: Wid,
    store: AttrMap,
    /// Active tokens (node positions). Multiple tokens while inside an
    /// AND block.
    tokens: Vec<NodeId>,
    /// For each AND join node: tokens arrived so far.
    join_arrived: HashMap<usize, usize>,
    /// For each AND join node: tokens expected (set at the split).
    join_expected: HashMap<usize, usize>,
    steps: usize,
}

/// Enacts `config.instances` instances of `model`, returning the workflow
/// log.
///
/// Instances arrive and interleave stochastically under the seeded RNG;
/// the produced log always satisfies Definition 2 (it is written through
/// [`LogBuilder`]) and every instance is completed with an `END` record.
///
/// # Panics
///
/// Panics if `config.instances` is 0, or on internal invariant violations
/// (which would indicate a bug in model validation).
///
/// # Examples
///
/// ```
/// use wlq_workflow::{scenarios, simulate, SimulationConfig};
///
/// let model = scenarios::clinic::model();
/// let log = simulate(&model, &SimulationConfig::new(5, 7));
/// assert_eq!(log.num_instances(), 5);
/// assert!(log.wids().all(|w| log.is_completed(w)));
/// ```
#[must_use]
pub fn simulate(model: &WorkflowModel, config: &SimulationConfig) -> Log {
    assert!(config.instances > 0, "need at least one instance");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = LogBuilder::new();
    let mut running: Vec<InstanceState> = Vec::new();
    let mut started = 0usize;

    while started < config.instances || !running.is_empty() {
        let must_start = running.is_empty();
        let may_start = started < config.instances;
        if may_start && (must_start || rng.gen_bool(config.arrival_prob)) {
            let wid = builder.start_instance();
            running.push(InstanceState {
                wid,
                store: AttrMap::new(),
                tokens: vec![model.entry()],
                join_arrived: HashMap::new(),
                join_expected: HashMap::new(),
                steps: 0,
            });
            started += 1;
            continue;
        }
        // Advance one token of one random running instance.
        let idx = rng.gen_range(0..running.len());
        let finished = step_instance(model, config, &mut running[idx], &mut builder, &mut rng);
        if finished {
            let state = running.swap_remove(idx);
            builder.end_instance(state.wid).expect("instance open");
        }
    }
    builder
        .build()
        .expect("simulation produced at least one record")
}

/// Advances one token; returns `true` when the instance has terminated.
fn step_instance(
    model: &WorkflowModel,
    config: &SimulationConfig,
    state: &mut InstanceState,
    builder: &mut LogBuilder,
    rng: &mut StdRng,
) -> bool {
    state.steps += 1;
    if state.steps > config.max_steps_per_instance {
        // Safety valve: drop all tokens and complete.
        state.tokens.clear();
        return true;
    }
    let token_idx = rng.gen_range(0..state.tokens.len());
    let node_id = state.tokens[token_idx];
    match model.node(node_id) {
        NodeDef::Task {
            activity,
            reads,
            writes,
            next,
        } => {
            let mut input = AttrMap::new();
            for attr in reads {
                if let Some(v) = state.store.get(attr) {
                    input.set(attr.as_str(), v.clone());
                }
            }
            let mut output = AttrMap::new();
            for (attr, effect) in writes {
                let value = effect.eval(attr, &state.store, rng);
                output.set(attr.as_str(), value);
            }
            state.store.apply(&output);
            builder
                .append(state.wid, activity.clone(), input, output)
                .expect("instance open");
            state.tokens[token_idx] = *next;
            false
        }
        NodeDef::Xor { branches } => {
            let total: f64 = branches.iter().map(|&(w, _)| w).sum();
            let mut draw = rng.gen_range(0.0..total);
            let mut chosen = branches.last().expect("validated nonempty").1;
            for &(w, target) in branches {
                if draw < w {
                    chosen = target;
                    break;
                }
                draw -= w;
            }
            state.tokens[token_idx] = chosen;
            false
        }
        NodeDef::AndSplit { branches, join } => {
            state.join_expected.insert(
                join.0,
                branches.len() + state.join_expected.get(&join.0).unwrap_or(&0),
            );
            state.tokens.swap_remove(token_idx);
            state.tokens.extend(branches.iter().copied());
            false
        }
        NodeDef::AndJoin { next } => {
            let arrived = state.join_arrived.entry(node_id.0).or_insert(0);
            *arrived += 1;
            let expected = state.join_expected.get(&node_id.0).copied().unwrap_or(1);
            if *arrived >= expected {
                state.join_arrived.remove(&node_id.0);
                state.join_expected.remove(&node_id.0);
                state.tokens[token_idx] = *next;
            } else {
                state.tokens.swap_remove(token_idx);
            }
            false
        }
        NodeDef::End => {
            state.tokens.swap_remove(token_idx);
            state.tokens.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModelBuilder;
    use crate::data::DataEffect;
    use wlq_log::{Log, LogStats};

    fn linear_model() -> WorkflowModel {
        let mut b = ModelBuilder::new("linear");
        let end = b.end();
        let c = b.task("C", end);
        let bn = b.task("B", c);
        let a = b.task_io(
            "A",
            [] as [&str; 0],
            [("x", DataEffect::UniformInt { lo: 1, hi: 100 })],
            bn,
        );
        b.build(a).unwrap()
    }

    fn parallel_model() -> WorkflowModel {
        let mut b = ModelBuilder::new("par");
        let end = b.end();
        let join = b.and_join(end);
        let left = b.task("Ship", join);
        let right = b.task("Invoice", join);
        let split = b.and_split([left, right], join);
        b.build(split).unwrap()
    }

    #[test]
    fn linear_simulation_is_valid_and_complete() {
        let log = simulate(&linear_model(), &SimulationConfig::new(8, 1));
        assert_eq!(log.num_instances(), 8);
        for wid in log.wids() {
            assert!(log.is_completed(wid));
            let acts: Vec<String> = log
                .instance(wid)
                .map(|r| r.activity().as_str().to_string())
                .collect();
            assert_eq!(acts, ["START", "A", "B", "C", "END"]);
        }
    }

    #[test]
    fn same_seed_same_log() {
        let model = linear_model();
        let a = simulate(&model, &SimulationConfig::new(10, 99));
        let b = simulate(&model, &SimulationConfig::new(10, 99));
        assert_eq!(a, b);
        let c = simulate(&model, &SimulationConfig::new(10, 100));
        assert_ne!(a, c);
    }

    #[test]
    fn instances_interleave() {
        // With many instances and high arrival probability, at least one
        // pair of records of different instances must alternate.
        let config = SimulationConfig {
            instances: 10,
            seed: 3,
            arrival_prob: 0.8,
            ..Default::default()
        };
        let log = simulate(&linear_model(), &config);
        let wids: Vec<u64> = log.iter().map(|r| r.wid().get()).collect();
        let changes = wids.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(
            changes > 10,
            "only {changes} wid alternations — no interleaving?"
        );
    }

    #[test]
    fn parallel_branches_both_execute_in_any_order() {
        let model = parallel_model();
        let mut orders = std::collections::HashSet::new();
        for seed in 0..40 {
            let log = simulate(&model, &SimulationConfig::new(1, seed));
            let acts: Vec<String> = log
                .instance(wlq_log::Wid(1))
                .map(|r| r.activity().as_str().to_string())
                .collect();
            assert_eq!(acts.len(), 4); // START, both tasks, END
            assert!(acts.contains(&"Ship".to_string()));
            assert!(acts.contains(&"Invoice".to_string()));
            orders.insert(acts);
        }
        // Both interleavings occur across seeds.
        assert_eq!(orders.len(), 2, "expected both Ship/Invoice orders");
    }

    #[test]
    fn data_effects_flow_into_the_log() {
        let log = simulate(&linear_model(), &SimulationConfig::new(3, 5));
        for wid in log.wids() {
            let a = log
                .instance(wid)
                .find(|r| r.activity().as_str() == "A")
                .unwrap();
            let x = a.output().get_or_undefined("x").as_int().unwrap();
            assert!((1..=100).contains(&x));
        }
    }

    #[test]
    fn loops_are_bounded_by_the_safety_valve() {
        // A loop that continues with probability 1 — only the valve stops it.
        let mut b = ModelBuilder::new("tight-loop");
        let end = b.end();
        let head = b.placeholder();
        let body = b.task("Spin", head);
        b.fill(
            head,
            NodeDef::Xor {
                branches: vec![(1.0, body), (f64::MIN_POSITIVE, end)],
            },
        );
        let model = b.build(head).unwrap();
        let config = SimulationConfig {
            instances: 1,
            seed: 0,
            max_steps_per_instance: 50,
            ..Default::default()
        };
        let log: Log = simulate(&model, &config);
        assert!(log.is_completed(wlq_log::Wid(1)));
        assert!(log.len() <= 60);
    }

    #[test]
    fn stats_reflect_simulation_scale() {
        let log = simulate(&linear_model(), &SimulationConfig::new(20, 8));
        let stats = LogStats::compute(&log);
        assert_eq!(stats.num_instances, 20);
        assert_eq!(stats.completed_instances, 20);
        assert_eq!(stats.activity_count("A"), 20);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn zero_instances_panics() {
        let _ = simulate(&linear_model(), &SimulationConfig::new(0, 1));
    }
}
