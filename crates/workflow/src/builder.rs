//! Fluent construction of [`WorkflowModel`]s.

use wlq_log::Activity;

use crate::data::DataEffect;
use crate::model::{ModelError, NodeDef, NodeId, WorkflowModel};

/// Builds a [`WorkflowModel`] node by node.
///
/// Nodes may reference nodes created later via [`placeholder`]
/// (`ModelBuilder::placeholder`) + [`fill`](ModelBuilder::fill), which is
/// how loops are expressed.
///
/// # Examples
///
/// A two-task sequence:
///
/// ```
/// use wlq_workflow::ModelBuilder;
///
/// let mut b = ModelBuilder::new("hello");
/// let end = b.end();
/// let second = b.task("B", end);
/// let first = b.task("A", second);
/// let model = b.build(first)?;
/// assert_eq!(model.activities().len(), 2);
/// # Ok::<(), wlq_workflow::ModelError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ModelBuilder {
    name: String,
    nodes: Vec<Option<NodeDef>>,
}

impl ModelBuilder {
    /// Starts a builder for a model called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        ModelBuilder {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    fn push(&mut self, node: NodeDef) -> NodeId {
        self.nodes.push(Some(node));
        NodeId(self.nodes.len() - 1)
    }

    /// Reserves a node id to be defined later with [`fill`](Self::fill) —
    /// needed for cycles (loops back to an earlier point of the process).
    pub fn placeholder(&mut self) -> NodeId {
        self.nodes.push(None);
        NodeId(self.nodes.len() - 1)
    }

    /// Defines a previously reserved placeholder.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by [`placeholder`](Self::placeholder)
    /// or is already defined.
    pub fn fill(&mut self, id: NodeId, node: NodeDef) {
        let slot = &mut self.nodes[id.0];
        assert!(slot.is_none(), "node {id} is already defined");
        *slot = Some(node);
    }

    /// Adds an `End` node.
    pub fn end(&mut self) -> NodeId {
        self.push(NodeDef::End)
    }

    /// Adds a task with no data effects.
    pub fn task(&mut self, activity: impl Into<Activity>, next: NodeId) -> NodeId {
        self.task_io(activity, [] as [&str; 0], [], next)
    }

    /// Adds a task with reads and writes.
    pub fn task_io<R, W>(
        &mut self,
        activity: impl Into<Activity>,
        reads: R,
        writes: W,
        next: NodeId,
    ) -> NodeId
    where
        R: IntoIterator,
        R::Item: Into<String>,
        W: IntoIterator<Item = (&'static str, DataEffect)>,
    {
        self.push(NodeDef::Task {
            activity: activity.into(),
            reads: reads.into_iter().map(Into::into).collect(),
            writes: writes
                .into_iter()
                .map(|(n, e)| (n.to_string(), e))
                .collect(),
            next,
        })
    }

    /// Adds an XOR gateway with weighted branches.
    pub fn xor(&mut self, branches: impl IntoIterator<Item = (f64, NodeId)>) -> NodeId {
        self.push(NodeDef::Xor {
            branches: branches.into_iter().collect(),
        })
    }

    /// Adds an AND split whose branches meet at `join` (an
    /// [`and_join`](Self::and_join) node).
    pub fn and_split(
        &mut self,
        branches: impl IntoIterator<Item = NodeId>,
        join: NodeId,
    ) -> NodeId {
        self.push(NodeDef::AndSplit {
            branches: branches.into_iter().collect(),
            join,
        })
    }

    /// Adds an AND join barrier continuing at `next`.
    pub fn and_join(&mut self, next: NodeId) -> NodeId {
        self.push(NodeDef::AndJoin { next })
    }

    /// Finalises the model with `entry` as the first node of every
    /// instance.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if a placeholder is unfilled or the graph is
    /// structurally invalid.
    pub fn build(self, entry: NodeId) -> Result<WorkflowModel, ModelError> {
        let mut nodes = Vec::with_capacity(self.nodes.len());
        for (i, slot) in self.nodes.into_iter().enumerate() {
            match slot {
                Some(node) => nodes.push(node),
                None => return Err(ModelError::DanglingEdge { from: i, to: i }),
            }
        }
        WorkflowModel::new(self.name, nodes, entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_loop_via_placeholder() {
        let mut b = ModelBuilder::new("loop");
        let end = b.end();
        let head = b.placeholder();
        let body = b.task("Work", head);
        b.fill(
            head,
            NodeDef::Xor {
                branches: vec![(0.7, body), (0.3, end)],
            },
        );
        let model = b.build(head).unwrap();
        assert_eq!(model.activities().len(), 1);
    }

    #[test]
    fn unfilled_placeholder_fails_build() {
        let mut b = ModelBuilder::new("broken");
        let hole = b.placeholder();
        let entry = b.task("A", hole);
        assert!(b.build(entry).is_err());
    }

    #[test]
    #[should_panic(expected = "already defined")]
    fn double_fill_panics() {
        let mut b = ModelBuilder::new("x");
        let end = b.end();
        b.fill(end, NodeDef::End);
    }

    #[test]
    fn task_io_records_reads_and_writes() {
        let mut b = ModelBuilder::new("io");
        let end = b.end();
        let t = b.task_io(
            "Pay",
            ["balance"],
            [("receipt", DataEffect::UniformInt { lo: 1, hi: 9 })],
            end,
        );
        let model = b.build(t).unwrap();
        let NodeDef::Task { reads, writes, .. } = model.node(t) else {
            panic!()
        };
        assert_eq!(reads, &["balance"]);
        assert_eq!(writes.len(), 1);
    }

    #[test]
    fn parallel_block_builds() {
        let mut b = ModelBuilder::new("par");
        let end = b.end();
        let join = b.and_join(end);
        let left = b.task("Ship", join);
        let right = b.task("Invoice", join);
        let split = b.and_split([left, right], join);
        let model = b.build(split).unwrap();
        assert_eq!(model.activities().len(), 2);
    }
}
