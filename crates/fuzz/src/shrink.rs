//! Counterexample shrinking: reduce a diverging `(log, pattern)` pair to
//! a minimal reproducer before it is persisted as a regression fixture.

use wlq_log::{Log, Lsn};
use wlq_pattern::Pattern;

use crate::diff::check;

/// `true` when the pair still reproduces *a* divergence (not necessarily
/// the original one — any disagreement is a bug worth keeping).
fn still_diverges(log: &Log, pattern: &Pattern) -> bool {
    check(log, pattern).is_some()
}

fn try_drop_instances(log: &mut Log, pattern: &Pattern) -> bool {
    let wids: Vec<_> = log.wids().collect();
    if wids.len() <= 1 {
        return false;
    }
    for wid in wids {
        if log.num_instances() <= 1 {
            break;
        }
        if let Ok(candidate) = log.filter_instances(|w| w != wid) {
            if still_diverges(&candidate, pattern) {
                *log = candidate;
                return true;
            }
        }
    }
    false
}

fn try_truncate_tail(log: &mut Log, pattern: &Pattern) -> bool {
    // Halving first, then single-record steps.
    let len = log.len() as u64;
    for upto in [len / 2, len - 1] {
        if upto == 0 || upto >= len {
            continue;
        }
        if let Ok(candidate) = log.prefix(Lsn(upto)) {
            if still_diverges(&candidate, pattern) {
                *log = candidate;
                return true;
            }
        }
    }
    false
}

fn subtrees(pattern: &Pattern) -> Vec<&Pattern> {
    match pattern {
        Pattern::Atom(_) => Vec::new(),
        Pattern::Binary { left, right, .. } => vec![left, right],
    }
}

fn try_reduce_pattern(log: &Log, pattern: &mut Pattern) -> bool {
    for sub in subtrees(pattern) {
        if still_diverges(log, sub) {
            *pattern = sub.clone();
            return true;
        }
    }
    false
}

/// Shrinks a diverging pair to a local minimum: no single instance can
/// be dropped, no tail truncated, and no pattern subtree substituted
/// while still reproducing a divergence. Returns the pair unchanged if
/// it does not diverge in the first place.
#[must_use]
pub fn shrink(mut log: Log, mut pattern: Pattern) -> (Log, Pattern) {
    if !still_diverges(&log, &pattern) {
        return (log, pattern);
    }
    loop {
        let changed = try_reduce_pattern(&log, &mut pattern)
            || try_drop_instances(&mut log, &pattern)
            || try_truncate_tail(&mut log, &pattern);
        if !changed {
            break;
        }
    }
    (log, pattern)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_diverging_pairs_come_back_unchanged() {
        let log = wlq_log::paper::figure3_log();
        let p: Pattern = "SeeDoctor -> PayTreatment".parse().unwrap();
        let (slog, spat) = shrink(log.clone(), p.clone());
        assert_eq!(slog, log);
        assert_eq!(spat, p);
    }

    #[test]
    fn subtrees_of_binary_patterns_are_enumerable() {
        let p: Pattern = "(A -> B) | C".parse().unwrap();
        assert_eq!(subtrees(&p).len(), 2);
        let a: Pattern = "A".parse().unwrap();
        assert!(subtrees(&a).is_empty());
    }
}
