//! `wlq-difffuzz` — differential fuzzer across all evaluation strategies.
//!
//! ```text
//! wlq-difffuzz [--iters N] [--seed S] [--fixture-dir DIR]
//! ```
//!
//! Each iteration generates a random valid log and a random pattern over
//! its alphabet, evaluates the pair under NaivePaper / Optimized / Batch
//! / parallel(1, 4) / streaming-replay / fast_count, and cross-checks
//! the results. It also mutates a valid log into a Definition 2
//! violation and asserts that `Log::new` rejects it with a typed error.
//!
//! On divergence the pair is shrunk to a minimal reproducer, written to
//! the fixture directory (replayed by `tests/regressions.rs`), and the
//! process exits 1. Exit 0 means every iteration agreed; exit 2 is a
//! usage error. A panic anywhere is itself a finding: the engine API is
//! supposed to be panic-free on all inputs.

use std::process::ExitCode;

use rand::{rngs::StdRng, SeedableRng};

use wlq_fuzz::{check, invalid_records, random_log, random_pattern_for, shrink, InvalidKind};
use wlq_log::Log;

struct Options {
    iters: u64,
    seed: u64,
    fixture_dir: String,
}

fn parse_int(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        iters: 1000,
        seed: 0xD1FF,
        fixture_dir: concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures").to_string(),
    };
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--iters" => {
                let v = iter.next().ok_or("--iters needs a number")?;
                opts.iters = parse_int(v).ok_or_else(|| format!("bad --iters value {v:?}"))?;
            }
            "--seed" => {
                let v = iter.next().ok_or("--seed needs a number")?;
                opts.seed = parse_int(v).ok_or_else(|| format!("bad --seed value {v:?}"))?;
            }
            "--fixture-dir" => {
                opts.fixture_dir = iter.next().ok_or("--fixture-dir needs a path")?.clone();
            }
            "--help" | "-h" => {
                return Err(
                    "usage: wlq-difffuzz [--iters N] [--seed S] [--fixture-dir DIR]".to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(opts)
}

fn persist_fixture(dir: &str, stem: &str, log: &Log, pattern: &wlq_pattern::Pattern) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create fixture dir {dir}: {e}");
        return;
    }
    let log_path = format!("{dir}/{stem}.log");
    let pat_path = format!("{dir}/{stem}.pattern");
    if let Err(e) = std::fs::write(&log_path, wlq_log::io::text::write_text(log)) {
        eprintln!("warning: cannot write {log_path}: {e}");
    }
    if let Err(e) = std::fs::write(&pat_path, format!("{pattern}\n")) {
        eprintln!("warning: cannot write {pat_path}: {e}");
    }
    eprintln!("reproducer written to {log_path} and {pat_path}");
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    println!(
        "wlq-difffuzz: {} iteration(s), seed {:#x}",
        opts.iters, opts.seed
    );
    for i in 0..opts.iters {
        // Derive a per-iteration rng so any failure replays from (seed, i)
        // alone, independent of how much entropy earlier iterations drew.
        let mut rng = StdRng::seed_from_u64(opts.seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        // Differential trial on a valid log.
        let log = random_log(&mut rng);
        let pattern = random_pattern_for(&mut rng, &log);
        if let Some(divergence) = check(&log, &pattern) {
            eprintln!("iteration {i}: {divergence}");
            eprintln!("  pattern: {pattern}");
            eprintln!(
                "  log: {} record(s), {} instance(s)",
                log.len(),
                log.num_instances()
            );
            let (min_log, min_pattern) = shrink(log, pattern);
            eprintln!(
                "  shrunk to {} record(s), pattern {min_pattern}",
                min_log.len()
            );
            persist_fixture(
                &opts.fixture_dir,
                &format!("div-{:x}-{i}", opts.seed),
                &min_log,
                &min_pattern,
            );
            return ExitCode::FAILURE;
        }

        // Adversarial trial: a Definition 2 violation must be rejected
        // with a typed error (reaching here at all means no panic).
        let kind = InvalidKind::ALL[(i % InvalidKind::ALL.len() as u64) as usize];
        let records = invalid_records(&mut rng, kind);
        if let Ok(accepted) = Log::new(records) {
            eprintln!(
                "iteration {i}: invalid log ({kind:?}) was ACCEPTED: {} record(s)",
                accepted.len()
            );
            return ExitCode::FAILURE;
        }

        if (i + 1) % 500 == 0 {
            println!("  {} iteration(s) clean", i + 1);
        }
    }
    println!(
        "all {} iteration(s) agreed across every strategy",
        opts.iters
    );
    ExitCode::SUCCESS
}
