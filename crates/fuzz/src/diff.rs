//! Differential evaluation: run one `(log, pattern)` pair under every
//! strategy and report the first disagreement.

use std::fmt;

use wlq_engine::{
    evaluate_parallel, fast_count, profile_evaluation, Evaluator, IncidentSet, Strategy,
    StreamingEvaluator,
};
use wlq_log::Log;
use wlq_pattern::Pattern;

/// A cross-strategy disagreement on one `(log, pattern)` pair.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The strategy that disagreed with the naive reference.
    pub strategy: String,
    /// Incident count under the paper-faithful naive evaluation.
    pub expected: usize,
    /// Incident count (or error text) the diverging strategy produced.
    pub got: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} diverged: naive found {} incident(s), got {}",
            self.strategy, self.expected, self.got
        )
    }
}

fn against(reference: &IncidentSet, name: &str, got: &IncidentSet) -> Option<Divergence> {
    if got == reference {
        None
    } else {
        Some(Divergence {
            strategy: name.to_string(),
            expected: reference.len(),
            got: format!("{} incident(s)", got.len()),
        })
    }
}

/// Evaluates `pattern` over `log` under every strategy and cross-checks
/// the results against the paper-faithful naive evaluation. Returns the
/// first divergence, or `None` when all strategies agree.
///
/// Strategies covered: `NaivePaper` (reference), `Optimized`, `Batch`,
/// `Planned` (the cost-based planner, including its `count`/`exists`
/// routing), parallel evaluation with 1 and 4 workers, a full streaming
/// replay, profiled evaluation under every strategy (the profiler must
/// be strictly read-only), and — when the pattern is a chain — the
/// `fast_count` DP.
#[must_use]
pub fn check(log: &Log, pattern: &Pattern) -> Option<Divergence> {
    let reference = Evaluator::with_strategy(log, Strategy::NaivePaper).evaluate(pattern);

    let optimized = Evaluator::with_strategy(log, Strategy::Optimized).evaluate(pattern);
    if let Some(d) = against(&reference, "Optimized", &optimized) {
        return Some(d);
    }

    let batch = Evaluator::with_strategy(log, Strategy::Batch).evaluate(pattern);
    if let Some(d) = against(&reference, "Batch", &batch) {
        return Some(d);
    }

    // The planner picks an arbitrary equivalent rewrite and per-node
    // physical operators, and routes count/exists through the counting
    // DP for chains — check all three entry points.
    let planned_eval = Evaluator::with_strategy(log, Strategy::Planned);
    let planned = planned_eval.evaluate(pattern);
    if let Some(d) = against(&reference, "Planned", &planned) {
        return Some(d);
    }
    if planned_eval.count(pattern) != reference.len() {
        return Some(Divergence {
            strategy: "Planned::count".to_string(),
            expected: reference.len(),
            got: format!("{} (count only)", planned_eval.count(pattern)),
        });
    }
    if planned_eval.exists(pattern) == reference.is_empty() {
        return Some(Divergence {
            strategy: "Planned::exists".to_string(),
            expected: reference.len(),
            got: format!("exists = {}", planned_eval.exists(pattern)),
        });
    }

    for (threads, strategy) in [
        (1usize, Strategy::Optimized),
        (4, Strategy::Optimized),
        (4, Strategy::Planned),
    ] {
        let name = format!("parallel({threads}, {strategy:?})");
        match evaluate_parallel(log, pattern, threads, strategy) {
            Ok(set) => {
                if let Some(d) = against(&reference, &name, &set) {
                    return Some(d);
                }
            }
            Err(e) => {
                return Some(Divergence {
                    strategy: name,
                    expected: reference.len(),
                    got: format!("error: {e}"),
                });
            }
        }
    }

    let mut stream = StreamingEvaluator::new(pattern.clone());
    for record in log.iter() {
        if let Err(e) = stream.append(record) {
            return Some(Divergence {
                strategy: "streaming-replay".to_string(),
                expected: reference.len(),
                got: format!("rejected valid record at lsn {}: {e}", record.lsn()),
            });
        }
    }
    if let Some(d) = against(&reference, "streaming-replay", &stream.incidents()) {
        return Some(d);
    }

    // Profiled execution mirrors each strategy's executors with
    // instrumented copies; the mirror must be byte-identical — same
    // incident set, and counters consistent with it.
    for strategy in [
        Strategy::NaivePaper,
        Strategy::Optimized,
        Strategy::Batch,
        Strategy::Planned,
    ] {
        for threads in [1usize, 4] {
            let name = format!("profiled({threads}, {strategy:?})");
            match profile_evaluation(log, pattern, strategy, threads) {
                Ok((set, profile)) => {
                    if let Some(d) = against(&reference, &name, &set) {
                        return Some(d);
                    }
                    let root_emitted = profile
                        .nodes
                        .first()
                        .map_or(0, |n| n.metrics.incidents_emitted);
                    if profile.total_incidents != reference.len() as u64
                        || root_emitted != reference.len() as u64
                    {
                        return Some(Divergence {
                            strategy: name,
                            expected: reference.len(),
                            got: format!(
                                "profile counters: total {}, root emitted {root_emitted}",
                                profile.total_incidents
                            ),
                        });
                    }
                }
                Err(e) => {
                    return Some(Divergence {
                        strategy: name,
                        expected: reference.len(),
                        got: format!("error: {e}"),
                    });
                }
            }
        }
    }

    if let Some(count) = fast_count(log, pattern) {
        if count != reference.len() {
            return Some(Divergence {
                strategy: "fast_count".to_string(),
                expected: reference.len(),
                got: format!("{count} (count only)"),
            });
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn figure3_battery_has_no_divergence() {
        let log = wlq_log::paper::figure3_log();
        for src in [
            "SeeDoctor",
            "UpdateRefer -> GetReimburse",
            "GetRefer ~> CheckIn",
            "!SeeDoctor ~> PayTreatment",
            "(SeeDoctor & PayTreatment) | UpdateRefer",
            "START ~> GetRefer",
            "!GetRefer ~> END",
        ] {
            let p: Pattern = src.parse().unwrap();
            assert!(check(&log, &p).is_none(), "diverged on {src}");
        }
    }

    #[test]
    fn random_smoke_runs_clean() {
        let mut rng = StdRng::seed_from_u64(0xD1FF);
        for _ in 0..25 {
            let log = crate::gen::random_log(&mut rng);
            let p = crate::gen::random_pattern_for(&mut rng, &log);
            assert!(check(&log, &p).is_none(), "diverged on {p} over {log}");
        }
    }
}
