//! Random input generation: valid logs, patterns over their alphabet,
//! and adversarial *invalid* record sets violating Definition 2.

use rand::{rngs::StdRng, Rng};

use wlq_log::{attrs, Activity, AttrMap, Log, LogBuilder, LogRecord};
use wlq_pattern::{Op, Pattern, PatternGenConfig};

/// The activity alphabet used by generated logs and patterns, `T0..Tk`.
#[must_use]
pub fn alphabet(size: usize) -> Vec<String> {
    (0..size).map(|i| format!("T{i}")).collect()
}

/// Generates a random valid log: 1–6 interleaved instances, each with a
/// random trace over a small alphabet, some instances closed by `END`
/// and some left running, occasional integer attributes so predicates
/// have something to look at.
///
/// The builder maintains Definition 2 by construction, so the result is
/// valid for any random choices.
pub fn random_log(rng: &mut StdRng) -> Log {
    let alphabet_size = rng.gen_range(2..=5usize);
    let names = alphabet(alphabet_size);
    let instances = rng.gen_range(1..=6usize);
    let events = rng.gen_range(0..=30usize);

    let mut b = LogBuilder::new();
    let mut open: Vec<wlq_log::Wid> = (0..instances).map(|_| b.start_instance()).collect();
    for _ in 0..events {
        if open.is_empty() {
            break;
        }
        let slot = rng.gen_range(0..open.len());
        let wid = open[slot];
        if rng.gen_bool(0.08) {
            // Close this instance for good.
            b.end_instance(wid).expect("instance is open");
            open.swap_remove(slot);
            continue;
        }
        let name = &names[rng.gen_range(0..names.len())];
        let output = if rng.gen_bool(0.3) {
            let balance: i64 = rng.gen_range(0..10_000i64);
            attrs! { "balance" => balance }
        } else {
            AttrMap::new()
        };
        b.append(wid, name.as_str(), AttrMap::new(), output)
            .expect("instance is open");
    }
    b.build().expect("builder wrote at least the START records")
}

/// Generates a random pattern over `log`'s alphabet (plus one activity
/// the log never executes, so "no match" and `¬t` cases are exercised).
pub fn random_pattern_for(rng: &mut StdRng, log: &Log) -> Pattern {
    let mut names: Vec<String> = log
        .activities()
        .iter()
        .map(|a| a.as_str().to_string())
        .filter(|a| a != "START" && a != "END")
        .collect();
    names.push("Zmissing".to_string());
    // Occasionally query the boundary markers directly.
    if rng.gen_bool(0.2) {
        names.push("START".to_string());
        names.push("END".to_string());
    }
    let config = PatternGenConfig {
        alphabet: names,
        max_depth: rng.gen_range(1..=4usize),
        branch_prob: 0.7,
        negation_prob: 0.25,
        ops: vec![Op::Consecutive, Op::Sequential, Op::Choice, Op::Parallel],
    };
    wlq_pattern::random_pattern(rng, &config)
}

/// The Definition 2 violation an [`invalid_records`] sample carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidKind {
    /// No records at all (a log must be nonempty).
    Empty,
    /// Two records share an lsn (condition 1).
    DuplicateLsn,
    /// The lsns are not exactly `1..=|L|` (condition 1).
    LsnGap,
    /// `is-lsn = 1` without `START`, or `START` elsewhere (condition 2).
    StartMismatch,
    /// An instance's is-lsns skip a value (condition 3).
    NonConsecutiveIsLsn,
    /// A record appears after its instance's `END` (condition 4).
    RecordAfterEnd,
}

impl InvalidKind {
    /// All violation kinds, for round-robin coverage.
    pub const ALL: [InvalidKind; 6] = [
        InvalidKind::Empty,
        InvalidKind::DuplicateLsn,
        InvalidKind::LsnGap,
        InvalidKind::StartMismatch,
        InvalidKind::NonConsecutiveIsLsn,
        InvalidKind::RecordAfterEnd,
    ];
}

fn rebuild(r: &LogRecord, lsn: u64, is_lsn: u32, activity: Option<&Activity>) -> LogRecord {
    LogRecord::new(
        lsn,
        r.wid(),
        is_lsn,
        activity.unwrap_or_else(|| r.activity()).clone(),
        r.input().clone(),
        r.output().clone(),
    )
}

/// Produces a record set that violates Definition 2 in the way `kind`
/// describes, by mutating a freshly generated valid log. `Log::new`
/// must reject every sample with a typed [`wlq_log::LogError`].
pub fn invalid_records(rng: &mut StdRng, kind: InvalidKind) -> Vec<LogRecord> {
    let base = random_log(rng);
    let mut records: Vec<LogRecord> = base.records().to_vec();
    match kind {
        InvalidKind::Empty => Vec::new(),
        InvalidKind::DuplicateLsn => {
            let i = rng.gen_range(0..records.len());
            let own = records[i].lsn().get();
            let stolen = records[rng.gen_range(0..records.len())].lsn().get();
            // Guarantee a real mutation even if we stole our own lsn:
            // wrap to another record's lsn (lsns are exactly 1..=|L|),
            // or — for a single-record log — to a gap at 2, which is
            // equally invalid (condition 1 either way).
            let target = if stolen != own {
                stolen
            } else if records.len() == 1 {
                2
            } else {
                (own % records.len() as u64) + 1
            };
            records[i] = rebuild(&records[i], target, records[i].is_lsn().get(), None);
            records
        }
        InvalidKind::LsnGap => {
            let i = rng.gen_range(0..records.len());
            let beyond = records.len() as u64 + 1 + rng.gen_range(0..5u64);
            records[i] = rebuild(&records[i], beyond, records[i].is_lsn().get(), None);
            records
        }
        InvalidKind::StartMismatch => {
            let i = rng.gen_range(0..records.len());
            let r = &records[i];
            let mutated = if r.is_start() {
                // START demoted to a later slot of its instance.
                rebuild(r, r.lsn().get(), 2, None)
            } else {
                // A task record claiming slot 1 without being START.
                rebuild(r, r.lsn().get(), 1, None)
            };
            records[i] = mutated;
            records
        }
        InvalidKind::NonConsecutiveIsLsn => {
            let i = rng.gen_range(0..records.len());
            let r = &records[i];
            let skipped = r.is_lsn().get() + 1 + rng.gen_range(1..4u32);
            records[i] = rebuild(r, r.lsn().get(), skipped, None);
            records
        }
        InvalidKind::RecordAfterEnd => {
            // Close the first instance, then keep talking to it.
            let wid = base.wids().next().expect("log is nonempty");
            let next_is = base.instance_len(wid) as u32 + 1;
            let next_lsn = records.len() as u64 + 1;
            records.push(LogRecord::end(next_lsn, wid, next_is));
            records.push(LogRecord::new(
                next_lsn + 1,
                wid,
                next_is + 1,
                "Tlate",
                AttrMap::new(),
                AttrMap::new(),
            ));
            records
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generated_logs_are_valid_and_deterministic() {
        for seed in 0..50u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let log = random_log(&mut rng);
            // Re-validate through the public constructor.
            let revalidated = Log::new(log.records().to_vec()).expect("generated log is valid");
            assert_eq!(revalidated, log);
            // Same seed, same log.
            let mut rng2 = StdRng::seed_from_u64(seed);
            assert_eq!(random_log(&mut rng2), log);
        }
    }

    #[test]
    fn generated_patterns_use_the_log_alphabet() {
        let mut rng = StdRng::seed_from_u64(3);
        let log = random_log(&mut rng);
        for _ in 0..20 {
            let p = random_pattern_for(&mut rng, &log);
            // Round-trips through the parser (also proves printability).
            let reparsed: Pattern = p.to_string().parse().expect("generated pattern reparses");
            assert_eq!(reparsed, p);
        }
    }

    #[test]
    fn every_invalid_kind_is_rejected_with_a_typed_error() {
        for seed in 0..30u64 {
            for kind in InvalidKind::ALL {
                let mut rng = StdRng::seed_from_u64(seed);
                let records = invalid_records(&mut rng, kind);
                let err = Log::new(records).expect_err("mutated records must be rejected");
                // The error is a structured LogError, renderable.
                assert!(!err.to_string().is_empty(), "{kind:?}: {err:?}");
            }
        }
    }
}
