//! Differential fuzzing for the WLQ evaluation strategies.
//!
//! The engine ships several independent implementations of `incL(p)`
//! (Definition 4): the paper-faithful naive operators, the
//! postings-based optimized operators, the arena-backed batch kernels,
//! the work-stealing parallel driver, the delta-rule streaming
//! evaluator, and the counting DP for chains. They must all agree on
//! every valid log. This crate generates random `(log, pattern)` pairs,
//! evaluates each pair under every strategy, and reports the first
//! disagreement — shrunk to a minimal reproducer — as a bug.
//!
//! Invalid logs (Definition 2 violations) are fuzzed too: every
//! construction and streaming path must reject them with a typed error,
//! never a panic.
//!
//! The `wlq-difffuzz` binary drives the loop; see `tests/regressions.rs`
//! for the replay of previously shrunk counterexamples.

pub mod diff;
pub mod gen;
pub mod shrink;

pub use diff::{check, Divergence};
pub use gen::{invalid_records, random_log, random_pattern_for, InvalidKind};
pub use shrink::shrink;
