//! Differential soundness check for the static analyzer.
//!
//! The contract under test: whenever [`wlq_analysis::Report::unsatisfiable`]
//! is `true`, the engine finds **zero** incidents for that pattern on the
//! log the analyzer saw — an `unsatisfiable` verdict for a pattern with
//! non-empty `incL(p)` would be a false proof, the one bug class the
//! analyzer must never have.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use wlq_analysis::Analyzer;
use wlq_engine::{Evaluator, Strategy};
use wlq_fuzz::{random_log, random_pattern_for};

/// One soundness trial: a random log, a random pattern over its
/// alphabet, and the analyzer's verdict cross-checked against the
/// paper-faithful reference evaluator.
fn trial(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let log = random_log(&mut rng);
    let pattern = random_pattern_for(&mut rng, &log);
    let report = Analyzer::with_log(&log).analyze_pattern(&pattern);
    if report.unsatisfiable() {
        let incidents = Evaluator::with_strategy(&log, Strategy::NaivePaper).evaluate(&pattern);
        assert_eq!(
            incidents.len(),
            0,
            "FALSE UNSATISFIABLE (seed {seed}): pattern `{pattern}` has \
             {} incident(s) but the analyzer proved incL(p) = ∅",
            incidents.len()
        );
    }
}

#[test]
fn seeded_sweep_never_yields_a_false_unsatisfiable() {
    for seed in 0..400 {
        trial(seed);
    }
}

proptest! {
    /// Property form of the same contract, exploring seeds beyond the
    /// deterministic sweep.
    #[test]
    fn unsatisfiable_verdicts_imply_zero_incidents(seed in any::<u64>()) {
        trial(seed);
    }
}

/// The analyzer's unsatisfiability proofs are log-independent: a
/// flagged pattern stays empty on *every* random log, not just the one
/// it was analyzed against.
#[test]
fn structural_proofs_hold_across_logs() {
    let unsat_sources = [
        "A -> START",
        "A ~> START",
        "END -> A",
        "END ~> A",
        "START & (START ~> A)",
        "A[x = 1, x = 2]",
    ];
    for (i, src) in unsat_sources.iter().enumerate() {
        let pattern: wlq_pattern::Pattern = src.parse().expect("parses");
        let report = Analyzer::new().analyze_pattern(&pattern);
        assert!(report.unsatisfiable(), "{src} should be provably empty");
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(i as u64));
            let log = random_log(&mut rng);
            let incidents = Evaluator::with_strategy(&log, Strategy::NaivePaper).evaluate(&pattern);
            assert_eq!(
                incidents.len(),
                0,
                "{src} matched on a random log (seed {seed})"
            );
        }
    }
}

/// Conversely, patterns the engine *does* match are never flagged — a
/// direct regression guard for record-level negation (`t ⊙ ¬t` is
/// satisfiable) and boundary-adjacent shapes.
#[test]
fn satisfiable_shapes_on_figure3_are_not_flagged() {
    let log = wlq_log::paper::figure3_log();
    let analyzer = Analyzer::with_log(&log);
    for src in [
        "CheckIn ~> !CheckIn",
        "!PayTreatment ~> SeeDoctor",
        "START ~> GetRefer",
        "UpdateRefer -> GetReimburse",
        "!START",
    ] {
        let pattern: wlq_pattern::Pattern = src.parse().expect("parses");
        let incidents = Evaluator::with_strategy(&log, Strategy::NaivePaper).evaluate(&pattern);
        assert!(!incidents.is_empty(), "{src} should match Figure 3");
        let report = analyzer.analyze_pattern(&pattern);
        assert!(
            !report.unsatisfiable(),
            "{src} matches {} incident(s) yet was flagged unsatisfiable",
            incidents.len()
        );
    }
}
