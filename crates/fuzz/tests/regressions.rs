//! Replays every shrunk counterexample `wlq-difffuzz` has persisted
//! under `fixtures/` and asserts the strategies now agree on it.
//!
//! Each fixture is a pair of files with a shared stem: `<stem>.log`
//! (Figure 3-style text table) and `<stem>.pattern` (pattern source).
//! The fuzzer writes a pair when it finds a divergence; the fix that
//! closes the bug keeps the pair here as a permanent regression test.

use std::path::Path;

use wlq_fuzz::check;
use wlq_pattern::Pattern;

fn fixture_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/fixtures"))
}

#[test]
fn all_persisted_fixtures_agree_across_strategies() {
    let dir = fixture_dir();
    let mut replayed = 0usize;
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        // No fixture directory means no divergence has ever been found.
        Err(_) => return,
    };
    for entry in entries {
        let path = entry.expect("fixture dir is readable").path();
        if path.extension().is_none_or(|e| e != "pattern") {
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("fixture stems are utf-8");
        let log_path = dir.join(format!("{stem}.log"));
        let pattern_src = std::fs::read_to_string(&path).expect("fixture pattern file is readable");
        let log_src = std::fs::read_to_string(&log_path)
            .unwrap_or_else(|e| panic!("fixture {stem} has no .log counterpart: {e}"));
        let pattern: Pattern = pattern_src
            .trim()
            .parse()
            .unwrap_or_else(|e| panic!("fixture {stem} pattern does not parse: {e}"));
        let log = wlq_log::io::text::read_text(&log_src)
            .unwrap_or_else(|e| panic!("fixture {stem} log does not parse: {e}"));
        if let Some(divergence) = check(&log, &pattern) {
            panic!("fixture {stem} still diverges: {divergence}");
        }
        replayed += 1;
    }
    println!("replayed {replayed} fixture(s)");
}

/// The known-tricky boundary patterns stay divergence-free on the
/// paper's example log (cheap, deterministic smoke alongside fixtures).
#[test]
fn boundary_battery_on_figure3() {
    let log = wlq_log::paper::figure3_log();
    for src in [
        "!START",
        "!END",
        "START ~> !GetRefer",
        "!PayTreatment ~> END",
        "!SeeDoctor ~> !SeeDoctor",
        "(START ~> GetRefer) -> (GetReimburse ~> CompleteRefer)",
    ] {
        let p: Pattern = src.parse().unwrap();
        assert!(check(&log, &p).is_none(), "diverged on {src}");
    }
}
