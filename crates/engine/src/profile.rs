//! Instrumented evaluation (cargo feature `profiling`).
//!
//! The profiled executors here mirror the engine's unprofiled paths —
//! [`Evaluator::execute_plan_in`] for [`Strategy::Planned`],
//! [`Evaluator::evaluate_instance_batch_in`] for [`Strategy::Batch`], and
//! [`Evaluator::evaluate_instance`] classically — recursion shape,
//! short-circuits, kernels, and arena discipline included, while
//! accumulating per-node [`NodeMetrics`] into a plain `Vec` indexed by
//! the node's pre-order position. The unprofiled hot path is never
//! touched: profiling costs nothing unless a profiled entry point runs,
//! and disabling the feature removes this module (and `wlq-obs`) from
//! the build entirely.
//!
//! Two metric-design rules keep the profiler read-only:
//!
//! * **No instrumentation inside kernels.** `pairs_compared` is modelled
//!   deterministically from operand and output sizes per physical
//!   operator — nested loop `n1·n2`, batch `⊙`/`→` kernels
//!   `n1·⌈log₂ n2⌉ + out` (one partner-run binary search per left
//!   incident), sort-merge `n1 + n2 + out`, batch `⊗` merge `n1 + n2`,
//!   batch `⊕` `n1·n2` — so the kernels the unprofiled path runs are
//!   byte-for-byte the ones profiled runs execute.
//! * **Collectors are worker-local.** Parallel workers each fill their
//!   own metrics vector (and report their own instance count and busy
//!   time, exposing skew); vectors merge by addition after the scope
//!   joins. No atomics, no shared state, no effect on scheduling.
//!
//! Profiled and unprofiled evaluation must return identical incident
//! sets — `wlq-difffuzz` cross-checks this for every strategy.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use wlq_log::{IsLsn, Log, LogIndex, LogStats, Wid};
use wlq_obs::{ExecutionProfile, NodeMetrics, NodeShape, ProfiledNode, WorkerProfile};
use wlq_pattern::{Atom, CostModel, Op, Optimizer, Pattern};

use crate::batch::{BatchArena, IncidentBatch, IncidentRef};
use crate::error::EngineError;
use crate::eval::{combine, leaf_batch, leaf_incidents, Evaluator, Strategy};
use crate::incident::Incident;
use crate::incident_set::IncidentSet;
use crate::kernels;
use crate::parallel::describe_panic;
use crate::planner::{PhysOp, PlanNode};

/// Evaluates `pattern` over `log` under `strategy` with `threads`
/// workers, recording a per-node [`ExecutionProfile`] alongside the
/// (identical to unprofiled) incident set.
///
/// # Errors
///
/// Returns [`EngineError::NoWorkers`] if `threads` is 0 and
/// [`EngineError::WorkerPanicked`] if a worker thread panics.
///
/// # Examples
///
/// ```
/// use wlq_engine::{profile_evaluation, Strategy};
/// use wlq_log::paper;
///
/// let log = paper::figure3_log();
/// let p = "UpdateRefer -> GetReimburse".parse()?;
/// let (incidents, profile) = profile_evaluation(&log, &p, Strategy::Planned, 1)?;
/// assert_eq!(incidents.len() as u64, profile.total_incidents);
/// println!("{profile}");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn profile_evaluation(
    log: &Log,
    pattern: &Pattern,
    strategy: Strategy,
    threads: usize,
) -> Result<(IncidentSet, ExecutionProfile), EngineError> {
    Evaluator::with_strategy(log, strategy).evaluate_profiled(pattern, threads)
}

/// Which profiled executor a run uses; borrows the plan or pattern so
/// parallel workers share one immutable mode.
enum ExecMode<'p> {
    Plan(&'p PlanNode),
    Batch(&'p Pattern),
    Classic(&'p Pattern),
}

/// One worker's haul: swept (wid, incidents) pairs, its metrics vector,
/// instances swept, incidents emitted at the root, and busy time.
type ProfiledPart = (
    Vec<(Wid, Vec<Incident>)>,
    Vec<NodeMetrics>,
    u64,
    u64,
    Duration,
);

/// A finished sweep: flattened (wid, incidents) pairs, merged node
/// metrics, and the per-worker breakdown.
type MergedSweep = (
    Vec<(Wid, Vec<Incident>)>,
    Vec<NodeMetrics>,
    Vec<WorkerProfile>,
);

impl Evaluator<'_> {
    /// Profiled [`evaluate`](Evaluator::evaluate): returns the same
    /// incident set plus an [`ExecutionProfile`] with per-node counters,
    /// planner estimates next to actuals (under
    /// [`Strategy::Planned`]), and a per-worker breakdown.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoWorkers`] if `threads` is 0 and
    /// [`EngineError::WorkerPanicked`] if a worker thread panics.
    pub fn evaluate_profiled(
        &self,
        pattern: &Pattern,
        threads: usize,
    ) -> Result<(IncidentSet, ExecutionProfile), EngineError> {
        if threads == 0 {
            return Err(EngineError::NoWorkers);
        }
        let start = Instant::now();
        let plan = self.planner().map(|pl| pl.plan(pattern));
        let (shapes, plan_text, rule) = match &plan {
            Some(plan) => (
                plan.root()
                    .rows()
                    .into_iter()
                    .map(|row| NodeShape {
                        label: row.label,
                        pattern: row.pattern,
                        depth: row.depth,
                        estimate: Some(row.estimate),
                        cost: Some(row.cost),
                    })
                    .collect::<Vec<_>>(),
                plan.pattern().to_string(),
                Some(plan.rule().to_string()),
            ),
            None => {
                let optimizer = Optimizer::new(LogStats::compute(self.log()));
                let mut shapes = Vec::new();
                pattern_shapes(pattern, 0, optimizer.model(), &mut shapes);
                (shapes, pattern.to_string(), None)
            }
        };
        let mode = match &plan {
            Some(plan) => ExecMode::Plan(plan.root()),
            None if self.strategy() == Strategy::Batch => ExecMode::Batch(pattern),
            None => ExecMode::Classic(pattern),
        };
        let node_count = shapes.len();
        let wids: Vec<Wid> = self.index().wids().collect();

        let (parts, merged, workers) = if threads == 1 || wids.len() <= 1 {
            let (part, metrics, instances, emitted, busy) =
                self.sweep_profiled(&mode, &wids, node_count);
            (
                part,
                metrics,
                vec![WorkerProfile {
                    worker: 0,
                    instances,
                    incidents: emitted,
                    wall: busy,
                }],
            )
        } else {
            self.sweep_profiled_parallel(&mode, &wids, node_count, threads)?
        };

        let set = IncidentSet::from_partitions(parts);
        let profile = ExecutionProfile {
            query: pattern.to_string(),
            plan: plan_text,
            strategy: strategy_name(self.strategy()).to_string(),
            rule,
            threads,
            nodes: shapes
                .into_iter()
                .zip(merged)
                .map(|(shape, metrics)| ProfiledNode { shape, metrics })
                .collect(),
            workers,
            total_wall: start.elapsed(),
            total_incidents: set.len() as u64,
        };
        Ok((set, profile))
    }

    /// Sweeps `wids` sequentially with one metrics vector.
    fn sweep_profiled(&self, mode: &ExecMode<'_>, wids: &[Wid], node_count: usize) -> ProfiledPart {
        let mut metrics = vec![NodeMetrics::new(); node_count];
        let mut arena = BatchArena::new();
        let mut part = Vec::with_capacity(wids.len());
        let mut emitted = 0u64;
        let busy = Instant::now();
        for &wid in wids {
            let incidents = self.run_instance_profiled(mode, wid, &mut arena, &mut metrics);
            emitted += incidents.len() as u64;
            part.push((wid, incidents));
        }
        let busy = busy.elapsed();
        (part, metrics, wids.len() as u64, emitted, busy)
    }

    /// Sweeps `wids` with up to `threads` workers, each with its own
    /// arena and metrics vector; merges the vectors after the scope
    /// joins.
    fn sweep_profiled_parallel(
        &self,
        mode: &ExecMode<'_>,
        wids: &[Wid],
        node_count: usize,
        threads: usize,
    ) -> Result<MergedSweep, EngineError> {
        let next = AtomicUsize::new(0);
        let worker_count = threads.min(wids.len());
        let scope_result: std::thread::Result<Result<Vec<ProfiledPart>, EngineError>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..worker_count)
                    .map(|_| {
                        let next = &next;
                        scope.spawn(move |_| {
                            let mut part = Vec::new();
                            let mut metrics = vec![NodeMetrics::new(); node_count];
                            let mut arena = BatchArena::new();
                            let mut emitted = 0u64;
                            let mut busy = Duration::ZERO;
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&wid) = wids.get(i) else { break };
                                let t = Instant::now();
                                let incidents =
                                    self.run_instance_profiled(mode, wid, &mut arena, &mut metrics);
                                busy += t.elapsed();
                                emitted += incidents.len() as u64;
                                part.push((wid, incidents));
                            }
                            let instances = part.len() as u64;
                            (part, metrics, instances, emitted, busy)
                        })
                    })
                    .collect();
                let mut parts = Vec::with_capacity(handles.len());
                for handle in handles {
                    match handle.join() {
                        Ok(part) => parts.push(part),
                        Err(payload) => {
                            return Err(EngineError::WorkerPanicked {
                                detail: describe_panic(payload.as_ref()),
                            })
                        }
                    }
                }
                Ok(parts)
            });
        let results = match scope_result {
            Ok(inner) => inner?,
            Err(payload) => {
                return Err(EngineError::WorkerPanicked {
                    detail: describe_panic(payload.as_ref()),
                })
            }
        };
        let mut merged = vec![NodeMetrics::new(); node_count];
        let mut workers = Vec::with_capacity(results.len());
        let mut parts = Vec::new();
        for (worker, (part, metrics, instances, emitted, busy)) in results.into_iter().enumerate() {
            for (dst, src) in merged.iter_mut().zip(&metrics) {
                *dst += src;
            }
            workers.push(WorkerProfile {
                worker,
                instances,
                incidents: emitted,
                wall: busy,
            });
            parts.extend(part);
        }
        Ok((parts, merged, workers))
    }

    /// Evaluates one instance under `mode`, materializing classic
    /// incidents (the per-instance unit parallel workers claim).
    fn run_instance_profiled(
        &self,
        mode: &ExecMode<'_>,
        wid: Wid,
        arena: &mut BatchArena,
        metrics: &mut [NodeMetrics],
    ) -> Vec<Incident> {
        let mut idx = 0;
        match mode {
            ExecMode::Plan(root) => {
                let mut batch = self.execute_plan_profiled(root, wid, arena, metrics, &mut idx);
                let incidents = batch.drain_incidents();
                arena.recycle(batch);
                incidents
            }
            ExecMode::Batch(pattern) => {
                let mut batch =
                    self.evaluate_batch_profiled(pattern, wid, arena, metrics, &mut idx);
                let incidents = batch.drain_incidents();
                arena.recycle(batch);
                incidents
            }
            ExecMode::Classic(pattern) => {
                self.evaluate_classic_profiled(pattern, wid, metrics, &mut idx)
            }
        }
    }

    /// Profiled mirror of [`Evaluator::execute_plan_in`]: same kernels,
    /// same short-circuit, same arena discipline; `idx` walks the plan in
    /// pre-order and skips the indices of unexecuted subtrees so node
    /// positions stay aligned with the plan's rows.
    fn execute_plan_profiled(
        &self,
        node: &PlanNode,
        wid: Wid,
        arena: &mut BatchArena,
        metrics: &mut [NodeMetrics],
        idx: &mut usize,
    ) -> IncidentBatch {
        let my = *idx;
        *idx += 1;
        match node {
            PlanNode::Leaf { atom, .. } => {
                let start = Instant::now();
                let batch = leaf_batch(atom, self.log(), self.index(), wid, arena);
                let elapsed = start.elapsed();
                if let Some(m) = metrics.get_mut(my) {
                    m.wall += elapsed;
                    m.records_scanned += scanned_for(self.index(), atom, wid);
                    m.incidents_emitted += batch.len() as u64;
                    m.output_bytes += batch_bytes(&batch);
                }
                batch
            }
            PlanNode::Join {
                op,
                phys,
                left,
                right,
                ..
            } => {
                let l = self.execute_plan_profiled(left, wid, arena, metrics, idx);
                if l.is_empty() && *op != Op::Choice {
                    *idx += right.num_nodes();
                    return l;
                }
                let r = self.execute_plan_profiled(right, wid, arena, metrics, idx);
                let start = Instant::now();
                let mut out = arena.alloc(wid);
                match phys {
                    PhysOp::NestedLoop => kernels::nested_loop_kernel(*op, &l, &r, &mut out),
                    PhysOp::BatchKernel => kernels::combine_batch_into(*op, &l, &r, &mut out),
                    PhysOp::SortMergeSeq => {
                        kernels::sequential_sort_merge_kernel(&l, &r, &mut out);
                    }
                }
                let elapsed = start.elapsed();
                if let Some(m) = metrics.get_mut(my) {
                    m.wall += elapsed;
                    m.pairs_compared += join_pairs(*phys, *op, l.len(), r.len(), out.len());
                    m.incidents_emitted += out.len() as u64;
                    m.output_bytes += batch_bytes(&out);
                }
                arena.recycle(l);
                arena.recycle(r);
                out
            }
        }
    }

    /// Profiled mirror of
    /// [`Evaluator::evaluate_instance_batch_in`].
    fn evaluate_batch_profiled(
        &self,
        pattern: &Pattern,
        wid: Wid,
        arena: &mut BatchArena,
        metrics: &mut [NodeMetrics],
        idx: &mut usize,
    ) -> IncidentBatch {
        let my = *idx;
        *idx += 1;
        match pattern {
            Pattern::Atom(atom) => {
                let start = Instant::now();
                let batch = leaf_batch(atom, self.log(), self.index(), wid, arena);
                let elapsed = start.elapsed();
                if let Some(m) = metrics.get_mut(my) {
                    m.wall += elapsed;
                    m.records_scanned += scanned_for(self.index(), atom, wid);
                    m.incidents_emitted += batch.len() as u64;
                    m.output_bytes += batch_bytes(&batch);
                }
                batch
            }
            Pattern::Binary { op, left, right } => {
                let l = self.evaluate_batch_profiled(left, wid, arena, metrics, idx);
                if l.is_empty() && *op != Op::Choice {
                    *idx += tree_nodes(right);
                    return l;
                }
                let r = self.evaluate_batch_profiled(right, wid, arena, metrics, idx);
                let start = Instant::now();
                let mut out = arena.alloc(wid);
                kernels::combine_batch_into(*op, &l, &r, &mut out);
                let elapsed = start.elapsed();
                if let Some(m) = metrics.get_mut(my) {
                    m.wall += elapsed;
                    m.pairs_compared += batch_pairs(*op, l.len(), r.len(), out.len());
                    m.incidents_emitted += out.len() as u64;
                    m.output_bytes += batch_bytes(&out);
                }
                arena.recycle(l);
                arena.recycle(r);
                out
            }
        }
    }

    /// Profiled mirror of [`Evaluator::evaluate_instance`] for the
    /// classic (naive / optimized) operator implementations.
    fn evaluate_classic_profiled(
        &self,
        pattern: &Pattern,
        wid: Wid,
        metrics: &mut [NodeMetrics],
        idx: &mut usize,
    ) -> Vec<Incident> {
        let my = *idx;
        *idx += 1;
        match pattern {
            Pattern::Atom(atom) => {
                let start = Instant::now();
                let out = leaf_incidents(atom, self.log(), self.index(), wid);
                let elapsed = start.elapsed();
                if let Some(m) = metrics.get_mut(my) {
                    m.wall += elapsed;
                    m.records_scanned += scanned_for(self.index(), atom, wid);
                    m.incidents_emitted += out.len() as u64;
                    m.output_bytes += classic_bytes(&out);
                }
                out
            }
            Pattern::Binary { op, left, right } => {
                let l = self.evaluate_classic_profiled(left, wid, metrics, idx);
                if l.is_empty() && *op != Op::Choice {
                    *idx += tree_nodes(right);
                    return Vec::new();
                }
                let r = self.evaluate_classic_profiled(right, wid, metrics, idx);
                let start = Instant::now();
                let out = combine(self.strategy(), *op, &l, &r);
                let elapsed = start.elapsed();
                if let Some(m) = metrics.get_mut(my) {
                    m.wall += elapsed;
                    m.pairs_compared +=
                        classic_pairs(self.strategy(), *op, l.len(), r.len(), out.len());
                    m.incidents_emitted += out.len() as u64;
                    m.output_bytes += classic_bytes(&out);
                }
                out
            }
        }
    }
}

/// Pre-order [`NodeShape`]s of a pattern tree (the non-planned
/// strategies' skeleton), with [`CostModel`] cardinality estimates and
/// no cost column.
fn pattern_shapes(p: &Pattern, depth: usize, model: &CostModel, out: &mut Vec<NodeShape>) {
    let label = match p {
        Pattern::Atom(_) => format!("scan {p}"),
        Pattern::Binary { op, .. } => op.name().to_string(),
    };
    out.push(NodeShape {
        label,
        pattern: p.to_string(),
        depth,
        estimate: Some(model.estimate_incidents(p)),
        cost: None,
    });
    if let Pattern::Binary { left, right, .. } = p {
        pattern_shapes(left, depth + 1, model, out);
        pattern_shapes(right, depth + 1, model, out);
    }
}

/// Display name of a strategy, as it appears in profiles and traces.
fn strategy_name(strategy: Strategy) -> &'static str {
    match strategy {
        Strategy::NaivePaper => "naive-paper",
        Strategy::Optimized => "optimized",
        Strategy::Batch => "batch",
        Strategy::Planned => "planned",
    }
}

/// Nodes in a pattern tree: every pattern is a full binary tree, so
/// `2·atoms − 1`.
fn tree_nodes(p: &Pattern) -> usize {
    2 * p.num_atoms() - 1
}

/// Index candidates a leaf scan examines: the atom's postings, or — for
/// a negated atom, whose complement walks the whole instance — the
/// instance length.
fn scanned_for(index: &LogIndex, atom: &Atom, wid: Wid) -> u64 {
    if atom.negated {
        index.instance_len(wid) as u64
    } else {
        index.postings(wid, atom.activity.as_str()).len() as u64
    }
}

/// Output footprint of a batch: position pool plus refs.
fn batch_bytes(batch: &IncidentBatch) -> u64 {
    (batch.pool_len() * std::mem::size_of::<IsLsn>()
        + batch.len() * std::mem::size_of::<IncidentRef>()) as u64
}

/// Output footprint of a classic incident list: positions plus incident
/// headers.
fn classic_bytes(out: &[Incident]) -> u64 {
    let positions: usize = out.iter().map(|o| o.positions().len()).sum();
    (positions * std::mem::size_of::<IsLsn>() + std::mem::size_of_val(out)) as u64
}

/// `⌈log₂ n⌉`, clamped to at least 1 (a binary search probes at least
/// once).
fn ceil_log2(n: u64) -> u64 {
    if n <= 1 {
        1
    } else {
        u64::from(64 - (n - 1).leading_zeros())
    }
}

/// The modelled comparison count of one batch kernel (see the module
/// docs for the formulas).
fn batch_pairs(op: Op, n1: usize, n2: usize, out: usize) -> u64 {
    let (n1, n2, out) = (n1 as u64, n2 as u64, out as u64);
    match op {
        Op::Consecutive | Op::Sequential => n1 * ceil_log2(n2) + out,
        Op::Choice => n1 + n2,
        Op::Parallel => n1 * n2,
    }
}

/// The modelled comparison count of one physical join.
fn join_pairs(phys: PhysOp, op: Op, n1: usize, n2: usize, out: usize) -> u64 {
    match phys {
        PhysOp::NestedLoop => n1 as u64 * n2 as u64,
        PhysOp::SortMergeSeq => (n1 + n2 + out) as u64,
        PhysOp::BatchKernel => batch_pairs(op, n1, n2, out),
    }
}

/// The modelled comparison count of one classic operator: all-pairs for
/// the paper's Algorithm 1, the batch-kernel model for the
/// output-sensitive implementations.
fn classic_pairs(strategy: Strategy, op: Op, n1: usize, n2: usize, out: usize) -> u64 {
    match strategy {
        Strategy::NaivePaper => n1 as u64 * n2 as u64,
        _ => batch_pairs(op, n1, n2, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::paper;
    use wlq_obs::{render_trace, validate_trace};

    fn parse(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    #[test]
    fn profiled_matches_unprofiled_for_every_strategy() {
        let log = paper::figure3_log();
        for strategy in [
            Strategy::NaivePaper,
            Strategy::Optimized,
            Strategy::Batch,
            Strategy::Planned,
        ] {
            let eval = Evaluator::with_strategy(&log, strategy);
            for src in [
                "SeeDoctor",
                "UpdateRefer -> GetReimburse",
                "GetRefer ~> !CheckIn",
                "(SeeDoctor & PayTreatment) | UpdateRefer",
                "Nope ~> SeeDoctor",
            ] {
                let p = parse(src);
                let (set, profile) = eval.evaluate_profiled(&p, 1).unwrap();
                assert_eq!(set, eval.evaluate(&p), "{strategy:?} on {src}");
                assert_eq!(
                    profile.total_incidents,
                    set.len() as u64,
                    "{strategy:?} on {src}"
                );
                // The root node's emission counter is the |incL(p)|
                // decomposition: per-instance root outputs sum to the
                // query answer.
                assert_eq!(
                    profile.nodes[0].metrics.incidents_emitted,
                    set.len() as u64,
                    "{strategy:?} on {src}"
                );
            }
        }
    }

    #[test]
    fn planned_profile_carries_estimates_and_costs() {
        let log = paper::figure3_log();
        let eval = Evaluator::new(&log);
        let (_, profile) = eval
            .evaluate_profiled(&parse("SeeDoctor -> PayTreatment"), 1)
            .unwrap();
        assert_eq!(profile.strategy, "planned");
        assert!(profile.rule.is_some());
        assert_eq!(profile.nodes.len(), 3);
        for node in &profile.nodes {
            assert!(node.shape.estimate.is_some());
            assert!(node.shape.cost.is_some());
            assert!(node.q_error().is_some());
        }
        // Leaf scans report their postings as records scanned.
        let scans: u64 = profile
            .nodes
            .iter()
            .filter(|n| n.shape.label.starts_with("scan"))
            .map(|n| n.metrics.records_scanned)
            .sum();
        assert_eq!(scans, 4 + 3); // 4 SeeDoctor + 3 PayTreatment records
    }

    #[test]
    fn parallel_profile_exposes_per_worker_breakdown() {
        let log = paper::figure3_log();
        let eval = Evaluator::new(&log);
        let p = parse("GetRefer -> CheckIn");
        let (seq_set, seq_profile) = eval.evaluate_profiled(&p, 1).unwrap();
        let (par_set, par_profile) = eval.evaluate_profiled(&p, 2).unwrap();
        assert_eq!(seq_set, par_set);
        assert_eq!(par_profile.workers.len(), 2);
        let swept: u64 = par_profile.workers.iter().map(|w| w.instances).sum();
        assert_eq!(swept, 3); // figure 3 has 3 instances
                              // Merged totals are identical to the sequential run's counters
                              // for every deterministic metric (wall time differs).
        for (seq, par) in seq_profile.nodes.iter().zip(&par_profile.nodes) {
            assert_eq!(seq.metrics.incidents_emitted, par.metrics.incidents_emitted);
            assert_eq!(seq.metrics.records_scanned, par.metrics.records_scanned);
            assert_eq!(seq.metrics.pairs_compared, par.metrics.pairs_compared);
            assert_eq!(seq.metrics.output_bytes, par.metrics.output_bytes);
        }
        assert!(par_profile.skew().is_some());
    }

    #[test]
    fn zero_threads_is_a_typed_error() {
        let log = paper::figure3_log();
        let err = Evaluator::new(&log)
            .evaluate_profiled(&parse("A"), 0)
            .unwrap_err();
        assert_eq!(err, EngineError::NoWorkers);
    }

    #[test]
    fn short_circuited_subtrees_keep_node_indices_aligned() {
        let log = paper::figure3_log();
        // Left side never matches: the right subtree is skipped per
        // instance, but its nodes must still exist (zeroed) in the
        // profile rather than shifting later siblings' counters.
        let p = parse("Nope ~> (SeeDoctor -> PayTreatment)");
        for strategy in [Strategy::Optimized, Strategy::Batch, Strategy::Planned] {
            let eval = Evaluator::with_strategy(&log, strategy);
            let (set, profile) = eval.evaluate_profiled(&p, 1).unwrap();
            assert!(set.is_empty());
            assert_eq!(profile.nodes.len(), 5, "{strategy:?}");
            assert_eq!(profile.nodes[0].metrics.incidents_emitted, 0);
        }
    }

    #[test]
    fn profile_round_trips_through_the_trace_format() {
        let log = paper::figure3_log();
        let (_, profile) = Evaluator::new(&log)
            .evaluate_profiled(&parse("GetRefer -> CheckIn -> SeeDoctor"), 2)
            .unwrap();
        let trace = render_trace(&profile);
        let summary = validate_trace(&trace).unwrap();
        assert_eq!(summary.nodes, profile.nodes.len());
        assert_eq!(summary.workers, profile.workers.len());
        assert_eq!(summary.total_incidents, profile.total_incidents);
    }

    #[test]
    fn comparison_models_are_the_documented_formulas() {
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(join_pairs(PhysOp::NestedLoop, Op::Sequential, 3, 5, 2), 15);
        assert_eq!(
            join_pairs(PhysOp::SortMergeSeq, Op::Sequential, 3, 5, 2),
            10
        );
        assert_eq!(
            join_pairs(PhysOp::BatchKernel, Op::Sequential, 3, 8, 2),
            3 * 3 + 2
        );
        assert_eq!(join_pairs(PhysOp::BatchKernel, Op::Choice, 3, 5, 8), 8);
        assert_eq!(join_pairs(PhysOp::BatchKernel, Op::Parallel, 3, 5, 2), 15);
        assert_eq!(classic_pairs(Strategy::NaivePaper, Op::Choice, 3, 5, 8), 15);
    }
}
