//! Zero-copy operator kernels over [`IncidentBatch`]es.
//!
//! Each kernel implements one operator of Definition 4 directly on the
//! flat layout of [`crate::batch`], with two structural wins over the
//! classic `Vec<Incident>` operators:
//!
//! - **unions are bump-appends**: the `⊙`/`→` join conditions imply every
//!   right-operand position exceeds every left-operand position, so a
//!   union is `push_concat` — two slice copies into the shared pool, no
//!   per-incident allocation and no element-wise merge;
//! - **output order comes from input order**: scanning a first-sorted
//!   left input and emitting unions that keep the left operand's `first`
//!   yields output already sorted by `first`, so the blanket re-sort of
//!   the classic operators shrinks to a per-equal-`first`-run fixup
//!   ([`IncidentBatch::finish_runs`]); `⊗` is a plain sorted merge
//!   needing no fixup at all, and only `⊕` still pays a full sort.
//!
//! Beyond the four logical kernels, two alternative *physical* operators
//! exist for the planner to choose from: [`sequential_sort_merge_kernel`]
//! replaces the per-left binary search of the `→` kernel with a single
//! monotone cursor when the left refs arrive ordered by `last`, and
//! [`nested_loop_kernel`] is the paper's Algorithm 1 join for inputs too
//! small to amortise any setup.
//!
//! All kernels produce exactly the incident sets of [`crate::naive`] /
//! [`crate::optimized`] (property-tested in `tests/batch_equiv.rs`).

use wlq_pattern::Op;

use crate::batch::{IncidentBatch, IncidentRef};
use crate::incident::Incident;

fn check_operands(left: &IncidentBatch, right: &IncidentBatch, out: &IncidentBatch) {
    debug_assert_eq!(left.wid(), right.wid(), "operands from different instances");
    debug_assert_eq!(
        left.wid(),
        out.wid(),
        "output batch bound to another instance"
    );
    left.debug_check_invariants();
    right.debug_check_invariants();
}

/// Whether every left ref has a strictly distinct `first`.
///
/// When this holds, the `⊙`/`→` kernel output is fully sorted and
/// duplicate-free *by construction*, and the `finish_runs` fixup can be
/// skipped entirely: each output keeps its left operand's `first`, so
/// outputs from different lefts are strictly ordered by that key, and
/// outputs from one left share an identical prefix (the left's slice) and
/// differ only in their right suffix — which is appended in the right
/// batch's strictly ascending `(first, lex)` order.
fn distinct_firsts(refs: &[IncidentRef]) -> bool {
    refs.windows(2).all(|w| w[0].first() < w[1].first())
}

/// Suffix position sums over `refs`: `out[i]` = total positions held by
/// `refs[i..]`. Lets the `→` kernels compute their exact output size (and
/// reserve pool space once) before emitting anything.
fn position_suffix_sums(refs: &[IncidentRef]) -> Vec<usize> {
    let mut sums = vec![0usize; refs.len() + 1];
    for i in (0..refs.len()).rev() {
        sums[i] = sums[i + 1] + refs[i].len();
    }
    sums
}

/// Dispatches one operator to its batch kernel, writing into a fresh
/// batch.
#[must_use]
pub fn combine_batch(op: Op, left: &IncidentBatch, right: &IncidentBatch) -> IncidentBatch {
    let mut out = IncidentBatch::new(left.wid());
    combine_batch_into(op, left, right, &mut out);
    out
}

/// Dispatches one operator to its batch kernel, reusing `out`'s
/// allocations (cleared first).
pub fn combine_batch_into(
    op: Op,
    left: &IncidentBatch,
    right: &IncidentBatch,
    out: &mut IncidentBatch,
) {
    out.reset(left.wid());
    match op {
        Op::Consecutive => consecutive_kernel(left, right, out),
        Op::Sequential => sequential_kernel(left, right, out),
        Op::Choice => choice_kernel(left, right, out),
        Op::Parallel => parallel_kernel(left, right, out),
    }
}

/// `⊙` (consecutive): unions of pairs with `first(o2) = last(o1) + 1`.
///
/// The right refs are sorted by `first`, so each left incident's partners
/// are one contiguous run found by binary search on the cached keys — the
/// pool is touched only to copy the union out.
pub fn consecutive_kernel(left: &IncidentBatch, right: &IncidentBatch, out: &mut IncidentBatch) {
    check_operands(left, right, out);
    let rrefs = right.refs();
    for lref in left.refs() {
        let probe = lref.last().next();
        let start = rrefs.partition_point(|r| r.first() < probe);
        for rref in rrefs[start..].iter().take_while(|r| r.first() == probe) {
            out.push_concat(left.positions(lref), right.positions(rref));
        }
    }
    if distinct_firsts(left.refs()) {
        out.debug_check_invariants();
    } else {
        out.finish_runs();
    }
}

/// `→` (sequential): unions of pairs with `first(o2) > last(o1)`.
///
/// Partners are the suffix of the first-sorted right refs past a single
/// `partition_point`. The kernel runs in two passes: the first finds each
/// left's partner start and accumulates the exact output size, so the
/// output pool and refs are reserved in one shot (a wide `→` join emits
/// `Θ(n1·n2)` positions — growing the pool incrementally re-copies it
/// `O(log)` times, which dominated the sort it was meant to save); the
/// second emits every union as a concat. When left `first`s are strictly
/// distinct the output is sorted and deduplicated by construction and the
/// `finish_runs` fixup is skipped.
pub fn sequential_kernel(left: &IncidentBatch, right: &IncidentBatch, out: &mut IncidentBatch) {
    check_operands(left, right, out);
    let (lrefs, rrefs) = (left.refs(), right.refs());
    if lrefs.is_empty() || rrefs.is_empty() {
        return;
    }
    let suffix = position_suffix_sums(rrefs);
    let mut starts = Vec::with_capacity(lrefs.len());
    let (mut total_refs, mut total_positions) = (0usize, 0usize);
    for lref in lrefs {
        let last = lref.last();
        let start = rrefs.partition_point(|r| r.first() <= last);
        let partners = rrefs.len() - start;
        total_refs += partners;
        total_positions += partners * lref.len() + suffix[start];
        starts.push(start);
    }
    out.reserve(total_refs, total_positions);
    for (lref, &start) in lrefs.iter().zip(&starts) {
        let lpos = left.positions(lref);
        for rref in &rrefs[start..] {
            out.push_concat(lpos, right.positions(rref));
        }
    }
    if distinct_firsts(lrefs) {
        out.debug_check_invariants();
    } else {
        out.finish_runs();
    }
}

/// `→` (sequential) as a sort-merge join: exploits per-`wid` span
/// ordering to replace the per-left binary search with one forward
/// cursor.
///
/// When the left refs are non-decreasing in their cached `last` (always
/// true when every left incident is width 1, e.g. a leaf operand — then
/// `last == first` and the batch sort order makes them ascending), the
/// partner-suffix start index is monotone across lefts, so a single
/// cursor sweeps the right refs once: `O(n1 + n2 + |out|)` instead of
/// `O(n1·log n2 + |out|)`. Falls back to [`sequential_kernel`] when the
/// precondition does not hold, so it is correct on any input.
pub fn sequential_sort_merge_kernel(
    left: &IncidentBatch,
    right: &IncidentBatch,
    out: &mut IncidentBatch,
) {
    check_operands(left, right, out);
    let (lrefs, rrefs) = (left.refs(), right.refs());
    if lrefs.is_empty() || rrefs.is_empty() {
        return;
    }
    if !lrefs.windows(2).all(|w| w[0].last() <= w[1].last()) {
        sequential_kernel(left, right, out);
        return;
    }
    let suffix = position_suffix_sums(rrefs);
    let mut starts = Vec::with_capacity(lrefs.len());
    let (mut total_refs, mut total_positions) = (0usize, 0usize);
    let mut cursor = 0usize;
    for lref in lrefs {
        let last = lref.last();
        while cursor < rrefs.len() && rrefs[cursor].first() <= last {
            cursor += 1;
        }
        let partners = rrefs.len() - cursor;
        total_refs += partners;
        total_positions += partners * lref.len() + suffix[cursor];
        starts.push(cursor);
    }
    out.reserve(total_refs, total_positions);
    for (lref, &start) in lrefs.iter().zip(&starts) {
        let lpos = left.positions(lref);
        for rref in &rrefs[start..] {
            out.push_concat(lpos, right.positions(rref));
        }
    }
    if distinct_firsts(lrefs) {
        out.debug_check_invariants();
    } else {
        out.finish_runs();
    }
}

/// The paper's Algorithm 1 nested-loop join as a physical operator over
/// batches: every `(left, right)` pair is tested against the operator's
/// join condition, `O(n1·n2)` probes regardless of output size. The
/// planner picks this when inputs are tiny enough that the batch kernels'
/// setup (binary searches, suffix sums) costs more than brute force. `⊗`
/// and `⊕` have no cheaper-on-tiny-inputs variant and delegate to their
/// kernels.
pub fn nested_loop_kernel(
    op: Op,
    left: &IncidentBatch,
    right: &IncidentBatch,
    out: &mut IncidentBatch,
) {
    check_operands(left, right, out);
    match op {
        Op::Consecutive => {
            for lref in left.refs() {
                let probe = lref.last().next();
                for rref in right.refs() {
                    if rref.first() == probe {
                        out.push_concat(left.positions(lref), right.positions(rref));
                    }
                }
            }
        }
        Op::Sequential => {
            for lref in left.refs() {
                let last = lref.last();
                for rref in right.refs() {
                    if rref.first() > last {
                        out.push_concat(left.positions(lref), right.positions(rref));
                    }
                }
            }
        }
        Op::Choice => return choice_kernel(left, right, out),
        Op::Parallel => return parallel_kernel(left, right, out),
    }
    // Rights are scanned in sorted order, so the emission order matches
    // the batch kernels' and the same finish logic applies.
    if distinct_firsts(left.refs()) {
        out.debug_check_invariants();
    } else {
        out.finish_runs();
    }
}

/// `⊗` (choice): the union of both incident lists.
///
/// Both inputs are sorted, so this is a linear two-pointer merge over the
/// refs; the output is fully sorted and deduplicated by construction.
pub fn choice_kernel(left: &IncidentBatch, right: &IncidentBatch, out: &mut IncidentBatch) {
    check_operands(left, right, out);
    let (lrefs, rrefs) = (left.refs(), right.refs());
    let (mut i, mut j) = (0, 0);
    while i < lrefs.len() && j < rrefs.len() {
        match left.cmp_across(&lrefs[i], right, &rrefs[j]) {
            std::cmp::Ordering::Less => {
                out.push_sorted_positions(left.positions(&lrefs[i]));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push_sorted_positions(right.positions(&rrefs[j]));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push_sorted_positions(left.positions(&lrefs[i]));
                i += 1;
                j += 1;
            }
        }
    }
    for lref in &lrefs[i..] {
        out.push_sorted_positions(left.positions(lref));
    }
    for rref in &rrefs[j..] {
        out.push_sorted_positions(right.positions(rref));
    }
    out.debug_check_invariants();
}

/// `⊕` (parallel): unions of record-disjoint pairs.
///
/// Non-overlapping ranges (the common case) take the concat fast path on
/// the cached endpoints alone; interleaved ranges run a fused
/// disjointness-check-and-merge that speculatively appends into the pool
/// and rolls back to its mark on the first shared position. Unions here
/// may take `first` from either operand, so this is the one kernel that
/// still needs a full output sort.
pub fn parallel_kernel(left: &IncidentBatch, right: &IncidentBatch, out: &mut IncidentBatch) {
    check_operands(left, right, out);
    for lref in left.refs() {
        let lpos = left.positions(lref);
        'pairs: for rref in right.refs() {
            if lref.last() < rref.first() {
                out.push_concat(lpos, right.positions(rref));
                continue;
            }
            if rref.last() < lref.first() {
                out.push_concat(right.positions(rref), lpos);
                continue;
            }
            let rpos = right.positions(rref);
            let mark = out.pool_mark();
            let (mut a, mut b) = (0, 0);
            while a < lpos.len() && b < rpos.len() {
                match lpos[a].cmp(&rpos[b]) {
                    std::cmp::Ordering::Less => {
                        out.push_position(lpos[a]);
                        a += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        out.push_position(rpos[b]);
                        b += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        // Shared record: the pair is not parallel.
                        out.truncate_pool(mark);
                        continue 'pairs;
                    }
                }
            }
            for &p in &lpos[a..] {
                out.push_position(p);
            }
            for &p in &rpos[b..] {
                out.push_position(p);
            }
            out.commit_ref(mark);
        }
    }
    out.finish_full();
}

/// Late materialization for the *root* `⊙`/`→` join of a physical plan:
/// emits classic [`Incident`]s directly instead of going through an
/// output batch.
///
/// A query-boundary join otherwise pays the positions twice — once
/// appended into the output pool by the kernel, once copied back out by
/// [`IncidentBatch::drain_incidents`]. When the result leaves batch form
/// anyway, each union can be written straight into its final
/// exactly-sized `Vec`: the concat of the left slice and the right slice
/// is already sorted (every right position exceeds every left `last`),
/// and with strictly distinct left `first`s the emission order is fully
/// sorted and duplicate-free by construction, so no `finish` pass of any
/// kind remains. Returns `None` — caller falls back to kernel + drain —
/// when the operator is `⊗`/`⊕` or left `first`s repeat (the output
/// would need the batch fixup machinery).
#[must_use]
pub fn materialize_join(
    op: Op,
    left: &IncidentBatch,
    right: &IncidentBatch,
) -> Option<Vec<Incident>> {
    debug_assert_eq!(left.wid(), right.wid(), "operands from different instances");
    if !matches!(op, Op::Consecutive | Op::Sequential) || !distinct_firsts(left.refs()) {
        return None;
    }
    let (lrefs, rrefs) = (left.refs(), right.refs());
    if lrefs.is_empty() || rrefs.is_empty() {
        return Some(Vec::new());
    }
    // Pass 1: partner run per left, and the exact output count.
    let mut runs = Vec::with_capacity(lrefs.len());
    let mut total = 0usize;
    for lref in lrefs {
        let (start, len) = match op {
            Op::Sequential => {
                let last = lref.last();
                let start = rrefs.partition_point(|r| r.first() <= last);
                (start, rrefs.len() - start)
            }
            _ => {
                let probe = lref.last().next();
                let start = rrefs.partition_point(|r| r.first() < probe);
                let len = rrefs[start..]
                    .iter()
                    .take_while(|r| r.first() == probe)
                    .count();
                (start, len)
            }
        };
        runs.push((start, len));
        total += len;
    }
    // Pass 2: emit each union into its own exactly-sized positions Vec.
    let mut out = Vec::with_capacity(total);
    for (lref, &(start, len)) in lrefs.iter().zip(&runs) {
        let lpos = left.positions(lref);
        for rref in &rrefs[start..start + len] {
            let rpos = right.positions(rref);
            let mut positions = Vec::with_capacity(lpos.len() + rpos.len());
            positions.extend_from_slice(lpos);
            positions.extend_from_slice(rpos);
            out.push(Incident::from_sorted_positions_unchecked(
                left.wid(),
                positions,
            ));
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incident::Incident;
    use crate::{naive, optimized};
    use wlq_log::{IsLsn, Wid};

    const WID: Wid = Wid(7);

    fn incident(ps: &[u32]) -> Incident {
        Incident::from_positions(WID, ps.iter().map(|&p| IsLsn(p)).collect())
    }

    fn fixture_a() -> Vec<Incident> {
        vec![
            incident(&[1]),
            incident(&[1, 2]),
            incident(&[3]),
            incident(&[4, 6]),
        ]
    }

    fn fixture_b() -> Vec<Incident> {
        vec![
            incident(&[2]),
            incident(&[3, 5]),
            incident(&[4]),
            incident(&[7]),
        ]
    }

    fn run(op: Op, left: &[Incident], right: &[Incident]) -> Vec<Incident> {
        let lb = IncidentBatch::from_incidents(WID, left);
        let rb = IncidentBatch::from_incidents(WID, right);
        combine_batch(op, &lb, &rb).into_incidents()
    }

    #[test]
    fn kernels_match_reference_operators_on_fixtures() {
        let (a, b) = (fixture_a(), fixture_b());
        for (xs, ys) in [(&a, &b), (&b, &a), (&a, &a), (&b, &b)] {
            assert_eq!(
                run(Op::Consecutive, xs, ys),
                naive::consecutive_eval(xs, ys)
            );
            assert_eq!(run(Op::Sequential, xs, ys), naive::sequential_eval(xs, ys));
            assert_eq!(run(Op::Choice, xs, ys), naive::choice_eval(xs, ys));
            assert_eq!(run(Op::Parallel, xs, ys), naive::parallel_eval(xs, ys));
        }
    }

    #[test]
    fn kernels_match_optimized_operators_on_fixtures() {
        let (a, b) = (fixture_a(), fixture_b());
        assert_eq!(
            run(Op::Consecutive, &a, &b),
            optimized::consecutive_eval(&a, &b)
        );
        assert_eq!(
            run(Op::Sequential, &a, &b),
            optimized::sequential_eval(&a, &b)
        );
        assert_eq!(run(Op::Choice, &a, &b), optimized::choice_eval(&a, &b));
        assert_eq!(run(Op::Parallel, &a, &b), optimized::parallel_eval(&a, &b));
    }

    #[test]
    fn empty_sides_behave_like_reference() {
        let a = fixture_a();
        let empty: Vec<Incident> = Vec::new();
        for op in [Op::Consecutive, Op::Sequential, Op::Choice, Op::Parallel] {
            assert_eq!(run(op, &a, &empty), naive_combine(op, &a, &empty));
            assert_eq!(run(op, &empty, &a), naive_combine(op, &empty, &a));
            assert_eq!(run(op, &empty, &empty), Vec::new());
        }
    }

    fn naive_combine(op: Op, l: &[Incident], r: &[Incident]) -> Vec<Incident> {
        match op {
            Op::Consecutive => naive::consecutive_eval(l, r),
            Op::Sequential => naive::sequential_eval(l, r),
            Op::Choice => naive::choice_eval(l, r),
            Op::Parallel => naive::parallel_eval(l, r),
        }
    }

    #[test]
    fn sequential_output_needs_no_global_sort() {
        // Two left incidents share first=1 (via different shapes) so the
        // run fixup is exercised; the kernel output must still be the
        // reference's sorted set.
        let left = vec![incident(&[1]), incident(&[1, 3])];
        let right = vec![incident(&[2]), incident(&[4]), incident(&[5])];
        assert_eq!(
            run(Op::Sequential, &left, &right),
            naive::sequential_eval(&left, &right)
        );
    }

    fn run_sort_merge(left: &[Incident], right: &[Incident]) -> Vec<Incident> {
        let lb = IncidentBatch::from_incidents(WID, left);
        let rb = IncidentBatch::from_incidents(WID, right);
        let mut out = IncidentBatch::new(WID);
        sequential_sort_merge_kernel(&lb, &rb, &mut out);
        out.into_incidents()
    }

    fn run_nested(op: Op, left: &[Incident], right: &[Incident]) -> Vec<Incident> {
        let lb = IncidentBatch::from_incidents(WID, left);
        let rb = IncidentBatch::from_incidents(WID, right);
        let mut out = IncidentBatch::new(WID);
        nested_loop_kernel(op, &lb, &rb, &mut out);
        out.into_incidents()
    }

    #[test]
    fn sort_merge_matches_reference_on_fixtures() {
        let (a, b) = (fixture_a(), fixture_b());
        let empty: Vec<Incident> = Vec::new();
        for (xs, ys) in [(&a, &b), (&b, &a), (&a, &a), (&a, &empty), (&empty, &b)] {
            assert_eq!(run_sort_merge(xs, ys), naive::sequential_eval(xs, ys));
        }
    }

    #[test]
    fn sort_merge_falls_back_when_lasts_are_not_monotone() {
        // lasts 9 then 2: the monotone-cursor precondition fails and the
        // kernel must detour through the binary-search path.
        let left = vec![incident(&[1, 9]), incident(&[2])];
        let right = vec![incident(&[3]), incident(&[5]), incident(&[10])];
        assert_eq!(
            run_sort_merge(&left, &right),
            naive::sequential_eval(&left, &right)
        );
    }

    #[test]
    fn sort_merge_handles_shared_firsts() {
        // Lefts share first=1 (run fixup required) while lasts stay
        // monotone, so the cursor path runs and still must finish runs.
        let left = vec![incident(&[1]), incident(&[1, 3])];
        let right = vec![incident(&[2]), incident(&[4]), incident(&[5])];
        assert_eq!(
            run_sort_merge(&left, &right),
            naive::sequential_eval(&left, &right)
        );
    }

    #[test]
    fn materialize_join_matches_kernel_plus_drain() {
        // Strictly distinct left firsts: the direct form applies and must
        // emit exactly what the batch kernel would after draining.
        let left = vec![incident(&[1]), incident(&[2, 3]), incident(&[5])];
        let right = fixture_b();
        for op in [Op::Consecutive, Op::Sequential] {
            let lb = IncidentBatch::from_incidents(WID, &left);
            let rb = IncidentBatch::from_incidents(WID, &right);
            let direct = materialize_join(op, &lb, &rb).expect("distinct firsts");
            let mut batch = combine_batch(op, &lb, &rb);
            assert_eq!(direct, batch.drain_incidents());
        }
    }

    #[test]
    fn materialize_join_declines_fixup_cases() {
        // fixture_a repeats first=1, so the output could need the run
        // fixup; `⊗` has no concat form at all. Both must fall back.
        let dup = IncidentBatch::from_incidents(WID, &fixture_a());
        let rb = IncidentBatch::from_incidents(WID, &fixture_b());
        assert!(materialize_join(Op::Sequential, &dup, &rb).is_none());
        assert!(materialize_join(Op::Choice, &rb, &rb).is_none());
        assert!(materialize_join(Op::Parallel, &rb, &rb).is_none());
    }

    #[test]
    fn nested_loop_matches_reference_on_fixtures() {
        let (a, b) = (fixture_a(), fixture_b());
        for op in [Op::Consecutive, Op::Sequential, Op::Choice, Op::Parallel] {
            for (xs, ys) in [(&a, &b), (&b, &a), (&a, &a)] {
                assert_eq!(run_nested(op, xs, ys), naive_combine(op, xs, ys));
            }
        }
    }

    #[test]
    fn parallel_rolls_back_overlapping_pairs() {
        // [1,4] vs [4] overlaps (skipped); [1,4] vs [2,6] interleaves
        // (fused merge); [3] vs [4] concats.
        let left = vec![incident(&[1, 4]), incident(&[3])];
        let right = vec![incident(&[2, 6]), incident(&[4])];
        assert_eq!(
            run(Op::Parallel, &left, &right),
            naive::parallel_eval(&left, &right)
        );
    }
}
