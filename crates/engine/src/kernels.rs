//! Zero-copy operator kernels over [`IncidentBatch`]es.
//!
//! Each kernel implements one operator of Definition 4 directly on the
//! flat layout of [`crate::batch`], with two structural wins over the
//! classic `Vec<Incident>` operators:
//!
//! - **unions are bump-appends**: the `⊙`/`→` join conditions imply every
//!   right-operand position exceeds every left-operand position, so a
//!   union is `push_concat` — two slice copies into the shared pool, no
//!   per-incident allocation and no element-wise merge;
//! - **output order comes from input order**: scanning a first-sorted
//!   left input and emitting unions that keep the left operand's `first`
//!   yields output already sorted by `first`, so the blanket re-sort of
//!   the classic operators shrinks to a per-equal-`first`-run fixup
//!   ([`IncidentBatch::finish_runs`]); `⊗` is a plain sorted merge
//!   needing no fixup at all, and only `⊕` still pays a full sort.
//!
//! All four kernels produce exactly the incident sets of
//! [`crate::naive`] / [`crate::optimized`] (property-tested in
//! `tests/batch_equiv.rs`).

use wlq_pattern::Op;

use crate::batch::IncidentBatch;

fn check_operands(left: &IncidentBatch, right: &IncidentBatch, out: &IncidentBatch) {
    debug_assert_eq!(left.wid(), right.wid(), "operands from different instances");
    debug_assert_eq!(
        left.wid(),
        out.wid(),
        "output batch bound to another instance"
    );
    left.debug_check_invariants();
    right.debug_check_invariants();
}

/// Dispatches one operator to its batch kernel, writing into a fresh
/// batch.
#[must_use]
pub fn combine_batch(op: Op, left: &IncidentBatch, right: &IncidentBatch) -> IncidentBatch {
    let mut out = IncidentBatch::new(left.wid());
    combine_batch_into(op, left, right, &mut out);
    out
}

/// Dispatches one operator to its batch kernel, reusing `out`'s
/// allocations (cleared first).
pub fn combine_batch_into(
    op: Op,
    left: &IncidentBatch,
    right: &IncidentBatch,
    out: &mut IncidentBatch,
) {
    out.reset(left.wid());
    match op {
        Op::Consecutive => consecutive_kernel(left, right, out),
        Op::Sequential => sequential_kernel(left, right, out),
        Op::Choice => choice_kernel(left, right, out),
        Op::Parallel => parallel_kernel(left, right, out),
    }
}

/// `⊙` (consecutive): unions of pairs with `first(o2) = last(o1) + 1`.
///
/// The right refs are sorted by `first`, so each left incident's partners
/// are one contiguous run found by binary search on the cached keys — the
/// pool is touched only to copy the union out.
pub fn consecutive_kernel(left: &IncidentBatch, right: &IncidentBatch, out: &mut IncidentBatch) {
    check_operands(left, right, out);
    let rrefs = right.refs();
    for lref in left.refs() {
        let probe = lref.last().next();
        let start = rrefs.partition_point(|r| r.first() < probe);
        for rref in rrefs[start..].iter().take_while(|r| r.first() == probe) {
            out.push_concat(left.positions(lref), right.positions(rref));
        }
    }
    out.finish_runs();
}

/// `→` (sequential): unions of pairs with `first(o2) > last(o1)`.
///
/// Partners are the suffix of the first-sorted right refs past a single
/// `partition_point`; every union is a concat.
pub fn sequential_kernel(left: &IncidentBatch, right: &IncidentBatch, out: &mut IncidentBatch) {
    check_operands(left, right, out);
    let rrefs = right.refs();
    for lref in left.refs() {
        let last = lref.last();
        let start = rrefs.partition_point(|r| r.first() <= last);
        for rref in &rrefs[start..] {
            out.push_concat(left.positions(lref), right.positions(rref));
        }
    }
    out.finish_runs();
}

/// `⊗` (choice): the union of both incident lists.
///
/// Both inputs are sorted, so this is a linear two-pointer merge over the
/// refs; the output is fully sorted and deduplicated by construction.
pub fn choice_kernel(left: &IncidentBatch, right: &IncidentBatch, out: &mut IncidentBatch) {
    check_operands(left, right, out);
    let (lrefs, rrefs) = (left.refs(), right.refs());
    let (mut i, mut j) = (0, 0);
    while i < lrefs.len() && j < rrefs.len() {
        match left.cmp_across(&lrefs[i], right, &rrefs[j]) {
            std::cmp::Ordering::Less => {
                out.push_sorted_positions(left.positions(&lrefs[i]));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push_sorted_positions(right.positions(&rrefs[j]));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push_sorted_positions(left.positions(&lrefs[i]));
                i += 1;
                j += 1;
            }
        }
    }
    for lref in &lrefs[i..] {
        out.push_sorted_positions(left.positions(lref));
    }
    for rref in &rrefs[j..] {
        out.push_sorted_positions(right.positions(rref));
    }
    out.debug_check_invariants();
}

/// `⊕` (parallel): unions of record-disjoint pairs.
///
/// Non-overlapping ranges (the common case) take the concat fast path on
/// the cached endpoints alone; interleaved ranges run a fused
/// disjointness-check-and-merge that speculatively appends into the pool
/// and rolls back to its mark on the first shared position. Unions here
/// may take `first` from either operand, so this is the one kernel that
/// still needs a full output sort.
pub fn parallel_kernel(left: &IncidentBatch, right: &IncidentBatch, out: &mut IncidentBatch) {
    check_operands(left, right, out);
    for lref in left.refs() {
        let lpos = left.positions(lref);
        'pairs: for rref in right.refs() {
            if lref.last() < rref.first() {
                out.push_concat(lpos, right.positions(rref));
                continue;
            }
            if rref.last() < lref.first() {
                out.push_concat(right.positions(rref), lpos);
                continue;
            }
            let rpos = right.positions(rref);
            let mark = out.pool_mark();
            let (mut a, mut b) = (0, 0);
            while a < lpos.len() && b < rpos.len() {
                match lpos[a].cmp(&rpos[b]) {
                    std::cmp::Ordering::Less => {
                        out.push_position(lpos[a]);
                        a += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        out.push_position(rpos[b]);
                        b += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        // Shared record: the pair is not parallel.
                        out.truncate_pool(mark);
                        continue 'pairs;
                    }
                }
            }
            for &p in &lpos[a..] {
                out.push_position(p);
            }
            for &p in &rpos[b..] {
                out.push_position(p);
            }
            out.commit_ref(mark);
        }
    }
    out.finish_full();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incident::Incident;
    use crate::{naive, optimized};
    use wlq_log::{IsLsn, Wid};

    const WID: Wid = Wid(7);

    fn incident(ps: &[u32]) -> Incident {
        Incident::from_positions(WID, ps.iter().map(|&p| IsLsn(p)).collect())
    }

    fn fixture_a() -> Vec<Incident> {
        vec![
            incident(&[1]),
            incident(&[1, 2]),
            incident(&[3]),
            incident(&[4, 6]),
        ]
    }

    fn fixture_b() -> Vec<Incident> {
        vec![
            incident(&[2]),
            incident(&[3, 5]),
            incident(&[4]),
            incident(&[7]),
        ]
    }

    fn run(op: Op, left: &[Incident], right: &[Incident]) -> Vec<Incident> {
        let lb = IncidentBatch::from_incidents(WID, left);
        let rb = IncidentBatch::from_incidents(WID, right);
        combine_batch(op, &lb, &rb).into_incidents()
    }

    #[test]
    fn kernels_match_reference_operators_on_fixtures() {
        let (a, b) = (fixture_a(), fixture_b());
        for (xs, ys) in [(&a, &b), (&b, &a), (&a, &a), (&b, &b)] {
            assert_eq!(
                run(Op::Consecutive, xs, ys),
                naive::consecutive_eval(xs, ys)
            );
            assert_eq!(run(Op::Sequential, xs, ys), naive::sequential_eval(xs, ys));
            assert_eq!(run(Op::Choice, xs, ys), naive::choice_eval(xs, ys));
            assert_eq!(run(Op::Parallel, xs, ys), naive::parallel_eval(xs, ys));
        }
    }

    #[test]
    fn kernels_match_optimized_operators_on_fixtures() {
        let (a, b) = (fixture_a(), fixture_b());
        assert_eq!(
            run(Op::Consecutive, &a, &b),
            optimized::consecutive_eval(&a, &b)
        );
        assert_eq!(
            run(Op::Sequential, &a, &b),
            optimized::sequential_eval(&a, &b)
        );
        assert_eq!(run(Op::Choice, &a, &b), optimized::choice_eval(&a, &b));
        assert_eq!(run(Op::Parallel, &a, &b), optimized::parallel_eval(&a, &b));
    }

    #[test]
    fn empty_sides_behave_like_reference() {
        let a = fixture_a();
        let empty: Vec<Incident> = Vec::new();
        for op in [Op::Consecutive, Op::Sequential, Op::Choice, Op::Parallel] {
            assert_eq!(run(op, &a, &empty), naive_combine(op, &a, &empty));
            assert_eq!(run(op, &empty, &a), naive_combine(op, &empty, &a));
            assert_eq!(run(op, &empty, &empty), Vec::new());
        }
    }

    fn naive_combine(op: Op, l: &[Incident], r: &[Incident]) -> Vec<Incident> {
        match op {
            Op::Consecutive => naive::consecutive_eval(l, r),
            Op::Sequential => naive::sequential_eval(l, r),
            Op::Choice => naive::choice_eval(l, r),
            Op::Parallel => naive::parallel_eval(l, r),
        }
    }

    #[test]
    fn sequential_output_needs_no_global_sort() {
        // Two left incidents share first=1 (via different shapes) so the
        // run fixup is exercised; the kernel output must still be the
        // reference's sorted set.
        let left = vec![incident(&[1]), incident(&[1, 3])];
        let right = vec![incident(&[2]), incident(&[4]), incident(&[5])];
        assert_eq!(
            run(Op::Sequential, &left, &right),
            naive::sequential_eval(&left, &right)
        );
    }

    #[test]
    fn parallel_rolls_back_overlapping_pairs() {
        // [1,4] vs [4] overlaps (skipped); [1,4] vs [2,6] interleaves
        // (fused merge); [3] vs [4] concats.
        let left = vec![incident(&[1, 4]), incident(&[3])];
        let right = vec![incident(&[2, 6]), incident(&[4])];
        assert_eq!(
            run(Op::Parallel, &left, &right),
            naive::parallel_eval(&left, &right)
        );
    }
}
