//! Incidents (Definition 4): the matches of a pattern in a log.

use std::fmt;

use wlq_log::{IsLsn, Wid};

/// An incident of a pattern in a log: a nonempty set of log records of a
/// single workflow instance, identified by their `(wid, is-lsn)`
/// coordinates.
///
/// The paper's `first(o)` and `last(o)` functions are derivable: for every
/// operator of Definition 4 they coincide with the minimum and maximum
/// is-lsn in the set (proved by a straightforward induction), so an
/// incident stores its positions sorted and exposes
/// [`first`](Self::first) / [`last`](Self::last) as the endpoints.
///
/// # Examples
///
/// ```
/// use wlq_engine::Incident;
/// use wlq_log::{IsLsn, Wid};
///
/// let a = Incident::singleton(Wid(2), IsLsn(5));
/// let b = Incident::singleton(Wid(2), IsLsn(9));
/// let joined = a.union(&b);
/// assert_eq!(joined.first(), IsLsn(5));
/// assert_eq!(joined.last(), IsLsn(9));
/// assert_eq!(joined.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Incident {
    wid: Wid,
    /// Sorted ascending, deduplicated, nonempty.
    positions: Vec<IsLsn>,
}

impl Incident {
    /// An incident of an atomic pattern: one record.
    #[must_use]
    pub fn singleton(wid: Wid, position: IsLsn) -> Self {
        Incident {
            wid,
            positions: vec![position],
        }
    }

    /// Builds an incident from arbitrary positions (sorted and deduped).
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty — incidents are nonempty by
    /// Definition 4.
    #[must_use]
    pub fn from_positions(wid: Wid, mut positions: Vec<IsLsn>) -> Self {
        assert!(
            !positions.is_empty(),
            "incidents are nonempty sets of log records"
        );
        positions.sort_unstable();
        positions.dedup();
        Incident { wid, positions }
    }

    /// Builds an incident from positions already strictly ascending and
    /// nonempty — the batch-to-incident boundary conversion, which must
    /// not pay [`from_positions`](Self::from_positions)' re-sort.
    pub(crate) fn from_sorted_positions_unchecked(wid: Wid, positions: Vec<IsLsn>) -> Self {
        debug_assert!(
            !positions.is_empty(),
            "incidents are nonempty sets of log records"
        );
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must be ascending"
        );
        Incident { wid, positions }
    }

    /// The workflow instance this incident belongs to, `wid(o)`.
    #[must_use]
    pub fn wid(&self) -> Wid {
        self.wid
    }

    /// `first(o)`: the smallest is-lsn in the incident.
    #[must_use]
    pub fn first(&self) -> IsLsn {
        // Nonempty by construction (both constructors enforce it).
        self.positions[0]
    }

    /// `last(o)`: the largest is-lsn in the incident.
    #[must_use]
    pub fn last(&self) -> IsLsn {
        self.positions[self.positions.len() - 1]
    }

    /// Number of log records in the incident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Incidents are never empty; provided for container-contract symmetry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The sorted is-lsns of the incident's records.
    #[must_use]
    pub fn positions(&self) -> &[IsLsn] {
        &self.positions
    }

    /// Whether the incident contains the record at `position`.
    #[must_use]
    pub fn contains(&self, position: IsLsn) -> bool {
        self.positions.binary_search(&position).is_ok()
    }

    /// Whether two incidents share no log records — the parallel
    /// operator's side condition (`o1 ∩ o2 = ∅`). Linear in the incident
    /// sizes (sorted merge), as in the paper's Lemma 1 analysis, with a
    /// constant-time range shortcut when the incidents don't overlap.
    #[must_use]
    pub fn is_disjoint(&self, other: &Incident) -> bool {
        if self.wid != other.wid {
            return true;
        }
        // Range shortcut: non-overlapping spans cannot share records.
        if self.last() < other.first() || other.last() < self.first() {
            return true;
        }
        let (mut i, mut j) = (0, 0);
        while i < self.positions.len() && j < other.positions.len() {
            match self.positions[i].cmp(&other.positions[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// The union `o1 ∪ o2` (sorted merge).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the wids differ — Definition 4 only ever
    /// unions incidents of the same instance.
    #[must_use]
    pub fn union(&self, other: &Incident) -> Incident {
        debug_assert_eq!(self.wid, other.wid, "union across instances");
        let mut positions = Vec::with_capacity(self.positions.len() + other.positions.len());
        let (mut i, mut j) = (0, 0);
        while i < self.positions.len() && j < other.positions.len() {
            match self.positions[i].cmp(&other.positions[j]) {
                std::cmp::Ordering::Less => {
                    positions.push(self.positions[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    positions.push(other.positions[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    positions.push(self.positions[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        positions.extend_from_slice(&self.positions[i..]);
        positions.extend_from_slice(&other.positions[j..]);
        Incident {
            wid: self.wid,
            positions,
        }
    }
}

impl fmt::Display for Incident {
    /// Prints like the paper: `{l5, l9}@wid2` using instance-local
    /// coordinates (`is-lsn`), since global lsns require the log.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.positions.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}@wid{}", self.wid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inc(wid: u64, ps: &[u32]) -> Incident {
        Incident::from_positions(Wid(wid), ps.iter().map(|&p| IsLsn(p)).collect())
    }

    #[test]
    fn singleton_has_equal_endpoints() {
        let o = Incident::singleton(Wid(1), IsLsn(4));
        assert_eq!(o.first(), IsLsn(4));
        assert_eq!(o.last(), IsLsn(4));
        assert_eq!(o.len(), 1);
        assert!(!o.is_empty());
        assert_eq!(o.wid(), Wid(1));
    }

    #[test]
    fn from_positions_sorts_and_dedups() {
        let o = inc(1, &[5, 2, 5, 9]);
        assert_eq!(o.positions(), &[IsLsn(2), IsLsn(5), IsLsn(9)]);
        assert_eq!(o.first(), IsLsn(2));
        assert_eq!(o.last(), IsLsn(9));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_incident_panics() {
        let _ = Incident::from_positions(Wid(1), vec![]);
    }

    #[test]
    fn contains_uses_binary_search() {
        let o = inc(1, &[2, 5, 9]);
        assert!(o.contains(IsLsn(5)));
        assert!(!o.contains(IsLsn(4)));
    }

    #[test]
    fn disjointness_detects_overlap() {
        assert!(inc(1, &[1, 3]).is_disjoint(&inc(1, &[2, 4])));
        assert!(!inc(1, &[1, 3]).is_disjoint(&inc(1, &[3, 4])));
        // Different instances are trivially disjoint.
        assert!(inc(1, &[3]).is_disjoint(&inc(2, &[3])));
        // Range shortcut path.
        assert!(inc(1, &[1, 2]).is_disjoint(&inc(1, &[5, 6])));
    }

    #[test]
    fn union_merges_sorted() {
        let o = inc(1, &[1, 5]).union(&inc(1, &[3, 5, 9]));
        assert_eq!(o.positions(), &[IsLsn(1), IsLsn(3), IsLsn(5), IsLsn(9)]);
    }

    #[test]
    fn ordering_is_by_wid_then_positions() {
        let mut v = vec![inc(2, &[1]), inc(1, &[9]), inc(1, &[2, 3]), inc(1, &[2])];
        v.sort();
        assert_eq!(
            v,
            vec![inc(1, &[2]), inc(1, &[2, 3]), inc(1, &[9]), inc(2, &[1])]
        );
    }

    #[test]
    fn display_shows_positions_and_wid() {
        assert_eq!(inc(2, &[5, 9]).to_string(), "{5, 9}@wid2");
    }
}
