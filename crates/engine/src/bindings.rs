//! Variable bindings: the `x : t` atoms of the paper's formal language.
//!
//! The paper's incident definition assigns *variables* to log records
//! ("an assignment is a 1-1 mapping from V to N+ … maps all variables in
//! e to actual log records"). The plain evaluator drops the variable
//! names, as the paper's own examples do; this module keeps them, so a
//! query can label atoms and read back which record matched which label:
//!
//! ```text
//! upd:UpdateRefer -> reim:GetReimburse
//! ```
//!
//! yields, per incident, the assignment `{upd ↦ l14, reim ↦ l20}`.
//!
//! Labels use the text syntax `var:Activity` (parsed here, since the core
//! grammar deliberately omits variables, matching the published
//! presentation).

use std::collections::BTreeMap;

use wlq_log::{IsLsn, Log, Wid};
use wlq_pattern::{Atom, Op, ParsePatternError, Pattern};

use crate::eval::{leaf_incidents, Evaluator};
use crate::incident::Incident;

/// An incident plus the variable assignment that produced it
/// (the paper's `(L, e)-qualified assignment` restricted to this match).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundIncident {
    /// The underlying incident (set of records).
    pub incident: Incident,
    /// Variable name → the bound record's is-lsn within the incident's
    /// instance. Only labelled atoms contribute entries.
    pub bindings: BTreeMap<String, IsLsn>,
}

impl BoundIncident {
    /// Resolves a binding to its global log sequence number. Returns
    /// `None` when the variable is unbound or the incident did not come
    /// from `log`.
    #[must_use]
    pub fn lsn_of(&self, var: &str, log: &Log) -> Option<wlq_log::Lsn> {
        let position = *self.bindings.get(var)?;
        Some(log.record(self.incident.wid(), position)?.lsn())
    }
}

/// A pattern whose atoms may carry variable labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelledPattern {
    pattern: Pattern,
    /// Post-order atom index → label (if any). Atom order mirrors
    /// [`wlq_pattern::to_postfix`].
    labels: Vec<Option<String>>,
}

impl LabelledPattern {
    /// Parses the labelled syntax `var:Activity` (labels optional per
    /// atom). Everything else matches the core grammar.
    ///
    /// # Errors
    ///
    /// Returns the core parser's error, with label-specific problems
    /// (duplicate variable, label on a negated atom) reported as
    /// [`ParsePatternError`]s too.
    pub fn parse(src: &str) -> Result<LabelledPattern, ParsePatternError> {
        // Strip labels with a scan: an identifier immediately followed by
        // ':' and another identifier is a label. We rewrite to the core
        // syntax while remembering label order (atom order in the text is
        // postfix order of leaves — left to right).
        let mut core = String::with_capacity(src.len());
        let mut labels_in_order: Vec<Option<String>> = Vec::new();
        let mut chars = src.char_indices().peekable();
        let mut seen: std::collections::BTreeSet<String> = Default::default();
        let mut in_brackets = false;
        let mut in_string = false;
        while let Some((i, c)) = chars.next() {
            // Inside predicates (and their string literals) nothing is a
            // label — copy verbatim.
            if in_string {
                core.push(c);
                if c == '\\' {
                    if let Some((_, esc)) = chars.next() {
                        core.push(esc);
                    }
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            if in_brackets {
                core.push(c);
                match c {
                    ']' => in_brackets = false,
                    '"' => in_string = true,
                    _ => {}
                }
                continue;
            }
            if c == '[' {
                core.push(c);
                in_brackets = true;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let mut ident = String::new();
                ident.push(c);
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        ident.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if let Some(&(_, ':')) = chars.peek() {
                    // A label: consume ':' and expect the activity next.
                    chars.next();
                    if !seen.insert(ident.clone()) {
                        return Err(ParsePatternError {
                            position: i,
                            kind: wlq_pattern::ParseErrorKind::BadPredicate(format!(
                                "duplicate variable {ident:?}"
                            )),
                        });
                    }
                    labels_in_order.push(Some(ident));
                    // The activity identifier itself is handled by the
                    // next loop iterations; nothing emitted for the label.
                } else {
                    // A plain identifier: an unlabelled atom *if* this is
                    // an activity position. Attribute names inside
                    // predicates also land here; they are filtered below
                    // by only counting identifiers at atom positions. To
                    // keep the scanner simple we instead mark atoms during
                    // the final pairing step.
                    core.push_str(&ident);
                    continue;
                }
            } else {
                core.push(c);
            }
        }
        // The scan above only removed `var:` prefixes; rebuild `core` to
        // actually include identifiers (they were pushed) — but labelled
        // activities were *not* pushed because the label consumed them?
        // No: the label consumed only `var` and ':'; the activity is a
        // separate identifier handled by a later iteration and pushed.
        let pattern: Pattern = core.parse()?;

        // Pair labels with atoms: labels were recorded in source order;
        // atoms in source order equal the pattern's postfix leaf order.
        // We require exactly as many labels as there were `var:` markers,
        // and assign them to atoms greedily left to right at the position
        // each marker appeared. For simplicity and predictability, the
        // supported form is: every label directly precedes its atom, so
        // label k belongs to the k-th atom *that had a label marker*.
        // Re-scan the source to know which atom indexes were labelled.
        let labelled_flags = labelled_atom_flags(src);
        let num_atoms = pattern.num_atoms();
        if labelled_flags.len() != num_atoms {
            return Err(ParsePatternError {
                position: 0,
                kind: wlq_pattern::ParseErrorKind::BadPredicate(
                    "internal label scan mismatch".to_string(),
                ),
            });
        }
        let mut label_iter = labels_in_order.into_iter().flatten();
        let labels: Vec<Option<String>> = labelled_flags
            .into_iter()
            .map(|flag| if flag { label_iter.next() } else { None })
            .collect();
        Ok(LabelledPattern { pattern, labels })
    }

    /// The underlying (label-free) pattern.
    #[must_use]
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The label of the `i`-th atom (postfix order), if any.
    #[must_use]
    pub fn label(&self, atom_index: usize) -> Option<&str> {
        self.labels.get(atom_index).and_then(Option::as_deref)
    }

    /// Evaluates, returning incidents with their variable assignments.
    #[must_use]
    pub fn evaluate(&self, log: &Log) -> Vec<BoundIncident> {
        let evaluator = Evaluator::new(log);
        let mut out = Vec::new();
        for wid in evaluator.index().wids() {
            let mut atom_counter = 0usize;
            out.extend(eval_bound(
                &self.pattern,
                &self.labels,
                &mut atom_counter,
                log,
                &evaluator,
                wid,
            ));
        }
        out
    }
}

/// Which atoms (in left-to-right source order) carried a `var:` marker.
fn labelled_atom_flags(src: &str) -> Vec<bool> {
    let mut flags = Vec::new();
    let mut chars = src.char_indices().peekable();
    let mut in_brackets = false;
    let mut in_string = false;
    while let Some((_, c)) = chars.next() {
        if in_string {
            if c == '\\' {
                chars.next();
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        if in_brackets && c == '"' {
            in_string = true;
            continue;
        }
        match c {
            '[' => in_brackets = true,
            ']' => in_brackets = false,
            c if (c.is_alphabetic() || c == '_') && !in_brackets => {
                while let Some(&(_, d)) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        chars.next();
                    } else {
                        break;
                    }
                }
                if let Some(&(_, ':')) = chars.peek() {
                    // Label marker: the *next* identifier is the atom.
                    chars.next();
                    // Skip the activity identifier.
                    while let Some(&(_, d)) = chars.peek() {
                        if d.is_alphanumeric() || d == '_' {
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    flags.push(true);
                } else {
                    flags.push(false);
                }
            }
            _ => {}
        }
    }
    flags
}

/// Recursive evaluation threading bindings alongside incidents.
fn eval_bound(
    pattern: &Pattern,
    labels: &[Option<String>],
    atom_counter: &mut usize,
    log: &Log,
    evaluator: &Evaluator<'_>,
    wid: Wid,
) -> Vec<BoundIncident> {
    match pattern {
        Pattern::Atom(atom) => {
            let index = *atom_counter;
            *atom_counter += 1;
            let label = labels.get(index).and_then(Option::as_ref);
            atom_incidents(atom, label, log, evaluator, wid)
        }
        Pattern::Binary { op, left, right } => {
            let l = eval_bound(left, labels, atom_counter, log, evaluator, wid);
            let r = eval_bound(right, labels, atom_counter, log, evaluator, wid);
            combine_bound(*op, &l, &r)
        }
    }
}

fn atom_incidents(
    atom: &Atom,
    label: Option<&String>,
    log: &Log,
    evaluator: &Evaluator<'_>,
    wid: Wid,
) -> Vec<BoundIncident> {
    leaf_incidents(atom, log, evaluator.index(), wid)
        .into_iter()
        .map(|incident| {
            let mut bindings = BTreeMap::new();
            if let Some(var) = label {
                bindings.insert(var.clone(), incident.first());
            }
            BoundIncident { incident, bindings }
        })
        .collect()
}

fn combine_bound(op: Op, left: &[BoundIncident], right: &[BoundIncident]) -> Vec<BoundIncident> {
    let mut out = Vec::new();
    match op {
        Op::Choice => {
            out.extend_from_slice(left);
            for r in right {
                if !out.contains(r) {
                    out.push(r.clone());
                }
            }
        }
        _ => {
            for l in left {
                for r in right {
                    let ok = match op {
                        Op::Consecutive => l.incident.last().next() == r.incident.first(),
                        Op::Sequential => l.incident.last() < r.incident.first(),
                        // Choice is handled by the arm above; treating it
                        // as a filter here would be wrong, so reject.
                        Op::Parallel | Op::Choice => l.incident.is_disjoint(&r.incident),
                    };
                    if ok {
                        let mut bindings = l.bindings.clone();
                        bindings.extend(r.bindings.clone());
                        out.push(BoundIncident {
                            incident: l.incident.union(&r.incident),
                            bindings,
                        });
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| {
        a.incident
            .cmp(&b.incident)
            .then_with(|| a.bindings.cmp(&b.bindings))
    });
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::paper;

    #[test]
    fn labels_parse_and_strip_to_the_core_pattern() {
        let lp = LabelledPattern::parse("upd:UpdateRefer -> reim:GetReimburse").unwrap();
        assert_eq!(lp.pattern().to_string(), "UpdateRefer -> GetReimburse");
        assert_eq!(lp.label(0), Some("upd"));
        assert_eq!(lp.label(1), Some("reim"));
    }

    #[test]
    fn unlabelled_atoms_are_allowed() {
        let lp = LabelledPattern::parse("SeeDoctor -> (u:UpdateRefer -> GetReimburse)").unwrap();
        assert_eq!(lp.label(0), None);
        assert_eq!(lp.label(1), Some("u"));
        assert_eq!(lp.label(2), None);
    }

    #[test]
    fn duplicate_variables_are_rejected() {
        assert!(LabelledPattern::parse("x:A -> x:B").is_err());
    }

    #[test]
    fn predicates_and_string_literals_are_not_labels() {
        // `state` / string contents must not be mistaken for labels.
        let lp = LabelledPattern::parse(r#"g:GetRefer[state = "a:b", out.balance > 5] -> CheckIn"#)
            .unwrap();
        assert_eq!(lp.label(0), Some("g"));
        assert_eq!(lp.label(1), None);
        let atom = match lp.pattern() {
            Pattern::Binary { left, .. } => left.as_atom().unwrap(),
            Pattern::Atom(a) => a,
        };
        assert_eq!(atom.predicates.len(), 2);
        assert_eq!(atom.predicates[0].value, wlq_log::Value::from("a:b"));
    }

    #[test]
    fn bindings_name_the_matched_records() {
        let log = paper::figure3_log();
        let lp = LabelledPattern::parse("upd:UpdateRefer -> reim:GetReimburse").unwrap();
        let bound = lp.evaluate(&log);
        assert_eq!(bound.len(), 1);
        let b = &bound[0];
        assert_eq!(b.lsn_of("upd", &log).unwrap().get(), 14);
        assert_eq!(b.lsn_of("reim", &log).unwrap().get(), 20);
        assert_eq!(b.lsn_of("nope", &log), None);
    }

    #[test]
    fn bound_evaluation_matches_plain_evaluation() {
        let log = paper::figure3_log();
        for src in [
            "a:GetRefer ~> b:CheckIn",
            "x:SeeDoctor & y:PayTreatment",
            "u:UpdateRefer | c:CompleteRefer",
            "s:SeeDoctor -> (u:UpdateRefer -> r:GetReimburse)",
        ] {
            let lp = LabelledPattern::parse(src).unwrap();
            let bound = lp.evaluate(&log);
            let plain = Evaluator::new(&log).evaluate(lp.pattern());
            let bound_incidents: Vec<&Incident> = bound.iter().map(|b| &b.incident).collect();
            assert_eq!(bound_incidents.len(), plain.len(), "{src}");
            for incident in &bound_incidents {
                assert!(plain.contains(incident), "{src}");
            }
        }
    }

    #[test]
    fn choice_keeps_only_the_taken_branch_bindings() {
        let log = paper::figure3_log();
        let lp = LabelledPattern::parse("u:UpdateRefer | c:CompleteRefer").unwrap();
        let bound = lp.evaluate(&log);
        assert_eq!(bound.len(), 2);
        for b in &bound {
            // Exactly one variable bound per incident.
            assert_eq!(b.bindings.len(), 1);
        }
    }

    #[test]
    fn parallel_binds_both_sides() {
        let log = paper::figure3_log();
        let lp = LabelledPattern::parse("a:SeeDoctor & b:SeeDoctor").unwrap();
        let bound = lp.evaluate(&log);
        // Two instances with two SeeDoctor records each; as *bound*
        // matches, (a,b) and (b,a) assignments are distinct (the paper's
        // assignments are 1-1 maps), so 2 per instance.
        assert_eq!(bound.len(), 4);
        for b in &bound {
            assert_eq!(b.bindings.len(), 2);
            assert_ne!(b.bindings["a"], b.bindings["b"]);
        }
    }
}
