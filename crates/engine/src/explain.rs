//! `EXPLAIN`-style plan reports: the optimizer's estimates side by side
//! with per-node actuals from a traced evaluation.

use std::fmt;
use std::time::Duration;

use wlq_log::{Log, LogIndex, LogStats};
use wlq_pattern::{CostModel, Optimizer, Pattern};

use crate::eval::Strategy;
use crate::incident_set::IncidentSet;
use crate::planner::Planner;
use crate::tree::IncidentTree;

/// One row of an [`Explain`] report: a node of the evaluated plan.
#[derive(Debug, Clone)]
pub struct ExplainRow {
    /// The sub-pattern, as text.
    pub pattern: String,
    /// Tree depth (root = 0).
    pub depth: usize,
    /// The cost model's estimated incident count for this node.
    pub estimated: f64,
    /// The actual incident count produced.
    pub actual: usize,
    /// Wall-clock time spent at this node (children excluded).
    pub elapsed: Duration,
}

/// The result of [`Explain::run`]: what plan ran, what each node cost,
/// and how good the estimates were.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The query as written.
    pub query: String,
    /// The plan that ran (after optimization, if enabled).
    pub plan: String,
    /// The cost-based physical plan (rewrite choice, per-node physical
    /// operators, scored candidates), rendered when the strategy is
    /// [`Strategy::Planned`].
    pub physical_plan: Option<String>,
    /// Per-node rows in post-order (evaluation order).
    pub rows: Vec<ExplainRow>,
    /// The final incident set.
    pub incidents: IncidentSet,
}

impl Explain {
    /// Evaluates `pattern` over `log` with per-node tracing, optionally
    /// applying the algebraic optimizer first, and returns the annotated
    /// plan.
    #[must_use]
    pub fn run(log: &Log, pattern: &Pattern, optimize: bool, strategy: Strategy) -> Explain {
        let stats = LogStats::compute(log);
        let optimizer = Optimizer::new(stats);
        let plan = if optimize {
            optimizer.optimize(pattern)
        } else {
            pattern.clone()
        };
        let model = optimizer.model();

        let index = LogIndex::build(log);
        let physical_plan = (strategy == Strategy::Planned)
            .then(|| Planner::new(log, &index).plan(&plan).to_string());
        let tree = IncidentTree::from_pattern(&plan);
        let (incidents, trace) = tree.evaluate_traced(log, &index, strategy);

        let rows = trace
            .nodes
            .iter()
            .map(|node| {
                // Trace patterns are printed from real Patterns, so they
                // re-parse; fall back to the actual count as the estimate
                // if one somehow doesn't.
                #[allow(clippy::cast_precision_loss)]
                let estimated = node
                    .pattern
                    .parse::<Pattern>()
                    .map_or(node.incidents.len() as f64, |sub| estimate(model, &sub));
                ExplainRow {
                    pattern: node.pattern.clone(),
                    depth: node.depth,
                    estimated,
                    actual: node.incidents.len(),
                    elapsed: node.elapsed,
                }
            })
            .collect();

        Explain {
            query: pattern.to_string(),
            plan: plan.to_string(),
            physical_plan,
            rows,
            incidents,
        }
    }

    /// The worst estimate-vs-actual ratio across nodes (≥ 1; 1 = perfect).
    /// Nodes where both sides are zero count as perfect.
    #[must_use]
    pub fn max_estimation_error(&self) -> f64 {
        self.rows
            .iter()
            .map(|row| {
                let est = row.estimated.max(1.0);
                #[allow(clippy::cast_precision_loss)]
                let act = (row.actual as f64).max(1.0);
                (est / act).max(act / est)
            })
            .fold(1.0, f64::max)
    }
}

fn estimate(model: &CostModel, pattern: &Pattern) -> f64 {
    model.estimate_incidents(pattern)
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "query: {}", self.query)?;
        writeln!(f, "plan : {}", self.plan)?;
        if let Some(physical) = &self.physical_plan {
            writeln!(f, "physical plan:")?;
            for line in physical.lines() {
                writeln!(f, "  {line}")?;
            }
        }
        writeln!(f, "{:>10} {:>10} {:>12}  node", "est", "actual", "time")?;
        for row in &self.rows {
            writeln!(
                f,
                "{:>10.1} {:>10} {:>12?}  {:indent$}{}",
                row.estimated,
                row.actual,
                row.elapsed,
                "",
                row.pattern,
                indent = row.depth * 2,
            )?;
        }
        writeln!(f, "total: {} incidents", self.incidents.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use wlq_log::paper;

    fn parse(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    #[test]
    fn explain_matches_plain_evaluation() {
        let log = paper::figure3_log();
        let p = parse("SeeDoctor -> (UpdateRefer -> GetReimburse)");
        let explain = Explain::run(&log, &p, false, Strategy::Optimized);
        assert_eq!(explain.incidents, Evaluator::new(&log).evaluate(&p));
        assert_eq!(explain.rows.len(), 5);
        assert_eq!(explain.plan, explain.query);
    }

    #[test]
    fn leaf_estimates_are_exact_on_atoms() {
        let log = paper::figure3_log();
        let explain = Explain::run(&log, &parse("SeeDoctor"), false, Strategy::Optimized);
        assert_eq!(explain.rows.len(), 1);
        assert!((explain.rows[0].estimated - 4.0).abs() < 1e-9);
        assert_eq!(explain.rows[0].actual, 4);
        assert!((explain.max_estimation_error() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn optimized_plan_is_reported_when_it_differs() {
        let log = paper::figure3_log();
        let p = parse("(SeeDoctor -> PayTreatment) | (SeeDoctor -> UpdateRefer)");
        let explain = Explain::run(&log, &p, true, Strategy::Optimized);
        assert_eq!(explain.query, p.to_string());
        assert_eq!(explain.plan, "SeeDoctor -> (PayTreatment | UpdateRefer)");
        // Still the same result.
        assert_eq!(explain.incidents, Evaluator::new(&log).evaluate(&p));
    }

    #[test]
    fn display_renders_a_table() {
        let log = paper::figure3_log();
        let explain = Explain::run(
            &log,
            &parse("UpdateRefer -> GetReimburse"),
            false,
            Strategy::Optimized,
        );
        let text = explain.to_string();
        assert!(text.contains("query: UpdateRefer -> GetReimburse"));
        assert!(text.contains("total: 1 incidents"));
        assert!(text.contains("UpdateRefer"));
    }

    #[test]
    fn physical_plan_renders_only_under_planned() {
        let log = paper::figure3_log();
        let p = parse("SeeDoctor -> PayTreatment");
        let optimized = Explain::run(&log, &p, true, Strategy::Optimized);
        assert!(optimized.physical_plan.is_none());
        let planned = Explain::run(&log, &p, true, Strategy::Planned);
        let physical = planned.physical_plan.as_deref().unwrap();
        assert!(physical.contains("chosen:"), "{physical}");
        assert!(physical.contains("scan SeeDoctor"), "{physical}");
        assert!(planned.to_string().contains("physical plan:"));
        // Same results either way.
        assert_eq!(planned.incidents, optimized.incidents);
    }

    #[test]
    fn estimation_error_is_bounded_on_the_example_log() {
        let log = paper::figure3_log();
        let explain = Explain::run(
            &log,
            &parse("SeeDoctor -> PayTreatment"),
            false,
            Strategy::Optimized,
        );
        // Estimates are heuristic but should be within two orders of
        // magnitude on this tiny log.
        assert!(explain.max_estimation_error() < 100.0);
    }
}
