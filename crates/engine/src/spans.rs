//! Incident span analytics: how far apart are a pattern's endpoints?
//!
//! The span of an incident is `last(o) − first(o)`, in records of its
//! instance — a process-latency proxy ("how many steps between updating a
//! referral and cashing it out?"). [`SpanStats`] summarises a result
//! set's spans; [`Query::span_stats`] computes it directly.

use wlq_log::Log;

use crate::error::EngineError;
use crate::incident_set::IncidentSet;
use crate::query::Query;

/// Distribution summary of incident spans (in instance-record steps).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// Number of incidents summarised.
    pub count: usize,
    /// Smallest span (0 for single-record incidents).
    pub min: u32,
    /// Largest span.
    pub max: u32,
    /// Mean span.
    pub mean: f64,
    /// Median span.
    pub median: u32,
}

impl SpanStats {
    /// Computes span statistics over an incident set; `None` if empty.
    #[must_use]
    pub fn compute(incidents: &IncidentSet) -> Option<SpanStats> {
        let mut spans: Vec<u32> = incidents
            .iter()
            .map(|o| o.last().get() - o.first().get())
            .collect();
        if spans.is_empty() {
            return None;
        }
        spans.sort_unstable();
        let count = spans.len();
        #[allow(clippy::cast_precision_loss)]
        let mean = spans.iter().map(|&s| f64::from(s)).sum::<f64>() / count as f64;
        Some(SpanStats {
            count,
            min: spans[0],
            max: spans[count - 1],
            mean,
            median: spans[count / 2],
        })
    }
}

impl std::fmt::Display for SpanStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} incidents, span min {} / median {} / mean {:.1} / max {}",
            self.count, self.min, self.median, self.mean, self.max
        )
    }
}

impl Query {
    /// Runs the query and summarises the spans of its incidents;
    /// `Ok(None)` when nothing matches.
    ///
    /// # Errors
    ///
    /// Same conditions as [`find`](Self::find).
    pub fn span_stats(&self, log: &Log) -> Result<Option<SpanStats>, EngineError> {
        Ok(SpanStats::compute(&self.find(log)?))
    }

    /// Returns up to `limit` incidents, stopping evaluation as soon as the
    /// quota is reached (instances are scanned in `wid` order).
    ///
    /// Useful for "show me a few examples" exploration on large logs —
    /// the remaining instances are never evaluated.
    #[must_use]
    pub fn find_first(&self, log: &Log, limit: usize) -> IncidentSet {
        let plan = self.plan(log);
        let evaluator = crate::eval::Evaluator::with_strategy(log, self.strategy_setting());
        let mut out = IncidentSet::new();
        for wid in evaluator.index().wids() {
            if out.len() >= limit {
                break;
            }
            for incident in evaluator.evaluate_instance(&plan, wid) {
                out.insert(incident);
                if out.len() >= limit {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::paper;

    #[test]
    fn span_stats_of_the_anomaly_query() {
        let log = paper::figure3_log();
        let q = Query::parse("UpdateRefer -> GetReimburse").unwrap();
        let stats = q.span_stats(&log).unwrap().unwrap();
        // {l14, l20} = is-lsns 5 and 9 → span 4.
        assert_eq!(stats.count, 1);
        assert_eq!(stats.min, 4);
        assert_eq!(stats.max, 4);
        assert_eq!(stats.median, 4);
        assert!((stats.mean - 4.0).abs() < 1e-9);
    }

    #[test]
    fn span_stats_none_when_no_match() {
        let log = paper::figure3_log();
        let q = Query::parse("Nope").unwrap();
        assert!(q.span_stats(&log).unwrap().is_none());
    }

    #[test]
    fn atomic_incidents_have_zero_span() {
        let log = paper::figure3_log();
        let stats = Query::parse("SeeDoctor")
            .unwrap()
            .span_stats(&log)
            .unwrap()
            .unwrap();
        assert_eq!(stats.count, 4);
        assert_eq!(stats.min, 0);
        assert_eq!(stats.max, 0);
    }

    #[test]
    fn span_distribution_over_multiple_incidents() {
        let log = paper::figure3_log();
        // SeeDoctor ~> PayTreatment: three incidents, each span 1.
        let stats = Query::parse("SeeDoctor ~> PayTreatment")
            .unwrap()
            .span_stats(&log)
            .unwrap()
            .unwrap();
        assert_eq!(stats.count, 3);
        assert_eq!((stats.min, stats.median, stats.max), (1, 1, 1));
        // Display is informative.
        assert!(stats.to_string().contains("3 incidents"));
    }

    #[test]
    fn find_first_respects_the_limit_and_is_a_subset() {
        let log = paper::figure3_log();
        let q = Query::parse("SeeDoctor").unwrap();
        let all = q.find(&log).unwrap();
        for limit in 0..=5 {
            let some = q.find_first(&log, limit);
            assert!(some.len() <= limit);
            assert_eq!(some.len(), limit.min(all.len()));
            for incident in some.iter() {
                assert!(all.contains(incident));
            }
        }
    }
}
