//! High-level query API: parse once, choose a strategy, project results.

use std::collections::BTreeMap;
use std::time::Duration;

use wlq_log::{Log, LogStats, Value, Wid};
use wlq_pattern::{Optimizer, ParsePatternError, Pattern};

use crate::error::EngineError;
use crate::eval::{Evaluator, Strategy};
use crate::incident_set::IncidentSet;
use crate::parallel::evaluate_parallel;

/// A reusable incident-pattern query with evaluation options.
///
/// Evaluation entry points return `Result<_, EngineError>`: with the
/// default configuration they always succeed, but a misconfigured thread
/// count or a worker panic surfaces as a typed [`EngineError`] instead of
/// aborting the caller.
///
/// # Examples
///
/// ```
/// use wlq_engine::Query;
/// use wlq_log::paper;
///
/// let log = paper::figure3_log();
/// let q = Query::parse("UpdateRefer -> GetReimburse")?;
/// assert!(q.exists(&log)?);
/// assert_eq!(q.count(&log)?, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Query {
    pattern: Pattern,
    strategy: Strategy,
    optimize: bool,
    threads: usize,
}

impl Query {
    /// Builds a query from an already-constructed pattern.
    #[must_use]
    pub fn new(pattern: Pattern) -> Self {
        Query {
            pattern,
            strategy: Strategy::default(),
            optimize: true,
            threads: 1,
        }
    }

    /// Parses the pattern text syntax into a query.
    ///
    /// # Errors
    ///
    /// Returns the parser's [`ParsePatternError`] on malformed input.
    pub fn parse(src: &str) -> Result<Self, ParsePatternError> {
        Ok(Query::new(Pattern::parse(src)?))
    }

    /// Chooses the operator implementations (default:
    /// [`Strategy::Planned`]).
    #[must_use]
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables or disables algebraic pre-optimization (default: enabled).
    #[must_use]
    pub fn optimize(mut self, enabled: bool) -> Self {
        self.optimize = enabled;
        self
    }

    /// Sets the number of worker threads for evaluation (default 1).
    ///
    /// The value is not validated here: evaluation methods report a zero
    /// thread count as [`EngineError::NoWorkers`] when they run.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The query's pattern.
    #[must_use]
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The configured strategy (internal: used by the span/limit helpers).
    pub(crate) fn strategy_setting(&self) -> Strategy {
        self.strategy
    }

    /// The pattern that will actually run against `log` (after algebraic
    /// optimization, if enabled).
    ///
    /// This is the pattern-level plan only. Under [`Strategy::Planned`]
    /// the evaluator additionally runs its own cost-based physical pass —
    /// candidate rewrites plus per-node operator selection; see
    /// [`crate::planner`] and [`Evaluator::physical_plan`].
    #[must_use]
    pub fn plan(&self, log: &Log) -> Pattern {
        if self.optimize {
            Optimizer::new(LogStats::compute(log)).optimize(&self.pattern)
        } else {
            self.pattern.clone()
        }
    }

    /// Evaluates the query, returning all incidents.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoWorkers`] if the configured thread count
    /// is 0 and [`EngineError::WorkerPanicked`] if a parallel worker
    /// panics.
    pub fn find(&self, log: &Log) -> Result<IncidentSet, EngineError> {
        if self.threads == 0 {
            return Err(EngineError::NoWorkers);
        }
        let plan = self.plan(log);
        if self.threads > 1 {
            evaluate_parallel(log, &plan, self.threads, self.strategy)
        } else {
            Ok(Evaluator::with_strategy(log, self.strategy).evaluate(&plan))
        }
    }

    /// Whether the log contains any incident of the pattern.
    ///
    /// Chain plans use the enumeration-free counting DP; other shapes use
    /// per-instance evaluation with early exit.
    ///
    /// # Errors
    ///
    /// Same conditions as [`find`](Self::find).
    pub fn exists(&self, log: &Log) -> Result<bool, EngineError> {
        if self.threads == 0 {
            return Err(EngineError::NoWorkers);
        }
        let plan = self.plan(log);
        if let Some(count) = crate::counting::fast_count(log, &plan) {
            return Ok(count > 0);
        }
        Ok(Evaluator::with_strategy(log, self.strategy).exists(&plan))
    }

    /// The number of incidents, `|incL(p)|`.
    ///
    /// When the (optimized) plan is a `~>`/`->` chain of predicate-free
    /// atoms, the count is computed by the enumeration-free dynamic
    /// program of [`fast_count`](crate::fast_count) in `O(m·k)`; other
    /// shapes fall back to full evaluation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`find`](Self::find).
    pub fn count(&self, log: &Log) -> Result<usize, EngineError> {
        if self.threads == 0 {
            return Err(EngineError::NoWorkers);
        }
        let plan = self.plan(log);
        if let Some(count) = crate::counting::fast_count(log, &plan) {
            return Ok(count);
        }
        Ok(self.find(log)?.len())
    }

    /// Incident counts per workflow instance (instances with none are
    /// omitted).
    ///
    /// # Errors
    ///
    /// Same conditions as [`find`](Self::find).
    pub fn count_by_instance(&self, log: &Log) -> Result<BTreeMap<Wid, usize>, EngineError> {
        Ok(self.find(log)?.counts_by_wid())
    }

    /// Counts *matching instances* grouped by the value of `attr` at each
    /// instance's first incident record — e.g. group referral anomalies by
    /// `hospital`, or by a `year` attribute.
    ///
    /// For every instance with at least one incident, the earliest incident
    /// is taken, and the value of `attr` is read from the αout (then αin)
    /// map of its first record; instances where the attribute is undefined
    /// there fall back to scanning the instance's earlier records for the
    /// latest write to `attr`, and group under [`Value::Undefined`] if no
    /// record defines it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`find`](Self::find).
    pub fn count_instances_by_attr(
        &self,
        log: &Log,
        attr: &str,
    ) -> Result<BTreeMap<Value, usize>, EngineError> {
        let incidents = self.find(log)?;
        let mut out: BTreeMap<Value, usize> = BTreeMap::new();
        for wid in incidents.wids() {
            let first_incident = &incidents.for_wid(wid)[0];
            let position = first_incident.first();
            let value = attr_value_at(log, wid, position, attr);
            *out.entry(value).or_insert(0) += 1;
        }
        Ok(out)
    }

    /// Runs the query and reports timing plus plan information.
    ///
    /// # Errors
    ///
    /// Same conditions as [`find`](Self::find).
    pub fn profile(&self, log: &Log) -> Result<QueryProfile, EngineError> {
        if self.threads == 0 {
            return Err(EngineError::NoWorkers);
        }
        let start = std::time::Instant::now();
        let plan = self.plan(log);
        let plan_time = start.elapsed();
        let start = std::time::Instant::now();
        let incidents = if self.threads > 1 {
            evaluate_parallel(log, &plan, self.threads, self.strategy)?
        } else {
            Evaluator::with_strategy(log, self.strategy).evaluate(&plan)
        };
        let eval_time = start.elapsed();
        Ok(QueryProfile {
            pattern: self.pattern.to_string(),
            plan: plan.to_string(),
            incidents,
            plan_time,
            eval_time,
        })
    }
}

/// The value of `attr` visible at `(wid, position)`: the latest write (or
/// read) of the attribute at or before that record.
fn attr_value_at(log: &Log, wid: Wid, position: wlq_log::IsLsn, attr: &str) -> Value {
    let mut latest = Value::Undefined;
    for record in log.instance(wid) {
        if record.is_lsn() > position {
            break;
        }
        if let Some(v) = record
            .output()
            .get(attr)
            .or_else(|| record.input().get(attr))
        {
            latest = v.clone();
        }
    }
    latest
}

/// The result of [`Query::profile`].
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// The query pattern as written.
    pub pattern: String,
    /// The optimized plan that actually ran.
    pub plan: String,
    /// The incidents found.
    pub incidents: IncidentSet,
    /// Time spent in the optimizer.
    pub plan_time: Duration,
    /// Time spent evaluating.
    pub eval_time: Duration,
}

impl std::fmt::Display for QueryProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "query : {}", self.pattern)?;
        writeln!(f, "plan  : {}", self.plan)?;
        writeln!(
            f,
            "result: {} incidents in {} instances",
            self.incidents.len(),
            self.incidents.num_matched_instances()
        )?;
        writeln!(
            f,
            "time  : plan {:?}, eval {:?}",
            self.plan_time, self.eval_time
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::paper;

    #[test]
    fn parse_and_count_on_figure3() {
        let log = paper::figure3_log();
        let q = Query::parse("SeeDoctor ~> PayTreatment").unwrap();
        assert_eq!(q.count(&log).unwrap(), 3);
        assert!(Query::parse("A -> ").is_err());
    }

    #[test]
    fn optimization_does_not_change_results() {
        let log = paper::figure3_log();
        for src in [
            "SeeDoctor -> UpdateRefer -> GetReimburse",
            "(GetRefer -> CheckIn) | (GetRefer -> SeeDoctor)",
            "SeeDoctor & PayTreatment & UpdateRefer",
        ] {
            let with = Query::parse(src)
                .unwrap()
                .optimize(true)
                .find(&log)
                .unwrap();
            let without = Query::parse(src)
                .unwrap()
                .optimize(false)
                .find(&log)
                .unwrap();
            assert_eq!(with, without, "optimize changed results of {src}");
        }
    }

    #[test]
    fn strategies_and_threads_agree() {
        let log = paper::figure3_log();
        let q = Query::parse("GetRefer -> (SeeDoctor & PayTreatment)").unwrap();
        let a = q.clone().strategy(Strategy::NaivePaper).find(&log).unwrap();
        let b = q.clone().strategy(Strategy::Optimized).find(&log).unwrap();
        let c = q.clone().threads(4).find(&log).unwrap();
        let d = q.clone().strategy(Strategy::Batch).find(&log).unwrap();
        let e = q
            .clone()
            .strategy(Strategy::Batch)
            .threads(4)
            .find(&log)
            .unwrap();
        let f = q.clone().strategy(Strategy::Planned).find(&log).unwrap();
        let g = q
            .clone()
            .strategy(Strategy::Planned)
            .threads(4)
            .find(&log)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(b, d);
        assert_eq!(b, e);
        assert_eq!(b, f);
        assert_eq!(b, g);
    }

    #[test]
    fn count_by_instance_reports_wid2_anomaly() {
        let log = paper::figure3_log();
        let q = Query::parse("UpdateRefer -> GetReimburse").unwrap();
        let counts = q.count_by_instance(&log).unwrap();
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[&Wid(2)], 1);
    }

    #[test]
    fn group_by_attribute_hospital() {
        let log = paper::figure3_log();
        // Which hospitals do referrals come from (per instance)?
        let q = Query::parse("GetRefer").unwrap();
        let groups = q.count_instances_by_attr(&log, "hospital").unwrap();
        assert_eq!(groups[&Value::from("Public Hospital")], 2);
        assert_eq!(groups[&Value::from("People Hospital")], 1);
    }

    #[test]
    fn group_by_attribute_uses_latest_write_before_match() {
        let log = paper::figure3_log();
        // Group reimbursements by balance at the time of reimbursement:
        // wid1 reimburses with balance written at GetRefer (1000), wid2
        // after the update (5000).
        let q = Query::parse("GetReimburse").unwrap();
        let groups = q.count_instances_by_attr(&log, "balance").unwrap();
        // The GetReimburse record itself writes balance=0 — the *latest
        // write at or before* the record is its own output.
        assert_eq!(groups[&Value::Int(0)], 2);
    }

    #[test]
    fn group_by_missing_attribute_is_undefined() {
        let log = paper::figure3_log();
        let q = Query::parse("START").unwrap();
        let groups = q.count_instances_by_attr(&log, "nonexistent").unwrap();
        assert_eq!(groups[&Value::Undefined], 3);
    }

    #[test]
    fn profile_reports_plan_and_counts() {
        let log = paper::figure3_log();
        let q = Query::parse("UpdateRefer -> GetReimburse").unwrap();
        let profile = q.profile(&log).unwrap();
        assert_eq!(profile.incidents.len(), 1);
        let text = profile.to_string();
        assert!(text.contains("UpdateRefer -> GetReimburse"));
        assert!(text.contains("1 incidents in 1 instances"));
    }

    #[test]
    fn zero_threads_is_a_typed_error_everywhere() {
        let log = paper::figure3_log();
        let q = Query::new(Pattern::atom("A")).threads(0);
        assert_eq!(q.find(&log).unwrap_err(), crate::EngineError::NoWorkers);
        assert_eq!(q.count(&log).unwrap_err(), crate::EngineError::NoWorkers);
        assert_eq!(q.exists(&log).unwrap_err(), crate::EngineError::NoWorkers);
        assert_eq!(q.profile(&log).unwrap_err(), crate::EngineError::NoWorkers);
        assert_eq!(
            q.count_by_instance(&log).unwrap_err(),
            crate::EngineError::NoWorkers
        );
        assert_eq!(
            q.count_instances_by_attr(&log, "x").unwrap_err(),
            crate::EngineError::NoWorkers
        );
    }
}
