//! Partitioned parallel evaluation.
//!
//! Incidents never span workflow instances, so `incL(p)` decomposes into
//! independent per-instance subproblems (the paper's Algorithm 2 iterates
//! over `widSet` sequentially). [`evaluate_parallel`] distributes the
//! instances over worker threads with [`crossbeam`] scoped threads and a
//! shared atomic work queue, then merges the per-instance results.
//!
//! The entry points are panic-free: a zero worker count is reported as
//! [`EngineError::NoWorkers`], and a panicking worker is contained at the
//! thread boundary and surfaced as [`EngineError::WorkerPanicked`].

use std::sync::atomic::{AtomicUsize, Ordering};

use wlq_log::{Log, Wid};
use wlq_pattern::Pattern;

use crate::batch::BatchArena;
use crate::error::EngineError;
use crate::eval::{Evaluator, Strategy};
use crate::incident::Incident;
use crate::incident_set::IncidentSet;

/// Renders a worker panic payload for [`EngineError::WorkerPanicked`].
pub(crate) fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Evaluates `pattern` over `log` using up to `num_threads` workers.
///
/// Produces exactly the same incident set as
/// [`Evaluator::evaluate`]; instances are claimed from a shared queue so
/// skewed instance sizes still balance.
///
/// # Errors
///
/// Returns [`EngineError::NoWorkers`] if `num_threads` is 0 and
/// [`EngineError::WorkerPanicked`] if a worker thread panics.
///
/// # Examples
///
/// ```
/// use wlq_engine::{evaluate_parallel, Evaluator, Strategy};
/// use wlq_log::paper;
/// use wlq_pattern::Pattern;
///
/// let log = paper::figure3_log();
/// let p: Pattern = "SeeDoctor -> PayTreatment".parse()?;
/// let par = evaluate_parallel(&log, &p, 4, Strategy::Optimized)?;
/// assert_eq!(par, Evaluator::new(&log).evaluate(&p));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn evaluate_parallel(
    log: &Log,
    pattern: &Pattern,
    num_threads: usize,
    strategy: Strategy,
) -> Result<IncidentSet, EngineError> {
    Evaluator::with_strategy(log, strategy).evaluate_parallel(pattern, num_threads)
}

impl Evaluator<'_> {
    /// Multi-threaded [`evaluate`](Evaluator::evaluate): instances are
    /// claimed from a shared queue by up to `num_threads` crossbeam scoped
    /// threads. Reuses this evaluator's prebuilt index, so repeated
    /// parallel queries pay the indexing cost once.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoWorkers`] if `num_threads` is 0 and
    /// [`EngineError::WorkerPanicked`] if a worker thread panics.
    pub fn evaluate_parallel(
        &self,
        pattern: &Pattern,
        num_threads: usize,
    ) -> Result<IncidentSet, EngineError> {
        if num_threads == 0 {
            return Err(EngineError::NoWorkers);
        }
        let wids: Vec<Wid> = self.index().wids().collect();
        if num_threads == 1 || wids.len() <= 1 {
            return Ok(self.evaluate(pattern));
        }
        // Plan once, outside the scope; workers share the immutable plan.
        let plan = self.planner().map(|pl| pl.plan(pattern));

        // One entry per worker: the (wid, incidents) pairs it swept.
        type WorkerParts = Vec<Vec<(Wid, Vec<Incident>)>>;

        let next = AtomicUsize::new(0);
        let workers = num_threads.min(wids.len());
        let scope_result: std::thread::Result<Result<WorkerParts, EngineError>> =
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let wids = &wids;
                        let next = &next;
                        let plan = &plan;
                        scope.spawn(move |_| {
                            let mut out = Vec::new();
                            // Each worker owns its arena: batches for the
                            // instances it sweeps recycle worker-locally,
                            // with no cross-thread sharing.
                            let mut arena = BatchArena::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&wid) = wids.get(i) else { break };
                                let incidents = if let Some(plan) = plan {
                                    self.materialize_plan_in(plan.root(), wid, &mut arena)
                                } else if self.strategy() == Strategy::Batch {
                                    let mut batch =
                                        self.evaluate_instance_batch_in(pattern, wid, &mut arena);
                                    let incidents = batch.drain_incidents();
                                    arena.recycle(batch);
                                    incidents
                                } else {
                                    self.evaluate_instance(pattern, wid)
                                };
                                out.push((wid, incidents));
                            }
                            out
                        })
                    })
                    .collect();
                // Joining every handle contains worker panics here rather
                // than letting the scope re-raise them on the caller.
                let mut parts = Vec::with_capacity(handles.len());
                for handle in handles {
                    match handle.join() {
                        Ok(part) => parts.push(part),
                        Err(payload) => {
                            return Err(EngineError::WorkerPanicked {
                                detail: describe_panic(payload.as_ref()),
                            })
                        }
                    }
                }
                Ok(parts)
            });
        let results = match scope_result {
            Ok(inner) => inner?,
            // Real crossbeam reports unjoined child panics through the
            // scope result; the std-backed shim never takes this path
            // because every handle is joined above.
            Err(payload) => {
                return Err(EngineError::WorkerPanicked {
                    detail: describe_panic(payload.as_ref()),
                })
            }
        };

        Ok(IncidentSet::from_partitions(results.into_iter().flatten()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::{attrs, paper, LogBuilder};

    fn parse(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    /// A log with many instances of varied lengths.
    fn many_instances(n: u64) -> Log {
        let mut b = LogBuilder::new();
        for i in 0..n {
            let w = b.start_instance();
            let len = 2 + (i % 7);
            for j in 0..len {
                let act = match (i + j) % 4 {
                    0 => "A",
                    1 => "B",
                    2 => "C",
                    _ => "D",
                };
                b.append(w, act, attrs! {}, attrs! {}).unwrap();
            }
            if i % 3 == 0 {
                b.end_instance(w).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn parallel_matches_sequential_on_figure3() {
        let log = paper::figure3_log();
        let reference = Evaluator::new(&log);
        for threads in [1, 2, 3, 8] {
            for src in [
                "SeeDoctor -> PayTreatment",
                "GetRefer ~> CheckIn",
                "A | SeeDoctor",
            ] {
                let p = parse(src);
                assert_eq!(
                    evaluate_parallel(&log, &p, threads, Strategy::Optimized).unwrap(),
                    reference.evaluate(&p),
                    "threads={threads} pattern={src}"
                );
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_on_many_instances() {
        let log = many_instances(64);
        let reference = Evaluator::new(&log);
        for src in ["A -> B", "A & (B | C)", "!A ~> D", "A -> B -> C"] {
            let p = parse(src);
            for threads in [2, 4] {
                assert_eq!(
                    evaluate_parallel(&log, &p, threads, Strategy::Optimized).unwrap(),
                    reference.evaluate(&p),
                    "threads={threads} pattern={src}"
                );
            }
        }
    }

    #[test]
    fn all_strategies_work_under_parallelism() {
        let log = many_instances(16);
        let p = parse("A -> (B & C)");
        let naive = evaluate_parallel(&log, &p, 4, Strategy::NaivePaper).unwrap();
        assert_eq!(
            naive,
            evaluate_parallel(&log, &p, 4, Strategy::Optimized).unwrap()
        );
        assert_eq!(
            naive,
            evaluate_parallel(&log, &p, 4, Strategy::Batch).unwrap()
        );
        assert_eq!(
            naive,
            evaluate_parallel(&log, &p, 4, Strategy::Planned).unwrap()
        );
    }

    #[test]
    fn planned_workers_match_sequential_on_many_instances() {
        let log = many_instances(48);
        let reference = Evaluator::with_strategy(&log, Strategy::Planned);
        for src in ["A -> B", "(A & D) | (B ~> C)", "!A ~> D", "A -> B -> C"] {
            let p = parse(src);
            for threads in [2, 5] {
                assert_eq!(
                    evaluate_parallel(&log, &p, threads, Strategy::Planned).unwrap(),
                    reference.evaluate(&p),
                    "threads={threads} pattern={src}"
                );
            }
        }
    }

    #[test]
    fn batch_workers_match_sequential_on_many_instances() {
        let log = many_instances(48);
        let reference = Evaluator::with_strategy(&log, Strategy::Batch);
        for src in ["A -> B", "(A & D) | (B ~> C)", "!A ~> D"] {
            let p = parse(src);
            for threads in [2, 5] {
                assert_eq!(
                    evaluate_parallel(&log, &p, threads, Strategy::Batch).unwrap(),
                    reference.evaluate(&p),
                    "threads={threads} pattern={src}"
                );
            }
        }
    }

    #[test]
    fn more_threads_than_instances_is_fine() {
        let log = paper::figure3_log(); // 3 instances
        let p = parse("GetRefer");
        let set = evaluate_parallel(&log, &p, 64, Strategy::Optimized).unwrap();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn zero_threads_is_a_typed_error_not_a_panic() {
        let log = paper::figure3_log();
        let err = evaluate_parallel(&log, &parse("A"), 0, Strategy::Optimized).unwrap_err();
        assert_eq!(err, EngineError::NoWorkers);
    }

    #[test]
    fn panic_payloads_render_for_str_and_string() {
        assert_eq!(describe_panic(&"boom"), "boom");
        assert_eq!(describe_panic(&String::from("kaboom")), "kaboom");
        assert_eq!(describe_panic(&42usize), "non-string panic payload");
    }
}
