//! # wlq-engine — incident-pattern query evaluation
//!
//! The evaluation half of *"Querying Workflow Logs"*: given a
//! [`wlq_pattern::Pattern`] and a [`wlq_log::Log`], compute the incident
//! set `incL(p)` of Definition 4.
//!
//! * [`Incident`] / [`IncidentSet`] — the semantic objects.
//! * [`naive`] — the paper's Algorithm 1 operators, complexity-faithful.
//! * [`optimized`] — output-sensitive operator implementations producing
//!   identical results.
//! * [`batch`] / [`kernels`] — the default evaluation hot path: flat
//!   arena-backed [`IncidentBatch`] storage with zero-copy operator
//!   kernels, again producing identical results.
//! * [`planner`] — cost-based query planning: Theorem 2–5 rewrites, a
//!   Lemma-1-style cost model, and per-node physical operator selection
//!   (drives the default [`Strategy::Planned`]).
//! * [`IncidentTree`] — Definition 6 trees with post-order evaluation
//!   (Algorithms 2–3) and per-node traces.
//! * [`Evaluator`] — the per-instance recursive evaluator with
//!   short-circuiting; [`evaluate_parallel`] distributes instances over
//!   threads.
//! * [`StreamingEvaluator`] — incremental evaluation over an append-only
//!   log (runtime monitoring).
//! * [`profile_evaluation`] (cargo feature `profiling`, on by default) —
//!   instrumented mirrors of the executors recording per-operator
//!   [`wlq_obs::NodeMetrics`] and per-worker skew without perturbing the
//!   unprofiled hot path.
//! * [`Query`] — parse-once, run-many facade with counting/grouping
//!   projections and algebraic pre-optimization.
//!
//! ## Quick start
//!
//! ```
//! use wlq_engine::Query;
//! use wlq_log::paper;
//!
//! let log = paper::figure3_log();
//! let anomalies = Query::parse("UpdateRefer -> GetReimburse")?;
//! assert_eq!(anomalies.count(&log)?, 1); // instance 2 misbehaves
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bindings;
mod bounded_equiv;
mod counting;
mod error;
mod eval;
mod explain;
mod incident;
mod incident_set;
mod mining;
mod parallel;
#[cfg(feature = "profiling")]
mod profile;
mod query;
mod resolve;
mod spans;
mod streaming;
mod timeline;
mod tree;

pub mod batch;
pub mod kernels;
pub mod naive;
pub mod optimized;
pub mod planner;

pub use batch::{BatchArena, IncidentBatch, IncidentRef};
pub use bindings::{BoundIncident, LabelledPattern};
pub use bounded_equiv::{equivalent_up_to, BoundedEquiv};
pub use counting::fast_count;
pub use error::EngineError;
pub use eval::{combine, leaf_batch, leaf_incidents, Evaluator, Strategy};
pub use explain::{Explain, ExplainRow};
pub use incident::Incident;
pub use incident_set::IncidentSet;
pub use kernels::{combine_batch, combine_batch_into};
pub use mining::{mine_relations, MinedRelation};
pub use parallel::evaluate_parallel;
pub use planner::{
    JoinShape, PhysOp, PhysicalPlan, PlanCost, PlanNode, PlanRow, PlanStats, Planner,
    RewriteCandidate,
};
#[cfg(feature = "profiling")]
pub use profile::profile_evaluation;
pub use query::{Query, QueryProfile};
pub use resolve::{IncidentInLog, IncidentSetInLog};
pub use spans::SpanStats;
pub use streaming::{SharedStreamingEvaluator, StreamingEvaluator};
pub use timeline::{timeline, TimelinePoint};
pub use tree::{EvalTrace, IncidentTree, Node, NodeTrace};
