//! The evaluator: strategies, leaf evaluation, and the per-instance
//! recursive evaluation driver.

use wlq_log::{IsLsn, Log, LogIndex, Wid};
use wlq_pattern::{Atom, Op, Pattern};

use crate::batch::{BatchArena, IncidentBatch};
use crate::counting::fast_count;
use crate::incident::Incident;
use crate::incident_set::IncidentSet;
use crate::planner::{PhysOp, PhysicalPlan, PlanNode, Planner};
use crate::{kernels, naive, optimized};

/// Which operator implementations the evaluator uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Strategy {
    /// The paper's Algorithm 1: nested-loop joins, `O(n1·n2)` per operator.
    NaivePaper,
    /// Index- and merge-based operators (output-sensitive where possible)
    /// over the classic one-allocation-per-incident representation.
    /// Produces identical incident sets; see `crate::optimized`.
    Optimized,
    /// The optimized operators over the flat arena-backed
    /// [`IncidentBatch`] layout: unions are bump-appends into a shared
    /// position pool and output stays sorted by construction where input
    /// order guarantees it. Produces identical incident sets; see
    /// `crate::batch` and `crate::kernels`.
    Batch,
    /// Cost-based planning on top of the batch layout: the query is
    /// rewritten via the paper's Theorem 2–5 equivalences, the cheapest
    /// tree is chosen by Lemma-1-style estimates, and each node gets a
    /// physical operator (nested loop, batch kernel, or sort-merge
    /// sequential join); `count()`/`exists()` route chain patterns to the
    /// enumeration-free counting DP. Produces identical incident sets;
    /// see `crate::planner`.
    #[default]
    Planned,
}

/// Combines two per-instance incident lists under `op` using `strategy`.
///
/// This is the dispatch point between the paper-faithful and optimized
/// operator implementations; both produce the same sorted, deduplicated
/// output.
#[must_use]
pub fn combine(strategy: Strategy, op: Op, left: &[Incident], right: &[Incident]) -> Vec<Incident> {
    match (strategy, op) {
        (Strategy::NaivePaper, Op::Consecutive) => naive::consecutive_eval(left, right),
        (Strategy::NaivePaper, Op::Sequential) => naive::sequential_eval(left, right),
        (Strategy::NaivePaper, Op::Choice) => naive::choice_eval(left, right),
        (Strategy::NaivePaper, Op::Parallel) => naive::parallel_eval(left, right),
        (Strategy::Optimized, Op::Consecutive) => optimized::consecutive_eval(left, right),
        (Strategy::Optimized, Op::Sequential) => optimized::sequential_eval(left, right),
        (Strategy::Optimized, Op::Choice) => optimized::choice_eval(left, right),
        (Strategy::Optimized, Op::Parallel) => optimized::parallel_eval(left, right),
        (Strategy::Batch | Strategy::Planned, _) => {
            // Boundary conversion for callers holding classic incident
            // lists (trees, streaming deltas); the evaluator's own batch
            // path stays flat end-to-end and never comes through here.
            let Some(wid) = left.first().or_else(|| right.first()).map(Incident::wid) else {
                return Vec::new();
            };
            let l = IncidentBatch::from_incidents(wid, left);
            let r = IncidentBatch::from_incidents(wid, right);
            kernels::combine_batch(op, &l, &r).into_incidents()
        }
    }
}

/// Whether one record satisfies an atom's attribute predicates.
fn atom_admits(atom: &Atom, log: &Log, wid: Wid, position: IsLsn) -> bool {
    if atom.predicates.is_empty() {
        return true;
    }
    // Index positions always exist in the log the index was built from; a
    // miss (impossible by construction) conservatively admits nothing.
    let Some(record) = log.record(wid, position) else {
        return false;
    };
    atom.predicates
        .iter()
        .all(|pred| pred.matches(record.input(), record.output()))
}

/// The incidents of an atomic pattern in one instance: every record whose
/// activity matches (`t`), or doesn't (`¬t`), filtered by the atom's
/// attribute predicates (extension).
#[must_use]
pub fn leaf_incidents(atom: &Atom, log: &Log, index: &LogIndex, wid: Wid) -> Vec<Incident> {
    if atom.negated {
        index
            .complement_postings(wid, atom.activity.as_str())
            .into_iter()
            .filter(|&p| atom_admits(atom, log, wid, p))
            .map(|p| Incident::singleton(wid, p))
            .collect()
    } else {
        // Predicate-free positive atoms map the borrowed posting slice
        // straight to singletons — no intermediate position clone.
        index
            .postings(wid, atom.activity.as_str())
            .iter()
            .copied()
            .filter(|&p| atom_admits(atom, log, wid, p))
            .map(|p| Incident::singleton(wid, p))
            .collect()
    }
}

/// Like [`leaf_incidents`], emitting straight into a pooled
/// [`IncidentBatch`]: one position per matching record, no per-incident
/// allocation. Postings are ascending, so the batch is born finished.
pub fn leaf_batch(
    atom: &Atom,
    log: &Log,
    index: &LogIndex,
    wid: Wid,
    arena: &mut BatchArena,
) -> IncidentBatch {
    let mut batch = arena.alloc(wid);
    if atom.negated {
        for p in index.complement_postings(wid, atom.activity.as_str()) {
            if atom_admits(atom, log, wid, p) {
                batch.push_singleton(p);
            }
        }
    } else {
        for &p in index.postings(wid, atom.activity.as_str()) {
            if atom_admits(atom, log, wid, p) {
                batch.push_singleton(p);
            }
        }
    }
    batch
}

/// Evaluates incident-pattern queries over one log.
///
/// Construction builds the per-instance activity index once
/// ([`LogIndex`]); each [`evaluate`](Self::evaluate) call then runs in
/// time bounded by Lemma 1 / Theorem 1.
///
/// # Examples
///
/// ```
/// use wlq_engine::Evaluator;
/// use wlq_log::paper;
/// use wlq_pattern::Pattern;
///
/// let log = paper::figure3_log();
/// let eval = Evaluator::new(&log);
/// // "Any students updating their referral before being reimbursed?"
/// let p: Pattern = "UpdateRefer -> GetReimburse".parse().unwrap();
/// assert!(eval.exists(&p));
/// assert_eq!(eval.count(&p), 1);
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    log: &'a Log,
    index: LogIndex,
    strategy: Strategy,
    planner: Option<Planner>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with the default ([`Strategy::Planned`])
    /// strategy.
    #[must_use]
    pub fn new(log: &'a Log) -> Self {
        Self::with_strategy(log, Strategy::default())
    }

    /// Creates an evaluator with an explicit strategy.
    #[must_use]
    pub fn with_strategy(log: &'a Log, strategy: Strategy) -> Self {
        let index = LogIndex::build(log);
        let planner = (strategy == Strategy::Planned).then(|| Planner::new(log, &index));
        Evaluator {
            log,
            index,
            strategy,
            planner,
        }
    }

    /// The log being queried.
    #[must_use]
    pub fn log(&self) -> &'a Log {
        self.log
    }

    /// The evaluator's activity index.
    #[must_use]
    pub fn index(&self) -> &LogIndex {
        &self.index
    }

    /// The active strategy.
    #[must_use]
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The query planner, when the strategy is [`Strategy::Planned`].
    #[must_use]
    pub fn planner(&self) -> Option<&Planner> {
        self.planner.as_ref()
    }

    /// Plans `pattern` with the cost-based planner, when the strategy is
    /// [`Strategy::Planned`] (for `explain`-style inspection).
    #[must_use]
    pub fn physical_plan(&self, pattern: &Pattern) -> Option<PhysicalPlan> {
        self.planner.as_ref().map(|pl| pl.plan(pattern))
    }

    /// Executes one physical plan node for one instance, drawing and
    /// retiring batches in the caller's arena.
    #[must_use]
    pub fn execute_plan_in(
        &self,
        node: &PlanNode,
        wid: Wid,
        arena: &mut BatchArena,
    ) -> IncidentBatch {
        match node {
            PlanNode::Leaf { atom, .. } => leaf_batch(atom, self.log, &self.index, wid, arena),
            PlanNode::Join {
                op,
                phys,
                left,
                right,
                ..
            } => {
                let l = self.execute_plan_in(left, wid, arena);
                // Short-circuit: for the three conjunctive operators an
                // empty side forces an empty result.
                if l.is_empty() && *op != Op::Choice {
                    return l;
                }
                let r = self.execute_plan_in(right, wid, arena);
                let mut out = arena.alloc(wid);
                match phys {
                    PhysOp::NestedLoop => kernels::nested_loop_kernel(*op, &l, &r, &mut out),
                    PhysOp::BatchKernel => kernels::combine_batch_into(*op, &l, &r, &mut out),
                    PhysOp::SortMergeSeq => kernels::sequential_sort_merge_kernel(&l, &r, &mut out),
                }
                arena.recycle(l);
                arena.recycle(r);
                out
            }
        }
    }

    /// Executes a physical plan for one instance and materializes the
    /// result as classic incidents.
    ///
    /// The root join gets the late-materialization treatment: when it is
    /// a `⊙`/`→` node, [`kernels::materialize_join`] writes each union
    /// straight into its final `Vec` instead of round-tripping the full
    /// output through a batch pool plus [`IncidentBatch::drain_incidents`]
    /// — at the query boundary that round-trip is pure overhead, and for
    /// wide joins it re-copies every emitted position.
    pub(crate) fn materialize_plan_in(
        &self,
        node: &PlanNode,
        wid: Wid,
        arena: &mut BatchArena,
    ) -> Vec<Incident> {
        if let PlanNode::Join {
            op: op @ (Op::Consecutive | Op::Sequential),
            left,
            right,
            ..
        } = node
        {
            let l = self.execute_plan_in(left, wid, arena);
            if l.is_empty() {
                arena.recycle(l);
                return Vec::new();
            }
            let r = self.execute_plan_in(right, wid, arena);
            let direct = kernels::materialize_join(*op, &l, &r);
            if let Some(incidents) = direct {
                arena.recycle(l);
                arena.recycle(r);
                return incidents;
            }
            let mut out = arena.alloc(wid);
            kernels::combine_batch_into(*op, &l, &r, &mut out);
            arena.recycle(l);
            arena.recycle(r);
            let incidents = out.drain_incidents();
            arena.recycle(out);
            return incidents;
        }
        let mut batch = self.execute_plan_in(node, wid, arena);
        let incidents = batch.drain_incidents();
        arena.recycle(batch);
        incidents
    }

    /// Computes `incL(p)`: all incidents of `p` in the log.
    ///
    /// Under [`Strategy::Batch`] and [`Strategy::Planned`] the whole
    /// evaluation stays in the flat [`IncidentBatch`] layout, converting
    /// to [`Incident`]s only here at the query boundary; one
    /// [`BatchArena`] is reused across all instances. [`Strategy::Planned`]
    /// additionally plans the pattern once and executes the chosen
    /// physical tree per instance, materializing the root join directly.
    #[must_use]
    pub fn evaluate(&self, pattern: &Pattern) -> IncidentSet {
        let mut parts = Vec::new();
        if let Some(planner) = &self.planner {
            let plan = planner.plan(pattern);
            let mut arena = BatchArena::new();
            for wid in self.index.wids() {
                parts.push((wid, self.materialize_plan_in(plan.root(), wid, &mut arena)));
            }
        } else if self.strategy == Strategy::Batch {
            let mut arena = BatchArena::new();
            for wid in self.index.wids() {
                let mut batch = self.evaluate_instance_batch_in(pattern, wid, &mut arena);
                parts.push((wid, batch.drain_incidents()));
                arena.recycle(batch);
            }
        } else {
            for wid in self.index.wids() {
                parts.push((wid, self.evaluate_instance(pattern, wid)));
            }
        }
        IncidentSet::from_partitions(parts)
    }

    /// Computes the incidents of `p` within a single instance.
    #[must_use]
    pub fn evaluate_instance(&self, pattern: &Pattern, wid: Wid) -> Vec<Incident> {
        if let Some(planner) = &self.planner {
            let plan = planner.plan(pattern);
            let mut arena = BatchArena::new();
            return self.materialize_plan_in(plan.root(), wid, &mut arena);
        }
        if self.strategy == Strategy::Batch {
            return self.evaluate_instance_batch(pattern, wid).into_incidents();
        }
        match pattern {
            Pattern::Atom(atom) => leaf_incidents(atom, self.log, &self.index, wid),
            Pattern::Binary { op, left, right } => {
                let l = self.evaluate_instance(left, wid);
                // Short-circuit: for the three conjunctive operators an
                // empty side forces an empty result.
                if l.is_empty() && *op != Op::Choice {
                    return Vec::new();
                }
                let r = self.evaluate_instance(right, wid);
                combine(self.strategy, *op, &l, &r)
            }
        }
    }

    /// Computes the incidents of `p` within one instance in flat batch
    /// form, regardless of the configured strategy.
    #[must_use]
    pub fn evaluate_instance_batch(&self, pattern: &Pattern, wid: Wid) -> IncidentBatch {
        let mut arena = BatchArena::new();
        self.evaluate_instance_batch_in(pattern, wid, &mut arena)
    }

    /// Like [`evaluate_instance_batch`](Self::evaluate_instance_batch),
    /// drawing every batch from — and retiring operator inputs to — the
    /// caller's arena. Parallel workers pass a worker-local arena so
    /// allocations are reused across the instances each worker sweeps.
    #[must_use]
    pub fn evaluate_instance_batch_in(
        &self,
        pattern: &Pattern,
        wid: Wid,
        arena: &mut BatchArena,
    ) -> IncidentBatch {
        match pattern {
            Pattern::Atom(atom) => leaf_batch(atom, self.log, &self.index, wid, arena),
            Pattern::Binary { op, left, right } => {
                let l = self.evaluate_instance_batch_in(left, wid, arena);
                // Short-circuit: for the three conjunctive operators an
                // empty side forces an empty result.
                if l.is_empty() && *op != Op::Choice {
                    return l;
                }
                let r = self.evaluate_instance_batch_in(right, wid, arena);
                let mut out = arena.alloc(wid);
                kernels::combine_batch_into(*op, &l, &r, &mut out);
                arena.recycle(l);
                arena.recycle(r);
                out
            }
        }
    }

    /// Whether any incident of `p` exists (early-exits per instance;
    /// under [`Strategy::Planned`] chain patterns skip enumeration via the
    /// counting DP).
    #[must_use]
    pub fn exists(&self, pattern: &Pattern) -> bool {
        if let Some(planner) = &self.planner {
            let plan = planner.plan(pattern);
            if plan.is_counting_chain() {
                if let Some(n) = fast_count(self.log, plan.pattern()) {
                    return n > 0;
                }
            }
            let mut arena = BatchArena::new();
            return self.index.wids().any(|wid| {
                let batch = self.execute_plan_in(plan.root(), wid, &mut arena);
                let found = !batch.is_empty();
                arena.recycle(batch);
                found
            });
        }
        if self.strategy == Strategy::Batch {
            let mut arena = BatchArena::new();
            return self.index.wids().any(|wid| {
                let batch = self.evaluate_instance_batch_in(pattern, wid, &mut arena);
                let found = !batch.is_empty();
                arena.recycle(batch);
                found
            });
        }
        self.index
            .wids()
            .any(|wid| !self.evaluate_instance(pattern, wid).is_empty())
    }

    /// Number of incidents of `p` in the log, `|incL(p)|`.
    ///
    /// Under [`Strategy::Batch`] this counts [`IncidentBatch`] refs
    /// directly — no incident is ever materialized. Under
    /// [`Strategy::Planned`], `~>`/`->` chains of predicate-free atoms
    /// additionally skip enumeration entirely via [`fast_count`]'s
    /// `O(m·k)` dynamic program.
    #[must_use]
    pub fn count(&self, pattern: &Pattern) -> usize {
        if let Some(planner) = &self.planner {
            let plan = planner.plan(pattern);
            if plan.is_counting_chain() {
                if let Some(n) = fast_count(self.log, plan.pattern()) {
                    return n;
                }
            }
            let mut arena = BatchArena::new();
            return self
                .index
                .wids()
                .map(|wid| {
                    let batch = self.execute_plan_in(plan.root(), wid, &mut arena);
                    let n = batch.len();
                    arena.recycle(batch);
                    n
                })
                .sum();
        }
        if self.strategy == Strategy::Batch {
            let mut arena = BatchArena::new();
            return self
                .index
                .wids()
                .map(|wid| {
                    let batch = self.evaluate_instance_batch_in(pattern, wid, &mut arena);
                    let n = batch.len();
                    arena.recycle(batch);
                    n
                })
                .sum();
        }
        self.index
            .wids()
            .map(|wid| self.evaluate_instance(pattern, wid).len())
            .sum()
    }

    /// The instances containing at least one incident of `p`.
    #[must_use]
    pub fn matching_instances(&self, pattern: &Pattern) -> Vec<Wid> {
        if let Some(planner) = &self.planner {
            let plan = planner.plan(pattern);
            let mut arena = BatchArena::new();
            return self
                .index
                .wids()
                .filter(|&wid| {
                    let batch = self.execute_plan_in(plan.root(), wid, &mut arena);
                    let found = !batch.is_empty();
                    arena.recycle(batch);
                    found
                })
                .collect();
        }
        if self.strategy == Strategy::Batch {
            let mut arena = BatchArena::new();
            return self
                .index
                .wids()
                .filter(|&wid| {
                    let batch = self.evaluate_instance_batch_in(pattern, wid, &mut arena);
                    let found = !batch.is_empty();
                    arena.recycle(batch);
                    found
                })
                .collect();
        }
        self.index
            .wids()
            .filter(|&wid| !self.evaluate_instance(pattern, wid).is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::paper;

    fn parse(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    fn fig3_eval(strategy: Strategy) -> (Log, Strategy) {
        (paper::figure3_log(), strategy)
    }

    #[test]
    fn example3_update_before_reimburse() {
        // incL(UpdateRefer → GetReimburse) = {{l14, l20}}.
        let log = paper::figure3_log();
        for strategy in [
            Strategy::NaivePaper,
            Strategy::Optimized,
            Strategy::Batch,
            Strategy::Planned,
        ] {
            let eval = Evaluator::with_strategy(&log, strategy);
            let set = eval.evaluate(&parse("UpdateRefer -> GetReimburse"));
            assert_eq!(set.len(), 1);
            let o = set.iter().next().unwrap();
            let lsns: Vec<u64> = o
                .positions()
                .iter()
                .map(|&p| log.record(o.wid(), p).unwrap().lsn().get())
                .collect();
            assert_eq!(lsns, vec![14, 20]);
        }
    }

    #[test]
    fn example3_second_pattern_corrected() {
        // The paper's Example 3 says {l13, l14, l19} but l19 is
        // TakeTreatment; Definition 4 (and the paper's own Example 5)
        // give {l13, l14, l20}.
        let log = paper::figure3_log();
        let eval = Evaluator::new(&log);
        let set = eval.evaluate(&parse("SeeDoctor -> (UpdateRefer -> GetReimburse)"));
        assert_eq!(set.len(), 1);
        let o = set.iter().next().unwrap();
        let lsns: Vec<u64> = o
            .positions()
            .iter()
            .map(|&p| log.record(o.wid(), p).unwrap().lsn().get())
            .collect();
        assert_eq!(lsns, vec![13, 14, 20]);
    }

    #[test]
    fn atomic_patterns_count_matching_records() {
        let (log, s) = fig3_eval(Strategy::Optimized);
        let eval = Evaluator::with_strategy(&log, s);
        assert_eq!(eval.count(&parse("SeeDoctor")), 4);
        assert_eq!(eval.count(&parse("START")), 3);
        assert_eq!(eval.count(&parse("Missing")), 0);
        assert_eq!(eval.count(&parse("!START")), 17);
    }

    #[test]
    fn consecutive_vs_sequential_on_figure3() {
        let log = paper::figure3_log();
        let eval = Evaluator::new(&log);
        // SeeDoctor immediately followed by PayTreatment: wid1 twice
        // (l9-l10, l11-l12) and wid2 once (l17-l18).
        assert_eq!(eval.count(&parse("SeeDoctor ~> PayTreatment")), 3);
        // With gaps allowed there are more.
        let seq = eval.count(&parse("SeeDoctor -> PayTreatment"));
        assert!(seq > 3, "sequential should dominate consecutive, got {seq}");
    }

    #[test]
    fn choice_counts_union() {
        let log = paper::figure3_log();
        let eval = Evaluator::new(&log);
        assert_eq!(
            eval.count(&parse("SeeDoctor | UpdateRefer")),
            eval.count(&parse("SeeDoctor")) + eval.count(&parse("UpdateRefer"))
        );
        // Choice of a pattern with itself deduplicates.
        assert_eq!(eval.count(&parse("SeeDoctor | SeeDoctor")), 4);
    }

    #[test]
    fn parallel_requires_distinct_records() {
        let log = paper::figure3_log();
        let eval = Evaluator::new(&log);
        // SeeDoctor ⊕ SeeDoctor: ordered pairs of distinct SeeDoctor
        // records of one instance: wid1 has 2 (2 ordered pairs), wid2 has
        // 2 — but incidents are *sets*, so {a,b} = {b,a}: 1 per instance…
        // each unordered pair appears once after dedup.
        assert_eq!(eval.count(&parse("SeeDoctor & SeeDoctor")), 2);
    }

    #[test]
    fn exists_and_matching_instances() {
        let log = paper::figure3_log();
        let eval = Evaluator::new(&log);
        assert!(eval.exists(&parse("UpdateRefer -> GetReimburse")));
        assert!(!eval.exists(&parse("GetReimburse -> UpdateRefer")));
        assert_eq!(
            eval.matching_instances(&parse("GetRefer")),
            vec![Wid(1), Wid(2), Wid(3)]
        );
        assert_eq!(eval.matching_instances(&parse("UpdateRefer")), vec![Wid(2)]);
    }

    #[test]
    fn predicates_filter_leaves() {
        // The intro query: referrals with balance > 5000 — none initially,
        // but > 900 matches wid 1 and 2.
        let log = paper::figure3_log();
        let eval = Evaluator::new(&log);
        assert_eq!(eval.count(&parse("GetRefer[out.balance > 5000]")), 0);
        assert_eq!(eval.count(&parse("GetRefer[out.balance > 900]")), 2);
        assert_eq!(eval.count(&parse("GetRefer[out.balance > 100]")), 3);
        // The update raised wid 2's balance to 5000: visible at UpdateRefer.
        assert_eq!(eval.count(&parse("UpdateRefer[out.balance >= 5000]")), 1);
    }

    #[test]
    fn strategies_agree_on_a_pattern_battery() {
        let log = paper::figure3_log();
        let naive = Evaluator::with_strategy(&log, Strategy::NaivePaper);
        let opt = Evaluator::with_strategy(&log, Strategy::Optimized);
        let batch = Evaluator::with_strategy(&log, Strategy::Batch);
        let planned = Evaluator::with_strategy(&log, Strategy::Planned);
        for src in [
            "GetRefer ~> CheckIn",
            "GetRefer -> GetReimburse",
            "SeeDoctor & PayTreatment",
            "(GetRefer -> CheckIn) | (SeeDoctor ~> PayTreatment)",
            "!CheckIn ~> SeeDoctor",
            "START -> (UpdateRefer | CompleteRefer)",
            "(SeeDoctor & SeeDoctor) -> GetReimburse",
        ] {
            let p = parse(src);
            assert_eq!(naive.evaluate(&p), opt.evaluate(&p), "mismatch on {src}");
            assert_eq!(
                naive.evaluate(&p),
                batch.evaluate(&p),
                "batch mismatch on {src}"
            );
            assert_eq!(
                naive.count(&p),
                batch.count(&p),
                "batch count mismatch on {src}"
            );
            assert_eq!(
                naive.exists(&p),
                batch.exists(&p),
                "batch exists mismatch on {src}"
            );
            assert_eq!(
                naive.evaluate(&p),
                planned.evaluate(&p),
                "planned mismatch on {src}"
            );
            assert_eq!(
                naive.count(&p),
                planned.count(&p),
                "planned count mismatch on {src}"
            );
            assert_eq!(
                naive.exists(&p),
                planned.exists(&p),
                "planned exists mismatch on {src}"
            );
            assert_eq!(
                naive.matching_instances(&p),
                planned.matching_instances(&p),
                "planned matching_instances mismatch on {src}"
            );
        }
    }

    #[test]
    fn empty_side_short_circuit_is_semantically_neutral() {
        let log = paper::figure3_log();
        let eval = Evaluator::new(&log);
        // Left side never matches: conjunctive composites are empty…
        assert_eq!(eval.count(&parse("Nope ~> SeeDoctor")), 0);
        assert_eq!(eval.count(&parse("Nope -> SeeDoctor")), 0);
        assert_eq!(eval.count(&parse("Nope & SeeDoctor")), 0);
        // …but choice still yields the right side.
        assert_eq!(eval.count(&parse("Nope | SeeDoctor")), 4);
    }
}
