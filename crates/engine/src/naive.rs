//! Algorithm 1 of the paper: nested-loop evaluation of the four operators.
//!
//! Each function combines the incident lists of two sub-patterns *within a
//! single workflow instance* (the paper makes the same single-`wid`
//! simplification in Section 3.1; the per-instance partition is applied a
//! level up by the tree evaluator).
//!
//! Complexities match Lemma 1: `O(n1·n2)` for consecutive and sequential,
//! `O(n1·n2·min(k1,k2))` for choice (as printed), `O(n1·n2·(k1+k2))` for
//! parallel. Outputs are sorted and deduplicated so that they denote
//! incident *sets*.

use crate::incident::Incident;

/// `CONSECUTIVE-EVAL` (Algorithm 1, lines 1–6): all `o1 ∪ o2` with
/// `last(o1) + 1 = first(o2)`.
#[must_use]
pub fn consecutive_eval(inc1: &[Incident], inc2: &[Incident]) -> Vec<Incident> {
    let mut out = Vec::new();
    for o1 in inc1 {
        for o2 in inc2 {
            if o1.last().next() == o2.first() {
                out.push(o1.union(o2));
            }
        }
    }
    finish(out)
}

/// `SEQUENTIAL-EVAL` (Algorithm 1, lines 7–12): all `o1 ∪ o2` with
/// `last(o1) < first(o2)`.
#[must_use]
pub fn sequential_eval(inc1: &[Incident], inc2: &[Incident]) -> Vec<Incident> {
    let mut out = Vec::new();
    for o1 in inc1 {
        for o2 in inc2 {
            if o1.last() < o2.first() {
                out.push(o1.union(o2));
            }
        }
    }
    finish(out)
}

/// `CHOICE-EVAL` with the semantics of Definition 4: the
/// duplicate-eliminating union of the two incident lists.
///
/// The paper's *printed* pseudo-code for choice instead pairs up incidents
/// and only emits those that find an equal partner, which loses incidents
/// unique to one side; the accompanying prose and Definition 4 describe a
/// union with duplicate elimination, which is what this function computes.
/// The printed variant is preserved as [`choice_eval_as_printed`] for the
/// Lemma 1 cost benchmark and for documentation of the erratum.
#[must_use]
pub fn choice_eval(inc1: &[Incident], inc2: &[Incident]) -> Vec<Incident> {
    let mut out = Vec::with_capacity(inc1.len() + inc2.len());
    out.extend_from_slice(inc1);
    out.extend_from_slice(inc2);
    finish(out)
}

/// A faithful transcription of the paper's printed `CHOICE-EVAL`
/// pseudo-code (Algorithm 1, lines 13–23): for every pair `(o1, o2)`,
/// compare element-wise and emit both when identical.
///
/// This computes `incL(p1) ∩ incL(p2)` rather than the union that
/// Definition 4 prescribes — see [`choice_eval`] for the corrected
/// operator. Exposed only to document and benchmark the erratum.
#[must_use]
pub fn choice_eval_as_printed(inc1: &[Incident], inc2: &[Incident]) -> Vec<Incident> {
    let mut out = Vec::new();
    for o1 in inc1 {
        for o2 in inc2 {
            if o1.len() == o2.len() && o1.positions() == o2.positions() {
                out.push(o1.clone());
                out.push(o2.clone());
            }
        }
    }
    finish(out)
}

/// `PARALLEL-EVAL` (Algorithm 1, lines 24–34): all `o1 ∪ o2` with
/// `o1 ∩ o2 = ∅`.
#[must_use]
pub fn parallel_eval(inc1: &[Incident], inc2: &[Incident]) -> Vec<Incident> {
    let mut out = Vec::new();
    for o1 in inc1 {
        for o2 in inc2 {
            if o1.is_disjoint(o2) {
                out.push(o1.union(o2));
            }
        }
    }
    finish(out)
}

/// Sorts by `(first, …)` and removes duplicate incidents, restoring the
/// ordered-set invariant the next operator up relies on.
fn finish(mut out: Vec<Incident>) -> Vec<Incident> {
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::{IsLsn, Wid};

    fn inc(ps: &[u32]) -> Incident {
        Incident::from_positions(Wid(1), ps.iter().map(|&p| IsLsn(p)).collect())
    }

    #[test]
    fn consecutive_requires_adjacency() {
        let left = vec![inc(&[2]), inc(&[4])];
        let right = vec![inc(&[3]), inc(&[9])];
        let out = consecutive_eval(&left, &right);
        assert_eq!(out, vec![inc(&[2, 3])]);
    }

    #[test]
    fn consecutive_uses_last_of_left_and_first_of_right() {
        let left = vec![inc(&[1, 4])];
        let right = vec![inc(&[5, 7])];
        assert_eq!(consecutive_eval(&left, &right), vec![inc(&[1, 4, 5, 7])]);
        // last = 4, so a right starting at 6 does not match.
        assert!(consecutive_eval(&left, &[inc(&[6])]).is_empty());
    }

    #[test]
    fn sequential_requires_strict_order_with_gap_allowed() {
        let left = vec![inc(&[2]), inc(&[5])];
        let right = vec![inc(&[4]), inc(&[6])];
        let out = sequential_eval(&left, &right);
        assert_eq!(out, vec![inc(&[2, 4]), inc(&[2, 6]), inc(&[5, 6])]);
    }

    #[test]
    fn sequential_rejects_overlap() {
        // last(o1)=5 is not < first(o2)=5.
        assert!(sequential_eval(&[inc(&[5])], &[inc(&[5])]).is_empty());
        assert!(sequential_eval(&[inc(&[2, 6])], &[inc(&[4])]).is_empty());
    }

    #[test]
    fn choice_is_duplicate_eliminating_union() {
        let left = vec![inc(&[1]), inc(&[2])];
        let right = vec![inc(&[2]), inc(&[3])];
        let out = choice_eval(&left, &right);
        assert_eq!(out, vec![inc(&[1]), inc(&[2]), inc(&[3])]);
    }

    #[test]
    fn printed_choice_is_an_intersection() {
        let left = vec![inc(&[1]), inc(&[2])];
        let right = vec![inc(&[2]), inc(&[3])];
        let out = choice_eval_as_printed(&left, &right);
        // Only the shared incident survives — the erratum.
        assert_eq!(out, vec![inc(&[2])]);
    }

    #[test]
    fn parallel_requires_disjointness() {
        let left = vec![inc(&[1, 3])];
        let right = vec![inc(&[2]), inc(&[3])];
        let out = parallel_eval(&left, &right);
        assert_eq!(out, vec![inc(&[1, 2, 3])]);
    }

    #[test]
    fn parallel_allows_interleaving_shuffles() {
        // ⊕ is a shuffle: right may start before left ends.
        let left = vec![inc(&[1, 4])];
        let right = vec![inc(&[2, 3])];
        assert_eq!(parallel_eval(&left, &right), vec![inc(&[1, 2, 3, 4])]);
    }

    #[test]
    fn outputs_are_sorted_and_deduped() {
        // Two different pairs producing the same union must collapse.
        let left = vec![inc(&[1]), inc(&[1, 2])];
        let right = vec![inc(&[2, 3]), inc(&[3])];
        let out = sequential_eval(&left, &right);
        assert_eq!(out, vec![inc(&[1, 2, 3]), inc(&[1, 3])]);
    }

    #[test]
    fn empty_inputs_produce_empty_outputs() {
        assert!(consecutive_eval(&[], &[inc(&[1])]).is_empty());
        assert!(sequential_eval(&[inc(&[1])], &[]).is_empty());
        assert!(parallel_eval(&[], &[]).is_empty());
        assert_eq!(choice_eval(&[], &[inc(&[1])]), vec![inc(&[1])]);
    }
}
