//! Resolving incidents back to log records and paper-style rendering.
//!
//! Incidents are stored as `(wid, is-lsn)` coordinates; these helpers tie
//! them back to a [`Log`] — fetching the actual [`LogRecord`]s and
//! printing incidents with the paper's global-`lsn` notation
//! (`{l13, l14, l20}`).

use std::fmt;

use wlq_log::{Log, LogRecord, Lsn};

use crate::incident::Incident;
use crate::incident_set::IncidentSet;

impl Incident {
    /// The records of this incident, in is-lsn order.
    ///
    /// # Panics
    ///
    /// Panics if the incident did not come from `log` (a coordinate does
    /// not resolve).
    #[must_use]
    pub fn records<'a>(&self, log: &'a Log) -> Vec<&'a LogRecord> {
        self.positions()
            .iter()
            .map(|&p| match log.record(self.wid(), p) {
                Some(record) => record,
                None => panic!("incident coordinate {p}@wid{} not in this log", self.wid()),
            })
            .collect()
    }

    /// The global log sequence numbers of this incident's records,
    /// ascending by is-lsn.
    ///
    /// # Panics
    ///
    /// Panics if the incident did not come from `log`.
    #[must_use]
    pub fn lsns(&self, log: &Log) -> Vec<Lsn> {
        self.records(log).iter().map(|r| r.lsn()).collect()
    }

    /// A display adapter rendering the incident in the paper's notation:
    /// `{l13, l14, l20}`.
    #[must_use]
    pub fn display_in<'a>(&'a self, log: &'a Log) -> IncidentInLog<'a> {
        IncidentInLog {
            incident: self,
            log,
        }
    }
}

/// Paper-notation display adapter returned by [`Incident::display_in`].
///
/// ```
/// use wlq_engine::Query;
/// use wlq_log::paper;
///
/// let log = paper::figure3_log();
/// let set = Query::parse("UpdateRefer -> GetReimburse")
///     .unwrap()
///     .find(&log)
///     .unwrap();
/// let o = set.iter().next().unwrap();
/// assert_eq!(o.display_in(&log).to_string(), "{l14, l20}");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct IncidentInLog<'a> {
    incident: &'a Incident,
    log: &'a Log,
}

impl fmt::Display for IncidentInLog<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, lsn) in self.incident.lsns(self.log).iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "l{lsn}")?;
        }
        write!(f, "}}")
    }
}

impl IncidentSet {
    /// A display adapter rendering the whole set in the paper's notation:
    /// `{{l14, l20}, {l13, l14, l20}}`.
    #[must_use]
    pub fn display_in<'a>(&'a self, log: &'a Log) -> IncidentSetInLog<'a> {
        IncidentSetInLog { set: self, log }
    }
}

/// Paper-notation display adapter returned by [`IncidentSet::display_in`].
#[derive(Debug, Clone, Copy)]
pub struct IncidentSetInLog<'a> {
    set: &'a IncidentSet,
    log: &'a Log,
}

impl fmt::Display for IncidentSetInLog<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, incident) in self.set.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", incident.display_in(self.log))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use wlq_log::paper;
    use wlq_pattern::Pattern;

    fn figure3_set(src: &str) -> (Log, IncidentSet) {
        let log = paper::figure3_log();
        let p: Pattern = src.parse().unwrap();
        let set = Evaluator::new(&log).evaluate(&p);
        (log, set)
    }

    #[test]
    fn records_resolve_in_is_lsn_order() {
        let (log, set) = figure3_set("UpdateRefer -> GetReimburse");
        let o = set.iter().next().unwrap();
        let records = o.records(&log);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].activity().as_str(), "UpdateRefer");
        assert_eq!(records[1].activity().as_str(), "GetReimburse");
    }

    #[test]
    fn lsns_match_the_paper() {
        let (log, set) = figure3_set("SeeDoctor -> (UpdateRefer -> GetReimburse)");
        let o = set.iter().next().unwrap();
        assert_eq!(
            o.lsns(&log).iter().map(|l| l.get()).collect::<Vec<_>>(),
            vec![13, 14, 20]
        );
    }

    #[test]
    fn paper_notation_rendering() {
        let (log, set) = figure3_set("UpdateRefer -> GetReimburse");
        assert_eq!(set.display_in(&log).to_string(), "{{l14, l20}}");
        let o = set.iter().next().unwrap();
        assert_eq!(o.display_in(&log).to_string(), "{l14, l20}");
    }

    #[test]
    fn multiple_incidents_render_comma_separated() {
        let (log, set) = figure3_set("SeeDoctor ~> PayTreatment");
        let text = set.display_in(&log).to_string();
        assert_eq!(text, "{{l9, l10}, {l11, l12}, {l17, l18}}");
    }
}
