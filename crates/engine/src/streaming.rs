//! Incremental evaluation over an append-only log.
//!
//! Workflow logs only ever grow, and the paper motivates log querying for
//! *runtime* monitoring as well as post-hoc analysis. The
//! [`StreamingEvaluator`] maintains, for every node of the incident tree,
//! the incidents seen so far, and updates them per appended record using
//! the delta rule
//!
//! ```text
//! Δ(p1 θ p2) = (Δ1 θ old2) ∪ ((old1 ∪ Δ1) θ Δ2)
//! ```
//!
//! which enumerates exactly the new pairs. Appends are `O(delta work)`
//! instead of re-evaluating the whole log, and the evaluator reports the
//! *new root incidents* per append — a monitoring callback can alert the
//! moment an anomalous pattern completes.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use wlq_log::{IsLsn, LogError, LogRecord, Wid};
use wlq_pattern::{Atom, Op, Pattern};

use crate::error::EngineError;
use crate::eval::{combine, Strategy};
use crate::incident::Incident;
use crate::incident_set::{merge_sorted, IncidentSet};

/// A node of the streaming incident tree, holding accumulated incidents.
#[derive(Debug, Clone)]
enum SNode {
    Leaf {
        atom: Atom,
        incidents: BTreeMap<Wid, Vec<Incident>>,
    },
    Op {
        op: Op,
        left: Box<SNode>,
        right: Box<SNode>,
        incidents: BTreeMap<Wid, Vec<Incident>>,
    },
}

impl SNode {
    fn from_pattern(p: &Pattern) -> SNode {
        match p {
            Pattern::Atom(a) => SNode::Leaf {
                atom: a.clone(),
                incidents: BTreeMap::new(),
            },
            Pattern::Binary { op, left, right } => SNode::Op {
                op: *op,
                left: Box::new(SNode::from_pattern(left)),
                right: Box::new(SNode::from_pattern(right)),
                incidents: BTreeMap::new(),
            },
        }
    }

    fn incidents(&self, wid: Wid) -> &[Incident] {
        let map = match self {
            SNode::Leaf { incidents, .. } | SNode::Op { incidents, .. } => incidents,
        };
        map.get(&wid).map_or(&[], Vec::as_slice)
    }

    fn incidents_map(&self) -> &BTreeMap<Wid, Vec<Incident>> {
        match self {
            SNode::Leaf { incidents, .. } | SNode::Op { incidents, .. } => incidents,
        }
    }

    /// Absorbs `delta` into this node's incident list for `wid`, returning
    /// only the incidents that were actually new.
    fn absorb(&mut self, wid: Wid, delta: Vec<Incident>) -> Vec<Incident> {
        let map = match self {
            SNode::Leaf { incidents, .. } | SNode::Op { incidents, .. } => incidents,
        };
        let list = map.entry(wid).or_default();
        let mut fresh = Vec::with_capacity(delta.len());
        for incident in delta {
            if let Err(pos) = list.binary_search(&incident) {
                list.insert(pos, incident.clone());
                fresh.push(incident);
            }
        }
        fresh
    }

    /// Processes one appended record, returning this node's new incidents.
    fn push(&mut self, record: &LogRecord, strategy: Strategy) -> Vec<Incident> {
        let wid = record.wid();
        match self {
            SNode::Leaf { atom, .. } => {
                let matches_activity = if atom.negated {
                    record.activity() != &atom.activity
                } else {
                    record.activity() == &atom.activity
                };
                let matches = matches_activity
                    && atom
                        .predicates
                        .iter()
                        .all(|p| p.matches(record.input(), record.output()));
                if matches {
                    let delta = vec![Incident::singleton(wid, record.is_lsn())];
                    self.absorb(wid, delta)
                } else {
                    Vec::new()
                }
            }
            SNode::Op {
                op, left, right, ..
            } => {
                let op = *op;
                // Snapshot the left side *before* the record is applied.
                let old_left: Vec<Incident> = left.incidents(wid).to_vec();
                let delta_left = left.push(record, strategy);
                let delta_right = right.push(record, strategy);
                // Every term below is sorted and deduplicated (leaf
                // emission appends in is-lsn order, operators finish
                // sorted), so deltas union by linear merge.
                let delta = match op {
                    Op::Choice => merge_sorted(delta_left, delta_right),
                    _ => {
                        // New pairs: (Δ1 × old2) ∪ ((old1 ∪ Δ1) × Δ2).
                        let old_right: Vec<Incident> = {
                            // right already absorbed its delta; exclude it
                            // for the first term to avoid double counting.
                            let full = right.incidents(wid);
                            full.iter()
                                .filter(|o| delta_right.binary_search(o).is_err())
                                .cloned()
                                .collect()
                        };
                        let first = combine(strategy, op, &delta_left, &old_right);
                        let new_left = merge_sorted(old_left, delta_left);
                        let second = combine(strategy, op, &new_left, &delta_right);
                        merge_sorted(first, second)
                    }
                };
                self.absorb(wid, delta)
            }
        }
    }
}

/// Evaluates a pattern incrementally over an append-only record stream.
///
/// # Examples
///
/// ```
/// use wlq_engine::StreamingEvaluator;
/// use wlq_log::paper;
/// use wlq_pattern::Pattern;
///
/// let p: Pattern = "UpdateRefer -> GetReimburse".parse().unwrap();
/// let mut stream = StreamingEvaluator::new(p);
/// let mut alerts = 0;
/// for record in paper::figure3_log().iter() {
///     alerts += stream.append(record).unwrap().len();
/// }
/// assert_eq!(alerts, 1); // the wid-2 anomaly fires exactly once
/// ```
#[derive(Debug, Clone)]
pub struct StreamingEvaluator {
    pattern: Pattern,
    strategy: Strategy,
    root: SNode,
    next_is_lsn: BTreeMap<Wid, IsLsn>,
    closed: BTreeMap<Wid, bool>,
    records_seen: usize,
}

impl StreamingEvaluator {
    /// Creates a streaming evaluator for `pattern` with the default
    /// ([`Strategy::Planned`]) operator implementations.
    #[must_use]
    pub fn new(pattern: Pattern) -> Self {
        Self::with_strategy(pattern, Strategy::default())
    }

    /// Creates a streaming evaluator with an explicit strategy.
    #[must_use]
    pub fn with_strategy(pattern: Pattern, strategy: Strategy) -> Self {
        let root = SNode::from_pattern(&pattern);
        StreamingEvaluator {
            pattern,
            strategy,
            root,
            next_is_lsn: BTreeMap::new(),
            closed: BTreeMap::new(),
            records_seen: 0,
        }
    }

    /// The pattern being monitored.
    #[must_use]
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Number of records consumed so far.
    #[must_use]
    pub fn records_seen(&self) -> usize {
        self.records_seen
    }

    /// Appends one record, returning the *new* root incidents it completes.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidLog`] if the record violates the
    /// per-instance ordering invariants of Definition 2 (non-consecutive
    /// `is-lsn`, record after `END`, or a non-`START` first record).
    pub fn append(&mut self, record: &LogRecord) -> Result<Vec<Incident>, EngineError> {
        let wid = record.wid();
        if self.closed.get(&wid).copied().unwrap_or(false) {
            return Err(LogError::RecordAfterEnd {
                wid,
                lsn: record.lsn(),
            }
            .into());
        }
        let expected = self.next_is_lsn.get(&wid).copied().unwrap_or(IsLsn::FIRST);
        if record.is_lsn() != expected {
            return Err(LogError::NonConsecutiveIsLsn {
                wid,
                expected,
                found: record.is_lsn(),
            }
            .into());
        }
        if (record.is_lsn() == IsLsn::FIRST) != record.is_start() {
            return Err(LogError::StartMismatch {
                lsn: record.lsn(),
                wid,
            }
            .into());
        }
        self.next_is_lsn.insert(wid, expected.next());
        if record.is_end() {
            self.closed.insert(wid, true);
        }
        self.records_seen += 1;
        Ok(self.root.push(record, self.strategy))
    }

    /// The full incident set accumulated so far (equals a batch evaluation
    /// of the records seen).
    #[must_use]
    pub fn incidents(&self) -> IncidentSet {
        IncidentSet::from_partitions(
            self.root
                .incidents_map()
                .iter()
                .map(|(w, v)| (*w, v.clone())),
        )
    }
}

/// A thread-safe wrapper around [`StreamingEvaluator`] for concurrent
/// producers (e.g. a workflow engine's worker threads appending to the
/// log), using a [`parking_lot::Mutex`].
#[derive(Debug)]
pub struct SharedStreamingEvaluator {
    inner: Mutex<StreamingEvaluator>,
}

impl SharedStreamingEvaluator {
    /// Wraps a streaming evaluator for shared use.
    #[must_use]
    pub fn new(pattern: Pattern) -> Self {
        SharedStreamingEvaluator {
            inner: Mutex::new(StreamingEvaluator::new(pattern)),
        }
    }

    /// Appends a record under the lock; see [`StreamingEvaluator::append`].
    ///
    /// # Errors
    ///
    /// Propagates the wrapped evaluator's [`EngineError`]s.
    pub fn append(&self, record: &LogRecord) -> Result<Vec<Incident>, EngineError> {
        self.inner.lock().append(record)
    }

    /// Snapshot of the accumulated incident set.
    #[must_use]
    pub fn incidents(&self) -> IncidentSet {
        self.inner.lock().incidents()
    }

    /// Number of records consumed.
    #[must_use]
    pub fn records_seen(&self) -> usize {
        self.inner.lock().records_seen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use wlq_log::paper;

    fn parse(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    fn replay(pattern: &str) -> (StreamingEvaluator, IncidentSet) {
        let log = paper::figure3_log();
        let mut stream = StreamingEvaluator::new(parse(pattern));
        let mut all_deltas = IncidentSet::new();
        for record in log.iter() {
            for incident in stream.append(record).unwrap() {
                assert!(all_deltas.insert(incident), "duplicate delta reported");
            }
        }
        (stream, all_deltas)
    }

    #[test]
    fn streaming_matches_batch_on_figure3() {
        let log = paper::figure3_log();
        let batch = Evaluator::new(&log);
        for src in [
            "SeeDoctor",
            "!SeeDoctor",
            "UpdateRefer -> GetReimburse",
            "SeeDoctor -> (UpdateRefer -> GetReimburse)",
            "GetRefer ~> CheckIn",
            "SeeDoctor & PayTreatment",
            "(GetRefer -> CheckIn) | UpdateRefer",
        ] {
            let (stream, deltas) = replay(src);
            let expected = batch.evaluate(&parse(src));
            assert_eq!(
                stream.incidents(),
                expected,
                "accumulated mismatch on {src}"
            );
            assert_eq!(deltas, expected, "delta union mismatch on {src}");
        }
    }

    #[test]
    fn all_strategies_stream_identically() {
        let log = paper::figure3_log();
        for src in [
            "SeeDoctor ~> PayTreatment",
            "GetRefer -> (SeeDoctor & PayTreatment)",
        ] {
            let mut sets = Vec::new();
            for strategy in [Strategy::NaivePaper, Strategy::Optimized, Strategy::Batch] {
                let mut stream = StreamingEvaluator::with_strategy(parse(src), strategy);
                for record in log.iter() {
                    stream.append(record).unwrap();
                }
                sets.push(stream.incidents());
            }
            assert_eq!(sets[0], sets[1], "optimized streaming mismatch on {src}");
            assert_eq!(sets[0], sets[2], "batch streaming mismatch on {src}");
        }
    }

    #[test]
    fn deltas_fire_at_completion_time() {
        let log = paper::figure3_log();
        let mut stream = StreamingEvaluator::new(parse("UpdateRefer -> GetReimburse"));
        let mut fired_at = None;
        for record in log.iter() {
            let delta = stream.append(record).unwrap();
            if !delta.is_empty() {
                assert!(fired_at.is_none());
                fired_at = Some(record.lsn().get());
            }
        }
        // The anomaly completes exactly when l20 (wid 2's GetReimburse)
        // arrives.
        assert_eq!(fired_at, Some(20));
    }

    #[test]
    fn records_seen_counts_appends() {
        let (stream, _) = replay("SeeDoctor");
        assert_eq!(stream.records_seen(), 20);
    }

    #[test]
    fn out_of_order_appends_are_rejected() {
        let log = paper::figure3_log();
        let mut stream = StreamingEvaluator::new(parse("A"));
        // Skipping the START record of wid 1 violates is-lsn continuity.
        let err = stream.append(&log.records()[2]).unwrap_err();
        assert!(matches!(
            err,
            EngineError::InvalidLog(LogError::NonConsecutiveIsLsn { .. })
        ));
    }

    #[test]
    fn appends_after_end_are_rejected() {
        use wlq_log::LogRecord;
        let mut stream = StreamingEvaluator::new(parse("A"));
        stream.append(&LogRecord::start(1, 1u64)).unwrap();
        stream.append(&LogRecord::end(2, 1u64, 2u32)).unwrap();
        let extra = LogRecord::new(
            3u64,
            1u64,
            3u32,
            "A",
            Default::default(),
            Default::default(),
        );
        assert!(matches!(
            stream.append(&extra).unwrap_err(),
            EngineError::InvalidLog(LogError::RecordAfterEnd { .. })
        ));
    }

    #[test]
    fn first_record_must_be_start() {
        use wlq_log::LogRecord;
        let mut stream = StreamingEvaluator::new(parse("A"));
        let bad = LogRecord::new(
            1u64,
            1u64,
            1u32,
            "A",
            Default::default(),
            Default::default(),
        );
        assert!(matches!(
            stream.append(&bad).unwrap_err(),
            EngineError::InvalidLog(LogError::StartMismatch { .. })
        ));
    }

    #[test]
    fn shared_evaluator_is_usable_across_threads() {
        let log = paper::figure3_log();
        let shared = SharedStreamingEvaluator::new(parse("SeeDoctor"));
        // Appends must stay in per-wid order; split by instance across
        // threads (each instance's records stay ordered).
        crossbeam::thread::scope(|scope| {
            for wid in log.wids() {
                let shared = &shared;
                let records: Vec<_> = log.instance(wid).cloned().collect();
                scope.spawn(move |_| {
                    for r in records {
                        shared.append(&r).unwrap();
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(shared.records_seen(), 20);
        assert_eq!(shared.incidents().len(), 4);
    }

    #[test]
    fn choice_deltas_are_deduplicated() {
        let (stream, deltas) = replay("SeeDoctor | SeeDoctor");
        assert_eq!(stream.incidents().len(), 4);
        assert_eq!(deltas.len(), 4);
    }
}
