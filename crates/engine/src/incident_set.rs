//! Incident sets: `incL(p)`, grouped by workflow instance.

use std::collections::BTreeMap;
use std::fmt;

use wlq_log::Wid;

use crate::incident::Incident;

/// The set of all incidents of a pattern in a log (`incL(p)`), partitioned
/// by workflow instance.
///
/// Incidents never span instances (Definition 4 requires
/// `wid(o1) = wid(o2)`), so the per-`wid` partition is lossless and is the
/// unit of work for partitioned parallel evaluation. Within an instance,
/// incidents are kept sorted (by `first`, then full position vector — the
/// ordering the paper's Algorithm 1 assumes) and deduplicated (incident
/// *sets* contain each set of records once).
///
/// # Examples
///
/// ```
/// use wlq_engine::{Incident, IncidentSet};
/// use wlq_log::{IsLsn, Wid};
///
/// let mut set = IncidentSet::new();
/// set.insert(Incident::singleton(Wid(1), IsLsn(4)));
/// set.insert(Incident::singleton(Wid(2), IsLsn(2)));
/// set.insert(Incident::singleton(Wid(1), IsLsn(4))); // duplicate, ignored
/// assert_eq!(set.len(), 2);
/// assert_eq!(set.for_wid(Wid(1)).len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncidentSet {
    by_wid: BTreeMap<Wid, Vec<Incident>>,
}

impl IncidentSet {
    /// Creates an empty incident set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a set from per-instance incident lists.
    ///
    /// Each list is sorted and deduplicated; empty lists are dropped.
    #[must_use]
    pub fn from_partitions(parts: impl IntoIterator<Item = (Wid, Vec<Incident>)>) -> Self {
        let mut by_wid = BTreeMap::new();
        for (wid, mut incidents) in parts {
            incidents.sort_unstable();
            incidents.dedup();
            if !incidents.is_empty() {
                by_wid.insert(wid, incidents);
            }
        }
        IncidentSet { by_wid }
    }

    /// Total number of incidents across all instances.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_wid.values().map(Vec::len).sum()
    }

    /// Whether the set holds no incidents (the query found nothing).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_wid.is_empty()
    }

    /// Inserts an incident, keeping per-instance order and uniqueness.
    /// Returns `true` if it was new.
    pub fn insert(&mut self, incident: Incident) -> bool {
        let list = self.by_wid.entry(incident.wid()).or_default();
        match list.binary_search(&incident) {
            Ok(_) => false,
            Err(pos) => {
                list.insert(pos, incident);
                true
            }
        }
    }

    /// Whether `incident` is in the set.
    #[must_use]
    pub fn contains(&self, incident: &Incident) -> bool {
        self.by_wid
            .get(&incident.wid())
            .is_some_and(|list| list.binary_search(incident).is_ok())
    }

    /// The incidents of one instance, sorted (empty slice if none).
    #[must_use]
    pub fn for_wid(&self, wid: Wid) -> &[Incident] {
        self.by_wid.get(&wid).map_or(&[], Vec::as_slice)
    }

    /// The instances that have at least one incident, ascending.
    pub fn wids(&self) -> impl Iterator<Item = Wid> + '_ {
        self.by_wid.keys().copied()
    }

    /// Iterates over all incidents, by instance then in-instance order.
    pub fn iter(&self) -> impl Iterator<Item = &Incident> {
        self.by_wid.values().flatten()
    }

    /// Number of instances with at least one incident.
    #[must_use]
    pub fn num_matched_instances(&self) -> usize {
        self.by_wid.len()
    }

    /// Per-instance incident counts.
    #[must_use]
    pub fn counts_by_wid(&self) -> BTreeMap<Wid, usize> {
        self.by_wid.iter().map(|(w, v)| (*w, v.len())).collect()
    }

    /// Consumes the set into its per-instance partitions.
    #[must_use]
    pub fn into_partitions(self) -> BTreeMap<Wid, Vec<Incident>> {
        self.by_wid
    }

    /// Merges another incident set into this one (set union).
    ///
    /// Both per-instance lists are already sorted and deduplicated (the
    /// type's invariant), so each instance is combined by a linear
    /// two-list merge rather than an append-and-re-sort.
    pub fn merge(&mut self, other: IncidentSet) {
        use std::collections::btree_map::Entry;
        for (wid, incidents) in other.by_wid {
            match self.by_wid.entry(wid) {
                Entry::Vacant(slot) => {
                    slot.insert(incidents);
                }
                Entry::Occupied(mut slot) => {
                    let merged = merge_sorted(std::mem::take(slot.get_mut()), incidents);
                    *slot.get_mut() = merged;
                }
            }
        }
    }
}

/// Unions two sorted, deduplicated incident lists in `O(n1 + n2)`.
pub(crate) fn merge_sorted(a: Vec<Incident>, b: Vec<Incident>) -> Vec<Incident> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut xs, mut ys) = (a.into_iter().peekable(), b.into_iter().peekable());
    while let (Some(x), Some(y)) = (xs.peek(), ys.peek()) {
        match x.cmp(y) {
            std::cmp::Ordering::Less => {
                if let Some(x) = xs.next() {
                    out.push(x);
                }
            }
            std::cmp::Ordering::Greater => {
                if let Some(y) = ys.next() {
                    out.push(y);
                }
            }
            std::cmp::Ordering::Equal => {
                if let Some(x) = xs.next() {
                    out.push(x);
                }
                ys.next();
            }
        }
    }
    out.extend(xs);
    out.extend(ys);
    out
}

impl FromIterator<Incident> for IncidentSet {
    fn from_iter<I: IntoIterator<Item = Incident>>(iter: I) -> Self {
        let mut set = IncidentSet::new();
        for incident in iter {
            set.insert(incident);
        }
        set
    }
}

impl Extend<Incident> for IncidentSet {
    fn extend<I: IntoIterator<Item = Incident>>(&mut self, iter: I) {
        for incident in iter {
            self.insert(incident);
        }
    }
}

impl<'a> IntoIterator for &'a IncidentSet {
    type Item = &'a Incident;
    type IntoIter = Box<dyn Iterator<Item = &'a Incident> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl fmt::Display for IncidentSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, incident) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{incident}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::IsLsn;

    fn inc(wid: u64, ps: &[u32]) -> Incident {
        Incident::from_positions(Wid(wid), ps.iter().map(|&p| IsLsn(p)).collect())
    }

    #[test]
    fn insert_dedups_and_sorts() {
        let mut set = IncidentSet::new();
        assert!(set.insert(inc(1, &[5])));
        assert!(set.insert(inc(1, &[2])));
        assert!(!set.insert(inc(1, &[5])));
        assert_eq!(set.len(), 2);
        assert_eq!(set.for_wid(Wid(1)), &[inc(1, &[2]), inc(1, &[5])]);
    }

    #[test]
    fn merge_unions_overlapping_and_new_instances() {
        let mut a = IncidentSet::from_partitions(vec![
            (Wid(1), vec![inc(1, &[1]), inc(1, &[3]), inc(1, &[5])]),
            (Wid(2), vec![inc(2, &[2])]),
        ]);
        let b = IncidentSet::from_partitions(vec![
            (Wid(1), vec![inc(1, &[2]), inc(1, &[3]), inc(1, &[9])]),
            (Wid(3), vec![inc(3, &[7])]),
        ]);
        a.merge(b);
        assert_eq!(
            a.for_wid(Wid(1)),
            &[
                inc(1, &[1]),
                inc(1, &[2]),
                inc(1, &[3]),
                inc(1, &[5]),
                inc(1, &[9])
            ]
        );
        assert_eq!(a.for_wid(Wid(2)), &[inc(2, &[2])]);
        assert_eq!(a.for_wid(Wid(3)), &[inc(3, &[7])]);
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn from_partitions_drops_empty_and_dedups() {
        let set = IncidentSet::from_partitions(vec![
            (Wid(1), vec![inc(1, &[5]), inc(1, &[2]), inc(1, &[5])]),
            (Wid(2), vec![]),
        ]);
        assert_eq!(set.len(), 2);
        assert_eq!(set.num_matched_instances(), 1);
        assert!(set.for_wid(Wid(2)).is_empty());
    }

    #[test]
    fn contains_and_wids() {
        let set: IncidentSet = vec![inc(1, &[1]), inc(3, &[2])].into_iter().collect();
        assert!(set.contains(&inc(1, &[1])));
        assert!(!set.contains(&inc(2, &[1])));
        assert_eq!(set.wids().collect::<Vec<_>>(), vec![Wid(1), Wid(3)]);
    }

    #[test]
    fn merge_is_set_union() {
        let mut a: IncidentSet = vec![inc(1, &[1]), inc(1, &[2])].into_iter().collect();
        let b: IncidentSet = vec![inc(1, &[2]), inc(2, &[1])].into_iter().collect();
        a.merge(b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn counts_by_wid_reports_per_instance() {
        let set: IncidentSet = vec![inc(1, &[1]), inc(1, &[2]), inc(2, &[9])]
            .into_iter()
            .collect();
        let counts = set.counts_by_wid();
        assert_eq!(counts[&Wid(1)], 2);
        assert_eq!(counts[&Wid(2)], 1);
    }

    #[test]
    fn display_lists_incidents() {
        let set: IncidentSet = vec![inc(2, &[5, 9])].into_iter().collect();
        assert_eq!(set.to_string(), "{{5, 9}@wid2}");
        assert_eq!(IncidentSet::new().to_string(), "{}");
    }

    #[test]
    fn iteration_orders_by_wid_then_first() {
        let set: IncidentSet = vec![inc(2, &[1]), inc(1, &[7]), inc(1, &[3])]
            .into_iter()
            .collect();
        let order: Vec<String> = set.iter().map(ToString::to_string).collect();
        assert_eq!(order, ["{3}@wid1", "{7}@wid1", "{1}@wid2"]);
    }
}
