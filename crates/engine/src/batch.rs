//! Flat, arena-backed incident storage for the operator hot path.
//!
//! The classic representation — `Vec<Incident>` with one heap-allocated
//! position vector per incident — makes every operator union allocate, and
//! every comparison chase a pointer. [`IncidentBatch`] instead stores all
//! incidents of one `(wid, subpattern)` evaluation in struct-of-arrays
//! form: a single shared position *pool* (`Vec<IsLsn>`) plus lightweight
//! [`IncidentRef`] entries `{offset, len, first, last}` pointing into it.
//!
//! Invariants (checked in debug builds by
//! [`IncidentBatch::debug_check_invariants`]):
//!
//! - the pool is append-only for the duration of one evaluation: kernels
//!   only ever bump-append positions (a failed parallel merge may truncate
//!   back to its own mark, never below committed data);
//! - every ref's slice is strictly ascending and nonempty, with
//!   `first`/`last` caching its endpoints so comparisons and the
//!   `⊙`/`→` join conditions never touch the pool;
//! - finished batches keep their refs sorted by `(first, slice lex)`,
//!   which — because `slice[0] == first` — is exactly the derived
//!   [`Incident`] order within a wid, so conversion back to sorted
//!   `Vec<Incident>` is a straight copy.
//!
//! [`BatchArena`] recycles spent batches so a long evaluation (or a
//! parallel worker sweeping many instances) reuses its pool and ref
//! allocations instead of returning them to the allocator.

use std::cmp::Ordering;

use wlq_log::{IsLsn, Wid};

use crate::incident::Incident;

/// A reference to one incident inside an [`IncidentBatch`]'s pool.
///
/// `first` and `last` are cached copies of the slice endpoints: the
/// consecutive/sequential join conditions (`first(o2) = last(o1) + 1`,
/// `first(o2) > last(o1)`) and the primary sort key read only this struct,
/// never the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncidentRef {
    offset: u32,
    len: u32,
    first: IsLsn,
    last: IsLsn,
}

impl IncidentRef {
    /// `first(o)`: the smallest position, without touching the pool.
    #[must_use]
    pub fn first(&self) -> IsLsn {
        self.first
    }

    /// `last(o)`: the largest position, without touching the pool.
    #[must_use]
    pub fn last(&self) -> IsLsn {
        self.last
    }

    /// Number of positions in the incident.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Always `false`: incidents are nonempty by Definition 4.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    fn range(&self) -> std::ops::Range<usize> {
        self.offset as usize..self.offset as usize + self.len as usize
    }
}

/// All incidents of one `(wid, subpattern)` evaluation, in flat
/// struct-of-arrays form.
///
/// # Examples
///
/// ```
/// use wlq_engine::IncidentBatch;
/// use wlq_log::{IsLsn, Wid};
///
/// let batch = IncidentBatch::from_sorted_positions(Wid(1), [IsLsn(2), IsLsn(5)]);
/// assert_eq!(batch.len(), 2);
/// let incidents = batch.into_incidents();
/// assert_eq!(incidents[1].first(), IsLsn(5));
/// ```
#[derive(Debug, Clone)]
pub struct IncidentBatch {
    wid: Wid,
    pool: Vec<IsLsn>,
    refs: Vec<IncidentRef>,
}

impl IncidentBatch {
    /// An empty batch for one workflow instance.
    #[must_use]
    pub fn new(wid: Wid) -> Self {
        IncidentBatch {
            wid,
            pool: Vec::new(),
            refs: Vec::new(),
        }
    }

    /// An empty batch with pre-sized pool and ref storage.
    #[must_use]
    pub fn with_capacity(wid: Wid, incidents: usize, positions: usize) -> Self {
        IncidentBatch {
            wid,
            pool: Vec::with_capacity(positions),
            refs: Vec::with_capacity(incidents),
        }
    }

    /// Pre-sizes storage for `refs` more incidents and `positions` more
    /// pooled positions. Kernels that can compute their exact output size
    /// up front call this once so emission never reallocates the pool —
    /// reallocation during a wide `→` join would copy the entire
    /// partially-built pool, and was the root cause of the batch
    /// strategy's sequential end-to-end regression.
    pub fn reserve(&mut self, refs: usize, positions: usize) {
        self.refs.reserve(refs);
        self.pool.reserve(positions);
    }

    /// Clears the batch for reuse, keeping allocations.
    pub fn reset(&mut self, wid: Wid) {
        self.wid = wid;
        self.pool.clear();
        self.refs.clear();
    }

    /// The workflow instance all incidents belong to.
    #[must_use]
    pub fn wid(&self) -> Wid {
        self.wid
    }

    /// Number of incidents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// `true` if the batch holds no incidents.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Total pooled positions (diagnostics; larger than the sum of
    /// incident sizes only transiently inside a kernel).
    #[must_use]
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// The incident refs, in storage order (sorted once a kernel or
    /// constructor has finished).
    #[must_use]
    pub fn refs(&self) -> &[IncidentRef] {
        &self.refs
    }

    /// The position slice of a ref *obtained from this batch*.
    ///
    /// # Panics
    ///
    /// May panic (or return the wrong slice) if `r` came from a different
    /// batch.
    #[must_use]
    pub fn positions(&self, r: &IncidentRef) -> &[IsLsn] {
        &self.pool[r.range()]
    }

    /// The position slice of the `i`-th incident.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> &[IsLsn] {
        self.positions(&self.refs[i])
    }

    fn push_ref(&mut self, offset: usize, len: usize, first: IsLsn, last: IsLsn) {
        debug_assert!(len > 0, "incidents are nonempty");
        // A u32 ref layout caps each per-instance pool at 2^32 positions —
        // far above any real instance; the guard keeps the cast lossless.
        assert!(
            offset <= u32::MAX as usize && len <= u32::MAX as usize,
            "position pool exceeds u32::MAX entries"
        );
        #[allow(clippy::cast_possible_truncation)]
        self.refs.push(IncidentRef {
            offset: offset as u32,
            len: len as u32,
            first,
            last,
        });
    }

    /// Appends a one-record incident. Leaf emission: calling this over an
    /// ascending posting list yields a finished (sorted) batch.
    pub fn push_singleton(&mut self, position: IsLsn) {
        let offset = self.pool.len();
        self.pool.push(position);
        self.push_ref(offset, 1, position, position);
    }

    /// Appends an incident given its strictly ascending position slice.
    pub fn push_sorted_positions(&mut self, positions: &[IsLsn]) {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must be ascending"
        );
        let offset = self.pool.len();
        self.pool.extend_from_slice(positions);
        self.push_ref(
            offset,
            positions.len(),
            positions[0],
            positions[positions.len() - 1],
        );
    }

    /// Appends the union of two incidents whose ranges do not interleave:
    /// every position of `low` precedes every position of `high`. This is
    /// the zero-compare union of the `⊙`/`→` kernels — the join condition
    /// `first(high) > last(low)` already guarantees the layout, so the
    /// union is a bump-append of both slices.
    pub fn push_concat(&mut self, low: &[IsLsn], high: &[IsLsn]) {
        debug_assert!(
            low.last() < high.first(),
            "push_concat requires disjoint, ordered operands"
        );
        let offset = self.pool.len();
        self.pool.extend_from_slice(low);
        self.pool.extend_from_slice(high);
        self.push_ref(offset, low.len() + high.len(), low[0], high[high.len() - 1]);
    }

    /// Current pool end — the rollback point for a speculative merge.
    #[must_use]
    pub fn pool_mark(&self) -> usize {
        self.pool.len()
    }

    /// Rolls an uncommitted merge back to `mark` (the `⊕` kernel aborting
    /// on a shared position). Never truncates below committed refs.
    pub fn truncate_pool(&mut self, mark: usize) {
        debug_assert!(
            self.refs.last().is_none_or(|r| r.range().end <= mark),
            "truncating below committed refs"
        );
        self.pool.truncate(mark);
    }

    /// Appends one position of an in-progress merge (commit with
    /// [`commit_ref`](Self::commit_ref) or abandon with
    /// [`truncate_pool`](Self::truncate_pool)).
    pub fn push_position(&mut self, position: IsLsn) {
        self.pool.push(position);
    }

    /// Seals the positions appended since `mark` into a new incident.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if nothing was appended or the run is not
    /// strictly ascending.
    pub fn commit_ref(&mut self, mark: usize) {
        let len = self.pool.len() - mark;
        debug_assert!(len > 0, "committing an empty incident");
        debug_assert!(
            self.pool[mark..].windows(2).all(|w| w[0] < w[1]),
            "committed positions must be ascending"
        );
        let (first, last) = (self.pool[mark], self.pool[self.pool.len() - 1]);
        self.push_ref(mark, len, first, last);
    }

    /// Builds a batch from a sorted, deduplicated incident list (the
    /// boundary conversion used when only one side of a combine is already
    /// in batch form).
    #[must_use]
    pub fn from_incidents(wid: Wid, incidents: &[Incident]) -> Self {
        let positions: usize = incidents.iter().map(Incident::len).sum();
        let mut batch = IncidentBatch::with_capacity(wid, incidents.len(), positions);
        for incident in incidents {
            debug_assert_eq!(incident.wid(), wid, "incident from another instance");
            batch.push_sorted_positions(incident.positions());
        }
        debug_assert!(
            incidents.windows(2).all(|w| w[0] < w[1]),
            "input must be sorted+deduped"
        );
        batch
    }

    /// A batch of singletons from ascending positions (leaf evaluation).
    #[must_use]
    pub fn from_sorted_positions(wid: Wid, positions: impl IntoIterator<Item = IsLsn>) -> Self {
        let mut batch = IncidentBatch::new(wid);
        for p in positions {
            batch.push_singleton(p);
        }
        debug_assert!(batch.refs.windows(2).all(|w| w[0].first < w[1].first));
        batch
    }

    /// Converts to the classic representation, preserving order, and
    /// clears the batch so its allocations can be recycled.
    pub fn drain_incidents(&mut self) -> Vec<Incident> {
        let out = self
            .refs
            .iter()
            .map(|r| {
                Incident::from_sorted_positions_unchecked(self.wid, self.pool[r.range()].to_vec())
            })
            .collect();
        let wid = self.wid;
        self.reset(wid);
        out
    }

    /// Converts to the classic representation, preserving order.
    #[must_use]
    pub fn into_incidents(mut self) -> Vec<Incident> {
        self.drain_incidents()
    }

    /// Compares two refs of *this* batch in incident order: by the cached
    /// `first` (no pool access), then by position-slice lexicographic
    /// order. Since `slice[0] == first`, this equals the derived
    /// [`Incident`] ordering within one wid.
    #[must_use]
    pub fn cmp_within(&self, a: &IncidentRef, b: &IncidentRef) -> Ordering {
        a.first
            .cmp(&b.first)
            .then_with(|| self.positions(a).cmp(self.positions(b)))
    }

    /// Compares a ref of `self` against a ref of `other` in incident
    /// order (the `⊗` kernel's merge comparator).
    #[must_use]
    pub fn cmp_across(&self, a: &IncidentRef, other: &IncidentBatch, b: &IncidentRef) -> Ordering {
        a.first
            .cmp(&b.first)
            .then_with(|| self.positions(a).cmp(other.positions(b)))
    }

    /// Restores full sorted order when only the primary key is already in
    /// place: refs must arrive sorted by `first` (guaranteed by the
    /// `⊙`/`→` kernels, which scan a first-sorted left input and emit
    /// unions keeping the left operand's `first`); each maximal run of
    /// equal `first` is then sorted by slice order and duplicates — which
    /// can only occur within a run, as equal incidents share `first` —
    /// are dropped. This replaces the blanket output re-sort of the
    /// classic operators with `O(Σ run log run)` work, zero when every
    /// `first` is distinct.
    pub fn finish_runs(&mut self) {
        let IncidentBatch { pool, refs, .. } = self;
        debug_assert!(
            refs.windows(2).all(|w| w[0].first <= w[1].first),
            "runs out of order"
        );
        let n = refs.len();
        let mut start = 0;
        while start < n {
            let mut end = start + 1;
            while end < n && refs[end].first == refs[start].first {
                end += 1;
            }
            if end - start > 1 {
                refs[start..end].sort_unstable_by(|a, b| pool[a.range()].cmp(&pool[b.range()]));
            }
            start = end;
        }
        refs.dedup_by(|a, b| pool[a.range()] == pool[b.range()]);
        self.debug_check_invariants();
    }

    /// Restores full sorted order with no precondition (the `⊕` kernel,
    /// whose unions take `first` from either operand).
    pub fn finish_full(&mut self) {
        let IncidentBatch { pool, refs, .. } = self;
        refs.sort_unstable_by(|a, b| {
            a.first
                .cmp(&b.first)
                .then_with(|| pool[a.range()].cmp(&pool[b.range()]))
        });
        refs.dedup_by(|a, b| pool[a.range()] == pool[b.range()]);
        self.debug_check_invariants();
    }

    /// Debug-build validation of the layout invariants; a no-op in
    /// release builds.
    pub fn debug_check_invariants(&self) {
        #[cfg(debug_assertions)]
        {
            for r in &self.refs {
                let slice = &self.pool[r.range()];
                assert!(!slice.is_empty(), "empty incident ref");
                assert!(
                    slice.windows(2).all(|w| w[0] < w[1]),
                    "unsorted incident slice"
                );
                assert_eq!(r.first, slice[0], "stale cached first");
                assert_eq!(r.last, slice[slice.len() - 1], "stale cached last");
            }
            assert!(
                self.refs
                    .windows(2)
                    .all(|w| self.cmp_within(&w[0], &w[1]) == Ordering::Less),
                "finished batch refs must be strictly sorted"
            );
        }
    }
}

/// A free-list of spent [`IncidentBatch`]es.
///
/// Evaluation allocates one output batch per operator node and retires
/// both inputs immediately after combining; recycling them means a whole
/// query — or a parallel worker's whole sweep of instances — touches the
/// allocator only while high-water marks still grow. Arenas are never
/// shared: each worker owns its own.
#[derive(Debug, Default)]
pub struct BatchArena {
    free: Vec<IncidentBatch>,
}

impl BatchArena {
    /// An empty arena.
    #[must_use]
    pub fn new() -> Self {
        BatchArena::default()
    }

    /// A cleared batch for `wid`, reusing a retired batch's allocations
    /// when one is available.
    pub fn alloc(&mut self, wid: Wid) -> IncidentBatch {
        match self.free.pop() {
            Some(mut batch) => {
                batch.reset(wid);
                batch
            }
            None => IncidentBatch::new(wid),
        }
    }

    /// Returns a batch's allocations to the free-list.
    pub fn recycle(&mut self, batch: IncidentBatch) {
        self.free.push(batch);
    }

    /// Number of batches currently pooled.
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lsns(ps: &[u32]) -> Vec<IsLsn> {
        ps.iter().map(|&p| IsLsn(p)).collect()
    }

    #[test]
    fn round_trips_incident_lists() {
        let incidents = vec![
            Incident::from_positions(Wid(3), lsns(&[1, 4])),
            Incident::from_positions(Wid(3), lsns(&[2])),
            Incident::from_positions(Wid(3), lsns(&[2, 5, 7])),
        ];
        let batch = IncidentBatch::from_incidents(Wid(3), &incidents);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.pool_len(), 6);
        assert_eq!(batch.get(2), lsns(&[2, 5, 7]).as_slice());
        batch.debug_check_invariants();
        assert_eq!(batch.into_incidents(), incidents);
    }

    #[test]
    fn concat_union_caches_endpoints() {
        let mut batch = IncidentBatch::new(Wid(1));
        batch.push_concat(&lsns(&[2, 3]), &lsns(&[5, 9]));
        let r = batch.refs()[0];
        assert_eq!((r.first(), r.last(), r.len()), (IsLsn(2), IsLsn(9), 4));
        assert_eq!(batch.positions(&r), lsns(&[2, 3, 5, 9]).as_slice());
    }

    #[test]
    fn finish_runs_sorts_ties_and_dedups() {
        let mut batch = IncidentBatch::new(Wid(1));
        // Three incidents sharing first=1, one duplicated, plus a later one.
        batch.push_sorted_positions(&lsns(&[1, 9]));
        batch.push_sorted_positions(&lsns(&[1, 2]));
        batch.push_sorted_positions(&lsns(&[1, 9]));
        batch.push_sorted_positions(&lsns(&[4]));
        batch.finish_runs();
        let out: Vec<&[IsLsn]> = (0..batch.len()).map(|i| batch.get(i)).collect();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], lsns(&[1, 2]).as_slice());
        assert_eq!(out[1], lsns(&[1, 9]).as_slice());
        assert_eq!(out[2], lsns(&[4]).as_slice());
    }

    #[test]
    fn speculative_merge_rolls_back_cleanly() {
        let mut batch = IncidentBatch::new(Wid(1));
        batch.push_singleton(IsLsn(1));
        let mark = batch.pool_mark();
        batch.push_position(IsLsn(3));
        batch.push_position(IsLsn(4));
        batch.truncate_pool(mark); // abandoned: operands shared a record
        let mark = batch.pool_mark();
        batch.push_position(IsLsn(5));
        batch.commit_ref(mark);
        batch.finish_full();
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.get(1), lsns(&[5]).as_slice());
    }

    #[test]
    fn arena_recycles_allocations() {
        let mut arena = BatchArena::new();
        let mut batch = arena.alloc(Wid(1));
        batch.push_singleton(IsLsn(1));
        arena.recycle(batch);
        assert_eq!(arena.pooled(), 1);
        let again = arena.alloc(Wid(2));
        assert!(again.is_empty());
        assert_eq!(again.wid(), Wid(2));
        assert_eq!(arena.pooled(), 0);
    }
}
