//! The planner's cost model: Lemma-1 logical bounds plus per-physical-
//! operator refinements.
//!
//! Logical estimates (output cardinalities, Algorithm-1 work shapes) are
//! delegated to the pattern crate's [`CostModel`], fed with the same
//! [`wlq_log::LogStats`] the algebraic optimizer uses — one source of
//! truth for selectivities. On top of that, this module prices the
//! *physical* alternatives for each operator so the planner can pick a
//! kernel per node:
//!
//! | operator | physical | cost shape |
//! |---|---|---|
//! | `⊙`/`→` | nested loop | `n1·n2 + copy` |
//! | `⊙`/`→` | batch kernel | `n1·log n2 + copy` |
//! | `→` | sort-merge | `n1 + n2 + copy` |
//! | `⊗` | batch kernel | `(n1+n2)·min(k1,k2)` |
//! | `⊕` | batch kernel | `n1·n2·(k1+k2)` |
//!
//! where `copy = out·(k1+k2)` is the unavoidable cost of writing the
//! output unions into the pool.

use wlq_pattern::{CostModel, Op, Pattern};

use super::plan::PhysOp;
use super::stats::PlanStats;

/// Estimated shape of one join node: input cardinalities, subtree
/// widths, and output cardinality.
#[derive(Debug, Clone, Copy)]
pub struct JoinShape {
    /// Estimated left input cardinality.
    pub n1: f64,
    /// Estimated right input cardinality.
    pub n2: f64,
    /// Number of atoms in the left subtree (incident width).
    pub k1: f64,
    /// Number of atoms in the right subtree (incident width).
    pub k2: f64,
    /// Estimated output cardinality.
    pub out: f64,
}

/// Cost model combining the pattern-level estimates with physical
/// operator pricing.
#[derive(Debug, Clone)]
pub struct PlanCost {
    model: CostModel,
    stats: PlanStats,
}

impl PlanCost {
    /// Builds the model from collected plan statistics.
    #[must_use]
    pub fn new(stats: PlanStats) -> Self {
        PlanCost {
            model: CostModel::new(stats.log_stats().clone()),
            stats,
        }
    }

    /// The underlying pattern-level cost model.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The statistics the model was built from.
    #[must_use]
    pub fn stats(&self) -> &PlanStats {
        &self.stats
    }

    /// Estimated `|incL(p)|` (delegates to the shared model).
    #[must_use]
    pub fn estimate_incidents(&self, p: &Pattern) -> f64 {
        self.model.estimate_incidents(p)
    }

    /// Estimated cost of scanning one leaf (one pass over the index's
    /// posting lists — bounded by the record count).
    #[must_use]
    pub fn leaf_cost(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.stats.log_stats().num_records.max(1) as f64
        }
    }

    /// Estimated work of one `(op, phys)` node on inputs of the given
    /// [`JoinShape`].
    #[must_use]
    pub fn physical_cost(&self, op: Op, phys: PhysOp, shape: JoinShape) -> f64 {
        let JoinShape {
            n1,
            n2,
            k1,
            k2,
            out,
        } = shape;
        let copy = out * (k1 + k2);
        match (phys, op) {
            (PhysOp::NestedLoop, Op::Consecutive | Op::Sequential) => n1 * n2 + copy,
            (PhysOp::BatchKernel, Op::Consecutive | Op::Sequential) => {
                n1 * (n2 + 2.0).log2() + copy
            }
            (PhysOp::SortMergeSeq, _) => n1 + n2 + copy,
            (_, Op::Choice) => (n1 + n2) * k1.min(k2).max(1.0),
            (_, Op::Parallel) => n1 * n2 * (k1 + k2).max(1.0),
        }
    }

    /// Chooses the cheapest applicable physical operator for one node.
    ///
    /// The sort-merge sequential join is only offered when the left child
    /// is a leaf: leaf batches are singleton runs, so their refs are
    /// strictly ascending in `last` and the kernel's monotone-cursor
    /// precondition is guaranteed rather than probed.
    #[must_use]
    pub fn choose_physical(&self, op: Op, left_is_leaf: bool, shape: JoinShape) -> (PhysOp, f64) {
        let mut options: Vec<PhysOp> = Vec::with_capacity(3);
        match op {
            Op::Sequential => {
                if left_is_leaf {
                    options.push(PhysOp::SortMergeSeq);
                }
                options.push(PhysOp::BatchKernel);
                options.push(PhysOp::NestedLoop);
            }
            Op::Consecutive => {
                options.push(PhysOp::BatchKernel);
                options.push(PhysOp::NestedLoop);
            }
            // ⊗/⊕ have a single physical implementation (the nested-loop
            // dispatch delegates to the same kernels).
            Op::Choice | Op::Parallel => options.push(PhysOp::BatchKernel),
        }
        let mut best = (PhysOp::BatchKernel, f64::INFINITY);
        for phys in options {
            let cost = self.physical_cost(op, phys, shape);
            if cost < best.1 {
                best = (phys, cost);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::{paper, LogIndex};

    fn cost() -> PlanCost {
        let log = paper::figure3_log();
        let index = LogIndex::build(&log);
        PlanCost::new(PlanStats::compute(&log, &index))
    }

    fn shape(n1: f64, n2: f64, k1: f64, k2: f64, out: f64) -> JoinShape {
        JoinShape {
            n1,
            n2,
            k1,
            k2,
            out,
        }
    }

    #[test]
    fn sort_merge_wins_wide_leaf_joins() {
        let c = cost();
        let (phys, _) = c.choose_physical(
            Op::Sequential,
            true,
            shape(1000.0, 1000.0, 1.0, 1.0, 250_000.0),
        );
        assert_eq!(phys, PhysOp::SortMergeSeq);
    }

    #[test]
    fn sort_merge_not_offered_for_composite_lefts() {
        let c = cost();
        let (phys, _) = c.choose_physical(
            Op::Sequential,
            false,
            shape(1000.0, 1000.0, 2.0, 1.0, 250_000.0),
        );
        assert_ne!(phys, PhysOp::SortMergeSeq);
    }

    #[test]
    fn nested_loop_wins_tiny_inputs() {
        let c = cost();
        // n2 = 1: one probe beats a log-factor binary search setup.
        let (phys, _) = c.choose_physical(Op::Consecutive, false, shape(2.0, 1.0, 1.0, 1.0, 0.5));
        assert_eq!(phys, PhysOp::NestedLoop);
    }

    #[test]
    fn choice_and_parallel_use_the_batch_kernels() {
        let c = cost();
        for op in [Op::Choice, Op::Parallel] {
            let (phys, _) = c.choose_physical(op, true, shape(10.0, 10.0, 1.0, 1.0, 20.0));
            assert_eq!(phys, PhysOp::BatchKernel);
        }
    }
}
