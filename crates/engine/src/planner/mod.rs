//! Cost-based query planning: algebraic rewrites plus per-node physical
//! operator selection.
//!
//! The planner sits between parsing and evaluation. Given a pattern it
//!
//! 1. collects per-task cardinality and span statistics from the log and
//!    its activity index ([`PlanStats`]),
//! 2. enumerates equivalent trees via the paper's Theorem 2–5 rewrites
//!    ([`RewriteCandidate`]),
//! 3. costs every candidate bottom-up with Lemma-1-style per-operator
//!    bounds refined per physical implementation ([`PlanCost`]), and
//! 4. picks the cheapest tree with a physical operator chosen per node
//!    ([`PhysicalPlan`]): nested loop, batch kernel, or the sort-merge
//!    sequential join — plus a flag routing `count()`/`exists()` to the
//!    enumeration-free counting DP when the pattern is a `~>`/`→` chain.
//!
//! Rewrites never change semantics: every candidate evaluates to the same
//! `incL(p)` (differentially verified by `wlq-difffuzz` and the
//! `plan_equiv` proptest). Because the original pattern is always among
//! the candidates, planning can never pick a tree worse than not planning
//! — by its own estimates — and [`crate::Strategy::Planned`] is therefore
//! the default strategy.

mod cost;
mod plan;
mod rewrite;
mod stats;

pub use cost::{JoinShape, PlanCost};
pub use plan::{PhysOp, PhysicalPlan, PlanNode, PlanRow, Planner};
pub use rewrite::{candidates, RewriteCandidate};
pub use stats::PlanStats;
