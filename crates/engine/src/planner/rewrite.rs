//! Candidate enumeration: the equivalent trees the planner costs.
//!
//! Every candidate is derived from the input pattern by rewrites the
//! paper proves semantics-preserving:
//!
//! * **Theorems 2/4** (associativity of `⊙`/`→`/`⊗`/`⊕` and of mixed
//!   sequence chains): left-deep and right-deep reshapes, plus the
//!   algebraic optimizer's matrix-chain DP parenthesisation.
//! * **Theorem 3** (commutativity of `⊗`/`⊕`): the optimizer reorders
//!   commutative chain operands smallest-first.
//! * **Theorem 5** (distributivity over `⊗`): factoring shared operands
//!   out of choices, and — bounded, since it is exponential — the inverse
//!   distribution to choice normal form.
//!
//! The set always contains the original pattern, so costing candidates
//! can never regress: the worst case is choosing the tree that was going
//! to run anyway. Equivalence of every candidate is differentially
//! verified (`wlq-difffuzz` and `tests/plan_equiv.rs`).

use wlq_pattern::rewrite::{factor, left_deep, right_deep};
use wlq_pattern::{choice_normal_form, from_alternatives, Optimizer, Pattern};

/// One equivalent rewriting of the query, labelled with the rule that
/// produced it.
#[derive(Debug, Clone)]
pub struct RewriteCandidate {
    /// The rewritten pattern.
    pub pattern: Pattern,
    /// The rewrite rule (for `explain` output).
    pub rule: &'static str,
}

/// Distribution to choice normal form is exponential in the number of
/// choice operators; only expansions up to this many alternatives are
/// considered.
const MAX_ALTERNATIVES: usize = 8;

fn push(out: &mut Vec<RewriteCandidate>, pattern: Pattern, rule: &'static str) {
    if !out.iter().any(|c| c.pattern == pattern) {
        out.push(RewriteCandidate { pattern, rule });
    }
}

/// Enumerates the candidate trees for `p`, deduplicated, original first.
#[must_use]
pub fn candidates(optimizer: &Optimizer, p: &Pattern) -> Vec<RewriteCandidate> {
    let mut out = Vec::with_capacity(6);
    push(&mut out, p.clone(), "original");
    push(&mut out, factor(p), "factor common choice operands (Thm 5)");
    push(
        &mut out,
        optimizer.optimize(p),
        "cost-based reshape (Thms 2-4)",
    );
    push(&mut out, left_deep(p), "left-deep chains (Thms 2/4)");
    push(&mut out, right_deep(p), "right-deep chains (Thms 2/4)");
    let alternatives = choice_normal_form(p);
    if alternatives.len() > 1 && alternatives.len() <= MAX_ALTERNATIVES {
        if let Some(distributed) = from_alternatives(&alternatives) {
            push(&mut out, distributed, "distribute over choice (Thm 5)");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::{paper, LogStats};

    fn parse(s: &str) -> Pattern {
        s.parse().expect("valid pattern")
    }

    fn optimizer() -> Optimizer {
        Optimizer::new(LogStats::compute(&paper::figure3_log()))
    }

    #[test]
    fn original_is_always_first() {
        let p = parse("SeeDoctor -> PayTreatment");
        let cands = candidates(&optimizer(), &p);
        assert_eq!(cands[0].pattern, p);
        assert_eq!(cands[0].rule, "original");
    }

    #[test]
    fn atoms_yield_a_single_candidate() {
        let cands = candidates(&optimizer(), &parse("SeeDoctor"));
        assert_eq!(cands.len(), 1);
    }

    #[test]
    fn candidates_are_deduplicated() {
        let p = parse("SeeDoctor -> PayTreatment");
        let cands = candidates(&optimizer(), &p);
        for (i, a) in cands.iter().enumerate() {
            for b in &cands[i + 1..] {
                assert_ne!(a.pattern, b.pattern, "duplicate candidate {}", a.pattern);
            }
        }
    }

    #[test]
    fn factored_and_distributed_shapes_both_appear() {
        let p = parse("(SeeDoctor -> PayTreatment) | (SeeDoctor -> UpdateRefer)");
        let cands = candidates(&optimizer(), &p);
        let rules: Vec<&str> = cands.iter().map(|c| c.rule).collect();
        assert!(rules.iter().any(|r| r.contains("factor")), "{rules:?}");
        // The original is already in distributed form, so re-distribution
        // dedups away; the factored tree must be a genuine alternative.
        assert!(cands
            .iter()
            .any(|c| c.pattern == parse("SeeDoctor -> (PayTreatment | UpdateRefer)")));
    }

    #[test]
    fn deep_reshapes_cover_both_directions() {
        let p = parse("A -> (B -> (C -> D))");
        let cands = candidates(&optimizer(), &p);
        assert!(cands
            .iter()
            .any(|c| c.pattern == parse("((A -> B) -> C) -> D")));
        assert!(cands.iter().any(|c| c.pattern == p));
    }
}
