//! Physical plans: per-node operator selection over a chosen rewrite.

use std::fmt;

use wlq_log::{Log, LogIndex};
use wlq_pattern::{Atom, Op, Optimizer, Pattern};

use super::cost::{JoinShape, PlanCost};
use super::rewrite::{candidates, RewriteCandidate};
use super::stats::PlanStats;

/// The physical implementation chosen for one operator node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhysOp {
    /// The paper's Algorithm 1 all-pairs join — cheapest on tiny inputs.
    NestedLoop,
    /// The flat batch kernel (binary-search partner runs for `⊙`/`→`,
    /// sorted merges for `⊗`, speculative merge for `⊕`).
    BatchKernel,
    /// The sort-merge sequential join: one monotone cursor over the
    /// right operand, `O(n1 + n2 + out)`. Sequential (`→`) nodes only.
    SortMergeSeq,
}

impl PhysOp {
    /// A short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PhysOp::NestedLoop => "nested-loop",
            PhysOp::BatchKernel => "batch-kernel",
            PhysOp::SortMergeSeq => "sort-merge",
        }
    }
}

/// One node of a physical plan, annotated with the cost model's
/// estimates.
#[derive(Debug, Clone)]
pub enum PlanNode {
    /// A leaf: one index posting scan.
    Leaf {
        /// The atomic pattern to scan.
        atom: Atom,
        /// Estimated incidents produced.
        estimate: f64,
        /// Estimated scan cost.
        cost: f64,
    },
    /// An operator node with a chosen physical implementation.
    Join {
        /// The logical operator.
        op: Op,
        /// The physical operator executing it.
        phys: PhysOp,
        /// Left input plan.
        left: Box<PlanNode>,
        /// Right input plan.
        right: Box<PlanNode>,
        /// Estimated incidents produced.
        estimate: f64,
        /// Estimated total cost of this subtree (children included).
        cost: f64,
    },
}

/// One row of a rendered plan tree, in pre-order: the single source of
/// truth for every plan display — `Display for PhysicalPlan`, `wlq
/// explain --plan`, and the profiler's `--analyze` tree all consume
/// these rows instead of keeping their own formatters.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanRow {
    /// Tree depth (root = 0).
    pub depth: usize,
    /// Display label: `scan <atom>` for leaves, `<op> [<phys>]` for
    /// joins.
    pub label: String,
    /// The sub-pattern this node evaluates, as text.
    pub pattern: String,
    /// Estimated incidents produced.
    pub estimate: f64,
    /// Estimated total cost of the subtree (children included).
    pub cost: f64,
    /// Whether the node is a leaf scan.
    pub is_leaf: bool,
}

impl PlanNode {
    /// Estimated incidents this node produces.
    #[must_use]
    pub fn estimate(&self) -> f64 {
        match self {
            PlanNode::Leaf { estimate, .. } | PlanNode::Join { estimate, .. } => *estimate,
        }
    }

    /// Estimated total cost of this subtree.
    #[must_use]
    pub fn cost(&self) -> f64 {
        match self {
            PlanNode::Leaf { cost, .. } | PlanNode::Join { cost, .. } => *cost,
        }
    }

    /// Whether this node is a leaf scan.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self, PlanNode::Leaf { .. })
    }

    /// Rebuilds the logical pattern this plan evaluates.
    #[must_use]
    pub fn pattern(&self) -> Pattern {
        match self {
            PlanNode::Leaf { atom, .. } => Pattern::Atom(atom.clone()),
            PlanNode::Join {
                op, left, right, ..
            } => Pattern::binary(*op, left.pattern(), right.pattern()),
        }
    }

    /// Number of nodes in this subtree (the profiler uses this to keep
    /// pre-order node indices aligned across short-circuited branches).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        match self {
            PlanNode::Leaf { .. } => 1,
            PlanNode::Join { left, right, .. } => 1 + left.num_nodes() + right.num_nodes(),
        }
    }

    /// The plan tree flattened to display rows in pre-order.
    #[must_use]
    pub fn rows(&self) -> Vec<PlanRow> {
        let mut rows = Vec::with_capacity(self.num_nodes());
        self.collect_rows(0, &mut rows);
        rows
    }

    fn collect_rows(&self, depth: usize, rows: &mut Vec<PlanRow>) {
        match self {
            PlanNode::Leaf {
                atom,
                estimate,
                cost,
            } => {
                let pattern = Pattern::Atom(atom.clone());
                rows.push(PlanRow {
                    depth,
                    label: format!("scan {pattern}"),
                    pattern: pattern.to_string(),
                    estimate: *estimate,
                    cost: *cost,
                    is_leaf: true,
                });
            }
            PlanNode::Join {
                op,
                phys,
                left,
                right,
                estimate,
                cost,
            } => {
                rows.push(PlanRow {
                    depth,
                    label: format!("{} [{}]", op.name(), phys.name()),
                    pattern: self.pattern().to_string(),
                    estimate: *estimate,
                    cost: *cost,
                    is_leaf: false,
                });
                left.collect_rows(depth + 1, rows);
                right.collect_rows(depth + 1, rows);
            }
        }
    }

    fn render(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in self.rows() {
            let indent = row.depth * 2;
            if row.is_leaf {
                writeln!(f, "{:indent$}{}  (est {:.1})", "", row.label, row.estimate)?;
            } else {
                writeln!(
                    f,
                    "{:indent$}{}  (est {:.1}, cost {:.0})",
                    "", row.label, row.estimate, row.cost
                )?;
            }
        }
        Ok(())
    }
}

/// Whether `p` is a `~>`/`->` chain of predicate-free atoms — exactly the
/// shapes [`crate::fast_count`] supports (any parenthesisation, negated
/// atoms included), so `count()`/`exists()` can take the enumeration-free
/// DP instead of executing the plan.
fn is_counting_chain(p: &Pattern) -> bool {
    match p {
        Pattern::Atom(atom) => atom.predicates.is_empty(),
        Pattern::Binary {
            op: Op::Consecutive | Op::Sequential,
            left,
            right,
        } => is_counting_chain(left) && is_counting_chain(right),
        Pattern::Binary { .. } => false,
    }
}

/// A costed physical plan: the winning rewrite, per-node physical
/// operators, and the scored alternatives (for `explain`).
#[derive(Debug, Clone)]
pub struct PhysicalPlan {
    query: Pattern,
    root: PlanNode,
    rule: &'static str,
    pattern: Pattern,
    counting_chain: bool,
    scored: Vec<(String, f64)>,
}

impl PhysicalPlan {
    /// The query as given to the planner.
    #[must_use]
    pub fn query(&self) -> &Pattern {
        &self.query
    }

    /// The root of the physical operator tree.
    #[must_use]
    pub fn root(&self) -> &PlanNode {
        &self.root
    }

    /// The rewrite rule that produced the winning tree.
    #[must_use]
    pub fn rule(&self) -> &'static str {
        self.rule
    }

    /// The rewritten pattern the plan evaluates (equivalent to the query
    /// by Theorems 2–5).
    #[must_use]
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Estimated total cost of the plan.
    #[must_use]
    pub fn cost(&self) -> f64 {
        self.root.cost()
    }

    /// Whether `count()`/`exists()` can route to the enumeration-free
    /// counting DP ([`crate::fast_count`]) instead of executing the plan.
    #[must_use]
    pub fn is_counting_chain(&self) -> bool {
        self.counting_chain
    }

    /// Every candidate considered, as `(rule: pattern, estimated cost)`,
    /// in enumeration order.
    #[must_use]
    pub fn scored_candidates(&self) -> &[(String, f64)] {
        &self.scored
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "chosen: {}  [{}]  (cost {:.0})",
            self.pattern,
            self.rule,
            self.cost()
        )?;
        if self.counting_chain {
            writeln!(f, "count/exists: enumeration-free counting DP")?;
        }
        self.root.render(f)?;
        if self.scored.len() > 1 {
            writeln!(f, "candidates considered:")?;
            for (label, cost) in &self.scored {
                writeln!(f, "  {label}  (cost {cost:.0})")?;
            }
        }
        Ok(())
    }
}

fn build_node(cost: &PlanCost, p: &Pattern) -> PlanNode {
    match p {
        Pattern::Atom(atom) => PlanNode::Leaf {
            atom: atom.clone(),
            estimate: cost.estimate_incidents(p),
            cost: cost.leaf_cost(),
        },
        Pattern::Binary { op, left, right } => {
            let l = build_node(cost, left);
            let r = build_node(cost, right);
            let (n1, n2) = (l.estimate(), r.estimate());
            #[allow(clippy::cast_precision_loss)]
            let (k1, k2) = (left.num_atoms() as f64, right.num_atoms() as f64);
            let out = cost.model().combine_estimate(*op, n1, n2);
            let shape = JoinShape {
                n1,
                n2,
                k1,
                k2,
                out,
            };
            let (phys, node_cost) = cost.choose_physical(*op, l.is_leaf(), shape);
            PlanNode::Join {
                op: *op,
                phys,
                estimate: out,
                cost: l.cost() + r.cost() + node_cost,
                left: Box::new(l),
                right: Box::new(r),
            }
        }
    }
}

/// The query planner: enumerates equivalent trees, costs them, and picks
/// a physical operator per node of the winner.
#[derive(Debug, Clone)]
pub struct Planner {
    cost: PlanCost,
    optimizer: Optimizer,
}

impl Planner {
    /// Builds a planner from a log and its activity index.
    #[must_use]
    pub fn new(log: &Log, index: &LogIndex) -> Self {
        let stats = PlanStats::compute(log, index);
        let optimizer = Optimizer::new(stats.log_stats().clone());
        Planner {
            cost: PlanCost::new(stats),
            optimizer,
        }
    }

    /// Builds a planner from a log alone (builds a temporary index).
    #[must_use]
    pub fn from_log(log: &Log) -> Self {
        Planner::new(log, &LogIndex::build(log))
    }

    /// The planner's cost model.
    #[must_use]
    pub fn cost(&self) -> &PlanCost {
        &self.cost
    }

    /// The equivalent rewritings considered for `p` (original first).
    #[must_use]
    pub fn candidates(&self, p: &Pattern) -> Vec<RewriteCandidate> {
        candidates(&self.optimizer, p)
    }

    /// Plans `p`: costs every candidate rewrite and returns the cheapest
    /// with physical operators selected per node. The candidate set
    /// always includes `p` itself, so planning never regresses by its own
    /// estimate.
    #[must_use]
    pub fn plan(&self, p: &Pattern) -> PhysicalPlan {
        let mut scored = Vec::new();
        let mut best: Option<(PlanNode, &'static str, Pattern)> = None;
        for candidate in self.candidates(p) {
            let node = build_node(&self.cost, &candidate.pattern);
            let cost = node.cost();
            scored.push((format!("{}: {}", candidate.rule, candidate.pattern), cost));
            let better = match &best {
                None => true,
                Some((current, _, _)) => cost < current.cost(),
            };
            if better {
                best = Some((node, candidate.rule, candidate.pattern));
            }
        }
        // `candidates` always returns at least the original pattern, so
        // `best` is always set; the fallback keeps the API panic-free.
        let (root, rule, pattern) =
            best.unwrap_or_else(|| (build_node(&self.cost, p), "original", p.clone()));
        PhysicalPlan {
            query: p.clone(),
            counting_chain: is_counting_chain(&pattern),
            root,
            rule,
            pattern,
            scored,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::paper;
    use wlq_workflow::generator;

    fn parse(s: &str) -> Pattern {
        s.parse().expect("valid pattern")
    }

    fn planner_for(log: &Log) -> Planner {
        Planner::from_log(log)
    }

    #[test]
    fn leaf_joins_on_pair_logs_pick_sort_merge() {
        let log = generator::pair_log("A", 200, "B", 200, true);
        let plan = planner_for(&log).plan(&parse("A -> B"));
        let PlanNode::Join { phys, .. } = plan.root() else {
            panic!("expected a join root");
        };
        assert_eq!(*phys, PhysOp::SortMergeSeq);
        assert!(plan.is_counting_chain());
    }

    #[test]
    fn chosen_pattern_is_always_equivalent_shape() {
        let log = paper::figure3_log();
        let planner = planner_for(&log);
        for src in [
            "SeeDoctor -> UpdateRefer -> GetReimburse",
            "(SeeDoctor -> PayTreatment) | (SeeDoctor -> UpdateRefer)",
            "SeeDoctor & PayTreatment",
        ] {
            let p = parse(src);
            let plan = planner.plan(&p);
            // The plan's pattern round-trips from its own operator tree.
            assert_eq!(&plan.root().pattern(), plan.pattern(), "{src}");
            assert_eq!(plan.query(), &p);
        }
    }

    #[test]
    fn planning_never_regresses_by_its_own_estimate() {
        let log = paper::figure3_log();
        let planner = planner_for(&log);
        for src in [
            "SeeDoctor",
            "START -> SeeDoctor -> UpdateRefer",
            "(GetRefer -> CheckIn) | (GetRefer -> SeeDoctor) | UpdateRefer",
        ] {
            let p = parse(src);
            let plan = planner.plan(&p);
            let original = plan
                .scored_candidates()
                .iter()
                .find(|(label, _)| label.starts_with("original"))
                .map(|&(_, c)| c)
                .expect("original candidate always scored");
            assert!(
                plan.cost() <= original + 1e-9,
                "{src}: chose {} over original ({} > {original})",
                plan.pattern(),
                plan.cost()
            );
        }
    }

    #[test]
    fn counting_chain_flag_tracks_fast_count_support() {
        let log = paper::figure3_log();
        let planner = planner_for(&log);
        assert!(planner.plan(&parse("A ~> B -> !C")).is_counting_chain());
        assert!(!planner.plan(&parse("A | B")).is_counting_chain());
        assert!(!planner.plan(&parse("A & B")).is_counting_chain());
        assert!(!planner
            .plan(&parse("GetRefer[out.balance > 100]"))
            .is_counting_chain());
    }

    #[test]
    fn rows_flatten_the_tree_in_pre_order() {
        let log = paper::figure3_log();
        let plan = planner_for(&log).plan(&parse("SeeDoctor -> (UpdateRefer ~> GetReimburse)"));
        let rows = plan.root().rows();
        assert_eq!(rows.len(), 5);
        assert_eq!(rows.len(), plan.root().num_nodes());
        assert_eq!(rows[0].depth, 0);
        assert!(!rows[0].is_leaf);
        assert!(rows[1].is_leaf, "pre-order: left leaf second, got {rows:?}");
        assert_eq!(rows[1].pattern, "SeeDoctor");
        // The Display output is rendered from the same rows.
        let text = plan.to_string();
        for row in &rows {
            assert!(
                text.contains(&row.label),
                "missing {:?} in {text}",
                row.label
            );
        }
    }

    #[test]
    fn display_renders_the_operator_tree() {
        let log = paper::figure3_log();
        let plan = planner_for(&log).plan(&parse("SeeDoctor -> PayTreatment"));
        let text = plan.to_string();
        assert!(text.contains("chosen:"), "{text}");
        assert!(text.contains("scan SeeDoctor"), "{text}");
        assert!(text.contains("sequential ["), "{text}");
    }
}
