//! Per-task cardinality and span statistics feeding the planner.
//!
//! [`wlq_log::LogStats`] already carries whole-log activity counts — the
//! input to the pattern-level cost model. The planner additionally wants
//! *per-instance* shape: how many postings of each activity the densest
//! instance holds (the per-`wid` join sizes the kernels actually see),
//! and how skewed that distribution is. Both come straight from the
//! evaluator's existing [`wlq_log::LogIndex`], so collecting them costs
//! one pass over the posting lists and no new index structure.

use std::collections::BTreeMap;

use wlq_log::{Log, LogIndex, LogStats};

/// Statistics driving plan selection: whole-log counts plus per-instance
/// posting maxima.
#[derive(Debug, Clone)]
pub struct PlanStats {
    log_stats: LogStats,
    max_postings: BTreeMap<String, usize>,
}

impl PlanStats {
    /// Collects statistics from a log and its activity index.
    #[must_use]
    pub fn compute(log: &Log, index: &LogIndex) -> Self {
        let log_stats = LogStats::compute(log);
        let mut max_postings = BTreeMap::new();
        for activity in log_stats.activity_counts.keys() {
            let max = index
                .wids()
                .map(|wid| index.postings(wid, activity.as_str()).len())
                .max()
                .unwrap_or(0);
            max_postings.insert(activity.as_str().to_string(), max);
        }
        PlanStats {
            log_stats,
            max_postings,
        }
    }

    /// The whole-log statistics (activity counts, instance lengths).
    #[must_use]
    pub fn log_stats(&self) -> &LogStats {
        &self.log_stats
    }

    /// The largest per-instance posting count of `activity` — the worst
    /// single-`wid` operand size a kernel will see for that leaf.
    #[must_use]
    pub fn max_instance_postings(&self, activity: &str) -> usize {
        self.max_postings.get(activity).copied().unwrap_or(0)
    }

    /// Mean postings of `activity` per instance.
    #[must_use]
    pub fn mean_instance_postings(&self, activity: &str) -> f64 {
        let instances = self.log_stats.num_instances.max(1);
        #[allow(clippy::cast_precision_loss)]
        {
            self.log_stats.activity_count(activity) as f64 / instances as f64
        }
    }

    /// Skew of `activity` across instances: max over mean posting count
    /// (≥ 1 whenever the activity occurs; 0 when it never does). A high
    /// value means whole-log estimates understate the densest instance.
    #[must_use]
    pub fn skew(&self, activity: &str) -> f64 {
        let mean = self.mean_instance_postings(activity);
        if mean == 0.0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            (self.max_instance_postings(activity) as f64 / mean).max(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::paper;

    fn stats() -> PlanStats {
        let log = paper::figure3_log();
        let index = LogIndex::build(&log);
        PlanStats::compute(&log, &index)
    }

    #[test]
    fn max_postings_track_the_densest_instance() {
        let s = stats();
        // SeeDoctor: wid1 has two, wid2 has two, wid3 none.
        assert_eq!(s.max_instance_postings("SeeDoctor"), 2);
        assert_eq!(s.max_instance_postings("UpdateRefer"), 1);
        assert_eq!(s.max_instance_postings("Missing"), 0);
    }

    #[test]
    fn skew_is_at_least_one_for_present_activities() {
        let s = stats();
        assert!(s.skew("SeeDoctor") >= 1.0);
        assert_eq!(s.skew("Missing"), 0.0);
        // SeeDoctor: 4 total over 3 instances (mean 4/3), max 2 → 1.5.
        assert!((s.skew("SeeDoctor") - 1.5).abs() < 1e-9);
    }

    #[test]
    fn mean_postings_divide_by_instances() {
        let s = stats();
        assert!((s.mean_instance_postings("START") - 1.0).abs() < 1e-9);
    }
}
