//! Index- and merge-based operator implementations.
//!
//! The paper's Algorithm 1 enumerates all `n1·n2` pairs for every operator.
//! These variants are *output-sensitive* where possible:
//!
//! * **consecutive** — hash join on `first(o2) = last(o1) + 1`:
//!   `O(n1 + n2 + |out|)`.
//! * **sequential** — inputs are sorted by `first`; for each `o1` a binary
//!   search finds the first compatible `o2`, and only matching pairs are
//!   enumerated: `O((n1 + n2) log n2 + |out|)`.
//! * **choice** — sorted-merge union: `O((n1 + n2) · k)`.
//! * **parallel** — pair enumeration is unavoidable, but the disjointness
//!   check short-circuits on non-overlapping ranges, making the common
//!   (ordered) case `O(1)` per pair.
//!
//! All functions assume both inputs are sorted by `(first, …)` (the
//! invariant maintained by every operator's output) and produce sorted,
//! deduplicated output. Equivalence with the naive operators is enforced
//! by unit tests here and property tests in the workspace test suite.

use std::collections::HashMap;

use wlq_log::IsLsn;

use crate::incident::Incident;

/// Output-sensitive consecutive join (`last(o1) + 1 = first(o2)`).
#[must_use]
pub fn consecutive_eval(inc1: &[Incident], inc2: &[Incident]) -> Vec<Incident> {
    // Bucket right incidents by their first position.
    let mut by_first: HashMap<IsLsn, Vec<&Incident>> = HashMap::with_capacity(inc2.len());
    for o2 in inc2 {
        by_first.entry(o2.first()).or_default().push(o2);
    }
    let mut out = Vec::new();
    for o1 in inc1 {
        if let Some(matches) = by_first.get(&o1.last().next()) {
            for o2 in matches {
                out.push(o1.union(o2));
            }
        }
    }
    finish(out)
}

/// Output-sensitive sequential join (`last(o1) < first(o2)`).
#[must_use]
pub fn sequential_eval(inc1: &[Incident], inc2: &[Incident]) -> Vec<Incident> {
    debug_assert!(
        is_sorted_by_first(inc2),
        "right input must be sorted by first"
    );
    let mut out = Vec::new();
    for o1 in inc1 {
        // First index in inc2 whose first() > last(o1).
        let start = partition_point_first_gt(inc2, o1.last());
        for o2 in &inc2[start..] {
            out.push(o1.union(o2));
        }
    }
    finish(out)
}

/// Sorted-merge duplicate-eliminating union (Definition 4 choice).
#[must_use]
pub fn choice_eval(inc1: &[Incident], inc2: &[Incident]) -> Vec<Incident> {
    debug_assert!(inc1.is_sorted(), "left input must be sorted");
    debug_assert!(inc2.is_sorted(), "right input must be sorted");
    let mut out = Vec::with_capacity(inc1.len() + inc2.len());
    let (mut i, mut j) = (0, 0);
    while i < inc1.len() && j < inc2.len() {
        match inc1[i].cmp(&inc2[j]) {
            std::cmp::Ordering::Less => {
                out.push(inc1[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(inc2[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(inc1[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&inc1[i..]);
    out.extend_from_slice(&inc2[j..]);
    out
}

/// Parallel join with range short-circuiting.
#[must_use]
pub fn parallel_eval(inc1: &[Incident], inc2: &[Incident]) -> Vec<Incident> {
    let mut out = Vec::new();
    for o1 in inc1 {
        for o2 in inc2 {
            // `is_disjoint` already short-circuits on disjoint ranges; most
            // pairs in practice are range-disjoint so this pair loop is
            // cheap even though it cannot be asymptotically avoided
            // (every pair may genuinely produce output).
            if o1.is_disjoint(o2) {
                out.push(o1.union(o2));
            }
        }
    }
    finish(out)
}

fn is_sorted_by_first(incidents: &[Incident]) -> bool {
    incidents.windows(2).all(|w| w[0].first() <= w[1].first())
}

/// First index whose `first()` exceeds `bound`, assuming sort by `first`.
fn partition_point_first_gt(incidents: &[Incident], bound: IsLsn) -> usize {
    incidents.partition_point(|o| o.first() <= bound)
}

fn finish(mut out: Vec<Incident>) -> Vec<Incident> {
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use wlq_log::Wid;

    fn inc(ps: &[u32]) -> Incident {
        Incident::from_positions(Wid(1), ps.iter().map(|&p| IsLsn(p)).collect())
    }

    /// Builds an interesting, sorted incident list fixture.
    fn fixture_a() -> Vec<Incident> {
        let mut v = vec![
            inc(&[1]),
            inc(&[1, 2]),
            inc(&[2]),
            inc(&[3, 5]),
            inc(&[4]),
            inc(&[6, 7, 8]),
        ];
        v.sort_unstable();
        v
    }

    fn fixture_b() -> Vec<Incident> {
        let mut v = vec![inc(&[2, 3]), inc(&[3]), inc(&[5]), inc(&[6]), inc(&[9])];
        v.sort_unstable();
        v
    }

    #[test]
    fn consecutive_matches_naive() {
        let (a, b) = (fixture_a(), fixture_b());
        assert_eq!(consecutive_eval(&a, &b), naive::consecutive_eval(&a, &b));
        assert_eq!(consecutive_eval(&b, &a), naive::consecutive_eval(&b, &a));
    }

    #[test]
    fn sequential_matches_naive() {
        let (a, b) = (fixture_a(), fixture_b());
        assert_eq!(sequential_eval(&a, &b), naive::sequential_eval(&a, &b));
        assert_eq!(sequential_eval(&b, &a), naive::sequential_eval(&b, &a));
    }

    #[test]
    fn choice_matches_naive() {
        let (a, b) = (fixture_a(), fixture_b());
        assert_eq!(choice_eval(&a, &b), naive::choice_eval(&a, &b));
        // Overlapping inputs exercise the dedup path.
        assert_eq!(choice_eval(&a, &a), naive::choice_eval(&a, &a));
        assert_eq!(choice_eval(&a, &a), a);
    }

    #[test]
    fn parallel_matches_naive() {
        let (a, b) = (fixture_a(), fixture_b());
        assert_eq!(parallel_eval(&a, &b), naive::parallel_eval(&a, &b));
        assert_eq!(parallel_eval(&a, &a), naive::parallel_eval(&a, &a));
    }

    #[test]
    fn empty_inputs() {
        let a = fixture_a();
        assert!(consecutive_eval(&[], &a).is_empty());
        assert!(sequential_eval(&a, &[]).is_empty());
        assert_eq!(choice_eval(&[], &a), a);
        assert!(parallel_eval(&[], &a).is_empty());
    }

    #[test]
    fn sequential_binary_search_boundary() {
        // o1.last() equal to some firsts: strict inequality must hold.
        let left = vec![inc(&[3])];
        let right = vec![inc(&[3]), inc(&[3, 9]), inc(&[4])];
        let out = sequential_eval(&left, &right);
        assert_eq!(out, vec![inc(&[3, 4])]);
    }
}
