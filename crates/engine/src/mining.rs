//! Pattern discovery: mine frequent behavioural relations from a log.
//!
//! The inverse of querying — instead of checking a pattern the analyst
//! wrote, propose patterns the log supports. [`mine_relations`] computes,
//! for every ordered activity pair, in how many instances the pair occurs
//! consecutively (`a ⊙ b`), sequentially (`a → b`), and in both orders
//! without sharing records (`a ⊕ b`), yielding ready-to-run [`Pattern`]s
//! ranked by instance support. This is the "directly-follows" style
//! analysis of process-mining tools, expressed in the paper's algebra.

use std::collections::BTreeMap;

use wlq_log::{Activity, Log, LogIndex};
use wlq_pattern::{Op, Pattern};

/// One mined relation with its support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedRelation {
    /// The relation as an incident pattern, ready to evaluate.
    pub pattern: Pattern,
    /// The relation's operator.
    pub op: Op,
    /// The two activities involved.
    pub activities: (Activity, Activity),
    /// Number of instances with at least one incident of the pattern.
    pub support: usize,
}

/// Mines all pairwise relations with instance support at least
/// `min_support`, sorted by descending support (ties broken by activity
/// names). `START`/`END` markers are excluded.
///
/// # Examples
///
/// ```
/// use wlq_engine::mine_relations;
/// use wlq_log::paper;
/// use wlq_pattern::Op;
///
/// let mined = mine_relations(&paper::figure3_log(), 2);
/// // GetRefer ~> CheckIn holds in both active referral instances.
/// assert!(mined.iter().any(|r| {
///     r.op == Op::Consecutive
///         && r.activities.0 == "GetRefer"
///         && r.activities.1 == "CheckIn"
///         && r.support >= 2
/// }));
/// ```
#[must_use]
pub fn mine_relations(log: &Log, min_support: usize) -> Vec<MinedRelation> {
    let index = LogIndex::build(log);
    let activities: Vec<Activity> = log
        .activities()
        .into_iter()
        .filter(|a| !a.is_start() && !a.is_end())
        .collect();

    // support[(a, b, op)] = number of instances where the relation holds.
    let mut support: BTreeMap<(Activity, Activity, Op), usize> = BTreeMap::new();
    for wid in log.wids() {
        for a in &activities {
            let pa = index.postings(wid, a.as_str());
            if pa.is_empty() {
                continue;
            }
            for b in &activities {
                let pb = index.postings(wid, b.as_str());
                if pb.is_empty() {
                    continue;
                }
                let consecutive = pa.iter().any(|&x| pb.binary_search(&x.next()).is_ok());
                // ∃ x ∈ pa, y ∈ pb with x < y ⇔ min(pa) < max(pb);
                // pb is nonempty (checked above), so indexing is safe.
                let sequential = pa[0] < pb[pb.len() - 1];
                // Parallel: both executed with at least one record each,
                // sharing none — for distinct activities this just means
                // both occur; for a == b it needs two executions.
                let parallel = if a == b { pa.len() >= 2 } else { true };
                if consecutive {
                    *support
                        .entry((a.clone(), b.clone(), Op::Consecutive))
                        .or_insert(0) += 1;
                }
                if sequential {
                    *support
                        .entry((a.clone(), b.clone(), Op::Sequential))
                        .or_insert(0) += 1;
                }
                if parallel && a <= b {
                    *support
                        .entry((a.clone(), b.clone(), Op::Parallel))
                        .or_insert(0) += 1;
                }
            }
        }
    }

    let mut out: Vec<MinedRelation> = support
        .into_iter()
        .filter(|&(_, count)| count >= min_support)
        .map(|((a, b, op), count)| MinedRelation {
            pattern: Pattern::binary(op, Pattern::atom(a.as_str()), Pattern::atom(b.as_str())),
            op,
            activities: (a, b),
            support: count,
        })
        .collect();
    out.sort_by(|x, y| {
        y.support
            .cmp(&x.support)
            .then_with(|| x.activities.cmp(&y.activities))
            .then_with(|| x.op.cmp(&y.op))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use wlq_log::paper;

    #[test]
    fn mined_relations_actually_hold() {
        // Every mined relation, evaluated as a query, must match in at
        // least `support` instances.
        let log = paper::figure3_log();
        let eval = Evaluator::new(&log);
        for relation in mine_relations(&log, 1) {
            let matched = eval.matching_instances(&relation.pattern).len();
            assert!(
                matched >= relation.support,
                "{} claims support {} but matches {}",
                relation.pattern,
                relation.support,
                matched
            );
        }
    }

    #[test]
    fn figure3_directly_follows_relations() {
        let log = paper::figure3_log();
        let mined = mine_relations(&log, 2);
        let find = |a: &str, b: &str, op: Op| {
            mined
                .iter()
                .find(|r| r.activities.0 == a && r.activities.1 == b && r.op == op)
                .map(|r| r.support)
        };
        // GetRefer ~> CheckIn in wid 1 and 2.
        assert_eq!(find("GetRefer", "CheckIn", Op::Consecutive), Some(2));
        // SeeDoctor ~> PayTreatment in wid 1 and 2.
        assert_eq!(find("SeeDoctor", "PayTreatment", Op::Consecutive), Some(2));
        // UpdateRefer only happens in one instance: below min_support 2.
        assert_eq!(find("UpdateRefer", "GetReimburse", Op::Sequential), None);
    }

    #[test]
    fn min_support_filters_and_ordering_is_descending() {
        let log = paper::figure3_log();
        let all = mine_relations(&log, 1);
        let frequent = mine_relations(&log, 3);
        assert!(frequent.len() < all.len());
        for pair in all.windows(2) {
            assert!(pair[0].support >= pair[1].support);
        }
        for r in &frequent {
            assert!(r.support >= 3);
        }
    }

    #[test]
    fn start_end_markers_are_not_mined() {
        let log = paper::figure3_log();
        for r in mine_relations(&log, 1) {
            assert_ne!(r.activities.0.as_str(), "START");
            assert_ne!(r.activities.1.as_str(), "END");
        }
    }

    #[test]
    fn self_parallel_requires_two_executions() {
        let log = paper::figure3_log();
        let mined = mine_relations(&log, 1);
        // SeeDoctor runs twice in wids 1 and 2 → self-parallel support 2.
        let self_par = mined
            .iter()
            .find(|r| {
                r.op == Op::Parallel
                    && r.activities.0 == "SeeDoctor"
                    && r.activities.1 == "SeeDoctor"
            })
            .unwrap();
        assert_eq!(self_par.support, 2);
        // UpdateRefer runs once: no self-parallel entry.
        assert!(!mined.iter().any(|r| r.op == Op::Parallel
            && r.activities.0 == "UpdateRefer"
            && r.activities.1 == "UpdateRefer"));
    }
}
