//! Enumeration-free counting for chain patterns.
//!
//! `|incL(p)|` for a chain of atoms `a1 θ1 a2 θ2 …` (each `θi` consecutive
//! or sequential) can be computed *without materialising a single
//! incident*: a left-to-right dynamic program over each instance counts,
//! for every prefix length `j`, the assignments whose `j`-th record ends
//! at or before the current position. One pass per instance gives the
//! exact count in `O(m·k)` — breaking through the `Θ(n1·n2)` output bound
//! of Lemma 1 whenever only the count (or existence) is needed.
//!
//! Chains are exactly the patterns whose incidents are strictly
//! increasing position tuples, so distinct assignments are distinct
//! incident sets and the DP count equals `|incL(p)|`.
//!
//! [`Query::count`](crate::Query::count) uses this fast path
//! automatically when the (optimized) plan is a supported chain.

use wlq_log::Log;
use wlq_pattern::{Atom, Op, Pattern};

/// The operator linking two adjacent chain atoms: a strict subset of
/// [`Op`], so downstream code cannot observe a choice/parallel operator
/// inside a chain by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChainOp {
    /// `~>` — the next record is the immediate successor.
    Cons,
    /// `->` — the next record is any later record.
    Seq,
}

/// A flattened `~>`/`->` chain. The first atom is stored apart from the
/// `(operator, atom)` tail, so "every non-first step has an operator" is a
/// structural fact rather than a runtime invariant to `expect` on.
#[derive(Debug, Clone)]
struct Chain {
    first: Atom,
    tail: Vec<(ChainOp, Atom)>,
}

impl Chain {
    fn len(&self) -> usize {
        1 + self.tail.len()
    }

    /// The atoms in order, paired with the operator *before* each
    /// (`None` exactly for the first).
    fn steps(&self) -> impl Iterator<Item = (Option<ChainOp>, &Atom)> {
        std::iter::once((None, &self.first))
            .chain(self.tail.iter().map(|(op, atom)| (Some(*op), atom)))
    }
}

/// Flattens `pattern` into a `~>`/`->` chain of atoms, or `None` if the
/// pattern contains a choice or parallel operator anywhere, or uses
/// attribute predicates (which need record access). Nested `~>`/`->`
/// parenthesisations *are* supported — any shape whose operators are all
/// consecutive/sequential flattens to the same chain — which is what lets
/// the planner route every rewriting of a chain pattern here.
fn as_chain(pattern: &Pattern) -> Option<Chain> {
    fn walk(p: &Pattern, atoms: &mut Vec<Atom>, ops: &mut Vec<ChainOp>) -> bool {
        match p {
            Pattern::Atom(atom) => {
                if !atom.predicates.is_empty() {
                    return false;
                }
                atoms.push(atom.clone());
                true
            }
            Pattern::Binary {
                op: op @ (Op::Consecutive | Op::Sequential),
                left,
                right,
            } => {
                // The operator sits between left's last atom and right's
                // first atom, in any parenthesisation.
                if !walk(left, atoms, ops) {
                    return false;
                }
                ops.push(if *op == Op::Consecutive {
                    ChainOp::Cons
                } else {
                    ChainOp::Seq
                });
                walk(right, atoms, ops)
            }
            Pattern::Binary { .. } => false,
        }
    }
    let mut atoms = Vec::new();
    let mut ops = Vec::new();
    if !walk(pattern, &mut atoms, &mut ops) {
        return None;
    }
    // A successful walk pushes one operator per binary node visited, i.e.
    // exactly one fewer than the atoms it flattens.
    debug_assert_eq!(ops.len() + 1, atoms.len());
    let mut atoms = atoms.into_iter();
    let first = atoms.next()?;
    Some(Chain {
        first,
        tail: ops.into_iter().zip(atoms).collect(),
    })
}

/// Counts `|incL(pattern)|` without materialising incidents, if the
/// pattern is a supported chain. Returns `None` (caller falls back to
/// full evaluation) otherwise.
///
/// # Examples
///
/// ```
/// use wlq_engine::{fast_count, Evaluator};
/// use wlq_log::paper;
///
/// let log = paper::figure3_log();
/// let p = "SeeDoctor -> PayTreatment".parse().unwrap();
/// assert_eq!(fast_count(&log, &p), Some(Evaluator::new(&log).count(&p)));
/// ```
#[must_use]
pub fn fast_count(log: &Log, pattern: &Pattern) -> Option<usize> {
    let chain = as_chain(pattern)?;
    let k = chain.len();
    let mut total = 0usize;
    for wid in log.wids() {
        // exact[j]: assignments of the first j+1 atoms whose last record
        // is the *current* position. cum[j]: same but last record at any
        // position strictly before the current one.
        let mut cum = vec![0usize; k];
        let mut exact = vec![0usize; k];
        for record in log.instance(wid) {
            let activity = record.activity();
            // Compute this position's `exact` from the *previous*
            // position's state, highest j first (no self-interference
            // needed since we read prev via `cum`/`prev_exact`).
            let prev_exact: Vec<usize> = exact.clone();
            for (j, (op_before, atom)) in chain.steps().enumerate() {
                let matches = if atom.negated {
                    activity != &atom.activity
                } else {
                    activity == &atom.activity
                };
                exact[j] = match (matches, op_before) {
                    (false, _) => 0,
                    (true, None) => 1,
                    (true, Some(ChainOp::Seq)) => cum[j - 1],
                    (true, Some(ChainOp::Cons)) => prev_exact[j - 1],
                };
            }
            // Fold this position into the cumulative counts *after*
            // computing exact (cum must lag by one position).
            for j in 0..k {
                cum[j] += exact[j];
            }
        }
        total += cum[k - 1];
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use proptest::prelude::{prop, proptest, ProptestConfig};
    use wlq_log::{attrs, paper, LogBuilder};

    use crate::eval::Strategy;

    fn check(log: &Log, src: &str) {
        let p: Pattern = src.parse().unwrap();
        let fast = fast_count(log, &p).unwrap_or_else(|| panic!("{src} not a chain"));
        // The DP must agree with every enumeration path, including the
        // batch evaluator's ref-counting (which also never materialises).
        for strategy in [
            Strategy::NaivePaper,
            Strategy::Optimized,
            Strategy::Batch,
            Strategy::Planned,
        ] {
            let slow = Evaluator::with_strategy(log, strategy).count(&p);
            assert_eq!(fast, slow, "{src} under {strategy:?}");
        }
    }

    #[test]
    fn chain_counts_match_enumeration_on_figure3() {
        let log = paper::figure3_log();
        for src in [
            "SeeDoctor",
            "!SeeDoctor",
            "SeeDoctor -> PayTreatment",
            "SeeDoctor ~> PayTreatment",
            "GetRefer ~> CheckIn -> GetReimburse",
            "SeeDoctor -> SeeDoctor",
            "START -> !START -> END",
            "SeeDoctor -> UpdateRefer -> GetReimburse",
        ] {
            check(&log, src);
        }
    }

    #[test]
    fn unsupported_shapes_return_none() {
        let log = paper::figure3_log();
        for src in [
            "A | B",
            "A & B",
            "(A | B) -> C",
            "A -> (B & C)",
            "GetRefer[out.balance > 100]",
        ] {
            let p: Pattern = src.parse().unwrap();
            assert_eq!(fast_count(&log, &p), None, "{src}");
        }
    }

    #[test]
    fn planner_routes_counts_through_the_right_path() {
        let log = paper::figure3_log();
        let planned = Evaluator::with_strategy(&log, Strategy::Planned);
        let reference = Evaluator::with_strategy(&log, Strategy::NaivePaper);
        // Nested `~>`/`->` parenthesisations flatten to chains: the plan
        // flags the counting DP and the count matches enumeration.
        for src in [
            "SeeDoctor -> (UpdateRefer -> GetReimburse)",
            "(GetRefer ~> CheckIn) -> GetReimburse",
            "START -> (!START ~> END)",
        ] {
            let p: Pattern = src.parse().unwrap();
            let plan = planned.physical_plan(&p).unwrap();
            assert!(plan.is_counting_chain(), "{src} should take the DP");
            assert_eq!(planned.count(&p), reference.count(&p), "{src}");
        }
        // Choice/parallel/predicates must NOT be flagged — they fall back
        // to plan execution, still with the correct count.
        for src in [
            "SeeDoctor | UpdateRefer",
            "SeeDoctor & PayTreatment",
            "(CheckIn | SeeDoctor) -> GetReimburse",
            "GetRefer[out.balance > 100] -> SeeDoctor",
        ] {
            let p: Pattern = src.parse().unwrap();
            let plan = planned.physical_plan(&p).unwrap();
            assert!(!plan.is_counting_chain(), "{src} must not take the DP");
            assert_eq!(planned.count(&p), reference.count(&p), "{src}");
        }
    }

    #[test]
    fn quadratic_output_counted_in_linear_time() {
        // n A's then n B's: |incL(A -> B)| = n² but the count never
        // materialises it.
        let n = 500;
        let mut b = LogBuilder::new();
        let w = b.start_instance();
        for _ in 0..n {
            b.append(w, "A", attrs! {}, attrs! {}).unwrap();
        }
        for _ in 0..n {
            b.append(w, "B", attrs! {}, attrs! {}).unwrap();
        }
        let log = b.build().unwrap();
        let p: Pattern = "A -> B".parse().unwrap();
        assert_eq!(fast_count(&log, &p), Some(n * n));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Random logs × random chains: DP count ≡ enumeration count.
        #[test]
        fn fast_count_equals_enumeration(
            activities in prop::collection::vec(0..3usize, 0..14),
            chain in prop::collection::vec((0..3usize, prop::bool::ANY, prop::bool::ANY), 1..4),
        ) {
            const NAMES: [&str; 3] = ["A", "B", "C"];
            let mut b = LogBuilder::new();
            let w = b.start_instance();
            for &a in &activities {
                b.append(w, NAMES[a], attrs! {}, attrs! {}).unwrap();
            }
            let log = b.build().unwrap();

            let mut pattern: Option<Pattern> = None;
            for &(name, negated, consecutive) in &chain {
                let atom = if negated {
                    Pattern::not_atom(NAMES[name])
                } else {
                    Pattern::atom(NAMES[name])
                };
                pattern = Some(match pattern {
                    None => atom,
                    Some(acc) if consecutive => acc.cons(atom),
                    Some(acc) => acc.seq(atom),
                });
            }
            let pattern = pattern.expect("nonempty chain");
            let fast = fast_count(&log, &pattern).expect("chain supported");
            let slow = Evaluator::new(&log).count(&pattern);
            assert_eq!(fast, slow, "{pattern} on {log}");
        }
    }
}
