//! Bounded equivalence checking for patterns.
//!
//! Definition 5 equivalence (`incL(p) = incL(q)` for *all* logs `L`) is
//! not decidable by sampling; [`equivalent_up_to`] decides it *up to a
//! bound* by enumerating every single-instance log over the patterns'
//! combined alphabet (plus one fresh activity, so negated atoms are
//! exercised against "some other activity") up to a record count.
//!
//! Incidents never span instances, so single-instance logs suffice: if
//! `incL(p) ≠ incL(q)` on any log, the witnessing instance alone already
//! distinguishes them.
//!
//! This is the optimizer's safety net in tests and a practical
//! equivalence oracle for small patterns — with alphabet size `a` the
//! check evaluates `Σ a^ℓ` logs, so keep `max_len` modest.

use wlq_log::{attrs, Activity, Log, LogBuilder};
use wlq_pattern::Pattern;

use crate::eval::Evaluator;

/// The outcome of a bounded equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundedEquiv {
    /// No distinguishing log exists within the bound.
    EquivalentUpToBound,
    /// A counterexample: the smallest enumerated log on which the two
    /// patterns' incident sets differ.
    Distinguished(Log),
}

impl BoundedEquiv {
    /// `true` if no counterexample was found within the bound.
    #[must_use]
    pub fn holds(&self) -> bool {
        matches!(self, BoundedEquiv::EquivalentUpToBound)
    }
}

/// Checks `incL(p) = incL(q)` over every single-instance log of up to
/// `max_len` task records drawn from the two patterns' activities plus
/// one fresh activity.
///
/// # Panics
///
/// Panics if `max_len` would enumerate more than ~10⁷ logs
/// (`alphabet^max_len` growth) — raise the bound consciously by calling
/// with smaller patterns instead.
///
/// # Examples
///
/// ```
/// use wlq_engine::equivalent_up_to;
/// use wlq_pattern::Pattern;
///
/// let p: Pattern = "(A -> B) -> C".parse().unwrap();
/// let q: Pattern = "A -> (B -> C)".parse().unwrap();
/// assert!(equivalent_up_to(&p, &q, 5).holds()); // Theorem 2
///
/// let r: Pattern = "B -> A".parse().unwrap();
/// let s: Pattern = "A -> B".parse().unwrap();
/// assert!(!equivalent_up_to(&r, &s, 5).holds()); // not commutative
/// ```
#[must_use]
pub fn equivalent_up_to(p: &Pattern, q: &Pattern, max_len: usize) -> BoundedEquiv {
    // Combined alphabet plus a fresh activity for ¬t matches.
    let mut alphabet: Vec<Activity> = p.activities().into_iter().chain(q.activities()).collect();
    alphabet.sort();
    alphabet.dedup();
    let fresh = fresh_activity(&alphabet);
    alphabet.push(fresh);

    let a = alphabet.len() as u128;
    let mut total: u128 = 0;
    let mut power: u128 = 1;
    for _ in 0..=max_len {
        total += power;
        power = power.saturating_mul(a);
    }
    assert!(
        total <= 10_000_000,
        "bounded check would enumerate {total} logs; shrink max_len or the patterns"
    );

    for len in 0..=max_len {
        let mut indexes = vec![0usize; len];
        loop {
            let log = build_log(&alphabet, &indexes);
            let eval = Evaluator::new(&log);
            if eval.evaluate(p) != eval.evaluate(q) {
                return BoundedEquiv::Distinguished(log);
            }
            // Next combination (odometer).
            let mut carry = true;
            for digit in &mut indexes {
                if *digit + 1 < alphabet.len() {
                    *digit += 1;
                    carry = false;
                    break;
                }
                *digit = 0;
            }
            if carry {
                break;
            }
        }
    }
    BoundedEquiv::EquivalentUpToBound
}

fn fresh_activity(alphabet: &[Activity]) -> Activity {
    let mut candidate = String::from("Z_fresh");
    while alphabet.iter().any(|a| a.as_str() == candidate) {
        candidate.push('_');
    }
    Activity::new(candidate)
}

fn build_log(alphabet: &[Activity], indexes: &[usize]) -> Log {
    let mut b = LogBuilder::new();
    let wid = b.start_instance();
    for &i in indexes {
        // The instance was just opened and is never closed, so appends
        // cannot fail; a (structurally impossible) failure just skips.
        let _ = b.append(wid, alphabet[i].clone(), attrs! {}, attrs! {});
    }
    match b.build() {
        Ok(log) => log,
        // start_instance emitted a START record, so the builder is
        // nonempty and build() succeeds.
        Err(_) => unreachable!("builder holds at least the START record"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    #[test]
    fn the_theorems_pass_the_bounded_check() {
        // Theorem 2 (associativity) on each operator.
        for op in ["~>", "->", "|", "&"] {
            let p = parse(&format!("(A {op} B) {op} C"));
            let q = parse(&format!("A {op} (B {op} C)"));
            assert!(equivalent_up_to(&p, &q, 4).holds(), "{op}");
        }
        // Theorem 4 (mixed).
        assert!(equivalent_up_to(&parse("A ~> (B -> C)"), &parse("(A ~> B) -> C"), 4).holds());
        // Theorem 5 (distributivity).
        assert!(equivalent_up_to(&parse("A & (B | C)"), &parse("(A & B) | (A & C)"), 4).holds());
    }

    #[test]
    fn inequivalent_patterns_yield_counterexamples() {
        let result = equivalent_up_to(&parse("A -> B"), &parse("B -> A"), 4);
        let BoundedEquiv::Distinguished(log) = result else {
            panic!("should be distinguished");
        };
        // The witness actually distinguishes them.
        let eval = Evaluator::new(&log);
        assert_ne!(
            eval.evaluate(&parse("A -> B")),
            eval.evaluate(&parse("B -> A"))
        );
        assert!(!equivalent_up_to(&parse("A ~> B"), &parse("A -> B"), 4).holds());
        assert!(!equivalent_up_to(&parse("A | B"), &parse("A & B"), 4).holds());
    }

    #[test]
    fn negation_needs_the_fresh_activity() {
        // ¬A vs B: on logs over {A, B} alone they'd coincide; the fresh
        // activity exposes the difference.
        assert!(!equivalent_up_to(&parse("!A"), &parse("B"), 3).holds());
        // But ¬A and ¬A are equivalent.
        assert!(equivalent_up_to(&parse("!A"), &parse("!A"), 3).holds());
    }

    #[test]
    fn choice_idempotence_holds() {
        assert!(equivalent_up_to(&parse("A | A"), &parse("A"), 4).holds());
        // Parallel self-composition is NOT idempotent.
        assert!(!equivalent_up_to(&parse("A & A"), &parse("A"), 4).holds());
    }

    #[test]
    #[should_panic(expected = "shrink max_len")]
    fn enumeration_blowup_is_guarded() {
        let p = parse("A | B | C | D | E | F | G | H");
        let _ = equivalent_up_to(&p, &p, 12);
    }
}
