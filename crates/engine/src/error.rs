//! The engine's error taxonomy.
//!
//! Every fallible path reachable from the public evaluation API reports a
//! typed [`EngineError`] instead of panicking: parallel evaluation with an
//! impossible worker count, a worker thread dying mid-query, an invalid
//! record pushed into a streaming evaluator, a malformed pattern handed to
//! a high-level entry point, or a degenerate sampling step. Callers (the
//! `wlq` CLI, the differential fuzzer, embedding services) can match on
//! the variant and map it to a distinct exit code or retry policy.

use std::fmt;

use wlq_log::LogError;
use wlq_pattern::ParsePatternError;

/// An error produced by query evaluation.
///
/// The taxonomy is deliberately small and closed: each variant corresponds
/// to one class of misuse or failure, and each carries enough structured
/// context to diagnose the problem without re-running the query.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// Parallel evaluation was requested with zero worker threads.
    NoWorkers,
    /// A worker thread panicked during parallel evaluation. The panic is
    /// contained at the thread boundary and surfaced here instead of
    /// aborting the caller.
    WorkerPanicked {
        /// The panic payload, when it was a string (the common case).
        detail: String,
    },
    /// A record pushed into a streaming evaluator violates the log
    /// validity conditions of Definition 2.
    InvalidLog(LogError),
    /// A pattern failed to parse (wraps the parser's byte-offset error).
    Pattern(ParsePatternError),
    /// A sampling or stepping parameter was zero where a positive value is
    /// required (e.g. [`timeline`](crate::timeline) with `step == 0`).
    ZeroStep,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoWorkers => {
                write!(f, "parallel evaluation needs at least one worker thread")
            }
            EngineError::WorkerPanicked { detail } => {
                write!(f, "a worker thread panicked during evaluation: {detail}")
            }
            EngineError::InvalidLog(e) => write!(f, "invalid log record: {e}"),
            EngineError::Pattern(e) => write!(f, "invalid pattern: {e}"),
            EngineError::ZeroStep => write!(f, "step must be positive"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::InvalidLog(e) => Some(e),
            EngineError::Pattern(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LogError> for EngineError {
    fn from(e: LogError) -> Self {
        EngineError::InvalidLog(e)
    }
}

impl From<ParsePatternError> for EngineError {
    fn from(e: ParsePatternError) -> Self {
        EngineError::Pattern(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::{IsLsn, Wid};

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            EngineError::NoWorkers.to_string(),
            EngineError::WorkerPanicked {
                detail: "boom".into(),
            }
            .to_string(),
            EngineError::InvalidLog(LogError::NonConsecutiveIsLsn {
                wid: Wid(1),
                expected: IsLsn(2),
                found: IsLsn(4),
            })
            .to_string(),
            EngineError::ZeroStep.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn sources_chain_to_wrapped_errors() {
        use std::error::Error;
        let e: EngineError = LogError::Empty.into();
        assert!(e.source().is_some());
        assert!(EngineError::NoWorkers.source().is_none());
    }

    #[test]
    fn pattern_errors_convert() {
        let parse_err = "A ->".parse::<wlq_pattern::Pattern>().unwrap_err();
        let e: EngineError = parse_err.clone().into();
        assert_eq!(e, EngineError::Pattern(parse_err));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineError>();
    }
}
