//! Evolution of a query over log time: incident counts as the log grows.
//!
//! Built on the streaming evaluator, a [`timeline`] replays the log once
//! and samples the cumulative incident count every `step` records —
//! "when did the anomalies start?" without re-evaluating per prefix.

use wlq_log::{Log, Lsn};
use wlq_pattern::Pattern;

use crate::error::EngineError;
use crate::streaming::StreamingEvaluator;

/// One sample of a timeline: after the record with sequence number `lsn`,
/// the pattern had `incidents` cumulative incidents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// Last log sequence number included in this sample.
    pub lsn: Lsn,
    /// Cumulative `|incL(p)|` over the prefix `1..=lsn`.
    pub incidents: usize,
    /// Incidents completed since the previous sample.
    pub delta: usize,
}

/// Samples the cumulative incident count of `pattern` every `step`
/// records (and once at the final record), in one streaming pass.
///
/// Equivalent to evaluating the pattern on every sampled
/// [`prefix`](wlq_log::Log::prefix), in `O(log replay)` total.
///
/// # Errors
///
/// Returns [`EngineError::ZeroStep`] if `step` is 0, and
/// [`EngineError::InvalidLog`] if the log's records do not replay as a
/// valid Definition 2 stream (impossible for a [`Log`] built through the
/// validating constructors).
///
/// # Examples
///
/// ```
/// use wlq_engine::timeline;
/// use wlq_log::paper;
///
/// let points = timeline(
///     &paper::figure3_log(),
///     &"UpdateRefer -> GetReimburse".parse().unwrap(),
///     5,
/// )?;
/// // The anomaly completes only with l20.
/// assert_eq!(points.last().unwrap().incidents, 1);
/// assert_eq!(points[points.len() - 2].incidents, 0);
/// # Ok::<(), wlq_engine::EngineError>(())
/// ```
pub fn timeline(
    log: &Log,
    pattern: &Pattern,
    step: usize,
) -> Result<Vec<TimelinePoint>, EngineError> {
    if step == 0 {
        return Err(EngineError::ZeroStep);
    }
    let mut stream = StreamingEvaluator::new(pattern.clone());
    let mut points = Vec::new();
    let mut total = 0usize;
    let mut since_sample = 0usize;
    let len = log.len();
    for (i, record) in log.iter().enumerate() {
        let fresh = stream.append(record)?.len();
        total += fresh;
        since_sample += fresh;
        let at_step = (i + 1) % step == 0;
        let at_end = i + 1 == len;
        if at_step || at_end {
            points.push(TimelinePoint {
                lsn: record.lsn(),
                incidents: total,
                delta: since_sample,
            });
            since_sample = 0;
        }
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use wlq_log::paper;

    fn parse(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    #[test]
    fn samples_fall_on_steps_and_the_end() {
        let log = paper::figure3_log();
        let points = timeline(&log, &parse("SeeDoctor"), 6).unwrap();
        let lsns: Vec<u64> = points.iter().map(|p| p.lsn.get()).collect();
        assert_eq!(lsns, vec![6, 12, 18, 20]);
    }

    #[test]
    fn counts_are_cumulative_and_deltas_partition() {
        let log = paper::figure3_log();
        let points = timeline(&log, &parse("SeeDoctor"), 5).unwrap();
        // SeeDoctor at lsn 9, 11, 13, 17; samples at lsn 5, 10, 15, 20.
        let counts: Vec<usize> = points.iter().map(|p| p.incidents).collect();
        assert_eq!(counts, vec![0, 1, 3, 4]);
        let delta_sum: usize = points.iter().map(|p| p.delta).sum();
        assert_eq!(delta_sum, 4);
        // Deltas are consistent with consecutive totals.
        for pair in points.windows(2) {
            assert_eq!(pair[1].incidents - pair[0].incidents, pair[1].delta);
        }
    }

    #[test]
    fn final_sample_matches_batch_evaluation() {
        let log = paper::figure3_log();
        for src in ["GetRefer ~> CheckIn", "SeeDoctor & PayTreatment", "!START"] {
            let p = parse(src);
            let points = timeline(&log, &p, 7).unwrap();
            assert_eq!(
                points.last().unwrap().incidents,
                Evaluator::new(&log).count(&p),
                "{src}"
            );
        }
    }

    #[test]
    fn each_sample_matches_prefix_evaluation() {
        let log = paper::figure3_log();
        let p = parse("SeeDoctor -> PayTreatment");
        for point in timeline(&log, &p, 4).unwrap() {
            let prefix = log.prefix(point.lsn).unwrap();
            assert_eq!(
                point.incidents,
                Evaluator::new(&prefix).count(&p),
                "at lsn {}",
                point.lsn
            );
        }
    }

    #[test]
    fn step_larger_than_log_samples_once() {
        let log = paper::figure3_log();
        let points = timeline(&log, &parse("START"), 1000).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].lsn, wlq_log::Lsn(20));
        assert_eq!(points[0].incidents, 3);
    }

    #[test]
    fn zero_step_is_a_typed_error() {
        let err = timeline(&paper::figure3_log(), &parse("A"), 0).unwrap_err();
        assert_eq!(err, EngineError::ZeroStep);
    }
}
