//! Incident trees (Definition 6) and their post-order evaluation
//! (Algorithms 2 and 3), including per-node traces for `EXPLAIN`-style
//! output.

use std::fmt;
use std::time::{Duration, Instant};

use wlq_log::{Log, LogIndex};
use wlq_pattern::{Atom, Op, Pattern, PostfixItem};

use crate::eval::{combine, leaf_incidents, Strategy};
use crate::incident_set::IncidentSet;

/// A binary tree with operator and activity nodes (Definition 6) — the
/// evaluation plan of a pattern.
///
/// The tree is isomorphic to the [`Pattern`] AST; it exists as a separate
/// structure because the paper's Algorithm 3 constructs it explicitly from
/// the postfix form, and because evaluation annotates its nodes with
/// incident sets ([`IncidentTree::evaluate_traced`]).
#[derive(Debug, Clone, PartialEq)]
pub struct IncidentTree {
    root: Node,
}

/// A node of an incident tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// An activity (leaf) node, holding an atomic pattern.
    Activity(Atom),
    /// An operator node with two children.
    Operator {
        /// The pattern operator.
        op: Op,
        /// Left child.
        left: Box<Node>,
        /// Right child.
        right: Box<Node>,
    },
}

impl Node {
    fn from_pattern(p: &Pattern) -> Node {
        match p {
            Pattern::Atom(a) => Node::Activity(a.clone()),
            Pattern::Binary { op, left, right } => Node::Operator {
                op: *op,
                left: Box::new(Node::from_pattern(left)),
                right: Box::new(Node::from_pattern(right)),
            },
        }
    }

    fn to_pattern(&self) -> Pattern {
        match self {
            Node::Activity(a) => Pattern::Atom(a.clone()),
            Node::Operator { op, left, right } => {
                Pattern::binary(*op, left.to_pattern(), right.to_pattern())
            }
        }
    }
}

/// The per-node record of a traced evaluation, in post-order.
#[derive(Debug, Clone)]
pub struct NodeTrace {
    /// The sub-pattern this node represents, as text.
    pub pattern: String,
    /// Tree depth of the node (root = 0).
    pub depth: usize,
    /// The node's full incident set.
    pub incidents: IncidentSet,
    /// Wall-clock time spent producing this node's output (children
    /// excluded).
    pub elapsed: Duration,
}

/// The result of [`IncidentTree::evaluate_traced`]: the root incident set
/// plus one [`NodeTrace`] per node in post-order (the evaluation order of
/// Algorithm 2).
#[derive(Debug, Clone)]
pub struct EvalTrace {
    /// Per-node traces, post-order.
    pub nodes: Vec<NodeTrace>,
}

impl EvalTrace {
    /// The root node's trace (the final result).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty, which cannot happen for a tree
    /// produced from a pattern.
    #[must_use]
    pub fn root(&self) -> &NodeTrace {
        &self.nodes[self.nodes.len() - 1]
    }

    /// Total operator work time across all nodes.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.nodes.iter().map(|n| n.elapsed).sum()
    }
}

impl fmt::Display for EvalTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for node in &self.nodes {
            writeln!(
                f,
                "{:indent$}{} ⇒ {} incidents",
                "",
                node.pattern,
                node.incidents.len(),
                indent = node.depth * 2,
            )?;
        }
        Ok(())
    }
}

impl IncidentTree {
    /// Builds the incident tree of a pattern (the recursive descent half of
    /// Algorithm 3).
    #[must_use]
    pub fn from_pattern(p: &Pattern) -> Self {
        IncidentTree {
            root: Node::from_pattern(p),
        }
    }

    /// Builds the incident tree from a postfix item sequence — the
    /// stack-machine half of Algorithm 3 (the paper converts the infix
    /// query with shunting-yard first; see [`wlq_pattern::to_postfix`]).
    ///
    /// # Errors
    ///
    /// Returns [`wlq_pattern::PostfixError`] on ill-formed sequences.
    pub fn from_postfix(
        items: impl IntoIterator<Item = PostfixItem>,
    ) -> Result<Self, wlq_pattern::PostfixError> {
        let pattern = wlq_pattern::from_postfix(items)?;
        Ok(Self::from_pattern(&pattern))
    }

    /// The pattern this tree represents.
    #[must_use]
    pub fn to_pattern(&self) -> Pattern {
        self.root.to_pattern()
    }

    /// Number of nodes (operators + activities).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        fn count(node: &Node) -> usize {
            match node {
                Node::Activity(_) => 1,
                Node::Operator { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Post-order evaluation (Algorithm 2): leaves produce their activity's
    /// records via the per-instance index, operator nodes combine their
    /// children with the strategy's operator implementation.
    #[must_use]
    pub fn evaluate(&self, log: &Log, index: &LogIndex, strategy: Strategy) -> IncidentSet {
        fn eval(node: &Node, log: &Log, index: &LogIndex, strategy: Strategy) -> IncidentSet {
            match node {
                Node::Activity(atom) => {
                    let mut set = IncidentSet::new();
                    for wid in index.wids() {
                        let incidents = leaf_incidents(atom, log, index, wid);
                        set.extend(incidents);
                    }
                    set
                }
                Node::Operator { op, left, right } => {
                    let l = eval(left, log, index, strategy);
                    let r = eval(right, log, index, strategy);
                    combine_sets(*op, &l, &r, index, strategy)
                }
            }
        }
        eval(&self.root, log, index, strategy)
    }

    /// Like [`evaluate`](Self::evaluate) but records every node's incident
    /// set and timing — the trace shown in the paper's Example 5.
    #[must_use]
    pub fn evaluate_traced(
        &self,
        log: &Log,
        index: &LogIndex,
        strategy: Strategy,
    ) -> (IncidentSet, EvalTrace) {
        fn eval(
            node: &Node,
            depth: usize,
            log: &Log,
            index: &LogIndex,
            strategy: Strategy,
            out: &mut Vec<NodeTrace>,
        ) -> IncidentSet {
            match node {
                Node::Activity(atom) => {
                    let start = Instant::now();
                    let mut set = IncidentSet::new();
                    for wid in index.wids() {
                        set.extend(leaf_incidents(atom, log, index, wid));
                    }
                    out.push(NodeTrace {
                        pattern: atom.to_string(),
                        depth,
                        incidents: set.clone(),
                        elapsed: start.elapsed(),
                    });
                    set
                }
                Node::Operator { op, left, right } => {
                    let l = eval(left, depth + 1, log, index, strategy, out);
                    let r = eval(right, depth + 1, log, index, strategy, out);
                    let start = Instant::now();
                    let set = combine_sets(*op, &l, &r, index, strategy);
                    out.push(NodeTrace {
                        pattern: node.to_pattern().to_string(),
                        depth,
                        incidents: set.clone(),
                        elapsed: start.elapsed(),
                    });
                    set
                }
            }
        }
        let mut nodes = Vec::with_capacity(self.num_nodes());
        let set = eval(&self.root, 0, log, index, strategy, &mut nodes);
        (set, EvalTrace { nodes })
    }
}

/// Combines two full incident sets per instance (the `for i ∈ widSet` loop
/// of Algorithm 2, line 13–14).
fn combine_sets(
    op: Op,
    left: &IncidentSet,
    right: &IncidentSet,
    index: &LogIndex,
    strategy: Strategy,
) -> IncidentSet {
    let mut parts = Vec::new();
    for wid in index.wids() {
        let out = combine(strategy, op, left.for_wid(wid), right.for_wid(wid));
        parts.push((wid, out));
    }
    IncidentSet::from_partitions(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wlq_log::paper;
    use wlq_pattern::to_postfix;

    fn pattern(s: &str) -> Pattern {
        s.parse().unwrap()
    }

    #[test]
    fn tree_round_trips_pattern() {
        let p = pattern("SeeDoctor -> (UpdateRefer -> GetReimburse)");
        let tree = IncidentTree::from_pattern(&p);
        assert_eq!(tree.to_pattern(), p);
        assert_eq!(tree.num_nodes(), 5);
    }

    #[test]
    fn tree_from_postfix_matches_algorithm3() {
        let p = pattern("(A | B) -> C");
        let tree = IncidentTree::from_postfix(to_postfix(&p)).unwrap();
        assert_eq!(tree.to_pattern(), p);
    }

    #[test]
    fn figure4_tree_evaluates_example5() {
        // The running example: the root yields {l13, l14, l20} ≙
        // positions {4, 5, 9} of wid 2.
        let log = paper::figure3_log();
        let index = LogIndex::build(&log);
        let tree =
            IncidentTree::from_pattern(&pattern("SeeDoctor -> (UpdateRefer -> GetReimburse)"));
        for strategy in [Strategy::NaivePaper, Strategy::Optimized, Strategy::Batch] {
            let set = tree.evaluate(&log, &index, strategy);
            assert_eq!(set.len(), 1, "{strategy:?}");
            let o = set.iter().next().unwrap();
            assert_eq!(o.wid(), wlq_log::Wid(2));
            let lsns: Vec<u64> = o
                .positions()
                .iter()
                .map(|&p| log.record(o.wid(), p).unwrap().lsn().get())
                .collect();
            assert_eq!(lsns, vec![13, 14, 20]);
        }
    }

    #[test]
    fn trace_reports_per_node_sets_in_post_order() {
        let log = paper::figure3_log();
        let index = LogIndex::build(&log);
        let tree =
            IncidentTree::from_pattern(&pattern("SeeDoctor -> (UpdateRefer -> GetReimburse)"));
        let (set, trace) = tree.evaluate_traced(&log, &index, Strategy::Optimized);
        assert_eq!(trace.nodes.len(), 5);
        // Post-order: SeeDoctor, UpdateRefer, GetReimburse, inner ->, root.
        assert_eq!(trace.nodes[0].pattern, "SeeDoctor");
        assert_eq!(trace.nodes[0].incidents.len(), 4); // l9, l11, l13, l17
        assert_eq!(trace.nodes[1].pattern, "UpdateRefer");
        assert_eq!(trace.nodes[1].incidents.len(), 1);
        assert_eq!(trace.nodes[2].pattern, "GetReimburse");
        assert_eq!(trace.nodes[2].incidents.len(), 2); // l15, l20
        assert_eq!(trace.nodes[3].pattern, "UpdateRefer -> GetReimburse");
        assert_eq!(trace.nodes[3].incidents.len(), 1); // {l14, l20}
        assert_eq!(
            trace.root().pattern,
            "SeeDoctor -> (UpdateRefer -> GetReimburse)"
        );
        assert_eq!(trace.root().incidents, set);
        // Depths: leaves of the inner node are depth 2.
        assert_eq!(trace.nodes[0].depth, 1);
        assert_eq!(trace.nodes[1].depth, 2);
        assert_eq!(trace.root().depth, 0);
    }

    #[test]
    fn trace_display_indents_by_depth() {
        let log = paper::figure3_log();
        let index = LogIndex::build(&log);
        let tree = IncidentTree::from_pattern(&pattern("UpdateRefer -> GetReimburse"));
        let (_, trace) = tree.evaluate_traced(&log, &index, Strategy::Optimized);
        let text = trace.to_string();
        assert!(text.contains("UpdateRefer ⇒ 1 incidents"));
        assert!(text.contains("UpdateRefer -> GetReimburse ⇒ 1 incidents"));
    }

    #[test]
    fn negated_leaf_counts_complement() {
        let log = paper::figure3_log();
        let index = LogIndex::build(&log);
        let tree = IncidentTree::from_pattern(&pattern("!SeeDoctor"));
        let set = tree.evaluate(&log, &index, Strategy::Optimized);
        assert_eq!(set.len(), 20 - 4);
    }
}
