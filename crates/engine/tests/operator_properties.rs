//! Operator-level property tests: the naive (Algorithm 1) and optimized
//! implementations agree on *arbitrary* incident lists — including
//! multi-record incidents with overlapping spans, the shapes that stress
//! the hash/merge/short-circuit paths — and the operators' semantic
//! postconditions hold on every output.

use proptest::prelude::{prop, prop_assert, prop_assert_eq, proptest, Strategy};

use wlq_engine::{
    combine, combine_batch, naive, optimized, Incident, IncidentBatch, Strategy as EvalStrategy,
};
use wlq_log::{IsLsn, Wid};
use wlq_pattern::Op;

/// Arbitrary sorted, deduplicated incident lists of one instance, with
/// incidents of 1–4 records at positions 1–12 (dense, so overlaps and
/// adjacencies are common).
fn arb_incidents() -> impl Strategy<Value = Vec<Incident>> {
    prop::collection::vec(prop::collection::btree_set(1u32..13, 1..5), 0..8).prop_map(|sets| {
        let mut incidents: Vec<Incident> = sets
            .into_iter()
            .map(|positions| {
                Incident::from_positions(Wid(1), positions.into_iter().map(IsLsn).collect())
            })
            .collect();
        incidents.sort_unstable();
        incidents.dedup();
        incidents
    })
}

proptest! {
    /// All four operators: naive ≡ optimized on arbitrary inputs.
    #[test]
    fn implementations_agree(left in arb_incidents(), right in arb_incidents()) {
        prop_assert_eq!(
            naive::consecutive_eval(&left, &right),
            optimized::consecutive_eval(&left, &right)
        );
        prop_assert_eq!(
            naive::sequential_eval(&left, &right),
            optimized::sequential_eval(&left, &right)
        );
        prop_assert_eq!(
            naive::choice_eval(&left, &right),
            optimized::choice_eval(&left, &right)
        );
        prop_assert_eq!(
            naive::parallel_eval(&left, &right),
            optimized::parallel_eval(&left, &right)
        );
        // The dispatch wrapper agrees with the direct calls, and the flat
        // batch kernels with both — via the dispatcher (which converts at
        // the boundary) and on prebuilt batches.
        let lb = IncidentBatch::from_incidents(Wid(1), &left);
        let rb = IncidentBatch::from_incidents(Wid(1), &right);
        for op in Op::ALL {
            let reference = combine(EvalStrategy::NaivePaper, op, &left, &right);
            prop_assert_eq!(
                &reference,
                &combine(EvalStrategy::Optimized, op, &left, &right)
            );
            prop_assert_eq!(
                &reference,
                &combine(EvalStrategy::Batch, op, &left, &right)
            );
            prop_assert_eq!(&reference, &combine_batch(op, &lb, &rb).into_incidents());
        }
    }

    /// Definition 4 postconditions hold on every output incident.
    #[test]
    fn outputs_satisfy_definition4(left in arb_incidents(), right in arb_incidents()) {
        // Consecutive: output = o1 ∪ o2 with last(o1)+1 = first(o2); since
        // outputs don't record the split, check the verifiable parts:
        // sortedness, dedup, and span containment.
        for (op, out) in [
            (Op::Consecutive, optimized::consecutive_eval(&left, &right)),
            (Op::Sequential, optimized::sequential_eval(&left, &right)),
            (Op::Parallel, optimized::parallel_eval(&left, &right)),
        ] {
            prop_assert!(out.windows(2).all(|w| w[0] < w[1]), "{op:?} unsorted/dup");
            for o in &out {
                // Every output is a union of one left and one right
                // incident: its records are covered by some such pair.
                let covered = left.iter().any(|l| {
                    right.iter().any(|r| {
                        let matches = match op {
                            Op::Consecutive => l.last().get() + 1 == r.first().get(),
                            Op::Sequential => l.last() < r.first(),
                            Op::Parallel => l.is_disjoint(r),
                            Op::Choice => unreachable!(),
                        };
                        matches && &l.union(r) == o
                    })
                });
                prop_assert!(covered, "{op:?} produced unjustified incident {o}");
            }
        }
        // Choice: exactly the set union.
        let union = optimized::choice_eval(&left, &right);
        for o in &union {
            prop_assert!(left.contains(o) || right.contains(o));
        }
        for o in left.iter().chain(right.iter()) {
            prop_assert!(union.contains(o));
        }
    }

    /// Completeness: every qualifying pair appears in the output.
    #[test]
    fn outputs_are_complete(left in arb_incidents(), right in arb_incidents()) {
        let seq = optimized::sequential_eval(&left, &right);
        let cons = optimized::consecutive_eval(&left, &right);
        let par = optimized::parallel_eval(&left, &right);
        for l in &left {
            for r in &right {
                if l.last() < r.first() {
                    prop_assert!(seq.contains(&l.union(r)), "missing seq {l} ∪ {r}");
                }
                if l.last().get() + 1 == r.first().get() {
                    prop_assert!(cons.contains(&l.union(r)), "missing cons {l} ∪ {r}");
                }
                if l.is_disjoint(r) {
                    prop_assert!(par.contains(&l.union(r)), "missing par {l} ∪ {r}");
                }
            }
        }
    }

    /// Output-size bounds of Lemma 1 hold.
    #[test]
    fn lemma1_size_bounds(left in arb_incidents(), right in arb_incidents()) {
        let (n1, n2) = (left.len(), right.len());
        prop_assert!(optimized::consecutive_eval(&left, &right).len() <= n1 * n2);
        prop_assert!(optimized::sequential_eval(&left, &right).len() <= n1 * n2);
        prop_assert!(optimized::parallel_eval(&left, &right).len() <= n1 * n2);
        prop_assert!(optimized::choice_eval(&left, &right).len() <= n1 + n2);
    }
}
