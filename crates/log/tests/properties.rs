//! Property tests of the log crate: builder validity, serialization
//! round-trips over randomly-shaped logs with arbitrary attribute values,
//! and index consistency.

use proptest::prelude::{
    any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy,
};

use wlq_log::{io, AttrMap, Log, LogBuilder, LogIndex, LogStats, Value};

/// Arbitrary attribute values covering every kind.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Undefined),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // NaN payload bits are canonicalised: the text formats encode
        // NaN as a token, so only sign and canonical payload survive.
        any::<f64>().prop_map(|x| {
            Value::Float(if x.is_nan() {
                if x.is_sign_negative() {
                    -f64::NAN
                } else {
                    f64::NAN
                }
            } else {
                x
            })
        }),
        "[ -~]{0,12}".prop_map(Value::from), // printable ASCII incl. specials
    ]
}

fn arb_map() -> impl Strategy<Value = AttrMap> {
    prop::collection::vec(("[a-z]{1,6}", arb_value()), 0..4)
        .prop_map(|entries| entries.into_iter().collect())
}

/// A random multi-instance log: per instance, a list of
/// `(activity, input, output)` task records, interleaved round-robin.
fn arb_log() -> impl Strategy<Value = Log> {
    prop::collection::vec(
        prop::collection::vec(("[A-E]", arb_map(), arb_map()), 0..6),
        1..4,
    )
    .prop_map(|instances| {
        let mut b = LogBuilder::new();
        let wids: Vec<_> = instances.iter().map(|_| b.start_instance()).collect();
        let longest = instances.iter().map(Vec::len).max().unwrap_or(0);
        for step in 0..longest {
            for (i, tasks) in instances.iter().enumerate() {
                if let Some((act, input, output)) = tasks.get(step) {
                    b.append(wids[i], act.as_str(), input.clone(), output.clone())
                        .unwrap();
                }
            }
        }
        // Close every second instance.
        for (i, &wid) in wids.iter().enumerate() {
            if i % 2 == 0 {
                b.end_instance(wid).unwrap();
            }
        }
        b.build().unwrap()
    })
}

proptest! {
    /// Whatever the builder produces, `Log::new` accepts (valid by
    /// construction, revalidated on assembly).
    #[test]
    fn builder_output_is_always_valid(log in arb_log()) {
        let records = log.clone().into_records();
        prop_assert_eq!(Log::new(records).unwrap(), log);
    }

    /// Text, CSV, binary, and XES round-trip arbitrary logs byte-exactly
    /// — including NaN floats, quotes, separators, and ⊥ values.
    #[test]
    fn all_formats_round_trip(log in arb_log()) {
        let text = io::text::write_text(&log);
        prop_assert_eq!(&io::text::read_text(&text).unwrap(), &log);
        let csv = io::csv::write_csv(&log);
        prop_assert_eq!(&io::csv::read_csv(&csv).unwrap(), &log);
        let bin = io::binary::write_binary(&log);
        prop_assert_eq!(&io::binary::read_binary(bin).unwrap(), &log);
        let xes = io::xes::write_xes(&log);
        prop_assert_eq!(&io::xes::read_xes(&xes).unwrap(), &log);
    }

    /// The index agrees with a direct scan for every (wid, activity).
    #[test]
    fn index_matches_direct_scan(log in arb_log()) {
        let index = LogIndex::build(&log);
        for wid in log.wids() {
            for activity in log.activities() {
                let scanned: Vec<_> = log
                    .instance(wid)
                    .filter(|r| r.activity() == &activity)
                    .map(wlq_log::LogRecord::is_lsn)
                    .collect();
                prop_assert_eq!(
                    index.postings(wid, activity.as_str()),
                    scanned.as_slice()
                );
                // Complement partitions the instance.
                let complement = index.complement_postings(wid, activity.as_str());
                prop_assert_eq!(
                    complement.len() + scanned.len(),
                    log.instance_len(wid)
                );
            }
        }
    }

    /// Statistics are internally consistent.
    #[test]
    fn stats_are_consistent(log in arb_log()) {
        let stats = LogStats::compute(&log);
        prop_assert_eq!(stats.num_records, log.len());
        prop_assert_eq!(stats.num_instances, log.num_instances());
        let total: usize = stats.activity_counts.values().sum();
        prop_assert_eq!(total, log.len());
        prop_assert!(stats.min_instance_len <= stats.max_instance_len);
        prop_assert!(
            stats.completed_instances <= stats.num_instances,
            "completed > total"
        );
    }

    /// Every prefix of a valid log is valid, and prefixes nest.
    #[test]
    fn prefixes_are_valid_and_monotone(log in arb_log()) {
        let mut previous_len = 0;
        for upto in 1..=log.len() as u64 {
            let prefix = log.prefix(wlq_log::Lsn(upto)).unwrap();
            prop_assert_eq!(prefix.len(), upto as usize);
            prop_assert!(prefix.len() >= previous_len);
            previous_len = prefix.len();
        }
    }

    /// Merging a log with Figure 3 preserves both sides' instance shapes.
    #[test]
    fn merge_preserves_instance_multisets(log in arb_log()) {
        let fig3 = wlq_log::paper::figure3_log();
        let merged = Log::merge([log.clone(), fig3.clone()]).unwrap();
        prop_assert_eq!(merged.len(), log.len() + fig3.len());
        prop_assert_eq!(
            merged.num_instances(),
            log.num_instances() + fig3.num_instances()
        );
        // Per-instance length multiset is preserved.
        let mut expected: Vec<usize> = log
            .wids()
            .map(|w| log.instance_len(w))
            .chain(fig3.wids().map(|w| fig3.instance_len(w)))
            .collect();
        let mut actual: Vec<usize> =
            merged.wids().map(|w| merged.instance_len(w)).collect();
        expected.sort_unstable();
        actual.sort_unstable();
        prop_assert_eq!(expected, actual);
    }
}
