//! Attribute values stored in workflow logs.
//!
//! The paper assumes a countably infinite domain `D` of values plus the
//! undefined value `⊥`. We model `D` as a small dynamically-typed universe
//! ([`Value`]) sufficient for the workloads in the paper (identifiers,
//! strings, amounts, states) and `⊥` as [`Value::Undefined`].

use std::fmt;
use std::sync::Arc;

/// A value of a workflow attribute.
///
/// `Value` is the Rust rendering of the paper's value domain `D ∪ {⊥}`.
/// Values are cheap to clone (strings are reference counted) and have total
/// equality, ordering, and hashing so they can be used as grouping keys.
///
/// # Examples
///
/// ```
/// use wlq_log::Value;
///
/// let balance = Value::Int(1000);
/// assert!(balance > Value::Int(500));
/// assert_eq!(Value::from("active"), Value::Str("active".into()));
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// The undefined value `⊥`: the attribute has no value.
    Undefined,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer (amounts, counters, years).
    Int(i64),
    /// A 64-bit float. Compared with [`f64::total_cmp`], so `NaN` is
    /// permitted and ordered after all other floats.
    Float(f64),
    /// An interned string (states, identifiers, names).
    Str(Arc<str>),
}

impl Value {
    /// Returns `true` if this value is the undefined value `⊥`.
    ///
    /// ```
    /// use wlq_log::Value;
    /// assert!(Value::Undefined.is_undefined());
    /// assert!(!Value::Int(0).is_undefined());
    /// ```
    #[must_use]
    pub fn is_undefined(&self) -> bool {
        matches!(self, Value::Undefined)
    }

    /// Returns the integer payload if this value is an [`Value::Int`].
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload, widening integers, if numeric.
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            #[allow(clippy::cast_precision_loss)]
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string payload if this value is a [`Value::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload if this value is a [`Value::Bool`].
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric comparison across `Int` and `Float`, `None` for other kinds.
    ///
    /// Used by the attribute-predicate query extension, where `balance >
    /// 5000` should hold whether `balance` was logged as an integer or a
    /// float.
    #[must_use]
    pub fn numeric_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_float()?;
                let b = other.as_float()?;
                Some(a.total_cmp(&b))
            }
        }
    }

    /// A short lowercase name of the value's kind, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Undefined => "undefined",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
        }
    }

    fn discriminant(&self) -> u8 {
        match self {
            Value::Undefined => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Undefined, Value::Undefined) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b).is_eq(),
            (Value::Str(a), Value::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: kinds are ordered `Undefined < Bool < Int < Float < Str`,
    /// values within a kind by their natural order (floats by
    /// [`f64::total_cmp`]).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.discriminant().cmp(&other.discriminant()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.discriminant().hash(state);
        match self {
            Value::Undefined => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl Default for Value {
    /// The default value is `⊥` (undefined), matching the paper's convention
    /// that attributes are undefined until written.
    fn default() -> Self {
        Value::Undefined
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Undefined => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<Arc<str>> for Value {
    fn from(s: Arc<str>) -> Self {
        Value::Str(s)
    }
}

/// Parses a value from its textual form, used by the text and CSV log
/// readers. The undefined marker is `⊥` or the empty string; `true`/`false`
/// parse as booleans; integer and float literals parse numerically;
/// everything else is a string.
impl std::str::FromStr for Value {
    type Err = std::convert::Infallible;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Ok(parse_value(s))
    }
}

fn parse_value(s: &str) -> Value {
    match s {
        "" | "⊥" | "_|_" => return Value::Undefined,
        "true" => return Value::Bool(true),
        "false" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::Int(i);
    }
    if looks_numeric(s) {
        if let Ok(x) = s.parse::<f64>() {
            return Value::Float(x);
        }
    }
    Value::Str(Arc::from(s))
}

/// Guards float parsing so strings like `"inf"` or `"nan"` stay strings.
fn looks_numeric(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {}
        _ => return false,
    }
    s.chars()
        .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn undefined_is_default_and_detectable() {
        assert_eq!(Value::default(), Value::Undefined);
        assert!(Value::default().is_undefined());
    }

    #[test]
    fn accessors_return_expected_payloads() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::from("x").as_int(), None);
        assert_eq!(Value::Undefined.as_float(), None);
    }

    #[test]
    fn equality_is_structural_within_kind() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert_ne!(Value::Int(3), Value::Float(3.0));
        assert_eq!(Value::from("a"), Value::from("a"));
        assert_ne!(Value::from("a"), Value::from("b"));
    }

    #[test]
    fn float_equality_uses_total_order_semantics() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
    }

    #[test]
    fn ordering_is_total_across_kinds() {
        let mut vs = [
            Value::from("z"),
            Value::Float(1.5),
            Value::Int(10),
            Value::Bool(false),
            Value::Undefined,
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Undefined);
        assert_eq!(vs[1], Value::Bool(false));
        assert_eq!(vs[2], Value::Int(10));
        assert_eq!(vs[3], Value::Float(1.5));
        assert_eq!(vs[4], Value::from("z"));
    }

    #[test]
    fn numeric_cmp_crosses_int_and_float() {
        assert_eq!(
            Value::Int(5).numeric_cmp(&Value::Float(4.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::Float(2.0).numeric_cmp(&Value::Int(2)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::from("x").numeric_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn hash_agrees_with_eq() {
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Int(42)));
        assert_eq!(hash_of(&Value::from("s")), hash_of(&Value::from("s")));
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(f64::NAN))
        );
    }

    #[test]
    fn display_round_trips_through_parse() {
        for v in [
            Value::Undefined,
            Value::Bool(true),
            Value::Int(-17),
            Value::Float(3.25),
            Value::from("People Hospital"),
        ] {
            let s = v.to_string();
            let back: Value = s.parse().unwrap();
            assert_eq!(back, v, "round-trip failed for {s}");
        }
    }

    #[test]
    fn parse_keeps_odd_strings_as_strings() {
        for s in ["inf", "nan", "1.2.3", "034d1", "-", "+"] {
            let v: Value = s.parse().unwrap();
            assert_eq!(v, Value::from(s), "{s} should parse as a string");
        }
    }

    #[test]
    fn parse_recognises_scalars() {
        assert_eq!("42".parse::<Value>().unwrap(), Value::Int(42));
        assert_eq!("-1".parse::<Value>().unwrap(), Value::Int(-1));
        assert_eq!("2.5".parse::<Value>().unwrap(), Value::Float(2.5));
        assert_eq!("true".parse::<Value>().unwrap(), Value::Bool(true));
        assert_eq!("⊥".parse::<Value>().unwrap(), Value::Undefined);
        assert_eq!("".parse::<Value>().unwrap(), Value::Undefined);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_traits_are_implemented() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<Value>();
        assert_serde::<crate::LogRecord>();
        assert_serde::<crate::AttrMap>();
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(Value::Undefined.kind(), "undefined");
        assert_eq!(Value::Int(1).kind(), "int");
        assert_eq!(Value::Float(1.0).kind(), "float");
        assert_eq!(Value::Bool(true).kind(), "bool");
        assert_eq!(Value::from("s").kind(), "str");
    }
}
