//! Secondary indexes over a [`Log`] used by query evaluation.
//!
//! Algorithm 2 of the paper assumes "an index structure for each workflow id
//! and activity … used to generate log records for an activity node in
//! constant time". [`LogIndex`] is that structure: per-instance activity
//! postings, in is-lsn order.

use std::collections::{BTreeMap, HashMap};

use crate::log::Log;
use crate::names::Activity;
use crate::record::{IsLsn, Wid};

/// An inverted index over a log: for each `(wid, activity)` the sorted list
/// of is-lsns at which that activity executed, plus the full activity
/// sequence of each instance (for negated atomic patterns).
///
/// # Examples
///
/// ```
/// use wlq_log::{paper, LogIndex, Wid, IsLsn};
///
/// let log = paper::figure3_log();
/// let idx = LogIndex::build(&log);
/// // SeeDoctor executed at is-lsn 4 and 6 in instance 1 (l9, l11).
/// assert_eq!(idx.postings(Wid(1), "SeeDoctor"), &[IsLsn(4), IsLsn(6)]);
/// ```
#[derive(Debug, Clone)]
pub struct LogIndex {
    /// `(wid, activity) → sorted is-lsns`.
    postings: HashMap<(Wid, Activity), Vec<IsLsn>>,
    /// `wid → activity sequence`, position `i` holding is-lsn `i+1`.
    sequences: BTreeMap<Wid, Vec<Activity>>,
}

impl LogIndex {
    /// Builds the index in a single pass over the log.
    #[must_use]
    pub fn build(log: &Log) -> Self {
        let mut postings: HashMap<(Wid, Activity), Vec<IsLsn>> = HashMap::new();
        let mut sequences: BTreeMap<Wid, Vec<Activity>> = BTreeMap::new();
        for wid in log.wids() {
            let seq: Vec<Activity> = log.instance(wid).map(|r| r.activity().clone()).collect();
            for (i, act) in seq.iter().enumerate() {
                postings
                    .entry((wid, act.clone()))
                    .or_default()
                    .push(IsLsn(i as u32 + 1));
            }
            sequences.insert(wid, seq);
        }
        LogIndex {
            postings,
            sequences,
        }
    }

    /// The instance ids covered by the index, ascending.
    pub fn wids(&self) -> impl Iterator<Item = Wid> + '_ {
        self.sequences.keys().copied()
    }

    /// Number of instances.
    #[must_use]
    pub fn num_instances(&self) -> usize {
        self.sequences.len()
    }

    /// The is-lsns at which `activity` executed in instance `wid`,
    /// ascending; empty if it never did.
    #[must_use]
    pub fn postings(&self, wid: Wid, activity: &str) -> &[IsLsn] {
        // Avoid allocating an Activity for the common hit path only when the
        // caller already has one; for &str lookups we construct the key once.
        self.postings
            .get(&(wid, Activity::new(activity)))
            .map_or(&[], Vec::as_slice)
    }

    /// Number of records of instance `wid` (0 if unknown).
    #[must_use]
    pub fn instance_len(&self, wid: Wid) -> usize {
        self.sequences.get(&wid).map_or(0, Vec::len)
    }

    /// The activity executed at `(wid, is_lsn)`.
    #[must_use]
    pub fn activity_at(&self, wid: Wid, is_lsn: IsLsn) -> Option<&Activity> {
        let seq = self.sequences.get(&wid)?;
        seq.get((is_lsn.get() as usize).checked_sub(1)?)
    }

    /// The is-lsns of instance `wid` whose activity is *not* `activity`
    /// (matches the negated atomic pattern `¬t`), ascending.
    #[must_use]
    pub fn complement_postings(&self, wid: Wid, activity: &str) -> Vec<IsLsn> {
        self.sequences.get(&wid).map_or_else(Vec::new, |seq| {
            seq.iter()
                .enumerate()
                .filter(|(_, a)| a.as_str() != activity)
                .map(|(i, _)| IsLsn(i as u32 + 1))
                .collect()
        })
    }

    /// Count of executions of `activity` across all instances; this is the
    /// selectivity statistic the optimizer uses.
    #[must_use]
    pub fn total_count(&self, activity: &str) -> usize {
        self.wids().map(|w| self.postings(w, activity).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrMap;
    use crate::builder::LogBuilder;
    use crate::record::LogRecord;

    fn sample() -> Log {
        let mut b = LogBuilder::new();
        let w1 = b.start_instance();
        let w2 = b.start_instance();
        for a in ["A", "B", "A"] {
            b.append(w1, a, AttrMap::new(), AttrMap::new()).unwrap();
        }
        b.append(w2, "B", AttrMap::new(), AttrMap::new()).unwrap();
        b.end_instance(w1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn postings_are_per_instance_and_sorted() {
        let log = sample();
        let idx = LogIndex::build(&log);
        assert_eq!(idx.postings(Wid(1), "A"), &[IsLsn(2), IsLsn(4)]);
        assert_eq!(idx.postings(Wid(1), "B"), &[IsLsn(3)]);
        assert_eq!(idx.postings(Wid(2), "A"), &[] as &[IsLsn]);
        assert_eq!(idx.postings(Wid(2), "B"), &[IsLsn(2)]);
    }

    #[test]
    fn start_and_end_are_indexed_like_activities() {
        let idx = LogIndex::build(&sample());
        assert_eq!(idx.postings(Wid(1), "START"), &[IsLsn(1)]);
        assert_eq!(idx.postings(Wid(1), "END"), &[IsLsn(5)]);
        assert_eq!(idx.postings(Wid(2), "END"), &[] as &[IsLsn]);
    }

    #[test]
    fn activity_at_reads_the_sequence() {
        let idx = LogIndex::build(&sample());
        assert_eq!(idx.activity_at(Wid(1), IsLsn(2)).unwrap().as_str(), "A");
        assert_eq!(idx.activity_at(Wid(1), IsLsn(5)).unwrap().as_str(), "END");
        assert_eq!(idx.activity_at(Wid(1), IsLsn(6)), None);
        assert_eq!(idx.activity_at(Wid(9), IsLsn(1)), None);
    }

    #[test]
    fn complement_postings_match_negated_atoms() {
        let idx = LogIndex::build(&sample());
        assert_eq!(
            idx.complement_postings(Wid(1), "A"),
            vec![IsLsn(1), IsLsn(3), IsLsn(5)]
        );
        assert_eq!(idx.complement_postings(Wid(9), "A"), Vec::<IsLsn>::new());
    }

    #[test]
    fn total_count_sums_instances() {
        let idx = LogIndex::build(&sample());
        assert_eq!(idx.total_count("A"), 2);
        assert_eq!(idx.total_count("B"), 2);
        assert_eq!(idx.total_count("START"), 2);
        assert_eq!(idx.total_count("Nope"), 0);
    }

    #[test]
    fn instance_len_matches_log() {
        let log = sample();
        let idx = LogIndex::build(&log);
        assert_eq!(idx.instance_len(Wid(1)), log.instance_len(Wid(1)));
        assert_eq!(idx.instance_len(Wid(2)), log.instance_len(Wid(2)));
        assert_eq!(idx.num_instances(), 2);
    }

    #[test]
    fn index_of_figure3_matches_example5() {
        let log = crate::paper::figure3_log();
        let idx = LogIndex::build(&log);
        // Example 5: incL(SeeDoctor) = {l9, l11, l13, l17}.
        let mut hits: Vec<(Wid, IsLsn)> = Vec::new();
        for w in idx.wids() {
            for &p in idx.postings(w, "SeeDoctor") {
                hits.push((w, p));
            }
        }
        let lsns: Vec<u64> = hits
            .iter()
            .map(|&(w, p)| log.record(w, p).unwrap().lsn().get())
            .collect();
        assert_eq!(lsns, vec![9, 11, 13, 17]);
    }

    #[test]
    fn single_record_instances_index_cleanly() {
        let log = Log::new(vec![LogRecord::start(1, 1u64)]).unwrap();
        let idx = LogIndex::build(&log);
        assert_eq!(idx.instance_len(Wid(1)), 1);
        assert_eq!(idx.postings(Wid(1), "START"), &[IsLsn(1)]);
    }
}
