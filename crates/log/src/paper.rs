//! The example data of the paper, hand-coded for ground-truth tests.
//!
//! [`figure3_log`] reproduces the initial segment of the medical-clinic
//! referral log shown in Figure 3 of the paper (20 records, 3 instances).
//!
//! One normalization: Figure 3 spells the reimbursement activity
//! `GetReimberse` while the running text and all example queries spell it
//! `GetReimburse`. We use the text's spelling `GetReimburse` everywhere so
//! that the worked examples (Examples 3 and 5) type-check against the data.

use crate::attrs;
use crate::builder::LogBuilder;
use crate::log::Log;
use crate::record::Wid;

/// Activity names of the clinic referral process, as used in Figure 3.
pub mod activities {
    /// Obtain a referral at the college clinic.
    pub const GET_REFER: &str = "GetRefer";
    /// Check in at the referred hospital.
    pub const CHECK_IN: &str = "CheckIn";
    /// See a doctor at the hospital.
    pub const SEE_DOCTOR: &str = "SeeDoctor";
    /// Pay for treatment, obtaining a receipt.
    pub const PAY_TREATMENT: &str = "PayTreatment";
    /// Update the referral (e.g. its balance) after a new diagnosis.
    pub const UPDATE_REFER: &str = "UpdateRefer";
    /// Receive a treatment that was paid for.
    pub const TAKE_TREATMENT: &str = "TakeTreatment";
    /// Get reimbursed for active receipts.
    pub const GET_REIMBURSE: &str = "GetReimburse";
    /// Complete (close) the referral.
    pub const COMPLETE_REFER: &str = "CompleteRefer";
}

/// Builds the 20-record log of Figure 3.
///
/// Instances: wid 1 (a complete referral with two doctor visits and two
/// receipts), wid 2 (a referral updated to a higher balance before
/// reimbursement — the anomaly the paper's example query hunts for), and
/// wid 3 (a freshly started referral).
///
/// ```
/// use wlq_log::paper::figure3_log;
///
/// let log = figure3_log();
/// assert_eq!(log.len(), 20);
/// assert_eq!(log.num_instances(), 3);
/// ```
#[must_use]
pub fn figure3_log() -> Log {
    match try_figure3_log() {
        Ok(log) => log,
        // Every append targets an instance that was started and never
        // closed, so construction cannot fail.
        Err(_) => unreachable!("figure 3 log is valid by construction"),
    }
}

fn try_figure3_log() -> Result<Log, crate::error::LogError> {
    use activities::*;

    let mut b = LogBuilder::new();
    let w1 = b.start_instance(); // lsn 1
    let w2 = b.start_instance(); // lsn 2
    assert_eq!((w1, w2), (Wid(1), Wid(2)));

    // lsn 3
    b.append(
        w1,
        GET_REFER,
        attrs! {},
        attrs! {
            "hospital" => "Public Hospital", "referId" => "034d1",
            "referState" => "start", "balance" => 1000i64,
        },
    )?;
    // lsn 4 — the record `l` of Example 1.
    b.append(
        w1,
        CHECK_IN,
        attrs! { "referId" => "034d1", "referState" => "start", "balance" => 1000i64 },
        attrs! { "referState" => "active" },
    )?;
    // lsn 5
    b.append(
        w2,
        GET_REFER,
        attrs! {},
        attrs! {
            "hospital" => "People Hospital", "referId" => "022f3",
            "referState" => "start", "balance" => 2000i64,
        },
    )?;
    // lsn 6
    let w3 = b.start_instance();
    assert_eq!(w3, Wid(3));
    // lsn 7
    b.append(
        w3,
        GET_REFER,
        attrs! {},
        attrs! {
            "hospital" => "Public Hospital", "referId" => "048s1",
            "referState" => "start", "balance" => 500i64,
        },
    )?;
    // lsn 8
    b.append(
        w2,
        CHECK_IN,
        attrs! { "referId" => "022f3", "referState" => "start", "balance" => 2000i64 },
        attrs! { "referState" => "active" },
    )?;
    // lsn 9
    b.append(
        w1,
        SEE_DOCTOR,
        attrs! { "referId" => "034d1", "referState" => "active" },
        attrs! {},
    )?;
    // lsn 10
    b.append(
        w1,
        PAY_TREATMENT,
        attrs! { "referId" => "034d1", "referState" => "active" },
        attrs! { "receipt1" => 560i64, "receipt1State" => "active" },
    )?;
    // lsn 11
    b.append(
        w1,
        SEE_DOCTOR,
        attrs! { "referId" => "034d1", "referState" => "active" },
        attrs! {},
    )?;
    // lsn 12
    b.append(
        w1,
        PAY_TREATMENT,
        attrs! { "referId" => "034d1", "referState" => "active" },
        attrs! { "receipt2" => 460i64, "receipt2State" => "active" },
    )?;
    // lsn 13
    b.append(
        w2,
        SEE_DOCTOR,
        attrs! { "referId" => "022f3", "referState" => "active" },
        attrs! {},
    )?;
    // lsn 14
    b.append(
        w2,
        UPDATE_REFER,
        attrs! { "referId" => "022f3", "referState" => "active", "balance" => 2000i64 },
        attrs! { "balance" => 5000i64 },
    )?;
    // lsn 15
    b.append(
        w1,
        GET_REIMBURSE,
        attrs! {
            "referState" => "active", "balance" => 1000i64,
            "receipt1" => 560i64, "receipt1State" => "active",
            "receipt2" => 460i64, "receipt2State" => "active",
        },
        attrs! {
            "amount" => 1020i64, "balance" => 0i64, "reimburse" => 1000i64,
            "receipt1State" => "complete", "receipt2State" => "complete",
        },
    )?;
    // lsn 16
    b.append(
        w1,
        COMPLETE_REFER,
        attrs! { "referState" => "active", "balance" => 0i64 },
        attrs! { "referState" => "complete" },
    )?;
    // lsn 17
    b.append(
        w2,
        SEE_DOCTOR,
        attrs! { "referId" => "022f3", "referState" => "active" },
        attrs! {},
    )?;
    // lsn 18
    b.append(
        w2,
        PAY_TREATMENT,
        attrs! { "referId" => "022f3", "referState" => "active" },
        attrs! { "receipt1" => 4560i64, "receipt1State" => "active" },
    )?;
    // lsn 19
    b.append(
        w2,
        TAKE_TREATMENT,
        attrs! { "referId" => "022f3", "receipt1" => 4560i64 },
        attrs! {},
    )?;
    // lsn 20
    b.append(
        w2,
        GET_REIMBURSE,
        attrs! {
            "referState" => "active", "balance" => 5000i64,
            "receipt1" => 6560i64, "receipt1State" => "active",
        },
        attrs! {
            "amount" => 6560i64, "balance" => 0i64, "reimburse" => 5000i64,
            "receipt1State" => "complete",
        },
    )?;

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{IsLsn, Lsn};
    use crate::value::Value;

    #[test]
    fn figure3_has_twenty_records_and_three_instances() {
        let log = figure3_log();
        assert_eq!(log.len(), 20);
        assert_eq!(log.num_instances(), 3);
        assert_eq!(log.instance_len(Wid(1)), 9);
        assert_eq!(log.instance_len(Wid(2)), 9);
        assert_eq!(log.instance_len(Wid(3)), 2);
    }

    #[test]
    fn example1_record_l4_matches_the_paper() {
        // l = (4, 1, 3, CheckIn, {referId=034d1, referState=start,
        //      balance=1000}, {referState=active})
        let log = figure3_log();
        let l = log.get(Lsn(4)).unwrap();
        assert_eq!(l.wid(), Wid(1));
        assert_eq!(l.is_lsn(), IsLsn(3));
        assert_eq!(l.activity().as_str(), "CheckIn");
        assert_eq!(l.input().get_or_undefined("referId"), Value::from("034d1"));
        assert_eq!(
            l.input().get_or_undefined("referState"),
            Value::from("start")
        );
        assert_eq!(l.input().get_or_undefined("balance"), Value::Int(1000));
        assert_eq!(
            l.output().get_or_undefined("referState"),
            Value::from("active")
        );
        assert_eq!(l.output().len(), 1);
    }

    #[test]
    fn update_refer_precedes_get_reimburse_only_in_wid2() {
        // The motivating query of Section 2: UpdateRefer at l14 (is-lsn 5)
        // before GetReimburse at l20 (is-lsn 9), instance 2 only.
        let log = figure3_log();
        let l14 = log.get(Lsn(14)).unwrap();
        let l20 = log.get(Lsn(20)).unwrap();
        assert_eq!(l14.activity().as_str(), "UpdateRefer");
        assert_eq!(l14.wid(), Wid(2));
        assert_eq!(l20.activity().as_str(), "GetReimburse");
        assert_eq!(l20.wid(), Wid(2));
        assert!(l14.is_lsn() < l20.is_lsn());
        // No UpdateRefer anywhere else.
        let updates: Vec<_> = log
            .iter()
            .filter(|r| r.activity().as_str() == "UpdateRefer")
            .collect();
        assert_eq!(updates.len(), 1);
    }

    #[test]
    fn no_instance_is_completed_in_the_initial_segment() {
        // Figure 3 is an *initial segment*: no END records yet.
        let log = figure3_log();
        for wid in log.wids() {
            assert!(!log.is_completed(wid));
        }
    }

    #[test]
    fn balance_update_raises_to_5000() {
        let log = figure3_log();
        let l14 = log.get(Lsn(14)).unwrap();
        assert_eq!(l14.input().get_or_undefined("balance"), Value::Int(2000));
        assert_eq!(l14.output().get_or_undefined("balance"), Value::Int(5000));
    }
}
