//! Log records (Definition 1) and the identifier newtypes they use.

use std::fmt;

use crate::attrs::AttrMap;
use crate::names::Activity;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($inner:ty)) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(pub $inner);

        impl $name {
            /// Returns the raw numeric value.
            #[must_use]
            pub fn get(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }

        impl From<$name> for $inner {
            fn from(v: $name) -> Self {
                v.0
            }
        }
    };
}

id_type! {
    /// A log sequence number: the global, totally-ordered position of a
    /// record in the log (`lsn ∈ N+`, Definition 1). Valid logs number their
    /// records `1..=|L|` (Definition 2, condition 1).
    Lsn(u64)
}

id_type! {
    /// A workflow instance id (`wid ∈ N+`, Definition 1). All records of one
    /// enactment share a `Wid`.
    Wid(u64)
}

id_type! {
    /// An instance-specific log sequence number (`is-lsn ∈ N+`,
    /// Definition 1): the position of a record *within its instance*. Valid
    /// logs number each instance's records consecutively from 1
    /// (Definition 2, conditions 2–3). Incident semantics (`first`, `last`,
    /// consecutive/sequential ordering) are defined over `IsLsn`.
    IsLsn(u32)
}

impl IsLsn {
    /// The `is-lsn` of every `START` record.
    pub const FIRST: IsLsn = IsLsn(1);

    /// The successor position, used by the consecutive operator's
    /// `last(o1) + 1 = first(o2)` check.
    ///
    /// # Panics
    ///
    /// Panics on overflow of the underlying `u32`, which would require a
    /// single workflow instance with more than 4 billion records.
    #[must_use]
    pub fn next(self) -> IsLsn {
        assert!(self.0 < u32::MAX, "is-lsn overflow");
        IsLsn(self.0 + 1)
    }
}

/// A workflow log record (Definition 1): the effect of executing one
/// activity in one workflow instance.
///
/// `l = (lsn, wid, is-lsn, t, αin, αout)` — see the accessors
/// [`lsn`](Self::lsn), [`wid`](Self::wid), [`is_lsn`](Self::is_lsn),
/// [`activity`](Self::activity) (`act(l)` in the paper),
/// [`input`](Self::input) (`αin(l)`), and [`output`](Self::output)
/// (`αout(l)`).
///
/// # Examples
///
/// The record `l4` from the paper's Example 1:
///
/// ```
/// use wlq_log::{attrs, LogRecord};
///
/// let l = LogRecord::new(
///     4, 1, 3, "CheckIn",
///     attrs! { "referId" => "034d1", "referState" => "start", "balance" => 1000i64 },
///     attrs! { "referState" => "active" },
/// );
/// assert_eq!(l.lsn().get(), 4);
/// assert_eq!(l.wid().get(), 1);
/// assert_eq!(l.is_lsn().get(), 3);
/// assert_eq!(l.activity(), "CheckIn");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogRecord {
    lsn: Lsn,
    wid: Wid,
    is_lsn: IsLsn,
    activity: Activity,
    input: AttrMap,
    output: AttrMap,
}

impl LogRecord {
    /// Creates a record from its six components.
    pub fn new(
        lsn: impl Into<Lsn>,
        wid: impl Into<Wid>,
        is_lsn: impl Into<IsLsn>,
        activity: impl Into<Activity>,
        input: AttrMap,
        output: AttrMap,
    ) -> Self {
        LogRecord {
            lsn: lsn.into(),
            wid: wid.into(),
            is_lsn: is_lsn.into(),
            activity: activity.into(),
            input,
            output,
        }
    }

    /// Creates the `START` record opening instance `wid` (is-lsn 1, empty
    /// maps).
    pub fn start(lsn: impl Into<Lsn>, wid: impl Into<Wid>) -> Self {
        LogRecord::new(
            lsn,
            wid,
            IsLsn::FIRST,
            Activity::start(),
            AttrMap::new(),
            AttrMap::new(),
        )
    }

    /// Creates the `END` record closing instance `wid` (empty maps).
    pub fn end(lsn: impl Into<Lsn>, wid: impl Into<Wid>, is_lsn: impl Into<IsLsn>) -> Self {
        LogRecord::new(
            lsn,
            wid,
            is_lsn,
            Activity::end(),
            AttrMap::new(),
            AttrMap::new(),
        )
    }

    /// The global log sequence number, `lsn(l)`.
    #[must_use]
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }

    /// The workflow instance id, `wid(l)`.
    #[must_use]
    pub fn wid(&self) -> Wid {
        self.wid
    }

    /// The instance-specific log sequence number, `is-lsn(l)`.
    #[must_use]
    pub fn is_lsn(&self) -> IsLsn {
        self.is_lsn
    }

    /// The activity name, `act(l)`.
    #[must_use]
    pub fn activity(&self) -> &Activity {
        &self.activity
    }

    /// The input map `αin(l)`: attributes (and values) read by the activity.
    #[must_use]
    pub fn input(&self) -> &AttrMap {
        &self.input
    }

    /// The output map `αout(l)`: attributes (and values) written.
    #[must_use]
    pub fn output(&self) -> &AttrMap {
        &self.output
    }

    /// Returns `true` if this is a `START` record.
    #[must_use]
    pub fn is_start(&self) -> bool {
        self.activity.is_start()
    }

    /// Returns `true` if this is an `END` record.
    #[must_use]
    pub fn is_end(&self) -> bool {
        self.activity.is_end()
    }

    /// Re-stamps the global `lsn` (used by log mergers and builders).
    pub(crate) fn set_lsn(&mut self, lsn: Lsn) {
        self.lsn = lsn;
    }
}

impl fmt::Display for LogRecord {
    /// One line of the paper's Figure 3 table:
    /// `lsn | wid | is-lsn | activity | αin | αout`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} | {} | {} | {} | {} | {}",
            self.lsn, self.wid, self.is_lsn, self.activity, self.input, self.output
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;

    #[test]
    fn accessors_extract_all_components() {
        let l = LogRecord::new(
            4u64,
            1u64,
            3u32,
            "CheckIn",
            attrs! { "referId" => "034d1" },
            attrs! { "referState" => "active" },
        );
        assert_eq!(l.lsn(), Lsn(4));
        assert_eq!(l.wid(), Wid(1));
        assert_eq!(l.is_lsn(), IsLsn(3));
        assert_eq!(l.activity().as_str(), "CheckIn");
        assert_eq!(l.input().len(), 1);
        assert_eq!(l.output().len(), 1);
    }

    #[test]
    fn start_records_have_is_lsn_one_and_empty_maps() {
        let s = LogRecord::start(1u64, 7u64);
        assert!(s.is_start());
        assert!(!s.is_end());
        assert_eq!(s.is_lsn(), IsLsn::FIRST);
        assert!(s.input().is_empty());
        assert!(s.output().is_empty());
    }

    #[test]
    fn end_records_are_detected() {
        let e = LogRecord::end(9u64, 7u64, 5u32);
        assert!(e.is_end());
        assert!(!e.is_start());
        assert!(e.input().is_empty());
    }

    #[test]
    fn is_lsn_next_increments() {
        assert_eq!(IsLsn(1).next(), IsLsn(2));
        assert_eq!(IsLsn::FIRST.next().next(), IsLsn(3));
    }

    #[test]
    fn display_matches_figure3_layout() {
        let l = LogRecord::new(
            4u64,
            1u64,
            3u32,
            "CheckIn",
            attrs! { "balance" => 1000i64 },
            AttrMap::new(),
        );
        assert_eq!(l.to_string(), "4 | 1 | 3 | CheckIn | balance=1000 | -");
    }

    #[test]
    fn id_types_convert_and_display() {
        let lsn: Lsn = 42u64.into();
        assert_eq!(u64::from(lsn), 42);
        assert_eq!(lsn.to_string(), "42");
        assert_eq!(Wid(3).get(), 3);
        assert_eq!(IsLsn(2).get(), 2);
    }
}
